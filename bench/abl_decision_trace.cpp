// Ablation A7: what each policy actually rejects.
//
// The figures show *outcomes* (makespans); this bench opens the decision
// layer instead.  Every run is traced (core::run_trials_results with
// ExperimentConfig::trace_decisions), and the per-boundary candidate
// evaluations are folded into a rejection-reason histogram per policy and
// dynamism level: how often the planner found no faster spare, how often a
// threshold (process gain, payback, app gain) vetoed an otherwise faster
// host, and the mean payback distance of the swaps that were taken.
// Tracing never perturbs the simulation, so the makespans behind these
// histograms are the same as fig7's.
#include <array>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "strategy/decision_trace.hpp"

namespace {

struct Histogram {
  std::size_t boundaries = 0;
  std::size_t swaps_applied = 0;
  // Indexed by swap::RejectReason (kAccepted..kAppGain).
  std::array<std::size_t, 5> by_reason{};
  double accepted_payback_sum = 0.0;

  [[nodiscard]] std::size_t considered() const {
    std::size_t n = 0;
    for (std::size_t c : by_reason) n += c;
    return n;
  }
};

Histogram fold(const std::vector<bench::strat::RunResult>& results) {
  Histogram h;
  for (const bench::strat::RunResult& r : results) {
    for (const bench::strat::DecisionRecord& rec : r.decision_trace) {
      if (rec.kind != bench::strat::TraceKind::kBoundary) continue;
      ++h.boundaries;
      h.swaps_applied += rec.swaps_applied;
      for (const bench::swp::CandidateEvaluation& c : rec.considered) {
        ++h.by_reason[static_cast<std::size_t>(c.rejection)];
        if (c.accepted()) h.accepted_payback_sum += c.payback_iters;
      }
    }
  }
  return h;
}

}  // namespace

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  cfg.trace_decisions = true;
  const std::vector<double> dynamisms{0.1, 0.3, 0.6};
  const std::size_t trials = bench::trial_count();

  struct Cell {
    const char* policy;
    double dynamism;
    Histogram h;
  };
  std::vector<Cell> cells;
  for (const char* policy : {"greedy", "safe", "friendly"}) {
    for (double d : dynamisms) {
      auto params = std::string(policy) == "greedy" ? bench::swp::greedy_policy()
                    : std::string(policy) == "safe" ? bench::swp::safe_policy()
                                                    : bench::swp::friendly_policy();
      bench::strat::SwapStrategy strategy{params};
      const bench::load::OnOffModel model(
          bench::load::OnOffParams::dynamism(d));
      const auto results = bench::core::run_trials_results(
          cfg, model, strategy, trials, /*jobs=*/0);
      cells.push_back({policy, d, fold(results)});
    }
  }

  std::printf("==== Ablation: decision traces — why policies refuse swaps "
              "====\n");
  std::printf("# paper expectation: greedy accepts nearly every faster spare "
              "(its only veto is no_faster_spare); safe's payback threshold "
              "and 20%% process-gain stiction dominate its rejections; "
              "friendly vetoes on app gain once the bottleneck no longer "
              "limits the iteration\n");
  std::printf("%-9s %9s %10s %10s %9s %15s %12s %9s %8s %12s\n", "policy",
              "dynamism", "boundaries", "considered", "accepted",
              "no_faster_spare", "min_process", "payback", "min_app",
              "mean_payback");
  for (const Cell& cell : cells) {
    const Histogram& h = cell.h;
    const std::size_t accepted = h.by_reason[0];
    std::printf("%-9s %9.2f %10zu %10zu %9zu %15zu %12zu %9zu %8zu %12.3f\n",
                cell.policy, cell.dynamism, h.boundaries, h.considered(),
                accepted, h.by_reason[1], h.by_reason[2], h.by_reason[3],
                h.by_reason[4],
                accepted > 0
                    ? h.accepted_payback_sum / static_cast<double>(accepted)
                    : 0.0);
  }
  std::printf("\n-- csv --\n");
  std::printf("policy,dynamism,boundaries,considered,accepted,"
              "no_faster_spare,min_process_improvement,payback_threshold,"
              "min_app_improvement,swaps_applied,mean_accepted_payback\n");
  for (const Cell& cell : cells) {
    const Histogram& h = cell.h;
    const std::size_t accepted = h.by_reason[0];
    std::printf("%s,%g,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%.6g\n", cell.policy,
                cell.dynamism, h.boundaries, h.considered(), accepted,
                h.by_reason[1], h.by_reason[2], h.by_reason[3], h.by_reason[4],
                h.swaps_applied,
                accepted > 0
                    ? h.accepted_payback_sum / static_cast<double>(accepted)
                    : 0.0);
  }
  return 0;
}
