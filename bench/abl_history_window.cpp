// Ablation A2: performance-history window sweep.
//
// The paper (§4.1): more history damps reaction to transient load but can
// miss genuine swap opportunities.  We vary only the window on an otherwise
// greedy policy at two dynamism levels.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> windows{0.0, 30.0, 60.0, 120.0, 300.0, 900.0};
  const std::vector<double> dynamisms{0.1, 0.5};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title = "Ablation: history window (greedy thresholds, 100 MB state)";
  report.x_label = "history_window_s";
  report.x = windows;
  for (double d : dynamisms)
    report.series.push_back(
        {"dynamism_" + std::to_string(d).substr(0, 3), {}, {}});

  for (std::size_t di = 0; di < dynamisms.size(); ++di) {
    const bench::load::OnOffModel model(
        bench::load::OnOffParams::dynamism(dynamisms[di]));
    for (double window : windows) {
      auto pol = bench::swp::greedy_policy();
      pol.history_window_s = window;
      bench::strat::SwapStrategy strategy{pol};
      const auto stats = bench::core::run_trials(cfg, model, strategy, trials);
      report.series[di].y.push_back(stats.mean);
      report.series[di].adaptations.push_back(stats.mean_adaptations);
    }
  }
  bench::emit(report,
              "at mild dynamism instantaneous estimates win (history only "
              "delays reaction); at high dynamism windows comparable to the "
              "load sojourn are the worst (stale estimates drive bad swaps) "
              "while long windows damp swapping and recover");
  return 0;
}
