// Ablation A3: minimum-improvement threshold ("stiction") sweep.
//
// Varies the per-process improvement threshold on an otherwise greedy
// policy.  Small thresholds admit marginal swaps whose overhead is pure
// waste with large state; large thresholds decline real wins.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> thresholds{0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 2.0};
  const std::size_t trials = bench::trial_count();
  const bench::load::OnOffModel model(bench::load::OnOffParams::dynamism(0.15));

  bench::core::SeriesReport report;
  report.title =
      "Ablation: min process improvement threshold (100 MB state, dyn 0.15)";
  report.x_label = "min_process_improvement";
  report.x = thresholds;
  report.series.push_back({"makespan", {}, {}});
  report.series.push_back({"swap_count", {}, {}});

  for (double threshold : thresholds) {
    auto pol = bench::swp::greedy_policy();
    pol.min_process_improvement = threshold;
    bench::strat::SwapStrategy strategy{pol};
    const auto stats = bench::core::run_trials(cfg, model, strategy, trials);
    report.series[0].y.push_back(stats.mean);
    report.series[0].adaptations.push_back(stats.mean_adaptations);
    report.series[1].y.push_back(stats.mean_adaptations);
    report.series[1].adaptations.push_back(stats.mean_adaptations);
  }
  bench::emit(report,
              "swap counts fall as stiction rises; moderate stiction trims "
              "marginal swaps at little cost, while extreme thresholds stop "
              "adaptation and drift back toward the NONE baseline");
  return 0;
}
