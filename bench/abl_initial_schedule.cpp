// Ablation A7: how much does the paper's load-aware initial schedule
// ("the fastest performing processors at the time of application startup")
// actually buy — and does swapping erase the difference?
//
// Compares three pre-execution schedulers (effective-speed-aware, peak-only,
// fully blind) under NONE and under SWAP(greedy), across dynamism.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> xs{0.0, 0.05, 0.1, 0.2, 0.4, 0.8};
  const std::size_t trials = bench::trial_count();

  struct Variant {
    std::string name;
    bench::strat::InitialSchedule kind;
    bool swap;
  };
  const std::vector<Variant> variants{
      {"NONE/effective", bench::strat::InitialSchedule::kFastestEffective,
       false},
      {"NONE/peak", bench::strat::InitialSchedule::kFastestPeak, false},
      {"NONE/blind", bench::strat::InitialSchedule::kLoadBlind, false},
      {"SWAP/effective", bench::strat::InitialSchedule::kFastestEffective,
       true},
      {"SWAP/blind", bench::strat::InitialSchedule::kLoadBlind, true},
  };

  bench::core::SeriesReport report;
  report.title = "Ablation: initial schedule (4/32 active, 1 MB state)";
  report.x_label = "load_probability";
  report.x = xs;
  for (const Variant& v : variants) report.series.push_back({v.name, {}, {}});

  for (double x : xs) {
    const bench::load::OnOffModel model(
        bench::load::OnOffParams::dynamism(x));
    for (std::size_t i = 0; i < variants.size(); ++i) {
      auto c = cfg;
      c.initial_schedule = variants[i].kind;
      bench::strat::NoneStrategy none;
      bench::strat::SwapStrategy swap{bench::swp::greedy_policy()};
      bench::strat::Strategy& s =
          variants[i].swap ? static_cast<bench::strat::Strategy&>(swap)
                           : static_cast<bench::strat::Strategy&>(none);
      const auto stats = bench::core::run_trials(c, model, s, trials);
      report.series[i].y.push_back(stats.mean);
      report.series[i].adaptations.push_back(stats.mean_adaptations);
    }
  }
  bench::emit(report,
              "a blind initial schedule is catastrophic for NONE (it is "
              "stuck with slow/loaded hosts forever) but nearly free under "
              "SWAP, which migrates off the bad picks within a few "
              "iterations — adaptation subsumes scheduling care");
  return 0;
}
