// Ablation A1: payback-threshold sweep.
//
// Fixes everything else at the safe policy's settings and varies only the
// payback threshold, in the regime where risk matters (100 MB state,
// rising dynamism).  Shows the risk/benefit trade the paper's §4.1
// describes: tiny thresholds never swap (NONE-like), huge thresholds
// approach greedy thrashing.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> thresholds{0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 1e9};
  const std::vector<double> dynamisms{0.1, 0.4, 0.8};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title = "Ablation: payback threshold (300 MB state, 4/32 active)";
  report.x_label = "payback_threshold_iters";
  report.x = thresholds;
  for (double d : dynamisms)
    report.series.push_back(
        {"dynamism_" + std::to_string(d).substr(0, 3), {}, {}});

  const auto grid = bench::run_grid(
      thresholds.size(), dynamisms.size(),
      [&](std::size_t xi, std::size_t di) {
        const bench::load::OnOffModel model(
            bench::load::OnOffParams::dynamism(dynamisms[di]));
        auto pol = bench::swp::safe_policy();
        pol.payback_threshold_iters = thresholds[xi];
        pol.min_process_improvement = 0.0;  // isolate the payback knob
        bench::strat::SwapStrategy strategy{pol};
        return bench::core::run_trials(cfg, model, strategy, trials);
      });
  for (std::size_t xi = 0; xi < thresholds.size(); ++xi) {
    for (std::size_t di = 0; di < dynamisms.size(); ++di) {
      report.series[di].y.push_back(grid[xi][di].mean);
      report.series[di].adaptations.push_back(grid[xi][di].mean_adaptations);
    }
  }
  bench::emit(report,
              "at mild dynamism larger thresholds keep helping (every swap "
              "pays back); at high dynamism execution time is U-shaped: 0 "
              "never swaps, intermediate thresholds adapt profitably, very "
              "large thresholds admit swaps that never pay back");
  return 0;
}
