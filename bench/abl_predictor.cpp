// Ablation A5: which performance predictor should feed the greedy policy?
//
// Compares the paper's flat windows against EWMA, sliding-median and the
// NWS-style adaptive ensemble across dynamism, holding the policy's
// thresholds fixed (greedy).
#include "bench/bench_util.hpp"

#include "forecast/forecaster.hpp"
#include "strategy/estimator.hpp"

namespace fc = simsweep::forecast;

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/10.0 * bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> xs{0.05, 0.1, 0.2, 0.4, 0.8};
  const std::size_t trials = bench::trial_count();

  struct Entry {
    std::string name;
    std::shared_ptr<bench::strat::SpeedEstimator> estimator;  // null = window 0
  };
  std::vector<Entry> entries;
  entries.push_back({"instant", bench::strat::make_window_estimator(0.0)});
  entries.push_back({"mean_300s", bench::strat::make_window_estimator(300.0)});
  entries.push_back({"ewma_120s",
                     bench::strat::make_forecast_estimator(
                         [] { return fc::make_ewma(120.0); }, "ewma_120s")});
  entries.push_back({"median_5",
                     bench::strat::make_forecast_estimator(
                         [] { return fc::make_sliding_median(5); },
                         "median_5")});
  entries.push_back({"nws_adaptive",
                     bench::strat::make_forecast_estimator(
                         [] { return fc::make_default_ensemble(); },
                         "nws_adaptive")});

  bench::core::SeriesReport report;
  report.title = "Ablation: speed predictor under greedy (10 MB state)";
  report.x_label = "load_probability";
  report.x = xs;
  for (const Entry& e : entries) report.series.push_back({e.name, {}, {}});

  for (double x : xs) {
    const bench::load::OnOffModel model(
        bench::load::OnOffParams::dynamism(x));
    for (std::size_t i = 0; i < entries.size(); ++i) {
      bench::strat::SwapOptions options;
      options.estimator = entries[i].estimator;
      bench::strat::SwapStrategy strategy{bench::swp::greedy_policy(),
                                          options};
      const auto stats = bench::core::run_trials(cfg, model, strategy, trials);
      report.series[i].y.push_back(stats.mean);
      report.series[i].adaptations.push_back(stats.mean_adaptations);
    }
  }
  bench::emit(report,
              "instantaneous estimates win while load persists; damped "
              "predictors (EWMA, median, the adaptive ensemble) overtake "
              "them as the environment decorrelates, with the ensemble "
              "competitive across the sweep");
  return 0;
}
