// Ablation A4: how many processes may one decision point swap?
//
// The paper swaps "the slowest active processor(s) for the fastest inactive
// processor(s)" without bounding the count.  This sweep caps swaps per
// decision on the greedy policy.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/8, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/10.0 * bench::app::kMiB,
                                 /*spares=*/24);
  const std::vector<double> caps{1, 2, 4, 8};
  const std::size_t trials = bench::trial_count();
  const bench::load::OnOffModel model(bench::load::OnOffParams::dynamism(0.2));

  bench::core::SeriesReport report;
  report.title = "Ablation: max swaps per decision (8/32 active, 10 MB state)";
  report.x_label = "max_swaps_per_decision";
  report.x = caps;
  report.series.push_back({"makespan", {}, {}});
  report.series.push_back({"swap_count", {}, {}});

  for (double cap : caps) {
    auto pol = bench::swp::greedy_policy();
    pol.max_swaps_per_decision = static_cast<std::size_t>(cap);
    bench::strat::SwapStrategy strategy{pol};
    const auto stats = bench::core::run_trials(cfg, model, strategy, trials);
    report.series[0].y.push_back(stats.mean);
    report.series[0].adaptations.push_back(stats.mean_adaptations);
    report.series[1].y.push_back(stats.mean_adaptations);
    report.series[1].adaptations.push_back(stats.mean_adaptations);
  }
  bench::emit(report,
              "with 8 active processes, capping swaps at 1 per boundary "
              "reacts too slowly when several hosts load up at once; "
              "unbounded swapping recovers fastest");
  return 0;
}
