// Shared helpers for the figure-reproduction benches.
//
// Every bench binary regenerates one figure of the paper: it sweeps the
// figure's x axis, runs the relevant strategies for several seeds per
// point, and prints both an aligned table and a CSV block with the same
// series the paper plots.  Absolute seconds differ from the paper's (their
// platform constants are only partly specified); the *shape* — who wins,
// by what factor, where the crossovers fall — is the reproduction target.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/trial_runner.hpp"
#include "load/hyperexp.hpp"
#include "load/onoff.hpp"
#include "resilience/watchdog.hpp"
#include "swap/policy.hpp"

namespace bench {

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace swp = simsweep::swap;

/// The paper's standard platform: 32 workstations, 100-500 Mflop/s, one
/// shared 6 MB/s link, 0.75 s startup per process.
inline core::ExperimentConfig paper_config(std::size_t active,
                                           std::size_t iterations,
                                           double iter_minutes,
                                           double state_bytes,
                                           std::size_t spares) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(active, iterations,
                                                 iter_minutes);
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.app.state_bytes_per_process = state_bytes;
  cfg.spare_count = spares;
  cfg.seed = 1;
  return cfg;
}

/// Number of seeds averaged per sweep point.  Override with the
/// SIMSWEEP_TRIALS environment variable (benches stay fast in CI).
inline std::size_t trial_count() {
  if (const char* env = std::getenv("SIMSWEEP_TRIALS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 8;
}

struct NamedStrategy {
  std::string name;
  std::unique_ptr<strat::Strategy> strategy;
};

inline std::vector<NamedStrategy> technique_lineup() {
  std::vector<NamedStrategy> out;
  out.push_back({"NONE", std::make_unique<strat::NoneStrategy>()});
  out.push_back({"SWAP", std::make_unique<strat::SwapStrategy>(
                             swp::greedy_policy())});
  out.push_back({"DLB", std::make_unique<strat::DlbStrategy>()});
  out.push_back({"CR", std::make_unique<strat::CrStrategy>(
                           swp::greedy_policy())});
  return out;
}

inline std::vector<NamedStrategy> policy_lineup() {
  std::vector<NamedStrategy> out;
  out.push_back({"NONE", std::make_unique<strat::NoneStrategy>()});
  out.push_back({"greedy", std::make_unique<strat::SwapStrategy>(
                               swp::greedy_policy())});
  out.push_back({"safe", std::make_unique<strat::SwapStrategy>(
                             swp::safe_policy())});
  out.push_back({"friendly", std::make_unique<strat::SwapStrategy>(
                                 swp::friendly_policy())});
  return out;
}

/// Runs every cell of a (sweep-point × strategy) grid on the shared worker
/// pool (sized by SIMSWEEP_JOBS / hardware concurrency) and stores each
/// cell's TrialStats at a deterministic index, so parallel and serial
/// execution produce identical reports.  `cell(xi, si)` must be safe to
/// call concurrently for distinct cells; everything built on run_trials
/// with per-cell models and configs is.
inline std::vector<std::vector<core::TrialStats>> run_grid(
    std::size_t x_count, std::size_t strategy_count,
    const std::function<core::TrialStats(std::size_t, std::size_t)>& cell) {
  std::vector<std::vector<core::TrialStats>> grid(
      x_count, std::vector<core::TrialStats>(strategy_count));
  // SIMSWEEP_TRIAL_TIMEOUT (wall-clock seconds per grid cell) arms a
  // watchdog for the whole bench: a wedged cell turns into a prompt
  // sim::RunCancelled failure with the cell identified, instead of a CI
  // job that dies on the harness timeout with no clue which cell hung.
  std::unique_ptr<simsweep::resilience::Watchdog> watchdog;
  if (const char* env = std::getenv("SIMSWEEP_TRIAL_TIMEOUT")) {
    const double timeout_s = std::atof(env);
    if (timeout_s > 0.0)
      watchdog = std::make_unique<simsweep::resilience::Watchdog>(timeout_s);
  }
  core::TrialRunner& runner = core::TrialRunner::shared();
  if (watchdog) runner.set_trial_guard(watchdog.get());
  try {
    runner.parallel_for(
        x_count * strategy_count, [&](std::size_t task) {
          const std::size_t xi = task / strategy_count;
          const std::size_t si = task % strategy_count;
          grid[xi][si] = cell(xi, si);
        });
  } catch (...) {
    if (watchdog) runner.set_trial_guard(nullptr);
    throw;
  }
  if (watchdog) runner.set_trial_guard(nullptr);
  return grid;
}

/// Aborts the bench when any grid cell recorded a stalled (deadlocked) run;
/// a stall means the strategy wedged, and its "makespan" would silently
/// pollute the figure as an ordinary slow run.
inline void require_no_stalls(const std::vector<std::vector<core::TrialStats>>& grid,
                              const std::string& bench_name) {
  for (std::size_t xi = 0; xi < grid.size(); ++xi) {
    for (std::size_t si = 0; si < grid[xi].size(); ++si) {
      if (grid[xi][si].stalled > 0) {
        std::fprintf(stderr,
                     "%s: %zu stalled run(s) at point %zu, strategy %zu — "
                     "a strategy deadlocked instead of timing out\n",
                     bench_name.c_str(), grid[xi][si].stalled, xi, si);
        std::abort();
      }
    }
  }
}

struct SweepOptions {
  /// Abort (via require_no_stalls) when any run stalls.
  bool forbid_stalls = false;
};

/// Sweeps ON/OFF dynamism (the paper's "load probability" axis) for a fixed
/// configuration and a set of strategies.  Sweep points × strategies are
/// dispatched to the shared trial pool; the report is independent of the
/// execution order.
inline core::SeriesReport sweep_dynamism(const core::ExperimentConfig& base,
                                         const std::vector<double>& xs,
                                         std::vector<NamedStrategy> lineup,
                                         std::string title,
                                         SweepOptions options = {}) {
  core::SeriesReport report;
  report.title = std::move(title);
  report.x_label = "load_probability";
  report.x = xs;
  const std::size_t trials = trial_count();
  for (auto& entry : lineup)
    report.series.push_back({entry.name, {}, {}});
  const auto grid =
      run_grid(xs.size(), lineup.size(), [&](std::size_t xi, std::size_t si) {
        const load::OnOffModel model(load::OnOffParams::dynamism(xs[xi]));
        return core::run_trials(base, model, *lineup[si].strategy, trials);
      });
  if (options.forbid_stalls) require_no_stalls(grid, report.title);
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    for (std::size_t si = 0; si < lineup.size(); ++si) {
      report.series[si].y.push_back(grid[xi][si].mean);
      report.series[si].adaptations.push_back(grid[xi][si].mean_adaptations);
    }
  }
  return report;
}

/// Prints the standard bench output: expectation header, table, CSV, and a
/// one-object JSON block for machine consumption (perf trajectories, plot
/// scripts).
inline void emit(const core::SeriesReport& report,
                 const std::string& expectation) {
  std::cout << "==== " << report.title << " ====\n";
  std::cout << "# paper expectation: " << expectation << "\n";
  report.print_table(std::cout);
  std::cout << "\n-- csv --\n";
  report.print_csv(std::cout);
  std::cout << "\n-- json --\n";
  report.print_json(std::cout);
  std::cout << "\n" << std::endl;
}

}  // namespace bench
