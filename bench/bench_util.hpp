// Shared helpers for the microbenchmarks.
//
// The figure-reproduction benches that used to live here are now
// declarative scenarios (scenarios/*.json) run by `simsweep bench <name>`;
// only the Google-Benchmark microbenches remain as standalone binaries.
#pragma once

#include <cstddef>

#include "core/experiment.hpp"

namespace bench {

namespace core = simsweep::core;
namespace app = simsweep::app;

/// The paper's standard platform: 32 workstations, 100-500 Mflop/s, one
/// shared 6 MB/s link, 0.75 s startup per process.
inline core::ExperimentConfig paper_config(std::size_t active,
                                           std::size_t iterations,
                                           double iter_minutes,
                                           double state_bytes,
                                           std::size_t spares) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(active, iterations,
                                                 iter_minutes);
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.app.state_bytes_per_process = state_bytes;
  cfg.spare_count = spares;
  cfg.seed = 1;
  return cfg;
}

}  // namespace bench
