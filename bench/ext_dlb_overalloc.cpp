// Extension experiment: DLB combined with over-allocation (paper §2: "a
// DLB implementation could further improve performance through the use of
// an over-allocation mechanism similar to the one used in our approach").
//
// Compares plain DLB (rebalances, cannot leave its processors), plain SWAP
// (moves processors, fixed equal partition) and the hybrid (moves
// processors *and* rebalances) across ON/OFF dynamism.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> xs{0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title = "Extension: DLB with over-allocation (4/32 active, 1 MB)";
  report.x_label = "load_probability";
  report.x = xs;

  std::vector<bench::NamedStrategy> lineup;
  lineup.push_back({"NONE", std::make_unique<bench::strat::NoneStrategy>()});
  lineup.push_back({"DLB", std::make_unique<bench::strat::DlbStrategy>()});
  lineup.push_back({"SWAP", std::make_unique<bench::strat::SwapStrategy>(
                                bench::swp::greedy_policy())});
  lineup.push_back(
      {"DLB+SWAP", std::make_unique<bench::strat::DlbSwapStrategy>(
                       bench::swp::greedy_policy())});
  for (const auto& e : lineup) report.series.push_back({e.name, {}, {}});

  for (double x : xs) {
    const bench::load::OnOffModel model(
        bench::load::OnOffParams::dynamism(x));
    for (std::size_t i = 0; i < lineup.size(); ++i) {
      const auto stats = bench::core::run_trials(cfg, model,
                                                 *lineup[i].strategy, trials);
      report.series[i].y.push_back(stats.mean);
      report.series[i].adaptations.push_back(stats.mean_adaptations);
    }
  }
  bench::emit(report,
              "the hybrid dominates plain DLB everywhere (it can abandon a "
              "loaded processor) and edges out plain SWAP at moderate "
              "dynamism (it also balances residual heterogeneity)");
  return 0;
}
