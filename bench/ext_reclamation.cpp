// Extension experiment: desktop-grid owner reclamation (paper §2's proposed
// combination of swapping with Condor-style cycle stealing — future work in
// the paper, implemented here).
//
// Hosts alternate between available and reclaimed (owner at the console; the
// guest process is suspended but its memory stays reachable).  Compares:
//   NONE            — stalls through every outage on its hosts,
//   SWAP            — boundary-only swapping: escapes a reclaimed host only
//                     after the stalled iteration eventually finishes,
//   SWAP+guard      — the eviction watchdog aborts the stalled iteration and
//                     force-migrates the suspended process,
//   CR              — boundary-only checkpoint/restart (same limitation as
//                     plain SWAP).
#include "bench/bench_util.hpp"

#include "load/reclamation.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/40,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/10.0 * bench::app::kMiB,
                                 /*spares=*/28);
  cfg.horizon_s = 10.0 * 24.0 * 3600.0;
  // x axis: mean reclaimed stretch (minutes); availability stretch fixed at
  // one hour.
  const std::vector<double> reclaim_minutes{2, 5, 10, 20, 40, 80};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title =
      "Extension: owner reclamation (4/32 active, 1 h mean availability)";
  report.x_label = "mean_reclaimed_min";
  report.x = reclaim_minutes;

  struct Entry {
    std::string name;
    std::unique_ptr<bench::strat::Strategy> strategy;
  };
  std::vector<Entry> entries;
  entries.push_back({"NONE", std::make_unique<bench::strat::NoneStrategy>()});
  entries.push_back({"SWAP", std::make_unique<bench::strat::SwapStrategy>(
                                 bench::swp::greedy_policy())});
  bench::strat::SwapOptions guard;
  guard.eviction_guard = true;
  guard.stall_factor = 2.0;
  entries.push_back({"SWAP+guard",
                     std::make_unique<bench::strat::SwapStrategy>(
                         bench::swp::greedy_policy(), guard)});
  entries.push_back({"CR", std::make_unique<bench::strat::CrStrategy>(
                               bench::swp::greedy_policy())});
  for (const Entry& e : entries) report.series.push_back({e.name, {}, {}});

  for (double minutes : reclaim_minutes) {
    const bench::load::ReclamationModel model(
        nullptr, simsweep::load::ReclamationParams{
                     .mean_available_s = 3600.0,
                     .mean_reclaimed_s = minutes * 60.0,
                 });
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto stats = bench::core::run_trials(cfg, model,
                                                 *entries[i].strategy, trials);
      report.series[i].y.push_back(stats.mean);
      report.series[i].adaptations.push_back(stats.mean_adaptations);
    }
  }
  bench::emit(report,
              "all techniques suffer as reclamations lengthen; the eviction "
              "guard caps the damage near one aborted iteration per outage, "
              "with the gap over boundary-only SWAP growing with the "
              "reclamation length");
  return 0;
}
