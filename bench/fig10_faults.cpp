// Figure 10 (extension): techniques under fault injection, sweeping the
// per-host mean time between failures.  4 active of 32 total, 8 spares,
// 1 MB state, moderate ON/OFF dynamism.  The x axis runs from "no faults"
// (MTBF 0 = disabled, bitwise identical to the fault-free figures) down to
// hosts crashing every few hours; a small transient transfer/checkpoint
// failure probability rides along at every faulty point.
//
// Unlike the paper figures, runs here are *expected* to end badly sometimes
// (spare-pool exhaustion is a diagnostic result, not a bug), so this bench
// emits two reports — mean makespan, and the completion rate per technique
// with mean crash recoveries alongside — and does not forbid stalls.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/bench::app::kMiB,
                                 /*spares=*/8);
  // MTBF per host, in hours; 0 disables fault injection entirely.
  const std::vector<double> mtbf_hours{0.0, 48.0, 24.0, 12.0, 6.0, 3.0};
  const std::size_t trials = bench::trial_count();
  const bench::load::OnOffModel model(
      bench::load::OnOffParams::dynamism(0.2));

  auto lineup = bench::technique_lineup();
  const auto grid = bench::run_grid(
      mtbf_hours.size(), lineup.size(), [&](std::size_t xi, std::size_t si) {
        auto point = cfg;
        point.faults.host_mtbf_s = mtbf_hours[xi] * 3600.0;
        if (mtbf_hours[xi] > 0.0) {
          point.faults.swap_fail_prob = 0.05;
          point.faults.checkpoint_fail_prob = 0.05;
        }
        return bench::core::run_trials(point, model, *lineup[si].strategy,
                                       trials);
      });

  bench::core::SeriesReport makespan;
  makespan.title =
      "Fig 10: techniques under host crashes (4/32 active, 8 spares, 1 MB)";
  makespan.x_label = "host_mtbf_hours";
  makespan.x = mtbf_hours;
  bench::core::SeriesReport completion;
  completion.title = "Fig 10b: completion rate and crash recoveries";
  completion.x_label = "host_mtbf_hours";
  completion.x = mtbf_hours;
  for (auto& entry : lineup) {
    makespan.series.push_back({entry.name, {}, {}});
    completion.series.push_back({entry.name, {}, {}});
  }
  for (std::size_t xi = 0; xi < mtbf_hours.size(); ++xi) {
    for (std::size_t si = 0; si < lineup.size(); ++si) {
      const auto& cell = grid[xi][si];
      makespan.series[si].y.push_back(cell.mean);
      makespan.series[si].adaptations.push_back(cell.mean_adaptations);
      completion.series[si].y.push_back(
          static_cast<double>(cell.trials - cell.unfinished) /
          static_cast<double>(cell.trials));
      completion.series[si].adaptations.push_back(cell.mean_recoveries);
    }
  }
  bench::emit(makespan,
              "SWAP and DLB absorb crashes by drafting spares at small cost; "
              "CR pays rollback time per crash; NONE recomputes from scratch "
              "and degrades worst as MTBF shrinks");
  bench::emit(completion,
              "completion rate stays near 1.0 while spares last; the "
              "adaptations column here counts mean crash recoveries per run");
  return 0;
}
