// Figure 1: the payback-distance concept.
//
// Reproduces the paper's §5 worked example: iteration time and swap time
// are both 10 s.  We emit the application-progress-vs-time trajectories for
// "no swap", "swap then 2x performance" and "swap then 4x performance",
// plus the payback distances (2 and 1 1/3 iterations respectively), and a
// cautionary series where the predicted improvement does not materialize.
#include <cmath>
#include <cstdio>

#include "swap/payback.hpp"

namespace swp = simsweep::swap;

namespace {

/// Progress (iterations completed, fractional) at time t for an execution
/// that pauses `swap_time` at t=0 (first) and then iterates every
/// `iter_time` seconds.
double progress(double t, double swap_time, double iter_time) {
  if (t <= swap_time) return 0.0;
  return (t - swap_time) / iter_time;
}

}  // namespace

int main() {
  const double iter = 10.0;  // seconds per iteration before the swap
  const double swap = 10.0;  // swap pause

  std::puts("==== Fig 1: payback distance (progress vs time) ====");
  std::puts("# paper expectation: after a swap pause, the faster rate");
  std::puts("# overtakes the no-swap trajectory after 'payback' iterations;");
  std::puts("# 2x perf -> payback 2, 4x perf -> payback 4/3");

  const double payback2 = swp::payback_distance(swap, iter, 1.0, 2.0);
  const double payback4 = swp::payback_distance(swap, iter, 1.0, 4.0);
  const double payback_drop = swp::payback_distance(swap, iter, 1.0, 0.8);
  std::printf("payback(2x) = %.6f iterations (paper: 2)\n", payback2);
  std::printf("payback(4x) = %.6f iterations (paper: 1 1/3)\n", payback4);
  std::printf("payback(0.8x) = %s (swap can only hurt: never pays back, "
              "no finite threshold accepts it)\n\n",
              std::isinf(payback_drop) ? "inf" : "FINITE?!");

  std::puts("-- csv --");
  std::puts("time,no_swap,swap_2x,swap_4x,swap_regression_0.8x");
  for (double t = 0.0; t <= 60.0; t += 2.5) {
    std::printf("%.1f,%.4f,%.4f,%.4f,%.4f\n", t, t / iter,
                progress(t, swap, iter / 2.0), progress(t, swap, iter / 4.0),
                progress(t, swap, iter / 0.8));
  }

  // Crossover check: the 2x trajectory must meet the no-swap line exactly
  // payback2 iterations (at the new rate) after the swap completes.
  const double cross_t = swap + payback2 * (iter / 2.0);
  std::printf("\ncrossover(2x) at t=%.2f s: no_swap=%.4f swap=%.4f\n", cross_t,
              cross_t / iter, progress(cross_t, swap, iter / 2.0));
  return 0;
}
