// Figure 2: an example ON/OFF CPU load trace (p = 0.3, q = 0.08).
//
// Emits the competing-process count over time for one host driven by the
// paper's ON/OFF source parameters, plus the empirical ON fraction against
// the chain's stationary value.
#include <cstdio>

#include "load/onoff.hpp"
#include "platform/host.hpp"
#include "simcore/simulator.hpp"

namespace sim = simsweep::sim;
namespace load = simsweep::load;
namespace pf = simsweep::platform;

int main() {
  const load::OnOffParams params{.p = 0.3, .q = 0.08, .step_s = 10.0,
                                 .stationary_start = false};
  const load::OnOffModel model(params);
  const double horizon = 2000.0;

  sim::Simulator simulator;
  pf::Host host(simulator, 0, 300.0e6, "traced");
  auto source = model.make_source(sim::Rng(2003));
  source->start(simulator, host);
  simulator.run_until(horizon);

  std::puts("==== Fig 2: ON/OFF CPU load example (p=0.3, q=0.08) ====");
  std::puts("# paper expectation: rectangular 0/1 load pulses; ON sojourns");
  std::puts("# (mean step/q = 125 s) much longer than OFF (mean 33 s)");

  double on_time = 0.0;
  double last_t = 0.0;
  double last_v = 0.0;
  std::puts("-- csv --");
  std::puts("time,cpu_load");
  for (const sim::Sample& s : host.load_history()) {
    if (s.time > horizon) break;
    on_time += last_v * (s.time - last_t);
    // Emit step edges so the plot is rectangular.
    std::printf("%.1f,%.0f\n", s.time, last_v);
    std::printf("%.1f,%.0f\n", s.time, s.value);
    last_t = s.time;
    last_v = s.value;
  }
  on_time += last_v * (horizon - last_t);
  std::printf("%.1f,%.0f\n", horizon, last_v);

  const double stationary = model.stationary_on_fraction();
  std::printf("\nempirical ON fraction %.3f vs stationary %.3f\n",
              on_time / horizon, stationary);
  return 0;
}
