// Figure 3: an example hyperexponential CPU load trace.
//
// Competing processes arrive with uniform interarrivals and live for
// degenerate-hyperexponential times; unlike the ON/OFF model several
// competitors can overlap, so the load takes values above 1.
#include <algorithm>
#include <cstdio>

#include "load/hyperexp.hpp"
#include "platform/host.hpp"
#include "simcore/simulator.hpp"

namespace sim = simsweep::sim;
namespace load = simsweep::load;
namespace pf = simsweep::platform;

int main() {
  load::HyperExpParams params;
  params.mean_lifetime_s = 150.0;
  params.mean_interarrival_s = 120.0;
  params.long_prob = 0.2;  // heavy tail: CV^2 = 9
  const load::HyperExpModel model(params);
  const double horizon = 2000.0;

  sim::Simulator simulator;
  pf::Host host(simulator, 0, 300.0e6, "traced");
  auto source = model.make_source(sim::Rng(42));
  source->start(simulator, host);
  simulator.run_until(horizon);

  std::puts("==== Fig 3: hyperexponential CPU load example ====");
  std::printf("# offered load %.2f, lifetime CV^2 %.1f\n",
              model.offered_load(), model.lifetime_cv2());
  std::puts("# paper expectation: bursty integer load with occasional");
  std::puts("# overlapping long-lived competitors (values > 1)");

  int max_load = 0;
  double area = 0.0, last_t = 0.0, last_v = 0.0;
  std::puts("-- csv --");
  std::puts("time,cpu_load");
  for (const sim::Sample& s : host.load_history()) {
    if (s.time > horizon) break;
    area += last_v * (s.time - last_t);
    std::printf("%.1f,%.0f\n", s.time, last_v);
    std::printf("%.1f,%.0f\n", s.time, s.value);
    last_t = s.time;
    last_v = s.value;
    max_load = std::max(max_load, static_cast<int>(s.value));
  }
  area += last_v * (horizon - last_t);
  std::printf("%.1f,%.0f\n", horizon, last_v);
  std::printf("\nmean load %.3f (offered %.3f), peak simultaneous %d\n",
              area / horizon, model.offered_load(), max_load);
  return 0;
}
