// Figure 4: execution time of NONE / SWAP(greedy) / DLB / CR across the
// full range of ON/OFF environment dynamism.
// Paper parameters: 4 active of 32 total processors, 1 MB process state.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> xs{0.0,  0.05, 0.1, 0.15, 0.2, 0.3,
                               0.4,  0.5,  0.6, 0.8,  1.0};
  const auto report = bench::sweep_dynamism(
      cfg, xs, bench::technique_lineup(),
      "Fig 4: techniques vs environment dynamism (4/32 active, 1 MB state)");
  bench::emit(report,
              "little difference when quiescent; SWAP/DLB/CR up to ~40% "
              "better than NONE at moderate dynamism; convergence again "
              "when highly dynamic");
  return 0;
}
