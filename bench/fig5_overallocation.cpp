// Figure 5: execution time across a range of over-allocation.
// Paper parameters: 8 active processes, load probability 0.2, 1 MB state.
// Over-allocation x% means x/100 * 8 spare processors.
#include "bench/bench_util.hpp"

int main() {
  const std::vector<double> overalloc_pct{0, 25, 50, 75, 100, 150, 200, 300};
  const bench::load::OnOffModel model(
      bench::load::OnOffParams::dynamism(0.2));
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title =
      "Fig 5: techniques vs over-allocation (8 active, load prob 0.2, 1 MB)";
  report.x_label = "overallocation_pct";
  report.x = overalloc_pct;
  auto lineup = bench::technique_lineup();
  for (auto& entry : lineup) report.series.push_back({entry.name, {}, {}});

  const auto grid = bench::run_grid(
      overalloc_pct.size(), lineup.size(),
      [&](std::size_t xi, std::size_t si) {
        const auto spares =
            static_cast<std::size_t>(8.0 * overalloc_pct[xi] / 100.0 + 0.5);
        auto cfg = bench::paper_config(/*active=*/8, /*iterations=*/60,
                                       /*iter_minutes=*/2.0,
                                       /*state_bytes=*/bench::app::kMiB,
                                       spares);
        return bench::core::run_trials(cfg, model, *lineup[si].strategy,
                                       trials);
      });
  for (std::size_t xi = 0; xi < overalloc_pct.size(); ++xi) {
    for (std::size_t si = 0; si < lineup.size(); ++si) {
      report.series[si].y.push_back(grid[xi][si].mean);
      report.series[si].adaptations.push_back(grid[xi][si].mean_adaptations);
    }
  }
  bench::emit(report,
              "SWAP and CR improve as spares grow (substantial benefit needs "
              "~100% over-allocation) and roughly double DLB's gain at high "
              "over-allocation; NONE and DLB do not use spares");
  return 0;
}
