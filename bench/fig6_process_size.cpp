// Figure 6: effect of process-state size on SWAP and CR.
// Paper parameters: two process sizes, 1 MB and 1 GB; NONE for reference.
// With 1 GB of state the swap time (~3 min over the 6 MB/s link) exceeds
// the ~50 s iteration time and swapping turns harmful.
#include "bench/bench_util.hpp"

int main() {
  const std::vector<double> xs{0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title = "Fig 6: techniques vs dynamism for 1 MB and 1 GB state "
                 "(4/32 active, ~50 s iterations)";
  report.x_label = "load_probability";
  report.x = xs;

  struct Variant {
    std::string name;
    double state_bytes;
    std::unique_ptr<bench::strat::Strategy> strategy;
  };
  std::vector<Variant> variants;
  variants.push_back({"NONE", bench::app::kMiB,
                      std::make_unique<bench::strat::NoneStrategy>()});
  variants.push_back({"SWAP_1MB", bench::app::kMiB,
                      std::make_unique<bench::strat::SwapStrategy>(
                          bench::swp::greedy_policy())});
  variants.push_back({"CR_1MB", bench::app::kMiB,
                      std::make_unique<bench::strat::CrStrategy>(
                          bench::swp::greedy_policy())});
  variants.push_back({"SWAP_1GB", bench::app::kGiB,
                      std::make_unique<bench::strat::SwapStrategy>(
                          bench::swp::greedy_policy())});
  variants.push_back({"CR_1GB", bench::app::kGiB,
                      std::make_unique<bench::strat::CrStrategy>(
                          bench::swp::greedy_policy())});
  for (auto& v : variants) report.series.push_back({v.name, {}, {}});

  const auto grid = bench::run_grid(
      xs.size(), variants.size(), [&](std::size_t xi, std::size_t si) {
        const bench::load::OnOffModel model(
            bench::load::OnOffParams::dynamism(xs[xi]));
        // ~50 s iterations: the regime the paper quotes for this figure.
        auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                       /*iter_minutes=*/50.0 / 60.0,
                                       variants[si].state_bytes,
                                       /*spares=*/28);
        return bench::core::run_trials(cfg, model, *variants[si].strategy,
                                       trials);
      });
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    for (std::size_t si = 0; si < variants.size(); ++si) {
      report.series[si].y.push_back(grid[xi][si].mean);
      report.series[si].adaptations.push_back(grid[xi][si].mean_adaptations);
    }
  }
  bench::emit(report,
              "SWAP/CR beneficial at 1 MB state but harmful at 1 GB, where "
              "the transfer takes longer than an iteration (NONE-relative "
              "slowdown instead of speedup)");
  return 0;
}
