// Figure 7: the three swapping policies across environment dynamism.
// Paper parameters: 4 active of 32 total, 100 MB process state.
#include "bench/bench_util.hpp"

int main() {
  // 4-minute iterations (the paper simulates 1-5 minutes): the 100 MB swap
  // (~17 s) must be small relative to an iteration for the moderate-dynamism
  // benefit region the figure shows.
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/4.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  const std::vector<double> xs{0.0,  0.05, 0.1, 0.15, 0.2, 0.3,
                               0.4,  0.5,  0.6, 0.8,  1.0};
  // A stalled (deadlocked) policy run must abort the bench rather than be
  // reported as an ordinarily slow curve.
  const auto report = bench::sweep_dynamism(
      cfg, xs, bench::policy_lineup(),
      "Fig 7: swapping policies vs dynamism (4/32 active, 100 MB state)",
      {.forbid_stalls = true});
  bench::emit(report,
              "greedy gives the largest boost (max ~40% over NONE) at "
              "moderate dynamism; friendly nearly keeps pace then degrades "
              "when chaotic; safe gains less but beats greedy in the most "
              "chaotic environments");
  return 0;
}
