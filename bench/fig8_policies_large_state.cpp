// Figure 8: the three swapping policies when process state is large (1 GB).
// Paper parameters: 2 active of 32 total processors; the swap time is about
// twice the iteration time, so only the risk-averse safe policy avoids
// thrashing.
#include "bench/bench_util.hpp"

int main() {
  // 1 GiB over 6 MB/s is ~179 s; ~90 s iterations give the paper's 2:1
  // swap-time-to-iteration-time ratio.
  auto cfg = bench::paper_config(/*active=*/2, /*iterations=*/60,
                                 /*iter_minutes=*/1.5,
                                 /*state_bytes=*/bench::app::kGiB,
                                 /*spares=*/30);
  const std::vector<double> xs{0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0};
  const auto report = bench::sweep_dynamism(
      cfg, xs, bench::policy_lineup(),
      "Fig 8: policies with 1 GB state (2/32 active, swap ~2x iteration)");
  bench::emit(report,
              "greedy and friendly spend their time chasing unobtainable "
              "performance (swap-time >> payback) and end up worse than "
              "NONE; only safe stays near the NONE baseline");
  return 0;
}
