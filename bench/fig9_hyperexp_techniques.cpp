// Figure 9: techniques under the hyperexponential load model, sweeping the
// mean competing-process lifetime (the paper's dynamism axis for this
// model).  4 active of 32 total, 1 MB state.
#include "bench/bench_util.hpp"

int main() {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/2.0,
                                 /*state_bytes=*/bench::app::kMiB,
                                 /*spares=*/28);
  // Short mean lifetimes = rapidly changing load; long = persistent load.
  const std::vector<double> lifetimes{30.0,   60.0,   120.0,  300.0,
                                      600.0,  1200.0, 2400.0, 4800.0};
  const std::size_t trials = bench::trial_count();

  bench::core::SeriesReport report;
  report.title =
      "Fig 9: techniques under hyperexponential load (4/32 active, 1 MB)";
  report.x_label = "mean_process_lifetime_s";
  report.x = lifetimes;
  auto lineup = bench::technique_lineup();
  for (auto& entry : lineup) report.series.push_back({entry.name, {}, {}});

  const auto grid = bench::run_grid(
      lifetimes.size(), lineup.size(), [&](std::size_t xi, std::size_t si) {
        bench::load::HyperExpParams params;
        params.mean_lifetime_s = lifetimes[xi];
        params.long_prob = 0.2;
        // Hold the offered load at 0.5 competitors per host so the axis
        // varies persistence, not the amount of load.
        params.mean_interarrival_s = 2.0 * lifetimes[xi];
        const bench::load::HyperExpModel model(params);
        return bench::core::run_trials(cfg, model, *lineup[si].strategy,
                                       trials);
      });
  for (std::size_t xi = 0; xi < lifetimes.size(); ++xi) {
    for (std::size_t si = 0; si < lineup.size(); ++si) {
      report.series[si].y.push_back(grid[xi][si].mean);
      report.series[si].adaptations.push_back(grid[xi][si].mean_adaptations);
    }
  }
  bench::emit(report,
              "swapping remains viable under heavy-tailed lifetimes; the "
              "larger share of long-running competitors widens the dynamism "
              "range where SWAP/DLB/CR beat NONE");
  return 0;
}
