// Microbenchmarks (google-benchmark) for the simulation substrate: event
// queue throughput, host re-planning, link re-sharing, full small runs.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "load/onoff.hpp"
#include "net/shared_link.hpp"
#include "platform/host.hpp"
#include "simcore/simulator.hpp"
#include "swap/policy.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace net = simsweep::net;
namespace core = simsweep::core;
namespace app = simsweep::app;

static void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (std::size_t i = 0; i < n; ++i)
      (void)s.after(static_cast<double>(i % 97), [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_fired());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1000)->Arg(100000);

static void BM_EventQueueSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::size_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) (void)s.after(1.0, tick);
    };
    (void)s.after(1.0, tick);
    s.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(BM_EventQueueSelfScheduling);

static void BM_HostReplanUnderLoadChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    pf::Host h(s, 0, 1.0e8, "bench");
    auto task = h.start_compute(1.0e12, [] {});
    for (int i = 1; i <= 5000; ++i)
      (void)s.at(static_cast<double>(i), [&h, i] {
        h.set_external_load(i % 3);
      });
    s.run_until(5001.0);
    benchmark::DoNotOptimize(task->remaining_work());
  }
  state.SetItemsProcessed(5000 * state.iterations());
}
BENCHMARK(BM_HostReplanUnderLoadChurn);

static void BM_LinkReshare(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    net::SharedLinkNetwork n(s, pf::LinkSpec{1e-4, 6.0e6});
    std::size_t done = 0;
    std::vector<std::shared_ptr<net::Flow>> live;
    for (std::size_t i = 0; i < flows; ++i)
      live.push_back(n.start_transfer(1.0e6 + static_cast<double>(i),
                                      [&done] { ++done; }));
    s.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) *
                          state.iterations());
}
BENCHMARK(BM_LinkReshare)->Arg(8)->Arg(64);

static void BM_FullSwapRun(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 30, 2.0);
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 28;
  const simsweep::load::OnOffModel model(
      simsweep::load::OnOffParams::dynamism(0.2));
  simsweep::strategy::SwapStrategy strategy{simsweep::swap::greedy_policy()};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto r = core::run_single(cfg, model, strategy);
    benchmark::DoNotOptimize(r.makespan_s);
  }
}
BENCHMARK(BM_FullSwapRun);

BENCHMARK_MAIN();
