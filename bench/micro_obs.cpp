// Observability overhead microbenchmark (google-benchmark): the same
// fig7-shaped SWAP run with collectors off, with the metrics registry
// attached, and with metrics + timeline attached.  The null-pointer-guard
// design promises zero extra work when off and a small constant cost when
// on (target: <3% wall-clock on this workload); compare the three series'
// per-iteration times to check both.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench/bench_util.hpp"
#include "load/onoff.hpp"
#include "swap/policy.hpp"

namespace {

simsweep::core::ExperimentConfig obs_config(bool metrics, bool timeline) {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/4.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  cfg.obs.metrics = metrics;
  cfg.obs.timeline = timeline;
  return cfg;
}

void run_observed(benchmark::State& state, bool metrics, bool timeline) {
  auto cfg = obs_config(metrics, timeline);
  const simsweep::load::OnOffModel model(
      simsweep::load::OnOffParams::dynamism(0.3));
  simsweep::strategy::SwapStrategy strategy{simsweep::swap::greedy_policy()};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto r = simsweep::core::run_single(cfg, model, strategy);
    benchmark::DoNotOptimize(r.makespan_s);
    // Keep the collectors alive through the measurement so their teardown
    // cost is charged to the observed configurations, not elided.
    benchmark::DoNotOptimize(r.metrics.get());
    benchmark::DoNotOptimize(r.timeline.get());
  }
}

void BM_ObsOff(benchmark::State& state) {
  run_observed(state, /*metrics=*/false, /*timeline=*/false);
}
BENCHMARK(BM_ObsOff);

void BM_ObsMetrics(benchmark::State& state) {
  run_observed(state, /*metrics=*/true, /*timeline=*/false);
}
BENCHMARK(BM_ObsMetrics);

void BM_ObsMetricsAndTimeline(benchmark::State& state) {
  run_observed(state, /*metrics=*/true, /*timeline=*/true);
}
BENCHMARK(BM_ObsMetricsAndTimeline);

}  // namespace

BENCHMARK_MAIN();
