// Observability overhead microbenchmark (google-benchmark): the same
// fig7-shaped SWAP run with collectors off, with the metrics registry
// attached, and with metrics + timeline attached.  The null-pointer-guard
// design promises zero extra work when off and a small constant cost when
// on (target: <3% wall-clock on this workload); compare the three series'
// per-iteration times to check both.
//
// The status-heartbeat series does the same for live sweep telemetry: the
// disabled path is one null-pointer check per cell event, an enabled board
// with a long heartbeat pays only a mutex + counter update per event, and
// the forced-publish path bounds the cost of one atomic snapshot write.
// Cell events fire once per cell (seconds of simulation), so even the
// publish cost is noise at sweep granularity — these benches exist to keep
// it that way.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "bench/bench_util.hpp"
#include "load/onoff.hpp"
#include "obs/status.hpp"
#include "swap/policy.hpp"

namespace {

simsweep::core::ExperimentConfig obs_config(bool metrics, bool timeline) {
  auto cfg = bench::paper_config(/*active=*/4, /*iterations=*/60,
                                 /*iter_minutes=*/4.0,
                                 /*state_bytes=*/100.0 * bench::app::kMiB,
                                 /*spares=*/28);
  cfg.obs.metrics = metrics;
  cfg.obs.timeline = timeline;
  return cfg;
}

void run_observed(benchmark::State& state, bool metrics, bool timeline) {
  auto cfg = obs_config(metrics, timeline);
  const simsweep::load::OnOffModel model(
      simsweep::load::OnOffParams::dynamism(0.3));
  simsweep::strategy::SwapStrategy strategy{simsweep::swap::greedy_policy()};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto r = simsweep::core::run_single(cfg, model, strategy);
    benchmark::DoNotOptimize(r.makespan_s);
    // Keep the collectors alive through the measurement so their teardown
    // cost is charged to the observed configurations, not elided.
    benchmark::DoNotOptimize(r.metrics.get());
    benchmark::DoNotOptimize(r.timeline.get());
  }
}

void BM_ObsOff(benchmark::State& state) {
  run_observed(state, /*metrics=*/false, /*timeline=*/false);
}
BENCHMARK(BM_ObsOff);

void BM_ObsMetrics(benchmark::State& state) {
  run_observed(state, /*metrics=*/true, /*timeline=*/false);
}
BENCHMARK(BM_ObsMetrics);

void BM_ObsMetricsAndTimeline(benchmark::State& state) {
  run_observed(state, /*metrics=*/true, /*timeline=*/true);
}
BENCHMARK(BM_ObsMetricsAndTimeline);

// ---------------------------------------------------------------------------
// Status heartbeat overhead

std::string bench_status_path() {
  return (std::filesystem::temp_directory_path() /
          ("simsweep_bench_status_" + std::to_string(::getpid())))
      .string();
}

/// The disabled path the sweep runner takes when --status is absent: the
/// plan holds a null StatusBoard* and every cell event is one branch.
/// This must stay indistinguishable from an empty loop.
void BM_StatusDisabledNullCheck(benchmark::State& state) {
  simsweep::obs::StatusBoard* status = nullptr;
  benchmark::DoNotOptimize(status);
  std::size_t index = 0;
  for (auto _ : state) {
    if (status != nullptr) status->cell_started(index);
    if (status != nullptr) status->cell_finished(index, 0.001);
    ++index;
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_StatusDisabledNullCheck);

/// An enabled board between heartbeats: mutex + counters + EWMA, no I/O.
/// The 1-hour heartbeat guarantees the throttle never opens mid-benchmark
/// (begin_run's forced initial snapshot is outside the timed loop).
void BM_StatusEnabledCellEvent(benchmark::State& state) {
  simsweep::obs::StatusBoard::Options options;
  options.path = bench_status_path();
  options.heartbeat_s = 3600.0;
  simsweep::obs::StatusBoard board(options);
  board.begin_run("bench", simsweep::obs::Provenance{}, 1u << 30, 5, 4,
                  {"NONE", "SWAP", "DLB", "CR"});
  std::size_t index = 0;
  for (auto _ : state) {
    board.cell_started(index);
    board.cell_finished(index, 0.001);
    ++index;
  }
  std::filesystem::remove(options.path);
  std::filesystem::remove(options.path + ".tmp");
}
BENCHMARK(BM_StatusEnabledCellEvent);

/// The worst case: heartbeat 0 forces a full snapshot serialization and an
/// atomic tmp+fsync+rename publish on every cell completion.
void BM_StatusForcedPublish(benchmark::State& state) {
  simsweep::obs::StatusBoard::Options options;
  options.path = bench_status_path();
  options.heartbeat_s = 0.0;
  simsweep::obs::StatusBoard board(options);
  board.begin_run("bench", simsweep::obs::Provenance{}, 1u << 30, 5, 4,
                  {"NONE", "SWAP", "DLB", "CR"});
  std::size_t index = 0;
  for (auto _ : state) {
    board.cell_started(index);
    board.cell_finished(index, 0.001);
    ++index;
  }
  std::filesystem::remove(options.path);
  std::filesystem::remove(options.path + ".tmp");
}
BENCHMARK(BM_StatusForcedPublish);

}  // namespace

BENCHMARK_MAIN();
