file(REMOVE_RECURSE
  "../bench/abl_history_window"
  "../bench/abl_history_window.pdb"
  "CMakeFiles/abl_history_window.dir/abl_history_window.cpp.o"
  "CMakeFiles/abl_history_window.dir/abl_history_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_history_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
