file(REMOVE_RECURSE
  "../bench/abl_improvement_threshold"
  "../bench/abl_improvement_threshold.pdb"
  "CMakeFiles/abl_improvement_threshold.dir/abl_improvement_threshold.cpp.o"
  "CMakeFiles/abl_improvement_threshold.dir/abl_improvement_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_improvement_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
