# Empty dependencies file for abl_improvement_threshold.
# This may be replaced when dependencies are built.
