file(REMOVE_RECURSE
  "../bench/abl_initial_schedule"
  "../bench/abl_initial_schedule.pdb"
  "CMakeFiles/abl_initial_schedule.dir/abl_initial_schedule.cpp.o"
  "CMakeFiles/abl_initial_schedule.dir/abl_initial_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_initial_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
