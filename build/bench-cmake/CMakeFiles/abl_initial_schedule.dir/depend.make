# Empty dependencies file for abl_initial_schedule.
# This may be replaced when dependencies are built.
