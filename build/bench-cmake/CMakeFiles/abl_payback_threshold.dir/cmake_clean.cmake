file(REMOVE_RECURSE
  "../bench/abl_payback_threshold"
  "../bench/abl_payback_threshold.pdb"
  "CMakeFiles/abl_payback_threshold.dir/abl_payback_threshold.cpp.o"
  "CMakeFiles/abl_payback_threshold.dir/abl_payback_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_payback_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
