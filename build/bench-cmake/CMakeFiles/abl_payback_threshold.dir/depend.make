# Empty dependencies file for abl_payback_threshold.
# This may be replaced when dependencies are built.
