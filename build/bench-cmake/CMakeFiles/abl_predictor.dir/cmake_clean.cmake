file(REMOVE_RECURSE
  "../bench/abl_predictor"
  "../bench/abl_predictor.pdb"
  "CMakeFiles/abl_predictor.dir/abl_predictor.cpp.o"
  "CMakeFiles/abl_predictor.dir/abl_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
