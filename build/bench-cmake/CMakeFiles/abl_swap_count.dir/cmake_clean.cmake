file(REMOVE_RECURSE
  "../bench/abl_swap_count"
  "../bench/abl_swap_count.pdb"
  "CMakeFiles/abl_swap_count.dir/abl_swap_count.cpp.o"
  "CMakeFiles/abl_swap_count.dir/abl_swap_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_swap_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
