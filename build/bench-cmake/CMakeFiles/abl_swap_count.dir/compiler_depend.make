# Empty compiler generated dependencies file for abl_swap_count.
# This may be replaced when dependencies are built.
