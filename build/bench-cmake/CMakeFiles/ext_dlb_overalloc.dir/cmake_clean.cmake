file(REMOVE_RECURSE
  "../bench/ext_dlb_overalloc"
  "../bench/ext_dlb_overalloc.pdb"
  "CMakeFiles/ext_dlb_overalloc.dir/ext_dlb_overalloc.cpp.o"
  "CMakeFiles/ext_dlb_overalloc.dir/ext_dlb_overalloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dlb_overalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
