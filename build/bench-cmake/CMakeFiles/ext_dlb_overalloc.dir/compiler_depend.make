# Empty compiler generated dependencies file for ext_dlb_overalloc.
# This may be replaced when dependencies are built.
