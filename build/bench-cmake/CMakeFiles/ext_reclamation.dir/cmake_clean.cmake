file(REMOVE_RECURSE
  "../bench/ext_reclamation"
  "../bench/ext_reclamation.pdb"
  "CMakeFiles/ext_reclamation.dir/ext_reclamation.cpp.o"
  "CMakeFiles/ext_reclamation.dir/ext_reclamation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
