# Empty compiler generated dependencies file for ext_reclamation.
# This may be replaced when dependencies are built.
