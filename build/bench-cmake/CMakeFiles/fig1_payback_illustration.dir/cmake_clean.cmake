file(REMOVE_RECURSE
  "../bench/fig1_payback_illustration"
  "../bench/fig1_payback_illustration.pdb"
  "CMakeFiles/fig1_payback_illustration.dir/fig1_payback_illustration.cpp.o"
  "CMakeFiles/fig1_payback_illustration.dir/fig1_payback_illustration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_payback_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
