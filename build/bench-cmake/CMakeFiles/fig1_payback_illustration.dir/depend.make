# Empty dependencies file for fig1_payback_illustration.
# This may be replaced when dependencies are built.
