file(REMOVE_RECURSE
  "../bench/fig2_onoff_trace"
  "../bench/fig2_onoff_trace.pdb"
  "CMakeFiles/fig2_onoff_trace.dir/fig2_onoff_trace.cpp.o"
  "CMakeFiles/fig2_onoff_trace.dir/fig2_onoff_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_onoff_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
