# Empty dependencies file for fig2_onoff_trace.
# This may be replaced when dependencies are built.
