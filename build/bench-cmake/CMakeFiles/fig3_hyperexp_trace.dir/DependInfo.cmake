
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_hyperexp_trace.cpp" "bench-cmake/CMakeFiles/fig3_hyperexp_trace.dir/fig3_hyperexp_trace.cpp.o" "gcc" "bench-cmake/CMakeFiles/fig3_hyperexp_trace.dir/fig3_hyperexp_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simsweep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/simsweep_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/simsweep_load.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/simsweep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/simsweep_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/simsweep_app.dir/DependInfo.cmake"
  "/root/repo/build/src/swap/CMakeFiles/simsweep_swap.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/simsweep_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/swampi/CMakeFiles/swampi.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/simsweep_forecast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
