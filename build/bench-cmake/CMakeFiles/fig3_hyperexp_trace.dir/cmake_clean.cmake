file(REMOVE_RECURSE
  "../bench/fig3_hyperexp_trace"
  "../bench/fig3_hyperexp_trace.pdb"
  "CMakeFiles/fig3_hyperexp_trace.dir/fig3_hyperexp_trace.cpp.o"
  "CMakeFiles/fig3_hyperexp_trace.dir/fig3_hyperexp_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hyperexp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
