file(REMOVE_RECURSE
  "../bench/fig4_techniques_vs_dynamism"
  "../bench/fig4_techniques_vs_dynamism.pdb"
  "CMakeFiles/fig4_techniques_vs_dynamism.dir/fig4_techniques_vs_dynamism.cpp.o"
  "CMakeFiles/fig4_techniques_vs_dynamism.dir/fig4_techniques_vs_dynamism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_techniques_vs_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
