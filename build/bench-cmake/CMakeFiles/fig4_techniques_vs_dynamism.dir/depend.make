# Empty dependencies file for fig4_techniques_vs_dynamism.
# This may be replaced when dependencies are built.
