file(REMOVE_RECURSE
  "../bench/fig5_overallocation"
  "../bench/fig5_overallocation.pdb"
  "CMakeFiles/fig5_overallocation.dir/fig5_overallocation.cpp.o"
  "CMakeFiles/fig5_overallocation.dir/fig5_overallocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
