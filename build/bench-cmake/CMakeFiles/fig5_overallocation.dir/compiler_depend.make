# Empty compiler generated dependencies file for fig5_overallocation.
# This may be replaced when dependencies are built.
