file(REMOVE_RECURSE
  "../bench/fig6_process_size"
  "../bench/fig6_process_size.pdb"
  "CMakeFiles/fig6_process_size.dir/fig6_process_size.cpp.o"
  "CMakeFiles/fig6_process_size.dir/fig6_process_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_process_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
