# Empty dependencies file for fig6_process_size.
# This may be replaced when dependencies are built.
