file(REMOVE_RECURSE
  "../bench/fig7_policies"
  "../bench/fig7_policies.pdb"
  "CMakeFiles/fig7_policies.dir/fig7_policies.cpp.o"
  "CMakeFiles/fig7_policies.dir/fig7_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
