file(REMOVE_RECURSE
  "../bench/fig8_policies_large_state"
  "../bench/fig8_policies_large_state.pdb"
  "CMakeFiles/fig8_policies_large_state.dir/fig8_policies_large_state.cpp.o"
  "CMakeFiles/fig8_policies_large_state.dir/fig8_policies_large_state.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_policies_large_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
