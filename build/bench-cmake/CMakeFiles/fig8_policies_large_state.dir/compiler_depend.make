# Empty compiler generated dependencies file for fig8_policies_large_state.
# This may be replaced when dependencies are built.
