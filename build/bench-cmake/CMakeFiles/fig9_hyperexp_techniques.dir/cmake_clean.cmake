file(REMOVE_RECURSE
  "../bench/fig9_hyperexp_techniques"
  "../bench/fig9_hyperexp_techniques.pdb"
  "CMakeFiles/fig9_hyperexp_techniques.dir/fig9_hyperexp_techniques.cpp.o"
  "CMakeFiles/fig9_hyperexp_techniques.dir/fig9_hyperexp_techniques.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hyperexp_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
