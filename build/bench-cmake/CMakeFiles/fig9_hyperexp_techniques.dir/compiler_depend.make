# Empty compiler generated dependencies file for fig9_hyperexp_techniques.
# This may be replaced when dependencies are built.
