file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_rollback.dir/checkpoint_rollback.cpp.o"
  "CMakeFiles/checkpoint_rollback.dir/checkpoint_rollback.cpp.o.d"
  "checkpoint_rollback"
  "checkpoint_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
