# Empty compiler generated dependencies file for checkpoint_rollback.
# This may be replaced when dependencies are built.
