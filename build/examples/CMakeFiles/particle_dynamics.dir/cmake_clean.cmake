file(REMOVE_RECURSE
  "CMakeFiles/particle_dynamics.dir/particle_dynamics.cpp.o"
  "CMakeFiles/particle_dynamics.dir/particle_dynamics.cpp.o.d"
  "particle_dynamics"
  "particle_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
