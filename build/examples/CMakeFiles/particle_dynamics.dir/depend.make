# Empty dependencies file for particle_dynamics.
# This may be replaced when dependencies are built.
