file(REMOVE_RECURSE
  "CMakeFiles/trace_scenario.dir/trace_scenario.cpp.o"
  "CMakeFiles/trace_scenario.dir/trace_scenario.cpp.o.d"
  "trace_scenario"
  "trace_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
