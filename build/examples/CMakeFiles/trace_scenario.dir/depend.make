# Empty dependencies file for trace_scenario.
# This may be replaced when dependencies are built.
