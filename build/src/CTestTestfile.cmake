# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("platform")
subdirs("load")
subdirs("forecast")
subdirs("net")
subdirs("app")
subdirs("swap")
subdirs("strategy")
subdirs("core")
subdirs("swampi")
subdirs("cli")
