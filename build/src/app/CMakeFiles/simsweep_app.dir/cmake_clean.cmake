file(REMOVE_RECURSE
  "CMakeFiles/simsweep_app.dir/app_spec.cpp.o"
  "CMakeFiles/simsweep_app.dir/app_spec.cpp.o.d"
  "libsimsweep_app.a"
  "libsimsweep_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
