file(REMOVE_RECURSE
  "libsimsweep_app.a"
)
