# Empty compiler generated dependencies file for simsweep_app.
# This may be replaced when dependencies are built.
