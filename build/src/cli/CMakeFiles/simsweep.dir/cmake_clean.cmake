file(REMOVE_RECURSE
  "CMakeFiles/simsweep.dir/main.cpp.o"
  "CMakeFiles/simsweep.dir/main.cpp.o.d"
  "simsweep"
  "simsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
