# Empty dependencies file for simsweep.
# This may be replaced when dependencies are built.
