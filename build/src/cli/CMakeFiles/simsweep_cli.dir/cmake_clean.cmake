file(REMOVE_RECURSE
  "CMakeFiles/simsweep_cli.dir/args.cpp.o"
  "CMakeFiles/simsweep_cli.dir/args.cpp.o.d"
  "CMakeFiles/simsweep_cli.dir/config_build.cpp.o"
  "CMakeFiles/simsweep_cli.dir/config_build.cpp.o.d"
  "libsimsweep_cli.a"
  "libsimsweep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
