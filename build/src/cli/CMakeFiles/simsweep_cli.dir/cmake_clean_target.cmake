file(REMOVE_RECURSE
  "libsimsweep_cli.a"
)
