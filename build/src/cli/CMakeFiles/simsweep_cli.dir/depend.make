# Empty dependencies file for simsweep_cli.
# This may be replaced when dependencies are built.
