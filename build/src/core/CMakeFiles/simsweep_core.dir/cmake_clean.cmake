file(REMOVE_RECURSE
  "CMakeFiles/simsweep_core.dir/experiment.cpp.o"
  "CMakeFiles/simsweep_core.dir/experiment.cpp.o.d"
  "libsimsweep_core.a"
  "libsimsweep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
