file(REMOVE_RECURSE
  "libsimsweep_core.a"
)
