# Empty compiler generated dependencies file for simsweep_core.
# This may be replaced when dependencies are built.
