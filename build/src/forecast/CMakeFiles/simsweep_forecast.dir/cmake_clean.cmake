file(REMOVE_RECURSE
  "CMakeFiles/simsweep_forecast.dir/forecaster.cpp.o"
  "CMakeFiles/simsweep_forecast.dir/forecaster.cpp.o.d"
  "libsimsweep_forecast.a"
  "libsimsweep_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
