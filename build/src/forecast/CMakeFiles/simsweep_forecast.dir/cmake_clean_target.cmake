file(REMOVE_RECURSE
  "libsimsweep_forecast.a"
)
