# Empty dependencies file for simsweep_forecast.
# This may be replaced when dependencies are built.
