
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/hyperexp.cpp" "src/load/CMakeFiles/simsweep_load.dir/hyperexp.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/hyperexp.cpp.o.d"
  "/root/repo/src/load/load_model.cpp" "src/load/CMakeFiles/simsweep_load.dir/load_model.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/load_model.cpp.o.d"
  "/root/repo/src/load/misc_models.cpp" "src/load/CMakeFiles/simsweep_load.dir/misc_models.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/misc_models.cpp.o.d"
  "/root/repo/src/load/onoff.cpp" "src/load/CMakeFiles/simsweep_load.dir/onoff.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/onoff.cpp.o.d"
  "/root/repo/src/load/reclamation.cpp" "src/load/CMakeFiles/simsweep_load.dir/reclamation.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/reclamation.cpp.o.d"
  "/root/repo/src/load/trace_io.cpp" "src/load/CMakeFiles/simsweep_load.dir/trace_io.cpp.o" "gcc" "src/load/CMakeFiles/simsweep_load.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/simsweep_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/simsweep_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
