file(REMOVE_RECURSE
  "CMakeFiles/simsweep_load.dir/hyperexp.cpp.o"
  "CMakeFiles/simsweep_load.dir/hyperexp.cpp.o.d"
  "CMakeFiles/simsweep_load.dir/load_model.cpp.o"
  "CMakeFiles/simsweep_load.dir/load_model.cpp.o.d"
  "CMakeFiles/simsweep_load.dir/misc_models.cpp.o"
  "CMakeFiles/simsweep_load.dir/misc_models.cpp.o.d"
  "CMakeFiles/simsweep_load.dir/onoff.cpp.o"
  "CMakeFiles/simsweep_load.dir/onoff.cpp.o.d"
  "CMakeFiles/simsweep_load.dir/reclamation.cpp.o"
  "CMakeFiles/simsweep_load.dir/reclamation.cpp.o.d"
  "CMakeFiles/simsweep_load.dir/trace_io.cpp.o"
  "CMakeFiles/simsweep_load.dir/trace_io.cpp.o.d"
  "libsimsweep_load.a"
  "libsimsweep_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
