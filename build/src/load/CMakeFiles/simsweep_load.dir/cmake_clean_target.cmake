file(REMOVE_RECURSE
  "libsimsweep_load.a"
)
