# Empty dependencies file for simsweep_load.
# This may be replaced when dependencies are built.
