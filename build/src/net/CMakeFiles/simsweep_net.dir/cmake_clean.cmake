file(REMOVE_RECURSE
  "CMakeFiles/simsweep_net.dir/shared_link.cpp.o"
  "CMakeFiles/simsweep_net.dir/shared_link.cpp.o.d"
  "libsimsweep_net.a"
  "libsimsweep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
