file(REMOVE_RECURSE
  "libsimsweep_net.a"
)
