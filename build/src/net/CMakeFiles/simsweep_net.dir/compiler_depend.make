# Empty compiler generated dependencies file for simsweep_net.
# This may be replaced when dependencies are built.
