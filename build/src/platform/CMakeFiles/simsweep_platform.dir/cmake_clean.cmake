file(REMOVE_RECURSE
  "CMakeFiles/simsweep_platform.dir/cluster.cpp.o"
  "CMakeFiles/simsweep_platform.dir/cluster.cpp.o.d"
  "CMakeFiles/simsweep_platform.dir/host.cpp.o"
  "CMakeFiles/simsweep_platform.dir/host.cpp.o.d"
  "libsimsweep_platform.a"
  "libsimsweep_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
