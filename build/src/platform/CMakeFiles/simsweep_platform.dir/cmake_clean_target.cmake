file(REMOVE_RECURSE
  "libsimsweep_platform.a"
)
