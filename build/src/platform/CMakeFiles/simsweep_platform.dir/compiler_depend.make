# Empty compiler generated dependencies file for simsweep_platform.
# This may be replaced when dependencies are built.
