file(REMOVE_RECURSE
  "CMakeFiles/simsweep_simcore.dir/trace_recorder.cpp.o"
  "CMakeFiles/simsweep_simcore.dir/trace_recorder.cpp.o.d"
  "libsimsweep_simcore.a"
  "libsimsweep_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
