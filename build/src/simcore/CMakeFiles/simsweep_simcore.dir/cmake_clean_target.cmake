file(REMOVE_RECURSE
  "libsimsweep_simcore.a"
)
