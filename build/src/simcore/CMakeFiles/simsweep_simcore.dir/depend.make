# Empty dependencies file for simsweep_simcore.
# This may be replaced when dependencies are built.
