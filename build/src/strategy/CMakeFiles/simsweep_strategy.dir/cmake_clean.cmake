file(REMOVE_RECURSE
  "CMakeFiles/simsweep_strategy.dir/estimator.cpp.o"
  "CMakeFiles/simsweep_strategy.dir/estimator.cpp.o.d"
  "CMakeFiles/simsweep_strategy.dir/executor.cpp.o"
  "CMakeFiles/simsweep_strategy.dir/executor.cpp.o.d"
  "CMakeFiles/simsweep_strategy.dir/schedule.cpp.o"
  "CMakeFiles/simsweep_strategy.dir/schedule.cpp.o.d"
  "CMakeFiles/simsweep_strategy.dir/strategies.cpp.o"
  "CMakeFiles/simsweep_strategy.dir/strategies.cpp.o.d"
  "libsimsweep_strategy.a"
  "libsimsweep_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
