file(REMOVE_RECURSE
  "libsimsweep_strategy.a"
)
