# Empty dependencies file for simsweep_strategy.
# This may be replaced when dependencies are built.
