
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swampi/checkpoint_ext.cpp" "src/swampi/CMakeFiles/swampi.dir/checkpoint_ext.cpp.o" "gcc" "src/swampi/CMakeFiles/swampi.dir/checkpoint_ext.cpp.o.d"
  "/root/repo/src/swampi/comm.cpp" "src/swampi/CMakeFiles/swampi.dir/comm.cpp.o" "gcc" "src/swampi/CMakeFiles/swampi.dir/comm.cpp.o.d"
  "/root/repo/src/swampi/mailbox.cpp" "src/swampi/CMakeFiles/swampi.dir/mailbox.cpp.o" "gcc" "src/swampi/CMakeFiles/swampi.dir/mailbox.cpp.o.d"
  "/root/repo/src/swampi/runtime.cpp" "src/swampi/CMakeFiles/swampi.dir/runtime.cpp.o" "gcc" "src/swampi/CMakeFiles/swampi.dir/runtime.cpp.o.d"
  "/root/repo/src/swampi/swap_ext.cpp" "src/swampi/CMakeFiles/swampi.dir/swap_ext.cpp.o" "gcc" "src/swampi/CMakeFiles/swampi.dir/swap_ext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swap/CMakeFiles/simsweep_swap.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/simsweep_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
