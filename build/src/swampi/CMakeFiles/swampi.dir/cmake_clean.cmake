file(REMOVE_RECURSE
  "CMakeFiles/swampi.dir/checkpoint_ext.cpp.o"
  "CMakeFiles/swampi.dir/checkpoint_ext.cpp.o.d"
  "CMakeFiles/swampi.dir/comm.cpp.o"
  "CMakeFiles/swampi.dir/comm.cpp.o.d"
  "CMakeFiles/swampi.dir/mailbox.cpp.o"
  "CMakeFiles/swampi.dir/mailbox.cpp.o.d"
  "CMakeFiles/swampi.dir/runtime.cpp.o"
  "CMakeFiles/swampi.dir/runtime.cpp.o.d"
  "CMakeFiles/swampi.dir/swap_ext.cpp.o"
  "CMakeFiles/swampi.dir/swap_ext.cpp.o.d"
  "libswampi.a"
  "libswampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
