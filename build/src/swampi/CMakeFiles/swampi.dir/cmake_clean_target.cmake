file(REMOVE_RECURSE
  "libswampi.a"
)
