# Empty compiler generated dependencies file for swampi.
# This may be replaced when dependencies are built.
