
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swap/payback.cpp" "src/swap/CMakeFiles/simsweep_swap.dir/payback.cpp.o" "gcc" "src/swap/CMakeFiles/simsweep_swap.dir/payback.cpp.o.d"
  "/root/repo/src/swap/perf_history.cpp" "src/swap/CMakeFiles/simsweep_swap.dir/perf_history.cpp.o" "gcc" "src/swap/CMakeFiles/simsweep_swap.dir/perf_history.cpp.o.d"
  "/root/repo/src/swap/planner.cpp" "src/swap/CMakeFiles/simsweep_swap.dir/planner.cpp.o" "gcc" "src/swap/CMakeFiles/simsweep_swap.dir/planner.cpp.o.d"
  "/root/repo/src/swap/policy.cpp" "src/swap/CMakeFiles/simsweep_swap.dir/policy.cpp.o" "gcc" "src/swap/CMakeFiles/simsweep_swap.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/simsweep_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
