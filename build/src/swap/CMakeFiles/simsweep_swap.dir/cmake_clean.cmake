file(REMOVE_RECURSE
  "CMakeFiles/simsweep_swap.dir/payback.cpp.o"
  "CMakeFiles/simsweep_swap.dir/payback.cpp.o.d"
  "CMakeFiles/simsweep_swap.dir/perf_history.cpp.o"
  "CMakeFiles/simsweep_swap.dir/perf_history.cpp.o.d"
  "CMakeFiles/simsweep_swap.dir/planner.cpp.o"
  "CMakeFiles/simsweep_swap.dir/planner.cpp.o.d"
  "CMakeFiles/simsweep_swap.dir/policy.cpp.o"
  "CMakeFiles/simsweep_swap.dir/policy.cpp.o.d"
  "libsimsweep_swap.a"
  "libsimsweep_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsweep_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
