file(REMOVE_RECURSE
  "libsimsweep_swap.a"
)
