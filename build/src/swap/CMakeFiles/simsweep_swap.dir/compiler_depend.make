# Empty compiler generated dependencies file for simsweep_swap.
# This may be replaced when dependencies are built.
