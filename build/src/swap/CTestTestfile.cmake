# CMake generated Testfile for 
# Source directory: /root/repo/src/swap
# Build directory: /root/repo/build/src/swap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
