file(REMOVE_RECURSE
  "CMakeFiles/test_initial_schedule.dir/test_initial_schedule.cpp.o"
  "CMakeFiles/test_initial_schedule.dir/test_initial_schedule.cpp.o.d"
  "test_initial_schedule"
  "test_initial_schedule.pdb"
  "test_initial_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_initial_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
