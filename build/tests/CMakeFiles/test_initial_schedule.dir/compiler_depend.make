# Empty compiler generated dependencies file for test_initial_schedule.
# This may be replaced when dependencies are built.
