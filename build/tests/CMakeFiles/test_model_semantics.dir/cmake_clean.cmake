file(REMOVE_RECURSE
  "CMakeFiles/test_model_semantics.dir/test_model_semantics.cpp.o"
  "CMakeFiles/test_model_semantics.dir/test_model_semantics.cpp.o.d"
  "test_model_semantics"
  "test_model_semantics.pdb"
  "test_model_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
