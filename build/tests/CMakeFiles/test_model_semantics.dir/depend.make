# Empty dependencies file for test_model_semantics.
# This may be replaced when dependencies are built.
