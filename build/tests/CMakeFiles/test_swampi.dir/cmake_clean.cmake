file(REMOVE_RECURSE
  "CMakeFiles/test_swampi.dir/test_swampi.cpp.o"
  "CMakeFiles/test_swampi.dir/test_swampi.cpp.o.d"
  "test_swampi"
  "test_swampi.pdb"
  "test_swampi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
