# Empty dependencies file for test_swampi.
# This may be replaced when dependencies are built.
