file(REMOVE_RECURSE
  "CMakeFiles/test_swampi_ext.dir/test_swampi_ext.cpp.o"
  "CMakeFiles/test_swampi_ext.dir/test_swampi_ext.cpp.o.d"
  "test_swampi_ext"
  "test_swampi_ext.pdb"
  "test_swampi_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swampi_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
