# Empty dependencies file for test_swampi_ext.
# This may be replaced when dependencies are built.
