file(REMOVE_RECURSE
  "CMakeFiles/test_swampi_stress.dir/test_swampi_stress.cpp.o"
  "CMakeFiles/test_swampi_stress.dir/test_swampi_stress.cpp.o.d"
  "test_swampi_stress"
  "test_swampi_stress.pdb"
  "test_swampi_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swampi_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
