file(REMOVE_RECURSE
  "CMakeFiles/test_swampi_swap.dir/test_swampi_swap.cpp.o"
  "CMakeFiles/test_swampi_swap.dir/test_swampi_swap.cpp.o.d"
  "test_swampi_swap"
  "test_swampi_swap.pdb"
  "test_swampi_swap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swampi_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
