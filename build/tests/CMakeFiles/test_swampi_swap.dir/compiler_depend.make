# Empty compiler generated dependencies file for test_swampi_swap.
# This may be replaced when dependencies are built.
