file(REMOVE_RECURSE
  "CMakeFiles/test_swap.dir/test_swap.cpp.o"
  "CMakeFiles/test_swap.dir/test_swap.cpp.o.d"
  "test_swap"
  "test_swap.pdb"
  "test_swap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
