# Empty dependencies file for test_swap.
# This may be replaced when dependencies are built.
