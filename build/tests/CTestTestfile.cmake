# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_load[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_swap[1]_include.cmake")
include("/root/repo/build/tests/test_strategy[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_forecast[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_reclamation[1]_include.cmake")
include("/root/repo/build/tests/test_swampi[1]_include.cmake")
include("/root/repo/build/tests/test_swampi_swap[1]_include.cmake")
include("/root/repo/build/tests/test_swampi_ext[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_swampi_stress[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extra[1]_include.cmake")
include("/root/repo/build/tests/test_model_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_initial_schedule[1]_include.cmake")
