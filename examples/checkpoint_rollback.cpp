// Checkpoint/rollback on swampi: the paper's CR technique as an
// application-level library (checkpoint_ext), composed with swapping.
//
// A distributed sum-of-series computation checkpoints every 4 iterations.
// Mid-run, a simulated soft error corrupts one rank's partial sums; the
// application detects the bad invariant with a collective check and rolls
// every active process back to the last checkpoint, then finishes and
// verifies the exact analytic answer.  A swap also happens between the
// checkpoint and the rollback, demonstrating that restore() follows each
// slot to its current home rank.
#include <cmath>
#include <cstdio>
#include <vector>

#include "swampi/checkpoint_ext.hpp"
#include "swampi/runtime.hpp"
#include "swampi/swap_ext.hpp"

using swampi::Comm;
using swampi::Runtime;
namespace swapx = swampi::swapx;

namespace {

constexpr int kActive = 3;
constexpr int kWorld = 5;
constexpr int kIterations = 16;
constexpr int kTermsPerIter = 1000;
constexpr int kCheckpointEvery = 4;
constexpr int kCorruptAtIter = 9;

/// Slot s accumulates 1/n^2 over its residue class; the global total
/// converges to pi^2/6 as terms grow.
double slice_term(int slot, int iter, int k) {
  const int n = (iter * kTermsPerIter + k) * kActive + slot + 1;
  return 1.0 / (static_cast<double>(n) * static_cast<double>(n));
}

}  // namespace

int main() {
  std::printf("checkpoint_rollback: %d active / %d ranks, checkpoint every %d "
              "iterations\n",
              kActive, kWorld, kCheckpointEvery);
  Runtime runtime(kWorld);
  swapx::CheckpointStore store;
  runtime.run([&store](Comm& world) {
    swapx::SwapConfig cfg;
    cfg.active_count = kActive;
    // Rank 1 slows down after iteration 5 so a swap happens organically.
    int phase = 0;
    cfg.speed_probe = [&world, &phase] {
      return (world.rank() == 1 && phase > 5) ? 10.0 : 100.0;
    };
    swapx::SwapContext swap(world, cfg);

    double partial = 0.0;       // my slot's partial sum
    std::uint64_t next_iter = 0;  // iteration to execute next
    swap.register_value(partial);
    swap.register_value(next_iter);

    swapx::Role role = swap.role();
    bool corrupted_once = false;
    while (next_iter < kIterations) {
      phase = static_cast<int>(next_iter);
      if (role.active) {
        for (int k = 0; k < kTermsPerIter; ++k)
          partial += slice_term(role.slot, static_cast<int>(next_iter), k);
      }
      ++next_iter;

      // Periodic checkpoint at the iteration boundary.
      if (next_iter % kCheckpointEvery == 0)
        swapx::checkpoint(swap, store, next_iter);

      // Injected soft error: whoever owns slot 2 trashes its state once.
      if (next_iter == kCorruptAtIter && role.active && role.slot == 2 &&
          !corrupted_once) {
        partial = 1e12;
        corrupted_once = true;
      }

      // Collective sanity check: partial sums must stay below the analytic
      // bound pi^2/6.  On violation, everyone rolls back.
      const double worst = world.allreduce_value(
          role.active ? partial : 0.0, swampi::Op::kMax);
      if (worst > 2.0) {
        // NOTE: restore() rewrites the *registered* next_iter on active
        // ranks, so remember where we were for the log first.
        const std::uint64_t detected_at = next_iter;
        const std::uint64_t restored = swapx::restore(swap, store);
        if (world.rank() == 0)
          std::printf("  iter %2llu: invariant violated, rolled back to "
                      "checkpoint at iter %llu\n",
                      static_cast<unsigned long long>(detected_at),
                      static_cast<unsigned long long>(restored));
        next_iter = restored;  // spares roll back too (they have no snapshot)
      }

      role = swap.swap_point(role.active ? 1.0 : 0.0);
      if (world.rank() == 0)
        for (const swapx::SwapEvent& e : swap.last_events())
          std::printf("  iter %2llu: slot %d moved rank %d -> rank %d\n",
                      static_cast<unsigned long long>(next_iter), e.slot,
                      e.from, e.to);
    }

    const double total =
        world.allreduce_value(role.active ? partial : 0.0, swampi::Op::kSum);
    if (world.rank() == 0) {
      const double expected = M_PI * M_PI / 6.0;
      // Finite series: compare against directly summed reference.
      double reference = 0.0;
      for (int s = 0; s < kActive; ++s)
        for (int i = 0; i < kIterations; ++i)
          for (int k = 0; k < kTermsPerIter; ++k)
            reference += slice_term(s, i, k);
      std::printf("sum = %.12f (reference %.12f, pi^2/6 = %.12f)  %s\n",
                  total, reference, expected,
                  std::abs(total - reference) < 1e-12 ? "[exact]"
                                                      : "[MISMATCH]");
      std::printf("swaps: %zu\n", swap.swaps_performed());
    }
  });
  return 0;
}
