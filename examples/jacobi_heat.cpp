// 1-D Jacobi heat diffusion on swampi, with process swapping underneath.
//
// The classic halo-exchange iterative kernel: the rod is split into
// contiguous blocks, one per active slot; every iteration each slot
// averages its cells with its neighbours, exchanging one halo cell with the
// slots to its left and right.  A swap relocates a block (grid + halo
// bookkeeping travel as registered state) and the neighbours transparently
// start talking to the new rank via rank_of_slot().
//
// Correctness check: the final temperature profile must equal a sequential
// reference computation exactly, swaps or no swaps.
#include <cmath>
#include <cstdio>
#include <vector>

#include "swampi/comm.hpp"
#include "swampi/runtime.hpp"
#include "swampi/swap_ext.hpp"
#include "swampi/throttle.hpp"

using swampi::Comm;
using swampi::Runtime;
using swampi::Throttle;
namespace swapx = swampi::swapx;

namespace {

constexpr int kActive = 3;
constexpr int kWorld = 5;
constexpr int kCellsPerSlot = 40;
constexpr int kCells = kActive * kCellsPerSlot;
constexpr int kIterations = 25;

/// Initial condition: a hot spike in the middle, cold boundaries.
double initial(int cell) { return cell == kCells / 2 ? 100.0 : 0.0; }

/// Sequential reference: the same stencil on the whole rod.
std::vector<double> reference() {
  std::vector<double> t(kCells), next(kCells);
  for (int c = 0; c < kCells; ++c) t[static_cast<std::size_t>(c)] = initial(c);
  for (int iter = 0; iter < kIterations; ++iter) {
    for (int c = 0; c < kCells; ++c) {
      const double left = c > 0 ? t[static_cast<std::size_t>(c - 1)] : 0.0;
      const double right =
          c + 1 < kCells ? t[static_cast<std::size_t>(c + 1)] : 0.0;
      next[static_cast<std::size_t>(c)] =
          0.25 * left + 0.5 * t[static_cast<std::size_t>(c)] + 0.25 * right;
    }
    t.swap(next);
  }
  return t;
}

}  // namespace

int main() {
  std::printf("jacobi_heat: %d cells, %d active / %d ranks, %d iterations\n",
              kCells, kActive, kWorld, kIterations);
  const std::vector<double> expected = reference();
  Runtime runtime(kWorld);
  runtime.run([&expected](Comm& world) {
    // Rank 0 slows down dramatically mid-run; ranks 3/4 are fast spares.
    std::vector<double> profile(kIterations, 1.0);
    if (world.rank() == 0)
      for (int i = 8; i < kIterations; ++i)
        profile[static_cast<std::size_t>(i)] = 0.1;
    Throttle throttle(150.0e6, profile);

    swapx::SwapConfig cfg;
    cfg.active_count = kActive;
    cfg.speed_probe = [&throttle] { return throttle.speed(); };
    swapx::SwapContext swap(world, cfg);

    // NOTE: registered buffers must stay at a stable address for the whole
    // run (the swap transfers the bytes behind the registered pointer), so
    // both grids are allocated once and updated in place.
    std::vector<double> block(kCellsPerSlot, 0.0);
    std::vector<double> next(kCellsPerSlot, 0.0);
    double halo_left = 0.0, halo_right = 0.0;
    swap.register_state(block.data(), block.size() * sizeof(double));
    swap.register_value(halo_left);
    swap.register_value(halo_right);

    swapx::Role role = swap.role();
    if (role.active)
      for (int i = 0; i < kCellsPerSlot; ++i)
        block[static_cast<std::size_t>(i)] =
            initial(role.slot * kCellsPerSlot + i);

    for (int iter = 0; iter < kIterations; ++iter) {
      throttle.set_phase(static_cast<std::size_t>(iter));
      double iter_time = 0.0;
      if (role.active) {
        // Halo exchange with neighbouring slots (eager sends, then recvs).
        const int s = role.slot;
        if (s > 0)
          world.send_value(block.front(), swap.rank_of_slot(s - 1), 200 + s);
        if (s + 1 < kActive)
          world.send_value(block.back(), swap.rank_of_slot(s + 1), 200 + s);
        halo_left =
            s > 0 ? world.recv_value<double>(swap.rank_of_slot(s - 1), 199 + s)
                  : 0.0;
        halo_right = s + 1 < kActive
                         ? world.recv_value<double>(swap.rank_of_slot(s + 1),
                                                    201 + s)
                         : 0.0;
        // Stencil update.
        for (int i = 0; i < kCellsPerSlot; ++i) {
          const double left =
              i > 0 ? block[static_cast<std::size_t>(i - 1)] : halo_left;
          const double right = i + 1 < kCellsPerSlot
                                   ? block[static_cast<std::size_t>(i + 1)]
                                   : halo_right;
          next[static_cast<std::size_t>(i)] =
              0.25 * left + 0.5 * block[static_cast<std::size_t>(i)] +
              0.25 * right;
        }
        std::copy(next.begin(), next.end(), block.begin());
        iter_time = throttle.time_for(50.0 * kCellsPerSlot);
      }
      const swapx::Role new_role = swap.swap_point(iter_time);
      if (world.rank() == 0 && !swap.last_events().empty())
        for (const swapx::SwapEvent& e : swap.last_events())
          std::printf("  iter %2d: slot %d moved rank %d -> rank %d\n", iter,
                      e.slot, e.from, e.to);
      role = new_role;
    }

    // Collect the distributed result at world rank 0 and compare.
    if (role.active)
      world.send(block.data(), block.size(), 0, 300 + role.slot);
    if (world.rank() == 0) {
      std::vector<double> result(kCells);
      for (int s = 0; s < kActive; ++s)
        world.recv(result.data() + s * kCellsPerSlot,
                   static_cast<std::size_t>(kCellsPerSlot),
                   swampi::kAnySource, 300 + s);
      double max_err = 0.0;
      for (int c = 0; c < kCells; ++c)
        max_err = std::max(max_err,
                           std::abs(result[static_cast<std::size_t>(c)] -
                                    expected[static_cast<std::size_t>(c)]));
      std::printf("swaps: %zu, max |distributed - sequential| = %.3e  %s\n",
                  swap.swaps_performed(), max_err,
                  max_err == 0.0 ? "[exact]" : "[MISMATCH]");
    }
  });
  return 0;
}
