// Particle dynamics on swampi with process swapping — the paper's
// motivating retrofit scenario.
//
// The paper's §3 reports retrofitting a real-world particle dynamics code
// with 4 changed source lines.  This example shows those lines in action on
// a self-contained O(n^2) gravitational dynamics code:
//
//   (1) #include the swap extension            (the mpi_swap.h include)
//   (2) register the particle state            (swap_register)
//   (3) call swap_point() in the loop          (MPI_Swap)
//
// The world over-allocates 6 ranks for 4 active slots.  Scripted Throttle
// profiles emulate other users loading two of the hosts mid-run; the greedy
// policy evicts the affected processes onto the spare hosts.  Momentum
// conservation is checked at the end to demonstrate that the registered
// state (positions/velocities of the slot's particle block) survived the
// swaps bit-for-bit.
#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "swampi/comm.hpp"
#include "swampi/runtime.hpp"
#include "swampi/swap_ext.hpp"   // (1)
#include "swampi/throttle.hpp"

using swampi::Comm;
using swampi::Runtime;
using swampi::Throttle;
namespace swapx = swampi::swapx;

namespace {

constexpr int kActive = 4;
constexpr int kWorld = 6;
constexpr int kParticlesPerSlot = 64;
constexpr int kParticles = kActive * kParticlesPerSlot;
constexpr int kIterations = 12;
constexpr double kDt = 1e-3;
constexpr double kSofteningSq = 1e-2;

struct Vec2 {
  double x = 0.0, y = 0.0;
};

/// Deterministic initial condition: particles on a ring with tangential
/// velocities (net momentum zero).
void init_block(int slot, std::vector<Vec2>& pos, std::vector<Vec2>& vel) {
  for (int i = 0; i < kParticlesPerSlot; ++i) {
    const int gid = slot * kParticlesPerSlot + i;
    const double theta =
        2.0 * M_PI * static_cast<double>(gid) / kParticles;
    pos[static_cast<std::size_t>(i)] = {std::cos(theta), std::sin(theta)};
    vel[static_cast<std::size_t>(i)] = {-0.3 * std::sin(theta),
                                        0.3 * std::cos(theta)};
  }
}

}  // namespace

int main() {
  std::printf("particle_dynamics: %d particles, %d active / %d ranks\n",
              kParticles, kActive, kWorld);
  std::mutex io;
  Runtime runtime(kWorld);
  runtime.run([&io](Comm& world) {
    // Hosts 1 and 2 get hammered by external load from iteration 4 on;
    // hosts 4 and 5 (the spares) stay idle.
    std::vector<double> profile(kIterations, 1.0);
    if (world.rank() == 1 || world.rank() == 2)
      for (int i = 4; i < kIterations; ++i)
        profile[static_cast<std::size_t>(i)] = 0.2;
    Throttle throttle(200.0e6, profile);

    swapx::SwapConfig cfg;
    cfg.active_count = kActive;
    cfg.speed_probe = [&throttle] { return throttle.speed(); };
    swapx::SwapContext swap(world, cfg);

    // Per-slot particle block: this *is* the process state.
    std::vector<Vec2> pos(kParticlesPerSlot), vel(kParticlesPerSlot);
    swap.register_state(pos.data(), pos.size() * sizeof(Vec2));  // (2)
    swap.register_state(vel.data(), vel.size() * sizeof(Vec2));

    swapx::Role role = swap.role();
    if (role.active) init_block(role.slot, pos, vel);

    std::vector<Vec2> all_pos(kParticles);
    for (int iter = 0; iter < kIterations; ++iter) {
      throttle.set_phase(static_cast<std::size_t>(iter));
      double iter_time = 0.0;
      if (role.active) {
        // Everyone needs all positions: gather them via the slot owners.
        // Active slots exchange through a dedicated gather on world rank 0
        // of the active set; spares skip the compute entirely.
        for (int s = 0; s < kActive; ++s) {
          const swampi::Rank owner = swap.rank_of_slot(s);
          if (owner == world.rank()) {
            for (int r = 0; r < kActive; ++r) {
              const swampi::Rank peer = swap.rank_of_slot(r);
              if (peer != world.rank())
                world.send(pos.data(), pos.size(), peer, /*tag=*/100 + s);
            }
            std::copy(pos.begin(), pos.end(),
                      all_pos.begin() + s * kParticlesPerSlot);
          } else {
            world.recv(all_pos.data() + s * kParticlesPerSlot,
                       static_cast<std::size_t>(kParticlesPerSlot), owner,
                       100 + s);
          }
        }
        // O(n^2) force evaluation for my block + leapfrog step.
        const double work_flops =
            20.0 * kParticlesPerSlot * static_cast<double>(kParticles);
        for (int i = 0; i < kParticlesPerSlot; ++i) {
          const int gid = role.slot * kParticlesPerSlot + i;
          Vec2 acc;
          for (int j = 0; j < kParticles; ++j) {
            if (j == gid) continue;
            const double dx = all_pos[static_cast<std::size_t>(j)].x -
                              pos[static_cast<std::size_t>(i)].x;
            const double dy = all_pos[static_cast<std::size_t>(j)].y -
                              pos[static_cast<std::size_t>(i)].y;
            const double inv =
                1.0 / std::pow(dx * dx + dy * dy + kSofteningSq, 1.5);
            acc.x += dx * inv / kParticles;
            acc.y += dy * inv / kParticles;
          }
          vel[static_cast<std::size_t>(i)].x += kDt * acc.x;
          vel[static_cast<std::size_t>(i)].y += kDt * acc.y;
          pos[static_cast<std::size_t>(i)].x +=
              kDt * vel[static_cast<std::size_t>(i)].x;
          pos[static_cast<std::size_t>(i)].y +=
              kDt * vel[static_cast<std::size_t>(i)].y;
        }
        iter_time = throttle.time_for(work_flops);
      }

      const swapx::Role new_role = swap.swap_point(iter_time);  // (3)
      if (world.rank() == 0 && !swap.last_events().empty()) {
        const std::scoped_lock lock(io);
        for (const swapx::SwapEvent& e : swap.last_events())
          std::printf("  iter %2d: swapped slot %d off rank %d onto rank %d\n",
                      iter, e.slot, e.from, e.to);
      }
      role = new_role;
    }

    // Validation: total momentum must still be ~0 (state moved intact).
    Vec2 mine;
    if (role.active)
      for (const Vec2& v : vel) {
        mine.x += v.x;
        mine.y += v.y;
      }
    const double px = world.allreduce_value(mine.x, swampi::Op::kSum);
    const double py = world.allreduce_value(mine.y, swampi::Op::kSum);
    if (world.rank() == 0) {
      const std::scoped_lock lock(io);
      std::printf("total swaps: %zu\n", swap.swaps_performed());
      std::printf("momentum after %d iterations: (%.3e, %.3e)  %s\n",
                  kIterations, px, py,
                  std::abs(px) + std::abs(py) < 1e-9 ? "[conserved]"
                                                     : "[VIOLATED]");
    }
  });
  return 0;
}
