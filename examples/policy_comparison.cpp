// Compares the paper's three swapping policies (and NONE) on the simulated
// platform at three levels of environment dynamism, and prints a short
// narrative of when each policy is the right choice.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "load/onoff.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace swp = simsweep::swap;

int main() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 50, 2.0);
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.app.state_bytes_per_process = 100.0 * app::kMiB;
  cfg.spare_count = 28;
  cfg.seed = 7;

  struct Entry {
    const char* label;
    swp::PolicyParams policy;
  };
  const std::vector<Entry> policies{
      {"greedy", swp::greedy_policy()},
      {"safe", swp::safe_policy()},
      {"friendly", swp::friendly_policy()},
  };
  const std::vector<std::pair<const char*, double>> environments{
      {"quiescent (x=0.02)", 0.02},
      {"moderate  (x=0.10)", 0.10},
      {"chaotic   (x=0.80)", 0.80},
  };

  std::printf("%-20s %12s", "environment", "NONE");
  for (const Entry& e : policies) std::printf(" %11s", e.label);
  std::printf("   (makespan seconds, lower is better)\n");

  for (const auto& [env_label, dynamism] : environments) {
    const load::OnOffModel model(load::OnOffParams::dynamism(dynamism));
    strat::NoneStrategy none;
    const auto base = core::run_trials(cfg, model, none, 6);
    std::printf("%-20s %12.0f", env_label, base.mean);
    for (const Entry& e : policies) {
      strat::SwapStrategy s{e.policy};
      const auto stats = core::run_trials(cfg, model, s, 6);
      std::printf(" %11.0f", stats.mean);
    }
    std::printf("\n");
  }

  std::puts(
      "\nReading the table (paper §7.2):\n"
      " * greedy chases every predicted gain: best when load persists for\n"
      "   several iterations, worst when the environment decorrelates;\n"
      " * safe swaps only for >=20% gains recovered within half an\n"
      "   iteration, judged on 5 minutes of history: smaller upside, small\n"
      "   and bounded downside;\n"
      " * friendly adds a whole-application improvement test so it never\n"
      "   hoards fast processors for marginal wins.");
  return 0;
}
