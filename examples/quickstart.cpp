// Quickstart: simulate one application on a shared 32-workstation platform
// and compare do-nothing against policy-driven process swapping.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "load/onoff.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;

int main() {
  // A 32-host LAN of 100-500 Mflop/s workstations on a 6 MB/s shared link
  // (the paper's platform), with moderately dynamic ON/OFF CPU load.
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.seed = 2003;

  // The application: 4 processes, 60 iterations of ~2 minutes each,
  // 100 KiB of boundary exchange and 1 MiB of process state per process.
  cfg.app = app::AppSpec::with_iteration_minutes(/*active=*/4,
                                                 /*iterations=*/60,
                                                 /*minutes=*/2.0);
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 4;  // 100 % over-allocation

  const load::OnOffModel environment(load::OnOffParams::dynamism(0.25));

  strat::NoneStrategy none;
  strat::SwapStrategy greedy{simsweep::swap::greedy_policy()};
  strat::SwapStrategy safe{simsweep::swap::safe_policy()};

  std::printf("strategy        makespan[s]   vs NONE   swaps\n");
  const auto baseline = core::run_trials(cfg, environment, none, 5);
  std::printf("%-14s %12.1f %8.2fx %7.1f\n", "NONE", baseline.mean, 1.0, 0.0);
  for (auto* s : {static_cast<strat::Strategy*>(&greedy),
                  static_cast<strat::Strategy*>(&safe)}) {
    const auto stats = core::run_trials(cfg, environment, *s, 5);
    std::printf("%-14s %12.1f %8.2fx %7.1f\n", s->name().c_str(), stats.mean,
                baseline.mean / stats.mean, stats.mean_adaptations);
  }
  std::puts(
      "\nSwapping moves work off loaded processors at iteration boundaries;\n"
      "see DESIGN.md and the bench/ binaries for the paper's full figures.");
  return 0;
}
