// Replaying a recorded load trace (the paper's "future work" extension).
//
// Builds a synthetic office-hours load profile — machines idle at night,
// loaded during the working day with a lunchtime dip — replays it against
// the 32-host platform with per-host random phases, and compares NONE, DLB
// and SWAP(safe) over a run long enough to straddle the morning load surge.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "load/misc_models.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace sim = simsweep::sim;

namespace {

/// One synthetic "day" compressed to 4 simulated hours, sampled at 5-minute
/// resolution: quiet first hour, ramp to busy, lunchtime dip, busy
/// afternoon, quiet tail.
std::vector<sim::Sample> office_day() {
  std::vector<sim::Sample> trace;
  const double five_min = 300.0;
  auto block = [&](double start_slot, double end_slot, double level) {
    for (double s = start_slot; s < end_slot; s += 1.0)
      trace.push_back(sim::Sample{s * five_min, level});
  };
  block(0, 12, 0.0);   // hour 1: idle
  block(12, 18, 1.0);  // ramp: one competitor
  block(18, 24, 2.0);  // busy: two competitors
  block(24, 27, 1.0);  // lunch dip
  block(27, 39, 2.0);  // afternoon: busy
  block(39, 48, 0.0);  // evening: idle
  return trace;
}

}  // namespace

int main() {
  const double day = 4.0 * 3600.0;
  const load::TraceModel model(office_day(), day, /*random_phase=*/true);

  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 80, 2.0);
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.app.state_bytes_per_process = 10.0 * app::kMiB;
  cfg.spare_count = 28;
  cfg.seed = 11;

  std::puts("trace_scenario: office-hours load replay (4h day, random "
            "per-host phase)");
  std::printf("%-12s %14s %14s %10s\n", "strategy", "makespan[s]", "vs NONE",
              "moves");

  strat::NoneStrategy none;
  const auto base = core::run_trials(cfg, model, none, 6);
  std::printf("%-12s %14.0f %13.2fx %10.1f\n", "NONE", base.mean, 1.0, 0.0);

  strat::DlbStrategy dlb;
  const auto dlb_stats = core::run_trials(cfg, model, dlb, 6);
  std::printf("%-12s %14.0f %13.2fx %10.1f\n", "DLB", dlb_stats.mean,
              base.mean / dlb_stats.mean, dlb_stats.mean_adaptations);

  strat::SwapStrategy safe{simsweep::swap::safe_policy()};
  const auto swap_stats = core::run_trials(cfg, model, safe, 6);
  std::printf("%-12s %14.0f %13.2fx %10.1f\n", "SWAP(safe)", swap_stats.mean,
              base.mean / swap_stats.mean, swap_stats.mean_adaptations);

  std::puts("\nWith per-host phases, some machines are already busy when\n"
            "the application starts while others load up mid-run; swapping\n"
            "follows the idle machines around the office.");
  return 0;
}
