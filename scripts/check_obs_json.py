#!/usr/bin/env python3
"""Sanity-check simsweep observability artifacts.

Usage:
    check_obs_json.py metrics    FILE   # --metrics snapshot
    check_obs_json.py timeline   FILE   # --timeline Chrome trace
    check_obs_json.py profile    FILE   # captured --profile output
    check_obs_json.py journal    FILE   # sweep/bench --journal JSONL
    check_obs_json.py quarantine FILE   # sweep/bench --quarantine report
    check_obs_json.py scenario   FILE   # scenarios/*.json experiment spec
    check_obs_json.py status     FILE   # --status live telemetry snapshot
    check_obs_json.py report     FILE   # `report summary --json` document

Validates structure, not values: every artifact must parse, carry the shared
provenance block, and obey its schema (histogram counts arrays one longer
than their bounds, trace events restricted to known phases, and so on).
Exits non-zero with a one-line diagnosis on the first violation, so CI can
gate on it directly.
"""

import json
import sys

PROVENANCE_KEYS = {"version", "build_type", "seed", "config_digest"}


class CheckFailed(Exception):
    pass


def require(cond, message):
    if not cond:
        raise CheckFailed(message)


def check_provenance(meta, where):
    require(isinstance(meta, dict), f"{where}: meta is not an object")
    # "partial" appears only on artifacts from an interrupted sweep, and
    # only as the literal true — complete artifacts omit it byte-for-byte.
    require(
        set(meta) - {"partial"} == PROVENANCE_KEYS,
        f"{where}: meta keys {sorted(meta)} != {sorted(PROVENANCE_KEYS)}",
    )
    if "partial" in meta:
        require(meta["partial"] is True,
                f"{where}: meta.partial must be the literal true when present")
    require(isinstance(meta["version"], str) and meta["version"],
            f"{where}: meta.version must be a non-empty string")
    require(isinstance(meta["build_type"], str),
            f"{where}: meta.build_type must be a string")
    require(isinstance(meta["seed"], int) and meta["seed"] >= 0,
            f"{where}: meta.seed must be a non-negative integer")
    digest = meta["config_digest"]
    require(
        isinstance(digest, str) and len(digest) == 16
        and all(c in "0123456789abcdef" for c in digest),
        f"{where}: meta.config_digest must be 16 lowercase hex chars",
    )


def check_metrics(doc):
    require(isinstance(doc, dict), "metrics: top level is not an object")
    require(
        list(doc) == ["meta", "counters", "gauges", "histograms"],
        f"metrics: top-level keys {list(doc)} != "
        "['meta', 'counters', 'gauges', 'histograms']",
    )
    check_provenance(doc["meta"], "metrics")

    counters = doc["counters"]
    require(isinstance(counters, dict), "metrics: counters is not an object")
    for name, value in counters.items():
        require(isinstance(value, int) and value >= 0,
                f"metrics: counter {name!r} is not a non-negative integer")

    gauges = doc["gauges"]
    require(isinstance(gauges, dict), "metrics: gauges is not an object")
    for name, gauge in gauges.items():
        require(
            isinstance(gauge, dict) and set(gauge) == {"last", "min", "max"},
            f"metrics: gauge {name!r} must have exactly last/min/max",
        )
        require(gauge["min"] <= gauge["max"],
                f"metrics: gauge {name!r} has min > max")
        require(gauge["min"] <= gauge["last"] <= gauge["max"],
                f"metrics: gauge {name!r} last outside [min, max]")

    histograms = doc["histograms"]
    require(isinstance(histograms, dict), "metrics: histograms is not an object")
    expected = {"count", "sum", "min", "max", "bounds", "counts"}
    for name, hist in histograms.items():
        require(isinstance(hist, dict) and set(hist) == expected,
                f"metrics: histogram {name!r} keys != {sorted(expected)}")
        bounds, counts = hist["bounds"], hist["counts"]
        require(bounds == sorted(bounds),
                f"metrics: histogram {name!r} bounds not sorted")
        require(
            len(counts) == len(bounds) + 1,
            f"metrics: histogram {name!r} has {len(counts)} counts for "
            f"{len(bounds)} bounds (want bounds+1, overflow bucket last)",
        )
        require(all(isinstance(c, int) and c >= 0 for c in counts),
                f"metrics: histogram {name!r} has a negative bucket count")
        require(sum(counts) == hist["count"],
                f"metrics: histogram {name!r} bucket counts do not sum to count")
        if hist["count"] > 0:
            require(hist["min"] <= hist["max"],
                    f"metrics: histogram {name!r} has min > max")

    for section, sorted_keys in (("counters", counters), ("gauges", gauges),
                                 ("histograms", histograms)):
        keys = list(sorted_keys)
        require(keys == sorted(keys), f"metrics: {section} keys not sorted")


def check_timeline(doc):
    require(isinstance(doc, dict), "timeline: top level is not an object")
    require(doc.get("displayTimeUnit") == "ms",
            "timeline: displayTimeUnit != 'ms'")
    other = doc.get("otherData")
    require(isinstance(other, dict) and "meta" in other,
            "timeline: otherData.meta missing")
    check_provenance(other["meta"], "timeline")

    events = doc.get("traceEvents")
    require(isinstance(events, list) and events,
            "timeline: traceEvents missing or empty")
    named_pids = set()
    phases = {"M": 0, "X": 0, "i": 0}
    for i, ev in enumerate(events):
        where = f"timeline: traceEvents[{i}]"
        require(isinstance(ev, dict), f"{where} is not an object")
        ph = ev.get("ph")
        require(ph in phases, f"{where} has unknown phase {ph!r}")
        phases[ph] += 1
        require(isinstance(ev.get("pid"), int) and ev["pid"] >= 1,
                f"{where} pid must be an integer >= 1")
        if ph == "M":
            require(ev.get("name") in ("process_name", "thread_name"),
                    f"{where} metadata name {ev.get('name')!r}")
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
        else:
            require(isinstance(ev.get("name"), str) and ev["name"],
                    f"{where} name must be a non-empty string")
            require(isinstance(ev.get("ts"), (int, float)) and ev["ts"] >= 0,
                    f"{where} ts must be a non-negative number")
            if ph == "X":
                require(
                    isinstance(ev.get("dur"), (int, float)) and ev["dur"] >= 0,
                    f"{where} dur must be a non-negative number",
                )
    pids = {ev["pid"] for ev in events}
    require(pids <= named_pids,
            f"timeline: pids {sorted(pids - named_pids)} have no process_name")
    require(phases["M"] > 0, "timeline: no metadata events")
    require(phases["X"] + phases["i"] > 0, "timeline: no span/instant events")


def check_digest(value, where):
    require(
        isinstance(value, str) and len(value) == 16
        and all(c in "0123456789abcdef" for c in value),
        f"{where} must be 16 lowercase hex chars",
    )


OUTCOMES = {"ok", "hung", "crashed", "audit-failed"}

STATS_KEYS = {
    "mean", "stddev", "min", "max", "trials", "unfinished", "stalled",
    "resource_exhausted", "mean_adaptations", "mean_crashes",
    "mean_transfer_failures", "mean_recoveries", "mean_checkpoint_failures",
    "mean_time_lost_s", "audit_violations",
}


def check_journal(text):
    lines = text.splitlines()
    require(lines, "journal: file is empty")
    header = json.loads(lines[0])
    require(isinstance(header, dict) and header.get("kind") == "sweep-journal",
            "journal: first line is not a sweep-journal header")
    require(
        set(header) == {"kind", "version", "scenario", "sweep", "seed",
                        "trials", "points", "cells"},
        f"journal: header keys {sorted(header)} unexpected",
    )
    require(isinstance(header["version"], int) and header["version"] >= 2,
            "journal: header version must be an integer >= 2")
    require(isinstance(header["scenario"], str) and header["scenario"],
            "journal: header.scenario must be a non-empty string")
    check_digest(header["sweep"], "journal: header.sweep")
    cells = header["cells"]
    require(isinstance(cells, int) and cells >= 1,
            "journal: header.cells must be a positive integer")

    for i, line in enumerate(lines[1:], start=1):
        where = f"journal: line {i + 1}"
        record = json.loads(line)
        require(isinstance(record, dict) and record.get("kind") == "cell",
                f"{where}: not a cell record")
        keys = set(record) - {"metrics", "timeline"}
        require(
            keys == {"kind", "index", "key", "seed", "trials", "label",
                     "outcome", "stats"},
            f"{where}: cell keys {sorted(record)} unexpected",
        )
        require(isinstance(record["index"], int)
                and 0 <= record["index"] < cells,
                f"{where}: index outside [0, {cells})")
        check_digest(record["key"], f"{where}: key")
        require(record["seed"] == header["seed"],
                f"{where}: seed differs from header")
        require(record["trials"] == header["trials"],
                f"{where}: trials differs from header")
        require(record["outcome"] in OUTCOMES,
                f"{where}: unknown outcome {record['outcome']!r}")
        stats = record["stats"]
        require(isinstance(stats, dict) and set(stats) == STATS_KEYS,
                f"{where}: stats keys {sorted(stats)} != {sorted(STATS_KEYS)}")
        for field in ("metrics", "timeline"):
            if field in record:
                require(isinstance(record[field], str) and record[field],
                        f"{where}: {field} must be a non-empty string")


def check_quarantine(doc):
    require(isinstance(doc, dict), "quarantine: top level is not an object")
    require(list(doc) == ["meta", "quarantined"],
            f"quarantine: top-level keys {list(doc)} != ['meta', 'quarantined']")
    check_provenance(doc["meta"], "quarantine")
    records = doc["quarantined"]
    require(isinstance(records, list), "quarantine: quarantined is not a list")
    expected = {"index", "key", "seed", "trials", "label", "outcome",
                "attempts", "error"}
    last_index = -1
    for i, record in enumerate(records):
        where = f"quarantine: quarantined[{i}]"
        require(isinstance(record, dict) and set(record) == expected,
                f"{where} keys != {sorted(expected)}")
        require(isinstance(record["index"], int) and record["index"] >= 0,
                f"{where} index must be a non-negative integer")
        require(record["index"] > last_index,
                f"{where} records not in strictly increasing index order")
        last_index = record["index"]
        check_digest(record["key"], f"{where} key")
        require(record["outcome"] in OUTCOMES - {"ok"},
                f"{where} outcome {record['outcome']!r} not a failure kind")
        require(isinstance(record["attempts"], int) and record["attempts"] >= 1,
                f"{where} attempts must be a positive integer")
        require(isinstance(record["error"], str),
                f"{where} error must be a string")


SCENARIO_KINDS = {"grid", "payback", "load_trace", "decision_histogram"}

SCENARIO_TOP_KEYS = {
    "name", "kind", "title", "expectation", "config", "faults", "trials",
    "forbid_stalls", "load", "axis", "variants", "reports", "payback",
    "trace", "histogram",
}

AXIS_BINDS = {
    "none", "load.dynamism", "spares.percent_of_active",
    "load.mean_lifetime_s", "faults.mtbf_hours", "load.mean_reclaimed_min",
    "policy.payback_threshold_iters", "policy.history_window_s",
    "policy.min_process_improvement", "policy.max_swaps_per_decision",
}

STRATEGY_KINDS = {"none", "swap", "dlb", "dlbswap", "cr"}

LOAD_MODELS = {"onoff", "hyperexp", "reclaim"}


def check_scenario(doc, stem):
    """Structural check of one scenarios/*.json file.

    The C++ parser (src/scenario) is the authority on values and
    cross-field consistency; this guards the things CI wants cheap and
    early: the file parses, uses only known keys/kinds, and its name
    matches its file stem so `simsweep bench <stem>` finds it.
    """
    require(isinstance(doc, dict), "scenario: top level is not an object")
    unknown = set(doc) - SCENARIO_TOP_KEYS
    require(not unknown, f"scenario: unknown top-level keys {sorted(unknown)}")
    for key in ("name", "kind", "title", "expectation"):
        require(isinstance(doc.get(key), str) and doc[key],
                f"scenario: {key!r} must be a non-empty string")
    require(doc["name"] == stem,
            f"scenario: name {doc['name']!r} != file stem {stem!r}")
    kind = doc["kind"]
    require(kind in SCENARIO_KINDS,
            f"scenario: kind {kind!r} not in {sorted(SCENARIO_KINDS)}")

    if "trials" in doc:
        require(isinstance(doc["trials"], int) and doc["trials"] >= 1,
                "scenario: trials must be a positive integer")
    if "load" in doc:
        load = doc["load"]
        require(isinstance(load, dict), "scenario: load is not an object")
        require(load.get("model") in LOAD_MODELS,
                f"scenario: load.model {load.get('model')!r} not in "
                f"{sorted(LOAD_MODELS)}")
    if "axis" in doc:
        axis = doc["axis"]
        require(isinstance(axis, dict), "scenario: axis is not an object")
        require(axis.get("binds") in AXIS_BINDS,
                f"scenario: axis.binds {axis.get('binds')!r} not in "
                f"{sorted(AXIS_BINDS)}")
        xs = axis.get("x")
        require(isinstance(xs, list) and xs
                and all(isinstance(x, (int, float)) for x in xs),
                "scenario: axis.x must be a non-empty list of numbers")

    if kind == "grid":
        variants = doc.get("variants")
        require(isinstance(variants, list) and variants,
                "scenario: grid requires a non-empty 'variants' list")
        names = set()
        for i, variant in enumerate(variants):
            where = f"scenario: variants[{i}]"
            require(isinstance(variant, dict), f"{where} is not an object")
            require(isinstance(variant.get("name"), str) and variant["name"],
                    f"{where} needs a non-empty name")
            require(variant["name"] not in names,
                    f"{where} duplicates name {variant['name']!r}")
            names.add(variant["name"])
            strat = variant.get("strategy")
            require(isinstance(strat, dict)
                    and strat.get("kind") in STRATEGY_KINDS,
                    f"{where} strategy.kind must be one of "
                    f"{sorted(STRATEGY_KINDS)}")
        if "reports" in doc:
            reports = doc["reports"]
            require(isinstance(reports, list) and reports,
                    "scenario: reports must be a non-empty list when present")
            for i, report in enumerate(reports):
                where = f"scenario: reports[{i}]"
                require(isinstance(report, dict)
                        and isinstance(report.get("series"), list)
                        and report["series"],
                        f"{where} needs a non-empty 'series' list")
                for j, series in enumerate(report["series"]):
                    require(
                        isinstance(series, dict)
                        and isinstance(series.get("variant"), int)
                        and 0 <= series["variant"] < len(variants),
                        f"{where} series[{j}] variant index out of range",
                    )
    elif kind == "payback":
        payback = doc.get("payback")
        require(isinstance(payback, dict), "scenario: payback block required")
        for key in ("iter_s", "swap_s"):
            value = payback.get(key)
            require(isinstance(value, (int, float)) and value > 0,
                    f"scenario: payback.{key} must be a positive number")
    elif kind == "load_trace":
        require(isinstance(doc.get("load"), dict),
                "scenario: load_trace requires a 'load' block")
        trace = doc.get("trace")
        require(isinstance(trace, dict), "scenario: trace block required")
        horizon = trace.get("horizon_s")
        require(isinstance(horizon, (int, float)) and horizon > 0,
                "scenario: trace.horizon_s must be a positive number")
    elif kind == "decision_histogram":
        hist = doc.get("histogram")
        require(isinstance(hist, dict), "scenario: histogram block required")
        policies = hist.get("policies")
        require(isinstance(policies, list) and policies
                and all(isinstance(p, str) for p in policies),
                "scenario: histogram.policies must be non-empty strings")
        dynamisms = hist.get("dynamisms")
        require(isinstance(dynamisms, list) and dynamisms
                and all(isinstance(d, (int, float)) for d in dynamisms),
                "scenario: histogram.dynamisms must be non-empty numbers")


STATUS_STATES = {"running", "done", "interrupted"}

STATUS_CELL_KEYS = ("total", "done", "reused", "executed", "in_flight",
                    "retries", "quarantined")


def check_status(doc):
    require(isinstance(doc, dict), "status: top level is not an object")
    require(doc.get("kind") == "sweep-status",
            "status: kind != 'sweep-status'")
    expected = ["kind", "meta", "scenario", "state", "heartbeat_unix_s",
                "elapsed_s", "heartbeat_s", "jobs", "trials", "cells",
                "groups", "eta"]
    keys = [k for k in doc if k != "workers"]  # workers only with --profile
    require(keys == expected,
            f"status: top-level keys {list(doc)} != {expected} [+ workers]")
    check_provenance(doc["meta"], "status")
    require(isinstance(doc["scenario"], str) and doc["scenario"],
            "status: scenario must be a non-empty string")
    state = doc["state"]
    require(state in STATUS_STATES,
            f"status: state {state!r} not in {sorted(STATUS_STATES)}")
    # Anything short of "done" is a partial view of the run; complete
    # snapshots omit the flag byte-for-byte (same rule as every artifact).
    require((state != "done") == ("partial" in doc["meta"]),
            f"status: state {state!r} inconsistent with meta.partial")
    for key in ("heartbeat_unix_s", "elapsed_s", "heartbeat_s"):
        require(isinstance(doc[key], (int, float)) and doc[key] >= 0,
                f"status: {key} must be a non-negative number")
    for key in ("jobs", "trials"):
        require(isinstance(doc[key], int) and doc[key] >= 1,
                f"status: {key} must be a positive integer")

    cells = doc["cells"]
    require(isinstance(cells, dict) and list(cells) == list(STATUS_CELL_KEYS),
            f"status: cells keys {list(cells)} != {list(STATUS_CELL_KEYS)}")
    for key in STATUS_CELL_KEYS:
        require(isinstance(cells[key], int) and cells[key] >= 0,
                f"status: cells.{key} must be a non-negative integer")
    require(cells["done"] <= cells["total"], "status: done > total")
    require(cells["done"] == cells["reused"] + cells["executed"]
            + cells["quarantined"],
            "status: done != reused + executed + quarantined")
    if state == "done":
        require(cells["in_flight"] == 0, "status: done with cells in flight")

    groups = doc["groups"]
    require(isinstance(groups, list), "status: groups is not a list")
    group_done = group_total = 0
    for i, group in enumerate(groups):
        where = f"status: groups[{i}]"
        require(isinstance(group, dict)
                and list(group) == ["name", "done", "total"],
                f"{where} keys != ['name', 'done', 'total']")
        require(isinstance(group["name"], str) and group["name"],
                f"{where} name must be a non-empty string")
        require(0 <= group["done"] <= group["total"],
                f"{where} done outside [0, total]")
        group_done += group["done"]
        group_total += group["total"]
    if groups:
        require(group_total == cells["total"],
                "status: group totals do not sum to cells.total")
        require(group_done == cells["done"],
                "status: group done counts do not sum to cells.done")

    eta = doc["eta"]
    require(isinstance(eta, dict)
            and list(eta) == ["ewma_cell_s", "eta_s", "percent"],
            f"status: eta keys {list(eta)} unexpected")
    for key in ("ewma_cell_s", "eta_s"):
        require(isinstance(eta[key], (int, float)) and eta[key] >= 0,
                f"status: eta.{key} must be a non-negative number")
    require(0.0 <= eta["percent"] <= 100.0,
            "status: eta.percent outside [0, 100]")

    if "workers" in doc:
        workers = doc["workers"]
        require(isinstance(workers, list) and workers,
                "status: workers must be a non-empty list when present")
        for i, worker in enumerate(workers):
            where = f"status: workers[{i}]"
            require(isinstance(worker, dict)
                    and list(worker) == ["tasks", "busy_s", "utilization"],
                    f"{where} keys != ['tasks', 'busy_s', 'utilization']")
            require(0.0 <= worker["utilization"] <= 1.0,
                    f"{where} utilization outside [0, 1]")


REPORT_KINDS = {"metrics", "timeline", "profile", "journal", "quarantine",
                "status", "series"}


def check_report(doc):
    require(isinstance(doc, dict), "report: top level is not an object")
    require(doc.get("kind") == "report-summary",
            "report: kind != 'report-summary'")
    require(list(doc) == ["kind", "artifacts"],
            f"report: top-level keys {list(doc)} != ['kind', 'artifacts']")
    artifacts = doc["artifacts"]
    require(isinstance(artifacts, list) and artifacts,
            "report: artifacts missing or empty")
    for i, artifact in enumerate(artifacts):
        where = f"report: artifacts[{i}]"
        require(isinstance(artifact, dict)
                and list(artifact) == ["kind", "path", "meta", "values"],
                f"{where} keys != ['kind', 'path', 'meta', 'values']")
        require(artifact["kind"] in REPORT_KINDS,
                f"{where} kind {artifact['kind']!r} not in "
                f"{sorted(REPORT_KINDS)}")
        require(isinstance(artifact["path"], str) and artifact["path"],
                f"{where} path must be a non-empty string")
        if artifact["meta"] is not None:
            check_provenance(artifact["meta"], where)
        values = artifact["values"]
        require(isinstance(values, dict), f"{where} values is not an object")
        for key, value in values.items():
            require(isinstance(value, (int, float)) or value is None,
                    f"{where} values[{key!r}] must be a number or null")


def check_profile(text):
    lines = [ln for ln in text.splitlines() if ln.startswith("profile:")]
    require(lines, "profile: no 'profile:' lines found")
    require(any("trials in" in ln and "s wall" in ln for ln in lines),
            "profile: missing wall-clock summary line")
    require(any("trial duration" in ln for ln in lines),
            "profile: missing trial duration line")
    require(any("queue wait" in ln for ln in lines),
            "profile: missing queue wait line")
    workers = [ln for ln in lines if "utilization" in ln]
    require(workers, "profile: missing per-worker utilization lines")
    for ln in workers:
        pct = float(ln.rsplit("utilization", 1)[1].strip().rstrip("%"))
        require(0.0 <= pct <= 100.0,
                f"profile: utilization {pct}% outside [0, 100]")


def main(argv):
    kinds = ("metrics", "timeline", "profile", "journal", "quarantine",
             "scenario", "status", "report")
    if len(argv) != 3 or argv[1] not in kinds:
        sys.stderr.write(__doc__)
        return 2
    kind, path = argv[1], argv[2]
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    try:
        if kind == "profile":
            check_profile(raw)
        elif kind == "journal":
            check_journal(raw)
        elif kind == "scenario":
            stem = path.rsplit("/", 1)[-1]
            stem = stem[:-len(".json")] if stem.endswith(".json") else stem
            check_scenario(json.loads(raw), stem)
        else:
            doc = json.loads(raw)
            checker = {"metrics": check_metrics, "timeline": check_timeline,
                       "quarantine": check_quarantine, "status": check_status,
                       "report": check_report}[kind]
            checker(doc)
    except CheckFailed as err:
        print(f"check_obs_json: FAIL ({path}): {err}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as err:
        print(f"check_obs_json: FAIL ({path}): invalid JSON: {err}",
              file=sys.stderr)
        return 1
    print(f"check_obs_json: OK ({kind}: {path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
