#include "app/app_spec.hpp"

#include <numeric>

namespace simsweep::app {

WorkPartition WorkPartition::equal(std::size_t n) {
  if (n == 0) throw std::invalid_argument("WorkPartition: zero slots");
  return WorkPartition(
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

WorkPartition WorkPartition::proportional(const std::vector<double>& weights) {
  if (weights.empty())
    throw std::invalid_argument("WorkPartition: no weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("WorkPartition: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("WorkPartition: weights sum to zero");
  std::vector<double> fractions;
  fractions.reserve(weights.size());
  for (double w : weights) fractions.push_back(w / total);
  return WorkPartition(std::move(fractions));
}

}  // namespace simsweep::app
