// Description of the simulated iterative application.
//
// The paper targets data-parallel iterative applications executed in BSP
// style: every iteration, each active process computes its chunk of the
// work, then all processes exchange data over the shared link; the next
// iteration starts when the slowest process has finished both phases.
// Characteristic ranges simulated in the paper (§6):
//   * per-process compute time per iteration, unloaded: 1–5 minutes,
//   * per-process communication per iteration: 1 KB – 1 GB,
//   * per-process state moved by a swap or checkpoint: 1 KB – 1 GB.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace simsweep::app {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct AppSpec {
  /// N: processors the application actually computes on.
  std::size_t active_processes = 4;

  /// Iterations to run ("until convergence" is approximated by a fixed
  /// count; policies never rely on knowing it — that is the point of the
  /// payback metric).
  std::size_t iterations = 100;

  /// Total flops per iteration, divided among active processes according to
  /// the work partition (equal chunks except under DLB).
  double work_per_iteration_flops = 0.0;

  /// Bytes each process sends during the communication phase per iteration.
  double comm_bytes_per_process = 100.0 * kKiB;

  /// Bytes of process state transferred by one swap / written by one
  /// checkpoint, per process.
  double state_bytes_per_process = kMiB;

  /// Convenience: sizes the total work so one iteration takes
  /// `minutes` on `active` unloaded reference processors of `ref_speed`.
  [[nodiscard]] static AppSpec with_iteration_minutes(
      std::size_t active, std::size_t iterations, double minutes,
      double ref_speed_flops = 300.0e6) {
    AppSpec spec;
    spec.active_processes = active;
    spec.iterations = iterations;
    spec.work_per_iteration_flops =
        minutes * 60.0 * ref_speed_flops * static_cast<double>(active);
    return spec;
  }

  void validate() const {
    if (active_processes == 0)
      throw std::invalid_argument("AppSpec: no active processes");
    if (iterations == 0) throw std::invalid_argument("AppSpec: no iterations");
    if (work_per_iteration_flops <= 0.0)
      throw std::invalid_argument("AppSpec: work must be positive");
    if (comm_bytes_per_process < 0.0 || state_bytes_per_process < 0.0)
      throw std::invalid_argument("AppSpec: negative byte count");
  }

  /// Equal-chunk flops per process per iteration.
  [[nodiscard]] double equal_chunk() const {
    return work_per_iteration_flops / static_cast<double>(active_processes);
  }
};

/// Fraction of the per-iteration work assigned to each active slot.
/// Fractions sum to 1.  Slot k keeps its fraction when its process is
/// swapped to another host (the paper forbids data redistribution).
class WorkPartition {
 public:
  /// Equal chunks across `n` slots.
  static WorkPartition equal(std::size_t n);

  /// Chunks proportional to the given weights (e.g. effective speeds).
  static WorkPartition proportional(const std::vector<double>& weights);

  [[nodiscard]] std::size_t slots() const noexcept { return fractions_.size(); }
  [[nodiscard]] double fraction(std::size_t slot) const {
    return fractions_.at(slot);
  }
  [[nodiscard]] const std::vector<double>& fractions() const noexcept {
    return fractions_;
  }

 private:
  explicit WorkPartition(std::vector<double> fractions)
      : fractions_(std::move(fractions)) {}
  std::vector<double> fractions_;
};

}  // namespace simsweep::app
