#include "audit/auditor.hpp"

#include <cstdlib>
#include <utility>

namespace simsweep::audit {

const char* to_string(AuditMode mode) noexcept {
  switch (mode) {
    case AuditMode::kOff:
      return "off";
    case AuditMode::kWarn:
      return "warn";
    case AuditMode::kFail:
      return "fail";
  }
  return "unknown";
}

AuditMode parse_mode(std::string_view text) {
  if (text.empty() || text == "fail") return AuditMode::kFail;
  if (text == "warn") return AuditMode::kWarn;
  if (text == "off") return AuditMode::kOff;
  throw std::invalid_argument("audit mode must be fail|warn|off, got '" +
                              std::string(text) + "'");
}

AuditMode mode_from_env() {
  const char* value = std::getenv("SIMSWEEP_AUDIT");
  if (value == nullptr || *value == '\0') return AuditMode::kOff;
  return parse_mode(value);
}

std::string to_string(const Violation& v) {
  return "invariant violation [" + v.subsystem + "/" + v.invariant + "] at t=" +
         std::to_string(v.time_s) + "s: " + v.detail;
}

AuditFailure::AuditFailure(const Violation& violation)
    : std::runtime_error(to_string(violation)) {}

void InvariantAuditor::report(std::string_view subsystem,
                              std::string_view invariant, sim::SimTime time_s,
                              std::string detail) {
  if (mode_ == AuditMode::kOff) return;
  Violation violation{std::string(subsystem), std::string(invariant), time_s,
                      std::move(detail)};
  if (mode_ == AuditMode::kFail) throw AuditFailure(violation);
  const std::lock_guard<std::mutex> lock(mutex_);
  violations_.push_back(std::move(violation));
}

std::size_t InvariantAuditor::violation_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return violations_.size();
}

std::vector<Violation> InvariantAuditor::take_violations() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(violations_, {});
}

}  // namespace simsweep::audit
