// Simulation-wide invariant auditor.
//
// Every figure in the paper rests on quantities the simulator must conserve
// exactly: virtual time only moves forward, the shared link never hands out
// more than its bandwidth, availability integrals stay in [0, 1], and the
// makespan decomposes into startup + iterations + overhead.  The auditor is
// the one registry those checks report into.  It is always compiled and
// normally off; subsystems guard every check behind a cheap
// pointer-and-enabled test and only build the violation message once a check
// has actually failed, so a non-audited run does no extra work and allocates
// nothing.
//
// Modes:
//   kOff  — auditing disabled; subsystems skip their checks entirely.
//   kWarn — violations are collected; the experiment layer copies them into
//           RunResult::audit_report after the run.
//   kFail — the first violation throws AuditFailure, aborting the run at the
//           exact simulated instant the invariant broke.
//
// Reporting is mutex-protected because swampi ranks (one thread each) may
// share one auditor; simulator-driven code is single-threaded per run and
// never contends.
#pragma once

#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/sim_time.hpp"

namespace simsweep::audit {

enum class AuditMode { kOff, kWarn, kFail };

[[nodiscard]] const char* to_string(AuditMode mode) noexcept;

/// Parses "fail", "warn" or "off"; an empty string means "fail" (a bare
/// --audit flag enables the strict mode).  Throws on anything else.
[[nodiscard]] AuditMode parse_mode(std::string_view text);

/// Audit mode requested by the SIMSWEEP_AUDIT environment variable
/// ("fail" / "warn" / "off"); kOff when unset.  Lets CI run the whole test
/// suite audited without threading a flag through every harness.
[[nodiscard]] AuditMode mode_from_env();

/// One broken invariant, with enough context to find the culprit: which
/// subsystem reported it, which invariant broke, at what simulated time, and
/// the offending values.
struct Violation {
  std::string subsystem;
  std::string invariant;
  sim::SimTime time_s = 0.0;
  std::string detail;
};

/// "invariant violation [subsystem/invariant] at t=...s: detail".
[[nodiscard]] std::string to_string(const Violation& violation);

/// Thrown by InvariantAuditor::report in kFail mode.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const Violation& violation);
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditMode mode = AuditMode::kOff) : mode_(mode) {}

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  [[nodiscard]] AuditMode mode() const noexcept { return mode_; }

  /// The guard every instrumentation site checks before doing any work.
  [[nodiscard]] bool enabled() const noexcept {
    return mode_ != AuditMode::kOff;
  }

  /// Records one broken invariant.  Throws AuditFailure in kFail mode,
  /// collects the violation in kWarn mode, and is a no-op in kOff mode
  /// (call sites should not report when disabled, but a stray report must
  /// not perturb anything).
  void report(std::string_view subsystem, std::string_view invariant,
              sim::SimTime time_s, std::string detail);

  [[nodiscard]] std::size_t violation_count() const;

  /// Collected violations (kWarn mode); empty in kFail mode because the
  /// first report throws instead.
  [[nodiscard]] std::vector<Violation> take_violations();

 private:
  AuditMode mode_;
  mutable std::mutex mutex_;
  std::vector<Violation> violations_;
};

}  // namespace simsweep::audit
