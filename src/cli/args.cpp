#include "cli/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

namespace simsweep::cli {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row Wagner–Fischer; flag names are short, so O(|a|·|b|) is fine.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string suggest_flag(const std::string& unknown,
                         const std::vector<std::string>& vocabulary) {
  // Accept a suggestion only when the typo is small relative to the name:
  // --trails → --trials, but --frobnicate suggests nothing.
  const std::size_t cap = std::max<std::size_t>(1, unknown.size() / 3);
  std::string best;
  std::size_t best_distance = cap + 1;
  for (const std::string& candidate : vocabulary) {
    const std::size_t d = edit_distance(unknown, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

Args::Args(std::vector<std::string> tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty())
      throw std::invalid_argument("Args: bare '--' is not a flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      flags_[body] = tokens[++i];
    } else {
      flags_[body] = "";  // boolean flag
    }
  }
  for (const auto& [name, _] : flags_) consumed_[name] = false;
}

std::optional<std::string> Args::raw(const std::string& flag) {
  queried_.insert(flag);
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  consumed_[flag] = true;
  return it->second;
}

bool Args::has(const std::string& flag) const {
  queried_.insert(flag);
  return flags_.contains(flag);
}

std::string Args::get_string(const std::string& flag,
                             const std::string& fallback) {
  const auto v = raw(flag);
  return v ? *v : fallback;
}

double Args::get_double(const std::string& flag, double fallback) {
  const auto v = raw(flag);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument("Args: --" + flag + " expects a number, got '" +
                                *v + "'");
  return parsed;
}

long Args::get_int(const std::string& flag, long fallback) {
  const auto v = raw(flag);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0')
    throw std::invalid_argument("Args: --" + flag +
                                " expects an integer, got '" + *v + "'");
  return parsed;
}

bool Args::get_bool(const std::string& flag) {
  const auto v = raw(flag);
  if (!v) return false;
  if (v->empty() || *v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  throw std::invalid_argument("Args: --" + flag + " expects a boolean, got '" +
                              *v + "'");
}

std::vector<double> Args::get_double_list(const std::string& flag,
                                          const std::vector<double>& fallback) {
  const auto v = raw(flag);
  if (!v) return fallback;
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    const std::size_t comma = v->find(',', start);
    const std::string item =
        v->substr(start, comma == std::string::npos ? std::string::npos
                                                    : comma - start);
    if (item.empty())
      throw std::invalid_argument("Args: --" + flag + " has an empty element");
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0')
      throw std::invalid_argument("Args: --" + flag +
                                  " expects numbers, got '" + item + "'");
    out.push_back(parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> Args::unused_flags() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_)
    if (!used) out.push_back(name);
  return out;
}

std::vector<std::string> Args::queried_flags() const {
  return {queried_.begin(), queried_.end()};
}

}  // namespace simsweep::cli
