// Minimal command-line parsing for the simsweep CLI.
//
// Supports `--name=value`, `--name value`, bare boolean `--flag`, and
// positional arguments.  Unknown-flag detection is the caller's job via
// unused_flags(), so each subcommand can own its flag set.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace simsweep::cli {

/// A supplied flag no subcommand getter ever consumed — i.e. a typo.  The
/// message carries a nearest-match suggestion when one is close enough;
/// flags() lists the offending names (without "--") for tests and tooling.
class UnknownFlagError : public std::invalid_argument {
 public:
  UnknownFlagError(const std::string& message, std::vector<std::string> flags)
      : std::invalid_argument(message), flags_(std::move(flags)) {}

  [[nodiscard]] const std::vector<std::string>& flags() const noexcept {
    return flags_;
  }

 private:
  std::vector<std::string> flags_;
};

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The vocabulary entry closest to `unknown`, or "" when nothing is close
/// enough to plausibly be a typo (distance capped at ~1/3 of the length).
[[nodiscard]] std::string suggest_flag(
    const std::string& unknown, const std::vector<std::string>& vocabulary);

class Args {
 public:
  /// Parses argv-style input (argv[0] excluded).
  explicit Args(std::vector<std::string> tokens);

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Typed getters; throw std::invalid_argument on malformed values.
  [[nodiscard]] std::string get_string(const std::string& flag,
                                       const std::string& fallback);
  [[nodiscard]] double get_double(const std::string& flag, double fallback);
  [[nodiscard]] long get_int(const std::string& flag, long fallback);
  [[nodiscard]] bool get_bool(const std::string& flag);

  /// Comma-separated list of doubles (e.g. --points=0,0.1,0.5).
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& flag, const std::vector<double>& fallback);

  /// Flags that were supplied but never read; nonempty means a typo.
  [[nodiscard]] std::vector<std::string> unused_flags() const;

  /// Every flag name a getter has asked about so far (whether or not it was
  /// supplied), sorted — the suggestion vocabulary for unknown-flag errors.
  [[nodiscard]] std::vector<std::string> queried_flags() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& flag);

  std::map<std::string, std::string> flags_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace simsweep::cli
