// Minimal command-line parsing for the simsweep CLI.
//
// Supports `--name=value`, `--name value`, bare boolean `--flag`, and
// positional arguments.  Unknown-flag detection is the caller's job via
// unused_flags(), so each subcommand can own its flag set.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace simsweep::cli {

class Args {
 public:
  /// Parses argv-style input (argv[0] excluded).
  explicit Args(std::vector<std::string> tokens);

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Typed getters; throw std::invalid_argument on malformed values.
  [[nodiscard]] std::string get_string(const std::string& flag,
                                       const std::string& fallback);
  [[nodiscard]] double get_double(const std::string& flag, double fallback);
  [[nodiscard]] long get_int(const std::string& flag, long fallback);
  [[nodiscard]] bool get_bool(const std::string& flag);

  /// Comma-separated list of doubles (e.g. --points=0,0.1,0.5).
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& flag, const std::vector<double>& fallback);

  /// Flags that were supplied but never read; nonempty means a typo.
  [[nodiscard]] std::vector<std::string> unused_flags() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& flag);

  std::map<std::string, std::string> flags_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace simsweep::cli
