#include "cli/bench_cmd.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "cli/config_build.hpp"
#include "load/hyperexp.hpp"
#include "load/onoff.hpp"
#include "obs/atomic_write.hpp"
#include "obs/profiler.hpp"
#include "obs/status.hpp"
#include "platform/host.hpp"
#include "resilience/quarantine.hpp"
#include "resilience/signal.hpp"
#include "simcore/simulator.hpp"
#include "strategy/decision_trace.hpp"
#include "swap/payback.hpp"
#include "swap/policy.hpp"

namespace simsweep::cli {

namespace {

/// printf into an ostream; the retired bench binaries were printf-based and
/// their byte-exact formats (field widths, %g, %.6f) are easiest kept as
/// format strings.
__attribute__((format(printf, 2, 3))) void oprintf(std::ostream& os,
                                                   const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string buffer(static_cast<std::size_t>(n) + 1, '\0');
  std::vsnprintf(buffer.data(), buffer.size(), fmt, ap2);
  va_end(ap2);
  buffer.resize(static_cast<std::size_t>(n));
  os << buffer;
}

/// "# paper expectation: <line 1>\n# <line 2>\n..." — multi-line
/// expectations render as a block of comment lines, exactly as the retired
/// binaries printed them.
void write_expectation(std::ostream& os, const std::string& expectation) {
  std::size_t start = 0;
  bool first = true;
  for (;;) {
    const std::size_t nl = expectation.find('\n', start);
    const std::string_view line(expectation.data() + start,
                                (nl == std::string::npos ? expectation.size()
                                                         : nl) -
                                    start);
    os << (first ? "# paper expectation: " : "# ") << line << "\n";
    first = false;
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
}

std::size_t env_trials() {
  if (const char* env = std::getenv("SIMSWEEP_TRIALS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

double env_trial_timeout() {
  if (const char* env = std::getenv("SIMSWEEP_TRIAL_TIMEOUT")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.0;
}

/// Flag > SIMSWEEP_TRIALS env > scenario.
std::size_t resolve_trials(const BenchOptions& opts,
                           const scenario::ScenarioSpec& spec) {
  if (opts.trials != 0) return opts.trials;
  if (const std::size_t env = env_trials(); env != 0) return env;
  return spec.trials;
}

// ---------------------------------------------------------------------------
// Kind::kGrid — through the sweep runner.

int run_grid(const scenario::ScenarioSpec& spec, const BenchOptions& opts,
             std::ostream& out) {
  SweepPlan plan;
  plan.spec = spec;
  plan.trials = resolve_trials(opts, spec);
  plan.jobs = opts.jobs;
  plan.audit = opts.audit;
  plan.metrics = !opts.metrics_path.empty();
  plan.timeline = !opts.timeline_path.empty();
  plan.trial_timeout_s =
      opts.trial_timeout_s > 0.0 ? opts.trial_timeout_s : env_trial_timeout();
  plan.trial_retries = opts.trial_retries;
  plan.retry_backoff_s = opts.retry_backoff_s;
  plan.journal_path = opts.journal_path;
  plan.resume_path = opts.resume_path;
  plan.profiler = opts.profiler;
  plan.status = opts.status;
  plan.hooks = opts.hooks;

  const SweepResult result = run_sweep(plan);

  if (result.cells_reused > 0)
    std::fprintf(stderr, "bench: resumed %zu of %zu cell(s) from '%s'\n",
                 result.cells_reused, result.cells_total,
                 plan.resume_path.c_str());
  for (const auto& record : result.quarantined)
    std::fprintf(stderr,
                 "bench: quarantined cell %zu (%s): %s after %zu attempt(s): "
                 "%s\n",
                 record.index, record.label.c_str(),
                 std::string(resilience::to_string(record.outcome)).c_str(),
                 record.attempts, record.error.c_str());
  if (!opts.quarantine_path.empty()) {
    std::ostringstream qos;
    resilience::write_quarantine_json(qos, result.quarantined,
                                      &result.provenance);
    obs::atomic_write_file(opts.quarantine_path, qos.str());
  }
  if (plan.metrics)
    obs::atomic_write_file(opts.metrics_path, result.metrics_json);
  if (plan.timeline)
    obs::atomic_write_file(opts.timeline_path, result.timeline_json);
  if (!opts.profile_json_path.empty() && opts.profiler != nullptr) {
    std::ostringstream pos;
    opts.profiler->write_json(pos, &result.provenance);
    pos << '\n';
    obs::atomic_write_file(opts.profile_json_path, pos.str());
  }
  if (result.partial)
    std::fprintf(stderr,
                 "bench: interrupted — %zu cell(s) not run; artifacts are "
                 "partial (provenance carries \"partial\":true), resume with "
                 "--resume=%s\n",
                 result.cells_skipped,
                 plan.journal_path.empty() ? "JOURNAL"
                                           : plan.journal_path.c_str());

  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    const core::SeriesReport& report = result.reports[i];
    out << "==== " << report.title << " ====\n";
    write_expectation(out, result.expectations[i]);
    report.print_table(out);
    out << "\n-- csv --\n";
    report.print_csv(out);
    out << "\n-- json --\n";
    report.print_json(out);
    out << "\n\n";
    out.flush();
  }
  return resilience::interrupted() ? 130 : 0;
}

// ---------------------------------------------------------------------------
// Kind::kPayback — the §5 worked example (retired fig1 binary).

/// Progress (iterations completed, fractional) at time t for an execution
/// that pauses `swap_time` at t=0 (first) and then iterates every
/// `iter_time` seconds.
double progress(double t, double swap_time, double iter_time) {
  if (t <= swap_time) return 0.0;
  return (t - swap_time) / iter_time;
}

int run_payback(const scenario::ScenarioSpec& spec, std::ostream& out) {
  const double iter = spec.payback_iter_s;
  const double swap = spec.payback_swap_s;

  out << "==== " << spec.title << " ====\n";
  write_expectation(out, spec.expectation);

  const double payback2 = swap::payback_distance(swap, iter, 1.0, 2.0);
  const double payback4 = swap::payback_distance(swap, iter, 1.0, 4.0);
  const double payback_drop = swap::payback_distance(swap, iter, 1.0, 0.8);
  oprintf(out, "payback(2x) = %.6f iterations (paper: 2)\n", payback2);
  oprintf(out, "payback(4x) = %.6f iterations (paper: 1 1/3)\n", payback4);
  oprintf(out,
          "payback(0.8x) = %s (swap can only hurt: never pays back, "
          "no finite threshold accepts it)\n\n",
          std::isinf(payback_drop) ? "inf" : "FINITE?!");

  out << "-- csv --\n";
  out << "time,no_swap,swap_2x,swap_4x,swap_regression_0.8x\n";
  for (double t = 0.0; t <= 60.0; t += 2.5) {
    oprintf(out, "%.1f,%.4f,%.4f,%.4f,%.4f\n", t, t / iter,
            progress(t, swap, iter / 2.0), progress(t, swap, iter / 4.0),
            progress(t, swap, iter / 0.8));
  }

  // Crossover check: the 2x trajectory must meet the no-swap line exactly
  // payback2 iterations (at the new rate) after the swap completes.
  const double cross_t = swap + payback2 * (iter / 2.0);
  oprintf(out, "\ncrossover(2x) at t=%.2f s: no_swap=%.4f swap=%.4f\n",
          cross_t, cross_t / iter, progress(cross_t, swap, iter / 2.0));
  return 0;
}

// ---------------------------------------------------------------------------
// Kind::kLoadTrace — one host's load history as CSV (retired fig2/fig3).

int run_load_trace(const scenario::ScenarioSpec& spec, std::ostream& out) {
  const double horizon = spec.trace_horizon_s;

  // The concrete model type matters here: the trailer quotes model-specific
  // analytics (stationary ON fraction / offered load).
  std::shared_ptr<const load::OnOffModel> onoff;
  std::shared_ptr<const load::HyperExpModel> hyperexp;
  const load::LoadModel* model = nullptr;
  switch (spec.load.kind) {
    case scenario::LoadKind::kOnOff: {
      load::OnOffParams params;
      params.p = spec.load.p;
      params.q = spec.load.q;
      params.step_s = spec.load.step_s;
      params.stationary_start = spec.load.stationary_start;
      onoff = std::make_shared<load::OnOffModel>(params);
      model = onoff.get();
      break;
    }
    case scenario::LoadKind::kHyperExp: {
      load::HyperExpParams params;
      params.mean_lifetime_s = spec.load.mean_lifetime_s;
      params.long_prob = spec.load.long_prob;
      params.mean_interarrival_s = spec.load.mean_interarrival_s;
      hyperexp = std::make_shared<load::HyperExpModel>(params);
      model = hyperexp.get();
      break;
    }
    case scenario::LoadKind::kReclaim:
      throw scenario::ScenarioError(
          "scenario '" + spec.name +
          "': load_trace supports onoff and hyperexp models");
  }

  sim::Simulator simulator;
  platform::Host host(simulator, 0, 300.0e6, "traced");
  auto source = model->make_source(sim::Rng(spec.trace_seed));
  source->start(simulator, host);
  simulator.run_until(horizon);

  out << "==== " << spec.title << " ====\n";
  if (hyperexp)
    oprintf(out, "# offered load %.2f, lifetime CV^2 %.1f\n",
            hyperexp->offered_load(), hyperexp->lifetime_cv2());
  write_expectation(out, spec.expectation);

  int max_load = 0;
  double area = 0.0, last_t = 0.0, last_v = 0.0;
  out << "-- csv --\n";
  out << "time,cpu_load\n";
  for (const sim::Sample& s : host.load_history()) {
    if (s.time > horizon) break;
    area += last_v * (s.time - last_t);
    // Emit step edges so the plot is rectangular.
    oprintf(out, "%.1f,%.0f\n", s.time, last_v);
    oprintf(out, "%.1f,%.0f\n", s.time, s.value);
    last_t = s.time;
    last_v = s.value;
    max_load = std::max(max_load, static_cast<int>(s.value));
  }
  area += last_v * (horizon - last_t);
  oprintf(out, "%.1f,%.0f\n", horizon, last_v);

  if (onoff) {
    oprintf(out, "\nempirical ON fraction %.3f vs stationary %.3f\n",
            area / horizon, onoff->stationary_on_fraction());
  } else {
    oprintf(out, "\nmean load %.3f (offered %.3f), peak simultaneous %d\n",
            area / horizon, hyperexp->offered_load(), max_load);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Kind::kDecisionHistogram — rejection-reason histograms per policy
// (retired abl_decision_trace binary).

struct Histogram {
  std::size_t boundaries = 0;
  std::size_t swaps_applied = 0;
  // Indexed by swap::RejectReason (kAccepted..kAppGain).
  std::array<std::size_t, 5> by_reason{};
  double accepted_payback_sum = 0.0;

  [[nodiscard]] std::size_t considered() const {
    std::size_t n = 0;
    for (const std::size_t c : by_reason) n += c;
    return n;
  }
};

Histogram fold(const std::vector<strategy::RunResult>& results) {
  Histogram h;
  for (const strategy::RunResult& r : results) {
    for (const strategy::DecisionRecord& rec : r.decision_trace) {
      if (rec.kind != strategy::TraceKind::kBoundary) continue;
      ++h.boundaries;
      h.swaps_applied += rec.swaps_applied;
      for (const swap::CandidateEvaluation& c : rec.considered) {
        ++h.by_reason[static_cast<std::size_t>(c.rejection)];
        if (c.accepted()) h.accepted_payback_sum += c.payback_iters;
      }
    }
  }
  return h;
}

int run_decision_histogram(const scenario::ScenarioSpec& spec,
                           const BenchOptions& opts, std::ostream& out) {
  core::ExperimentConfig cfg = scenario::base_config(spec);
  cfg.trace_decisions = true;
  cfg.audit = opts.audit;
  const std::size_t trials = resolve_trials(opts, spec);

  struct Cell {
    std::string policy;
    double dynamism;
    Histogram h;
  };
  std::vector<Cell> cells;
  for (const std::string& policy : spec.histogram_policies) {
    for (const double d : spec.histogram_dynamisms) {
      scenario::PolicySpec policy_spec;
      policy_spec.base = policy;
      strategy::SwapStrategy strategy{scenario::make_policy(policy_spec)};
      const load::OnOffModel model(load::OnOffParams::dynamism(d));
      const auto results =
          core::run_trials_results(cfg, model, strategy, trials, opts.jobs);
      cells.push_back({policy, d, fold(results)});
    }
  }

  out << "==== " << spec.title << " ====\n";
  write_expectation(out, spec.expectation);
  oprintf(out, "%-9s %9s %10s %10s %9s %15s %12s %9s %8s %12s\n", "policy",
          "dynamism", "boundaries", "considered", "accepted",
          "no_faster_spare", "min_process", "payback", "min_app",
          "mean_payback");
  for (const Cell& cell : cells) {
    const Histogram& h = cell.h;
    const std::size_t accepted = h.by_reason[0];
    oprintf(out, "%-9s %9.2f %10zu %10zu %9zu %15zu %12zu %9zu %8zu %12.3f\n",
            cell.policy.c_str(), cell.dynamism, h.boundaries, h.considered(),
            accepted, h.by_reason[1], h.by_reason[2], h.by_reason[3],
            h.by_reason[4],
            accepted > 0
                ? h.accepted_payback_sum / static_cast<double>(accepted)
                : 0.0);
  }
  oprintf(out, "\n-- csv --\n");
  oprintf(out,
          "policy,dynamism,boundaries,considered,accepted,"
          "no_faster_spare,min_process_improvement,payback_threshold,"
          "min_app_improvement,swaps_applied,mean_accepted_payback\n");
  for (const Cell& cell : cells) {
    const Histogram& h = cell.h;
    const std::size_t accepted = h.by_reason[0];
    oprintf(out, "%s,%g,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%.6g\n",
            cell.policy.c_str(), cell.dynamism, h.boundaries, h.considered(),
            accepted, h.by_reason[1], h.by_reason[2], h.by_reason[3],
            h.by_reason[4], h.swaps_applied,
            accepted > 0
                ? h.accepted_payback_sum / static_cast<double>(accepted)
                : 0.0);
  }
  return 0;
}

/// Non-negative integer flag (mirrors main.cpp's get_count).
std::size_t get_count(Args& args, const std::string& flag, long fallback) {
  const long v = args.get_int(flag, fallback);
  if (v < 0)
    throw std::invalid_argument("--" + flag + " must be >= 0, got " +
                                std::to_string(v));
  return static_cast<std::size_t>(v);
}

}  // namespace

int run_bench_scenario(const scenario::ScenarioSpec& spec,
                       const BenchOptions& opts, std::ostream& out) {
  switch (spec.kind) {
    case scenario::Kind::kGrid:
      return run_grid(spec, opts, out);
    case scenario::Kind::kPayback:
      return run_payback(spec, out);
    case scenario::Kind::kLoadTrace:
      return run_load_trace(spec, out);
    case scenario::Kind::kDecisionHistogram:
      return run_decision_histogram(spec, opts, out);
  }
  throw scenario::ScenarioError("scenario: unhandled kind");
}

int cmd_bench(Args& args) {
  const std::string dir = scenario::default_scenario_dir();
  if (args.get_bool("list")) {
    reject_unused(args);
    for (const std::string& name : scenario::list_scenarios(dir)) {
      const scenario::ScenarioSpec spec =
          scenario::load_scenario_file(dir + "/" + name + ".json");
      std::printf("%-26s %s\n", name.c_str(), spec.title.c_str());
    }
    return 0;
  }

  resilience::arm_interrupt_handlers();
  BenchOptions opts;
  opts.trials = get_count(args, "trials", 0);
  opts.jobs = get_count(args, "jobs", 0);
  opts.audit = parse_audit_flag(args);
  const ObsOptions obs_opts = parse_obs_options(args);
  const StatusOptions status_opts = parse_status_options(args);
  opts.metrics_path = obs_opts.metrics_path;
  opts.timeline_path = obs_opts.timeline_path;
  opts.profile_json_path = obs_opts.profile_path;
  opts.trial_timeout_s = args.get_double("trial-timeout", 0.0);
  opts.trial_retries = get_count(args, "trial-retries", 1);
  opts.resume_path = args.get_string("resume", "");
  // --resume without --journal keeps journaling into the resumed file, so
  // a twice-interrupted bench still resumes from its full history.
  opts.journal_path = args.get_string("journal", opts.resume_path);
  opts.quarantine_path = args.get_string("quarantine", "");
  opts.hooks.stop_after_cells = get_count(args, "stop-after-cells", 0);

  if (args.positional().empty())
    throw std::invalid_argument(
        "bench: missing scenario name or file (try `simsweep bench --list`)");
  const scenario::ScenarioSpec spec =
      scenario::find_scenario(args.positional().front(), dir);
  reject_unused(args);

  obs::TrialProfiler profiler;
  if (obs_opts.want_profiler()) opts.profiler = &profiler;
  std::unique_ptr<obs::StatusBoard> status;
  if (status_opts.enabled()) {
    obs::StatusBoard::Options board_opts;
    board_opts.path = status_opts.path;
    board_opts.heartbeat_s = status_opts.heartbeat_s;
    board_opts.progress = status_opts.progress;
    status = std::make_unique<obs::StatusBoard>(board_opts);
    opts.status = status.get();
  }
  const int code = run_bench_scenario(spec, opts, std::cout);
  // The profile goes to stderr so stdout stays the byte-exact report.
  if (obs_opts.profile) profiler.print(std::cerr);
  return code;
}

}  // namespace simsweep::cli
