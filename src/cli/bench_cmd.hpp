// `simsweep bench <name|file>` — run one declarative scenario and print its
// report(s) in the classic bench format.
//
// Grid scenarios route through cli::run_sweep, so every figure inherits the
// resilience surface (journal/--resume, watchdog, retry/quarantine) and the
// observability surface (--metrics/--timeline/--profile).  The illustrative
// kinds (payback, load_trace, decision_histogram) have dedicated emitters
// that reproduce the retired standalone bench binaries byte-for-byte.
//
// run_bench_scenario is the testable core: tests drive it with an
// ostringstream and compare bytes against the recorded pre-refactor output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "cli/args.hpp"
#include "cli/sweep_runner.hpp"
#include "scenario/scenario.hpp"

namespace simsweep::cli {

struct BenchOptions {
  /// Trials per cell; 0 = SIMSWEEP_TRIALS env var, else the spec's count.
  std::size_t trials = 0;
  std::size_t jobs = 0;  ///< cell-level parallelism; 0 = default

  audit::AuditMode audit = audit::AuditMode::kOff;

  std::string metrics_path;   ///< write merged metrics JSON; "" = off
  std::string timeline_path;  ///< write Chrome trace JSON; "" = off

  /// Wall-clock budget per cell; 0 = the SIMSWEEP_TRIAL_TIMEOUT env var
  /// (same convention the standalone benches used), else no watchdog.
  double trial_timeout_s = 0.0;
  std::size_t trial_retries = 1;
  double retry_backoff_s = 0.1;

  std::string journal_path;     ///< grid kinds only
  std::string resume_path;      ///< grid kinds only
  std::string quarantine_path;  ///< grid kinds only

  SweepHooks hooks;  ///< test hooks, forwarded to the sweep runner

  obs::TrialProfiler* profiler = nullptr;  ///< grid kinds only; may be null

  /// Trial-engine profile as a JSON artifact (grid kinds only); "" = off.
  /// Requires `profiler`.
  std::string profile_json_path;

  /// Live-telemetry board (grid kinds only); null = telemetry off.  Must
  /// outlive run_bench_scenario.
  obs::StatusBoard* status = nullptr;
};

/// Runs `spec` and writes its report(s) to `out` (the byte-exact bench
/// format).  Diagnostics (resume/quarantine/partial messages) go to stderr;
/// artifact files named in `opts` are written as side effects.  Returns the
/// process exit code (130 when interrupted, 0 otherwise); throws on
/// malformed specs and I/O failures.
int run_bench_scenario(const scenario::ScenarioSpec& spec,
                       const BenchOptions& opts, std::ostream& out);

/// `simsweep bench` entry point: `--list`, or a positional scenario name /
/// file path plus the resilience and observability flags.  Unknown names
/// throw scenario::UnknownScenarioError (main maps it to exit code 2 with a
/// did-you-mean suggestion).
int cmd_bench(Args& args);

}  // namespace simsweep::cli
