#include "cli/config_build.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "audit/auditor.hpp"
#include "load/misc_models.hpp"
#include "load/trace_io.hpp"

namespace simsweep::cli {

void apply_config_flags(Args& args, scenario::ScenarioSpec& spec) {
  spec.hosts = static_cast<std::size_t>(
      args.get_int("hosts", static_cast<long>(spec.hosts)));
  spec.active = static_cast<std::size_t>(
      args.get_int("active", static_cast<long>(spec.active)));
  spec.iterations = static_cast<std::size_t>(
      args.get_int("iters", static_cast<long>(spec.iterations)));
  spec.iter_minutes = args.get_double("iter-minutes", spec.iter_minutes);
  spec.state_mb = args.get_double("state-mb", spec.state_mb);
  spec.comm_kb = args.get_double("comm-kb", spec.comm_kb);
  spec.spares = static_cast<std::size_t>(args.get_int(
      "spares", static_cast<long>(spec.hosts - spec.active)));
  spec.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long>(spec.seed)));
  spec.horizon_hours = args.get_double("horizon-hours", spec.horizon_hours);
  // Fault injection (all off by default).
  spec.mtbf_hours = args.get_double("mtbf-hours", spec.mtbf_hours);
  spec.swap_fail_prob = args.get_double("swap-fail-prob", spec.swap_fail_prob);
  spec.checkpoint_fail_prob =
      args.get_double("ckpt-fail-prob", spec.checkpoint_fail_prob);
  spec.max_transfer_retries = static_cast<std::size_t>(args.get_int(
      "fault-retries", static_cast<long>(spec.max_transfer_retries)));
  spec.blacklist_after = static_cast<std::size_t>(args.get_int(
      "blacklist-after", static_cast<long>(spec.blacklist_after)));
  spec.max_events = static_cast<std::uint64_t>(
      args.get_int("max-events", static_cast<long>(spec.max_events)));
}

audit::AuditMode parse_audit_flag(Args& args) {
  // Bare --audit means fail-fast; --audit=warn collects into the report.
  if (!args.has("audit")) return audit::AuditMode::kOff;
  return audit::parse_mode(args.get_string("audit", ""));
}

core::ExperimentConfig build_config(Args& args) {
  scenario::ScenarioSpec spec;
  apply_config_flags(args, spec);
  core::ExperimentConfig cfg = scenario::base_config(spec);
  cfg.audit = parse_audit_flag(args);
  return cfg;
}

std::shared_ptr<const load::LoadModel> build_load_model(Args& args) {
  const std::string model = args.get_string("model", "onoff");
  if (model == "trace") {
    // Trace files stay a CLI affordance (replay a measured load); the
    // declarative scenarios cover the paper's generative models only.
    const std::string path = args.get_string("trace-file", "");
    if (path.empty())
      throw std::invalid_argument("--model=trace requires --trace-file");
    auto samples = load::read_trace_file(path);
    const double period =
        args.get_double("period", samples.back().time + 1.0);
    return std::make_shared<load::TraceModel>(
        std::move(samples), period, !args.get_bool("no-phase"));
  }
  scenario::LoadSpec spec;
  if (model == "onoff") {
    spec.kind = scenario::LoadKind::kOnOff;
    if (args.has("dynamism")) {
      const double d = args.get_double("dynamism", 0.2);
      spec.p = d;
      spec.q = d;
    } else {
      spec.p = args.get_double("p", spec.p);
      spec.q = args.get_double("q", spec.q);
    }
    spec.step_s = args.get_double("step", spec.step_s);
  } else if (model == "hyperexp") {
    spec.kind = scenario::LoadKind::kHyperExp;
    spec.mean_lifetime_s = args.get_double("lifetime", 300.0);
    spec.long_prob = args.get_double("long-prob", 0.2);
    spec.mean_interarrival_s =
        args.get_double("interarrival", 2.0 * spec.mean_lifetime_s);
  } else if (model == "reclaim") {
    spec.kind = scenario::LoadKind::kReclaim;
    spec.mean_available_s = args.get_double("avail-min", 60.0) * 60.0;
    spec.mean_reclaimed_s = args.get_double("reclaim-min", 10.0) * 60.0;
    if (args.has("dynamism")) {
      auto base = std::make_shared<scenario::LoadSpec>();
      const double d = args.get_double("dynamism", 0.2);
      base->p = d;
      base->q = d;
      spec.base = std::move(base);
    }
  } else {
    throw std::invalid_argument("unknown --model '" + model +
                                "' (onoff|hyperexp|reclaim|trace)");
  }
  return scenario::make_load_model(spec);
}

namespace {

scenario::PolicySpec build_policy(Args& args) {
  scenario::PolicySpec spec;
  spec.base = args.get_string("policy", "greedy");
  if (spec.base != "greedy" && spec.base != "safe" && spec.base != "friendly")
    throw std::invalid_argument("unknown --policy '" + spec.base +
                                "' (greedy|safe|friendly)");
  if (args.has("payback"))
    spec.payback_threshold_iters = args.get_double("payback", 0.0);
  if (args.has("min-process"))
    spec.min_process_improvement = args.get_double("min-process", 0.0);
  if (args.has("min-app"))
    spec.min_app_improvement = args.get_double("min-app", 0.0);
  if (args.has("history"))
    spec.history_window_s = args.get_double("history", 0.0);
  return spec;
}

scenario::EstimatorSpec build_estimator(Args& args) {
  const std::string predictor = args.get_string("predictor", "window");
  scenario::EstimatorSpec spec;
  if (predictor == "window") {
    spec.kind = scenario::EstimatorKind::kPolicy;  // policy window semantics
  } else if (predictor == "nws") {
    spec.kind = scenario::EstimatorKind::kNws;
  } else if (predictor == "ewma") {
    spec.kind = scenario::EstimatorKind::kEwma;
    spec.tau_s = args.get_double("ewma-tau", 120.0);
  } else if (predictor == "median") {
    spec.kind = scenario::EstimatorKind::kMedian;
    spec.k = static_cast<std::size_t>(args.get_int("median-k", 5));
  } else {
    throw std::invalid_argument("unknown --predictor '" + predictor +
                                "' (window|nws|ewma|median)");
  }
  return spec;
}

}  // namespace

std::unique_ptr<strategy::Strategy> build_strategy(Args& args) {
  const std::string name = args.get_string("strategy", "swap");
  scenario::StrategySpec spec;
  if (name == "none") {
    spec.kind = scenario::StrategyKind::kNone;
  } else if (name == "dlb") {
    spec.kind = scenario::StrategyKind::kDlb;
  } else if (name == "dlbswap") {
    spec.kind = scenario::StrategyKind::kDlbSwap;
    spec.policy = build_policy(args);
  } else if (name == "cr") {
    spec.kind = scenario::StrategyKind::kCr;
    spec.policy = build_policy(args);
  } else if (name == "swap") {
    spec.kind = scenario::StrategyKind::kSwap;
    spec.policy = build_policy(args);
    spec.estimator = build_estimator(args);
    spec.guard = args.get_bool("guard");
    spec.stall_factor = args.get_double("stall-factor", 3.0);
  } else {
    throw std::invalid_argument("unknown --strategy '" + name +
                                "' (none|swap|dlb|dlbswap|cr)");
  }
  return scenario::make_strategy(spec);
}

ObsOptions parse_obs_options(Args& args, const char* metrics_env,
                             const char* timeline_env) {
  ObsOptions opts;
  // Flags win over the environment; an env var set to "" counts as unset.
  opts.metrics_path = args.get_string("metrics", "");
  if (opts.metrics_path.empty() && metrics_env != nullptr)
    opts.metrics_path = metrics_env;
  opts.timeline_path = args.get_string("timeline", "");
  if (opts.timeline_path.empty() && timeline_env != nullptr)
    opts.timeline_path = timeline_env;
  opts.profile_path = args.get_string("profile-json", "");
  opts.profile = args.get_bool("profile");
  return opts;
}

ObsOptions parse_obs_options(Args& args) {
  return parse_obs_options(args, std::getenv("SIMSWEEP_METRICS"),
                           std::getenv("SIMSWEEP_TIMELINE"));
}

StatusOptions parse_status_options(Args& args, const char* status_env) {
  StatusOptions opts;
  opts.path = args.get_string("status", "");
  if (opts.path.empty() && status_env != nullptr) opts.path = status_env;
  opts.heartbeat_s = args.get_double("status-interval", opts.heartbeat_s);
  if (opts.heartbeat_s < 0.0)
    throw std::invalid_argument("--status-interval must be >= 0");
  opts.progress = args.get_bool("progress");
  if (opts.progress && opts.path.empty()) {
    // --progress without --status still wants the ETA machinery; aim the
    // snapshots at the bit bucket so only the stderr line remains.
    opts.path = "/dev/null";
  }
  return opts;
}

StatusOptions parse_status_options(Args& args) {
  return parse_status_options(args, std::getenv("SIMSWEEP_STATUS"));
}

void reject_unused(const Args& args) {
  const auto unused = args.unused_flags();
  if (unused.empty()) return;
  // The suggestion vocabulary is exactly the flags this subcommand asked
  // about, so --trails suggests --trials under `sweep` but not under a
  // subcommand that has no such flag.
  const auto vocabulary = args.queried_flags();
  std::string message = "unknown flag(s):";
  for (const std::string& f : unused) {
    message += " --" + f;
    const std::string suggestion = suggest_flag(f, vocabulary);
    if (!suggestion.empty()) message += " (did you mean '--" + suggestion + "'?)";
  }
  throw UnknownFlagError(message, unused);
}

}  // namespace simsweep::cli
