#include "cli/config_build.hpp"

#include <cstdlib>
#include <stdexcept>

#include "audit/auditor.hpp"
#include "forecast/forecaster.hpp"
#include "load/hyperexp.hpp"
#include "load/misc_models.hpp"
#include "load/onoff.hpp"
#include "load/reclamation.hpp"
#include "load/trace_io.hpp"
#include "strategy/estimator.hpp"
#include "swap/policy.hpp"

namespace simsweep::cli {

core::ExperimentConfig build_config(Args& args) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = static_cast<std::size_t>(args.get_int("hosts", 32));
  const auto active = static_cast<std::size_t>(args.get_int("active", 4));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 60));
  const double minutes = args.get_double("iter-minutes", 2.0);
  cfg.app = app::AppSpec::with_iteration_minutes(active, iters, minutes);
  cfg.app.state_bytes_per_process =
      args.get_double("state-mb", 1.0) * app::kMiB;
  cfg.app.comm_bytes_per_process =
      args.get_double("comm-kb", 100.0) * app::kKiB;
  cfg.spare_count = static_cast<std::size_t>(
      args.get_int("spares", static_cast<long>(cfg.cluster.host_count -
                                               active)));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.horizon_s = args.get_double("horizon-hours", 2880.0) * 3600.0;
  // Fault injection (all off by default).
  cfg.faults.host_mtbf_s = args.get_double("mtbf-hours", 0.0) * 3600.0;
  cfg.faults.swap_fail_prob = args.get_double("swap-fail-prob", 0.0);
  cfg.faults.checkpoint_fail_prob = args.get_double("ckpt-fail-prob", 0.0);
  cfg.faults.max_transfer_retries = static_cast<std::size_t>(
      args.get_int("fault-retries",
                   static_cast<long>(cfg.faults.max_transfer_retries)));
  cfg.faults.blacklist_after = static_cast<std::size_t>(args.get_int(
      "blacklist-after", static_cast<long>(cfg.faults.blacklist_after)));
  cfg.faults.validate();
  cfg.max_events = static_cast<std::uint64_t>(
      args.get_int("max-events", static_cast<long>(cfg.max_events)));
  // Bare --audit means fail-fast; --audit=warn collects into the report.
  if (args.has("audit"))
    cfg.audit = audit::parse_mode(args.get_string("audit", ""));
  if (active + cfg.spare_count > cfg.cluster.host_count)
    throw std::invalid_argument(
        "config: active + spares exceeds --hosts");
  return cfg;
}

std::shared_ptr<const load::LoadModel> build_load_model(Args& args) {
  const std::string model = args.get_string("model", "onoff");
  if (model == "onoff") {
    load::OnOffParams params;
    if (args.has("dynamism")) {
      params = load::OnOffParams::dynamism(args.get_double("dynamism", 0.2));
    } else {
      params.p = args.get_double("p", params.p);
      params.q = args.get_double("q", params.q);
    }
    params.step_s = args.get_double("step", params.step_s);
    return std::make_shared<load::OnOffModel>(params);
  }
  if (model == "hyperexp") {
    load::HyperExpParams params;
    params.mean_lifetime_s = args.get_double("lifetime", 300.0);
    params.long_prob = args.get_double("long-prob", 0.2);
    params.mean_interarrival_s =
        args.get_double("interarrival", 2.0 * params.mean_lifetime_s);
    return std::make_shared<load::HyperExpModel>(params);
  }
  if (model == "reclaim") {
    load::ReclamationParams params;
    params.mean_available_s = args.get_double("avail-min", 60.0) * 60.0;
    params.mean_reclaimed_s = args.get_double("reclaim-min", 10.0) * 60.0;
    std::shared_ptr<const load::LoadModel> base;
    if (args.has("dynamism"))
      base = std::make_shared<load::OnOffModel>(
          load::OnOffParams::dynamism(args.get_double("dynamism", 0.2)));
    return std::make_shared<load::ReclamationModel>(base, params);
  }
  if (model == "trace") {
    const std::string path = args.get_string("trace-file", "");
    if (path.empty())
      throw std::invalid_argument("--model=trace requires --trace-file");
    auto samples = load::read_trace_file(path);
    const double period =
        args.get_double("period", samples.back().time + 1.0);
    return std::make_shared<load::TraceModel>(
        std::move(samples), period, !args.get_bool("no-phase"));
  }
  throw std::invalid_argument("unknown --model '" + model +
                              "' (onoff|hyperexp|reclaim|trace)");
}

namespace {

swap::PolicyParams build_policy(Args& args) {
  const std::string name = args.get_string("policy", "greedy");
  swap::PolicyParams policy;
  if (name == "greedy") {
    policy = swap::greedy_policy();
  } else if (name == "safe") {
    policy = swap::safe_policy();
  } else if (name == "friendly") {
    policy = swap::friendly_policy();
  } else {
    throw std::invalid_argument("unknown --policy '" + name +
                                "' (greedy|safe|friendly)");
  }
  policy.payback_threshold_iters =
      args.get_double("payback", policy.payback_threshold_iters);
  policy.min_process_improvement =
      args.get_double("min-process", policy.min_process_improvement);
  policy.min_app_improvement =
      args.get_double("min-app", policy.min_app_improvement);
  policy.history_window_s = args.get_double("history", policy.history_window_s);
  return policy;
}

std::shared_ptr<strategy::SpeedEstimator> build_estimator(Args& args) {
  const std::string predictor = args.get_string("predictor", "window");
  if (predictor == "window") return nullptr;  // policy window semantics
  if (predictor == "nws")
    return strategy::make_forecast_estimator(
        [] { return forecast::make_default_ensemble(); }, "nws_adaptive");
  if (predictor == "ewma") {
    const double tau = args.get_double("ewma-tau", 120.0);
    return strategy::make_forecast_estimator(
        [tau] { return forecast::make_ewma(tau); },
        "ewma_" + std::to_string(static_cast<int>(tau)) + "s");
  }
  if (predictor == "median") {
    const auto k = static_cast<std::size_t>(args.get_int("median-k", 5));
    return strategy::make_forecast_estimator(
        [k] { return forecast::make_sliding_median(k); },
        "median_" + std::to_string(k));
  }
  throw std::invalid_argument("unknown --predictor '" + predictor +
                              "' (window|nws|ewma|median)");
}

}  // namespace

std::unique_ptr<strategy::Strategy> build_strategy(Args& args) {
  const std::string name = args.get_string("strategy", "swap");
  if (name == "none") return std::make_unique<strategy::NoneStrategy>();
  if (name == "dlb") return std::make_unique<strategy::DlbStrategy>();
  if (name == "dlbswap")
    return std::make_unique<strategy::DlbSwapStrategy>(build_policy(args));
  if (name == "cr")
    return std::make_unique<strategy::CrStrategy>(build_policy(args));
  if (name == "swap") {
    strategy::SwapOptions options;
    options.estimator = build_estimator(args);
    options.eviction_guard = args.get_bool("guard");
    options.stall_factor = args.get_double("stall-factor", 3.0);
    return std::make_unique<strategy::SwapStrategy>(build_policy(args),
                                                    options);
  }
  throw std::invalid_argument("unknown --strategy '" + name +
                              "' (none|swap|dlb|dlbswap|cr)");
}

ObsOptions parse_obs_options(Args& args, const char* metrics_env,
                             const char* timeline_env) {
  ObsOptions opts;
  // Flags win over the environment; an env var set to "" counts as unset.
  opts.metrics_path = args.get_string("metrics", "");
  if (opts.metrics_path.empty() && metrics_env != nullptr)
    opts.metrics_path = metrics_env;
  opts.timeline_path = args.get_string("timeline", "");
  if (opts.timeline_path.empty() && timeline_env != nullptr)
    opts.timeline_path = timeline_env;
  opts.profile = args.get_bool("profile");
  return opts;
}

ObsOptions parse_obs_options(Args& args) {
  return parse_obs_options(args, std::getenv("SIMSWEEP_METRICS"),
                           std::getenv("SIMSWEEP_TIMELINE"));
}

void reject_unused(const Args& args) {
  const auto unused = args.unused_flags();
  if (unused.empty()) return;
  // The suggestion vocabulary is exactly the flags this subcommand asked
  // about, so --trails suggests --trials under `sweep` but not under a
  // subcommand that has no such flag.
  const auto vocabulary = args.queried_flags();
  std::string message = "unknown flag(s):";
  for (const std::string& f : unused) {
    message += " --" + f;
    const std::string suggestion = suggest_flag(f, vocabulary);
    if (!suggestion.empty()) message += " (did you mean '--" + suggestion + "'?)";
  }
  throw UnknownFlagError(message, unused);
}

}  // namespace simsweep::cli
