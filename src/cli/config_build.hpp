// Translates CLI flags into experiment configurations, load models and
// strategies.  Factored out of main() so it is unit-testable.
#pragma once

#include <memory>
#include <string>

#include "cli/args.hpp"
#include "core/experiment.hpp"
#include "load/load_model.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::cli {

/// Flags: --hosts --active --spares --iters --iter-minutes --state-mb
/// --comm-kb --seed --horizon-hours.
[[nodiscard]] core::ExperimentConfig build_config(Args& args);

/// Flags: --model=onoff|hyperexp|reclaim (+ model parameters:
/// --dynamism | --p/--q/--step, --lifetime/--long-prob/--interarrival,
/// --avail-min/--reclaim-min).
[[nodiscard]] std::shared_ptr<const load::LoadModel> build_load_model(
    Args& args);

/// Flags: --strategy=none|swap|dlb|cr, --policy=greedy|safe|friendly,
/// --payback/--min-process/--min-app/--history (policy overrides),
/// --guard, --predictor=window|nws|ewma|median.
[[nodiscard]] std::unique_ptr<strategy::Strategy> build_strategy(Args& args);

/// Throws std::invalid_argument listing any unconsumed flags.
void reject_unused(const Args& args);

}  // namespace simsweep::cli
