// Translates CLI flags into declarative scenario specs (and from there into
// experiment configurations, load models and strategies).  Factored out of
// main() so it is unit-testable.
//
// Since the scenario layer, flags are overrides on a ScenarioSpec: the spec
// carries the paper defaults, apply_config_flags() folds the platform and
// fault flags in, and the runnable objects come from scenario::base_config /
// make_load_model / make_strategy — one construction path shared with
// `simsweep bench` and the golden tests.
#pragma once

#include <memory>
#include <string>

#include "cli/args.hpp"
#include "core/experiment.hpp"
#include "load/load_model.hpp"
#include "scenario/scenario.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::cli {

/// Applies the platform/application/fault flags onto `spec`: --hosts
/// --active --spares --iters --iter-minutes --state-mb --comm-kb --seed
/// --horizon-hours --mtbf-hours --swap-fail-prob --ckpt-fail-prob
/// --fault-retries --blacklist-after --max-events.  Absent flags leave the
/// spec's values in place (--spares defaults to hosts - active).
void apply_config_flags(Args& args, scenario::ScenarioSpec& spec);

/// --audit[=fail|warn]; kOff when the flag is absent (the SIMSWEEP_AUDIT
/// env var still applies downstream, inside run_single).
[[nodiscard]] audit::AuditMode parse_audit_flag(Args& args);

/// apply_config_flags + scenario::base_config + parse_audit_flag on a
/// default (paper) spec.
[[nodiscard]] core::ExperimentConfig build_config(Args& args);

/// Flags: --model=onoff|hyperexp|reclaim|trace (+ model parameters:
/// --dynamism | --p/--q/--step, --lifetime/--long-prob/--interarrival,
/// --avail-min/--reclaim-min, --trace-file/--period/--no-phase).
[[nodiscard]] std::shared_ptr<const load::LoadModel> build_load_model(
    Args& args);

/// Flags: --strategy=none|swap|dlb|dlbswap|cr, --policy=greedy|safe|friendly,
/// --payback/--min-process/--min-app/--history (policy overrides),
/// --guard/--stall-factor, --predictor=window|nws|ewma|median.
[[nodiscard]] std::unique_ptr<strategy::Strategy> build_strategy(Args& args);

/// Observability outputs requested on the command line.
struct ObsOptions {
  std::string metrics_path;   ///< merged metrics JSON; empty = off
  std::string timeline_path;  ///< Chrome trace JSON; empty = off
  std::string profile_path;   ///< trial-engine profile as JSON; empty = off
  bool profile = false;       ///< print the trial-engine profile

  [[nodiscard]] bool any() const noexcept {
    return !metrics_path.empty() || !timeline_path.empty() ||
           !profile_path.empty() || profile;
  }

  /// The wall-clock profiler is needed for either profile output.
  [[nodiscard]] bool want_profiler() const noexcept {
    return profile || !profile_path.empty();
  }
};

/// Flags: --metrics=FILE --timeline=FILE --profile --profile-json=FILE.
/// When a flag is absent the corresponding env value applies instead (pass
/// the raw getenv result; null or empty means unset), so whole suites can be
/// observed without editing command lines.
[[nodiscard]] ObsOptions parse_obs_options(Args& args,
                                           const char* metrics_env,
                                           const char* timeline_env);

/// parse_obs_options with SIMSWEEP_METRICS / SIMSWEEP_TIMELINE from the
/// process environment.
[[nodiscard]] ObsOptions parse_obs_options(Args& args);

/// Live-telemetry surface (sweep, bench): periodic atomic status snapshots
/// plus an opt-in stderr progress line.
struct StatusOptions {
  std::string path;          ///< snapshot file; empty = telemetry off
  double heartbeat_s = 1.0;  ///< min seconds between periodic snapshots
  bool progress = false;     ///< stderr progress line per snapshot

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

/// Flags: --status=FILE --status-interval=SECONDS --progress.  `status_env`
/// (SIMSWEEP_STATUS in the one-argument overload) fills the path when the
/// flag is absent; null or empty means unset.
[[nodiscard]] StatusOptions parse_status_options(Args& args,
                                                 const char* status_env);
[[nodiscard]] StatusOptions parse_status_options(Args& args);

/// Throws std::invalid_argument listing any unconsumed flags.
void reject_unused(const Args& args);

}  // namespace simsweep::cli
