// Translates CLI flags into experiment configurations, load models and
// strategies.  Factored out of main() so it is unit-testable.
#pragma once

#include <memory>
#include <string>

#include "cli/args.hpp"
#include "core/experiment.hpp"
#include "load/load_model.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::cli {

/// Flags: --hosts --active --spares --iters --iter-minutes --state-mb
/// --comm-kb --seed --horizon-hours.
[[nodiscard]] core::ExperimentConfig build_config(Args& args);

/// Flags: --model=onoff|hyperexp|reclaim (+ model parameters:
/// --dynamism | --p/--q/--step, --lifetime/--long-prob/--interarrival,
/// --avail-min/--reclaim-min).
[[nodiscard]] std::shared_ptr<const load::LoadModel> build_load_model(
    Args& args);

/// Flags: --strategy=none|swap|dlb|cr, --policy=greedy|safe|friendly,
/// --payback/--min-process/--min-app/--history (policy overrides),
/// --guard, --predictor=window|nws|ewma|median.
[[nodiscard]] std::unique_ptr<strategy::Strategy> build_strategy(Args& args);

/// Observability outputs requested on the command line.
struct ObsOptions {
  std::string metrics_path;   ///< merged metrics JSON; empty = off
  std::string timeline_path;  ///< Chrome trace JSON; empty = off
  bool profile = false;       ///< print the trial-engine profile

  [[nodiscard]] bool any() const noexcept {
    return !metrics_path.empty() || !timeline_path.empty() || profile;
  }
};

/// Flags: --metrics=FILE --timeline=FILE --profile.  When a flag is absent
/// the corresponding env value applies instead (pass the raw getenv result;
/// null or empty means unset), so whole suites can be observed without
/// editing command lines.
[[nodiscard]] ObsOptions parse_obs_options(Args& args,
                                           const char* metrics_env,
                                           const char* timeline_env);

/// parse_obs_options with SIMSWEEP_METRICS / SIMSWEEP_TIMELINE from the
/// process environment.
[[nodiscard]] ObsOptions parse_obs_options(Args& args);

/// Throws std::invalid_argument listing any unconsumed flags.
void reject_unused(const Args& args);

}  // namespace simsweep::cli
