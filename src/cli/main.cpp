// simsweep — command-line front end to the simulation library.
//
//   simsweep run   [platform/app flags] --strategy=... --trials=8
//   simsweep sweep [platform/app flags] --points=0,0.05,0.1,...   (all four
//                  techniques across ON/OFF dynamism)
//   simsweep bench <scenario>  (a shipped figure/ablation, or --list)
//   simsweep trace --model=onoff --duration=2000      (load trace as CSV)
//   simsweep help
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/bench_cmd.hpp"
#include "cli/config_build.hpp"
#include "cli/report_cmd.hpp"
#include "cli/sweep_runner.hpp"
#include "core/trial_runner.hpp"
#include "load/onoff.hpp"
#include "obs/atomic_write.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/status.hpp"
#include "obs/timeline.hpp"
#include "platform/host.hpp"
#include "resilience/quarantine.hpp"
#include "resilience/signal.hpp"
#include "resilience/watchdog.hpp"
#include "scenario/scenario.hpp"
#include "simcore/simulator.hpp"
#include "strategy/decision_trace.hpp"
#include "swap/policy.hpp"

namespace cli = simsweep::cli;
namespace core = simsweep::core;
namespace scenario = simsweep::scenario;
namespace strat = simsweep::strategy;

namespace {

constexpr const char* kUsage = R"(simsweep — MPI process swapping policy simulator

usage: simsweep <command> [flags]

commands:
  run     simulate one strategy, print per-trial statistics
  sweep   compare NONE/SWAP/DLB/CR across ON/OFF dynamism
  bench   run a declarative scenario (paper figures, ablations) by name
  trace   emit a CPU-load trace as CSV
  status  pretty-print a live --status snapshot (exit 4 when stale)
  report  analyze artifacts: summary | diff A B (exit 3 on regression) | top
  help    this text

scenario flags (run, bench):
  bench <name|file.json>  run a shipped scenario (scenarios/*.json; override
             the directory with SIMSWEEP_SCENARIO_DIR) or an explicit file;
             grid scenarios inherit the sweep resilience/observability
             surface below.  --trials overrides the scenario's trial count
             (SIMSWEEP_TRIALS env var sits between flag and file).
  bench --list            list shipped scenarios with their titles
  --scenario=<name|file>  (run) start from a scenario's platform/app/load
             config; explicit flags below still override field by field

platform/application flags (run, sweep):
  --hosts=32 --active=4 --spares=<hosts-active> --iters=60
  --iter-minutes=2 --state-mb=1 --comm-kb=100 --seed=1 --trials=8

execution/output flags (run, sweep):
  --jobs=N   worker threads for independent trials (default: SIMSWEEP_JOBS
             env var, else hardware concurrency; results are identical to
             --jobs=1)
  --json     print machine-readable JSON instead of tables
  --trace-decisions=FILE  (run) write one JSON line per policy decision —
             candidates weighed, payback distance, rejection reason,
             recovery actions — across all trials; makespans are unchanged
  --audit[=fail|warn]  run the invariant auditor over every trial: fail
             (the default) throws on the first violation, warn collects
             violations and reports their count.  Checks are read-only, so
             makespans are bitwise identical with auditing on or off.  The
             SIMSWEEP_AUDIT env var applies the same modes suite-wide.

observability flags (run, sweep, bench):
  --metrics=FILE   write a merged metrics snapshot (counters, gauges,
             histograms from every simulation layer) as JSON; identical at
             any --jobs, and makespans are unchanged.  Env fallback:
             SIMSWEEP_METRICS.
  --timeline=FILE  write a Chrome trace-event JSON timeline (load in
             https://ui.perfetto.dev): one process per trial (sweep: per
             point x strategy x trial), one track per host/subsystem,
             virtual seconds as trace microseconds.  Env fallback:
             SIMSWEEP_TIMELINE.
  --profile  measure the trial engine itself (wall-clock): per-trial
             duration, queue wait, per-worker utilization.  Printed after
             the results (stderr under --json and bench).
  --profile-json=FILE  write the same trial-engine profile as a JSON
             artifact (readable by `simsweep report`).
  All artifact files (--metrics/--timeline/--quarantine/--status/
  --profile-json, and the journal) are published atomically: write-temp +
  fsync + rename, so a SIGKILL can never leave a torn file.

live telemetry flags (sweep, bench):
  --status=FILE    periodically publish an atomic status snapshot JSON:
             cells done/total per strategy, retries, quarantines, worker
             utilization, and an EWMA-based wall-clock ETA.  The file is
             written before the first cell runs and marked "partial":true
             until the sweep completes, so a killed run always leaves a
             parseable snapshot.  Env fallback: SIMSWEEP_STATUS.  Inspect
             with `simsweep status FILE`.
  --status-interval=SECONDS  min seconds between heartbeats (default 1)
  --progress       one-line progress/ETA updates on stderr (implies status
             tracking; without --status the snapshots go to /dev/null)

artifact analysis (report, status):
  report summary FILE...      per-artifact summary (human table; --json for
             one canonical JSON document)
  report diff A B             compare two runs' artifacts key by key;
             --abs-tol/--rel-tol bound acceptable drift (default 0 = exact);
             exits 3 when a metric regressed beyond tolerance, so CI can
             gate on it
  report top FILE [--limit=N] slowest cells of a profile / hottest
             histogram buckets of a metrics snapshot
  status FILE [--stale-after=SECONDS]  pretty-print a --status snapshot;
             exits 4 when the run claims to be live but the heartbeat is
             older than --stale-after (default 30)

resilience flags:
  --trial-timeout=SECONDS  (run, sweep, bench) wall-clock watchdog per trial
             (run) or per sweep cell; overdue work is cancelled
             cooperatively and reported as hung.  0 (default) disables the
             watchdog (bench falls back to SIMSWEEP_TRIAL_TIMEOUT).
  --journal=FILE  (sweep, bench) append each completed cell to a
             crash-consistent journal (write-temp + fsync + atomic rename);
             a killed sweep loses at most the in-flight cells.
  --resume=FILE   (sweep, bench) replay completed cells from a journal
             instead of re-simulating them; the finished artifacts are
             byte-identical to an uninterrupted run at any --jobs.
             Journaling continues into the same file unless --journal says
             otherwise.  The journal records the scenario name and config
             digests, so resuming against an edited scenario is refused.
  --trial-retries=N  (sweep, bench) extra attempts (capped backoff) before a
             failed or hung cell is quarantined (default 1)
  --quarantine=FILE  (sweep, bench) write the quarantine report (config
             digest, seed, outcome, attempts, error per abandoned cell) as
             JSON; without it, abandoned cells are summarized on stderr.
             The sweep continues degraded either way and exits 0.
  SIGINT/SIGTERM flush the journal and emit partial artifacts whose
  provenance meta carries "partial":true; exit code is 130.
  testing hooks (sweep): --stop-after-cells=N (stop claiming cells after N,
  a deterministic stand-in for SIGKILL), --inject-fail=I,J / --inject-hang=K
  (force cell failures to exercise retry and quarantine)

load model flags (run, trace):
  --model=onoff   --dynamism=0.2 | --p=0.3 --q=0.08 [--step=100]
  --model=hyperexp --lifetime=300 [--long-prob=0.2] [--interarrival=600]
  --model=reclaim --avail-min=60 --reclaim-min=10 [--dynamism=...]
  --model=trace --trace-file=FILE [--period=...] [--no-phase]

strategy flags (run):
  --strategy=none|swap|dlb|dlbswap|cr
  --policy=greedy|safe|friendly  [--payback --min-process --min-app --history]
  --predictor=window|nws|ewma|median  [--ewma-tau --median-k]
  --guard [--stall-factor=3]          (eviction watchdog)

fault-injection flags (run, sweep; all off by default):
  --mtbf-hours=24       per-host mean time between permanent crashes
  --swap-fail-prob=0.1  probability one swap state transfer attempt fails
  --ckpt-fail-prob=0.1  probability one checkpoint write fails (CR)
  --fault-retries=3     resends allowed per transfer before abandoning
  --blacklist-after=6   failed attempts before a host is blacklisted
  --max-events=N        simulator event budget (runaway-schedule guard)

examples:
  simsweep run --strategy=swap --policy=safe --dynamism=0.2 --trials=10
  simsweep sweep --points=0,0.05,0.1,0.2,0.4,0.8 --state-mb=100
  simsweep bench fig4
  simsweep bench fig7 --trials=2 --jobs=2 --journal=fig7.journal
  simsweep trace --model=hyperexp --lifetime=150 --duration=2000
)";

/// Non-negative integer flag; rejects negatives before the size_t cast can
/// wrap into an absurd thread/trial count.
std::size_t get_count(cli::Args& args, const std::string& flag,
                      long fallback) {
  const long v = args.get_int(flag, fallback);
  if (v < 0)
    throw std::invalid_argument("--" + flag + " must be >= 0, got " +
                                std::to_string(v));
  return static_cast<std::size_t>(v);
}

/// Opens `path` for writing or throws with the flag name that asked for it.
std::ofstream open_output(const std::string& path, const char* flag) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error(std::string("cannot open --") + flag +
                             " file '" + path + "'");
  return out;
}

int cmd_run(cli::Args& args) {
  const auto trials = get_count(args, "trials", 8);
  const auto jobs = get_count(args, "jobs", 0);
  const bool json = args.get_bool("json");
  const double trial_timeout = args.get_double("trial-timeout", 0.0);
  const std::string trace_path = args.get_string("trace-decisions", "");
  const auto obs_opts = cli::parse_obs_options(args);

  core::ExperimentConfig cfg;
  std::shared_ptr<const simsweep::load::LoadModel> model;
  std::unique_ptr<strat::Strategy> strategy;
  if (args.has("scenario")) {
    // Scenario first, flags override: the spec supplies the platform, app,
    // load model and (first-variant) strategy; any explicit flag wins.
    scenario::ScenarioSpec spec = scenario::find_scenario(
        args.get_string("scenario", ""), scenario::default_scenario_dir());
    cli::apply_config_flags(args, spec);
    cfg = scenario::base_config(spec);
    cfg.audit = cli::parse_audit_flag(args);
    model = args.has("model") ? cli::build_load_model(args)
                              : scenario::make_load_model(spec.load);
    if (args.has("strategy") || spec.variants.empty())
      strategy = cli::build_strategy(args);
    else
      strategy = scenario::make_strategy(spec.variants.front().strategy);
  } else {
    cfg = cli::build_config(args);
    model = cli::build_load_model(args);
    strategy = cli::build_strategy(args);
  }
  cli::reject_unused(args);
  cfg.obs.metrics = !obs_opts.metrics_path.empty();
  cfg.obs.timeline = !obs_opts.timeline_path.empty();
  const simsweep::obs::Provenance prov = core::make_run_provenance(
      cfg, model->describe() + ";" + strategy->name());

  core::TrialStats stats;
  simsweep::obs::TrialProfiler profiler;
  const bool need_results = !trace_path.empty() || cfg.obs.any();
  if (!need_results && !obs_opts.want_profiler() && trial_timeout <= 0.0) {
    stats = core::run_trials_parallel(cfg, *model, *strategy, trials, jobs);
  } else {
    // Tracing and observability never touch the simulation, so stats match
    // the plain path bitwise; the per-trial results additionally carry the
    // decision traces / metrics registries / timeline tracers.
    cfg.trace_decisions = !trace_path.empty();
    std::vector<strat::RunResult> results;
    if (trial_timeout > 0.0) {
      // Watchdog outlives the runner, whose destructor joins the workers.
      simsweep::resilience::Watchdog watchdog(trial_timeout);
      core::TrialRunner runner(jobs);
      runner.set_trial_guard(&watchdog);
      try {
        results = core::run_trials_results(
            cfg, *model, *strategy, trials, runner,
            obs_opts.want_profiler() ? &profiler : nullptr);
      } catch (const simsweep::sim::RunCancelled&) {
        throw std::runtime_error(
            "trial hung: exceeded --trial-timeout after " +
            std::to_string(trial_timeout) + " s of wall-clock time");
      }
    } else {
      results = core::run_trials_results(
          cfg, *model, *strategy, trials, jobs,
          obs_opts.want_profiler() ? &profiler : nullptr);
    }
    if (!trace_path.empty()) {
      auto out = open_output(trace_path, "trace-decisions");
      for (std::size_t t = 0; t < results.size(); ++t)
        strat::write_trace_jsonl(out, strategy->name(), cfg.seed + t, t,
                                 results[t].decision_trace);
    }
    if (cfg.obs.metrics) {
      const auto merged = core::merge_trial_metrics(results);
      std::ostringstream os;
      merged->write_json(os, &prov);
      os << '\n';
      simsweep::obs::atomic_write_file(obs_opts.metrics_path, os.str());
    }
    if (cfg.obs.timeline) {
      std::vector<simsweep::obs::TimelineTracer::Process> processes;
      for (std::size_t t = 0; t < results.size(); ++t)
        if (results[t].timeline)
          processes.push_back(
              {"trial " + std::to_string(t), results[t].timeline.get()});
      std::ostringstream os;
      simsweep::obs::TimelineTracer::write_chrome_json(os, processes, &prov);
      os << '\n';
      simsweep::obs::atomic_write_file(obs_opts.timeline_path, os.str());
    }
    stats = core::reduce_trials(results);
  }
  if (!obs_opts.profile_path.empty()) {
    std::ostringstream os;
    profiler.write_json(os, &prov);
    os << '\n';
    simsweep::obs::atomic_write_file(obs_opts.profile_path, os.str());
  }
  if (json) {
    stats.print_json(std::cout, &prov);
    std::cout << '\n';
    // The profile goes to stderr under --json so stdout stays one
    // parseable JSON document.
    if (obs_opts.profile) profiler.print(std::cerr);
    return 0;
  }
  std::printf("strategy        %s\n", strategy->name().c_str());
  std::printf("trials          %zu (seeds %llu..%llu)\n", stats.trials,
              static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(cfg.seed + trials - 1));
  std::printf("makespan mean   %.1f s\n", stats.mean);
  std::printf("makespan stddev %.1f s\n", stats.stddev);
  std::printf("makespan range  [%.1f, %.1f] s\n", stats.min, stats.max);
  std::printf("adaptations     %.1f per run\n", stats.mean_adaptations);
  if (cfg.audit == simsweep::audit::AuditMode::kWarn)
    std::printf("audit           %zu violation(s) across all trials\n",
                stats.audit_violations);
  if (cfg.faults.enabled()) {
    std::printf("host crashes    %.1f per run\n", stats.mean_crashes);
    std::printf("xfer failures   %.1f per run\n", stats.mean_transfer_failures);
    std::printf("ckpt failures   %.1f per run\n",
                stats.mean_checkpoint_failures);
    std::printf("recoveries      %.1f per run\n", stats.mean_recoveries);
    std::printf("time lost       %.1f s per run\n", stats.mean_time_lost_s);
  }
  if (stats.resource_exhausted > 0)
    std::printf("WARNING: %zu run(s) exhausted the spare pool and stopped\n",
                stats.resource_exhausted);
  if (stats.stalled > 0)
    std::printf("WARNING: %zu run(s) stalled before the horizon "
                "(strategy deadlock)\n",
                stats.stalled);
  if (stats.unfinished > stats.stalled)
    std::printf("WARNING: %zu run(s) hit the simulation horizon\n",
                stats.unfinished - stats.stalled);
  if (obs_opts.profile) profiler.print(std::cout);
  return 0;
}

/// Comma-separated list of non-negative cell indices (test/CI hooks).
std::vector<std::size_t> get_index_list(cli::Args& args,
                                        const std::string& flag) {
  std::vector<std::size_t> out;
  for (const double v : args.get_double_list(flag, {})) {
    if (v < 0.0)
      throw std::invalid_argument("--" + flag + " indices must be >= 0");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

int cmd_sweep(cli::Args& args) {
  namespace res = simsweep::resilience;
  res::arm_interrupt_handlers();

  // The classic sweep is just the built-in "sweep" scenario with the
  // platform/app flags layered on top.
  cli::SweepPlan plan;
  plan.spec = scenario::sweep_scenario();
  plan.trials = get_count(args, "trials", 8);
  if (plan.trials == 0) throw std::invalid_argument("sweep: zero --trials");
  plan.jobs = get_count(args, "jobs", 0);
  const bool json = args.get_bool("json");
  const auto obs_opts = cli::parse_obs_options(args);
  const auto status_opts = cli::parse_status_options(args);
  plan.metrics = !obs_opts.metrics_path.empty();
  plan.timeline = !obs_opts.timeline_path.empty();
  plan.trial_timeout_s = args.get_double("trial-timeout", 0.0);
  plan.trial_retries = get_count(args, "trial-retries", 1);
  plan.resume_path = args.get_string("resume", "");
  // --resume without --journal keeps journaling into the resumed file, so
  // a twice-interrupted sweep still resumes from its full history.
  plan.journal_path = args.get_string("journal", plan.resume_path);
  const std::string quarantine_path = args.get_string("quarantine", "");
  plan.hooks.stop_after_cells = get_count(args, "stop-after-cells", 0);
  plan.hooks.inject_fail = get_index_list(args, "inject-fail");
  plan.hooks.inject_hang = get_index_list(args, "inject-hang");
  cli::apply_config_flags(args, plan.spec);
  plan.audit = cli::parse_audit_flag(args);
  plan.spec.axis.x = args.get_double_list(
      "points", {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0});
  cli::reject_unused(args);

  simsweep::obs::TrialProfiler profiler;
  if (obs_opts.want_profiler()) plan.profiler = &profiler;
  std::unique_ptr<simsweep::obs::StatusBoard> status;
  if (status_opts.enabled()) {
    simsweep::obs::StatusBoard::Options board_opts;
    board_opts.path = status_opts.path;
    board_opts.heartbeat_s = status_opts.heartbeat_s;
    board_opts.progress = status_opts.progress;
    status = std::make_unique<simsweep::obs::StatusBoard>(board_opts);
    plan.status = status.get();
  }

  const cli::SweepResult result = cli::run_sweep(plan);

  if (result.cells_reused > 0)
    std::fprintf(stderr, "sweep: resumed %zu of %zu cell(s) from '%s'\n",
                 result.cells_reused, result.cells_total,
                 plan.resume_path.c_str());
  for (const auto& record : result.quarantined)
    std::fprintf(stderr,
                 "sweep: quarantined cell %zu (%s): %s after %zu attempt(s): "
                 "%s\n",
                 record.index, record.label.c_str(),
                 std::string(res::to_string(record.outcome)).c_str(),
                 record.attempts, record.error.c_str());
  if (!quarantine_path.empty()) {
    std::ostringstream os;
    res::write_quarantine_json(os, result.quarantined, &result.provenance);
    simsweep::obs::atomic_write_file(quarantine_path, os.str());
  }
  if (plan.metrics)
    simsweep::obs::atomic_write_file(obs_opts.metrics_path,
                                     result.metrics_json);
  if (plan.timeline)
    simsweep::obs::atomic_write_file(obs_opts.timeline_path,
                                     result.timeline_json);
  if (!obs_opts.profile_path.empty()) {
    std::ostringstream os;
    profiler.write_json(os, &result.provenance);
    os << '\n';
    simsweep::obs::atomic_write_file(obs_opts.profile_path, os.str());
  }
  if (result.partial)
    std::fprintf(stderr,
                 "sweep: interrupted — %zu cell(s) not run; artifacts are "
                 "partial (provenance carries \"partial\":true), resume with "
                 "--resume=%s\n",
                 result.cells_skipped,
                 plan.journal_path.empty() ? "JOURNAL"
                                           : plan.journal_path.c_str());

  const core::SeriesReport& report = result.reports.front();
  if (json) {
    report.print_json(std::cout, &result.provenance);
    std::cout << '\n';
    if (obs_opts.profile) profiler.print(std::cerr);
  } else {
    report.print_table(std::cout);
    std::cout << "\n";
    report.print_csv(std::cout);
    if (obs_opts.profile) profiler.print(std::cout);
  }
  return res::interrupted() ? 130 : 0;
}

int cmd_trace(cli::Args& args) {
  const double duration = args.get_double("duration", 2000.0);
  const auto model = cli::build_load_model(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cli::reject_unused(args);

  simsweep::sim::Simulator simulator;
  simsweep::platform::Host host(simulator, 0, 300.0e6, "traced");
  auto source = model->make_source(simsweep::sim::Rng(seed));
  source->start(simulator, host);
  simulator.run_until(duration);

  std::printf("time,cpu_load\n");
  double last = 0.0;
  for (const auto& sample : host.load_history()) {
    if (sample.time > duration) break;
    std::printf("%.1f,%.0f\n%.1f,%.0f\n", sample.time, last, sample.time,
                sample.value);
    last = sample.value;
  }
  std::printf("%.1f,%.0f\n", duration, last);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  if (tokens.empty() || tokens[0] == "help" || tokens[0] == "--help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const std::string command = tokens[0];
  tokens.erase(tokens.begin());
  try {
    cli::Args args(std::move(tokens));
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "bench") return cli::cmd_bench(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "status") return cli::cmd_status(args);
    if (command == "report") return cli::cmd_report(args);
    std::fprintf(stderr, "simsweep: unknown command '%s'\n\n%s",
                 command.c_str(), kUsage);
    return 2;
  } catch (const scenario::UnknownScenarioError& e) {
    std::string message = e.what();
    const std::string suggestion = cli::suggest_flag(e.name(), e.available());
    if (!suggestion.empty())
      message += " (did you mean '" + suggestion + "'?)";
    std::fprintf(stderr, "simsweep: %s\n", message.c_str());
    if (!e.available().empty()) {
      std::string names;
      for (const std::string& n : e.available()) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      std::fprintf(stderr, "available scenarios: %s\n", names.c_str());
    }
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simsweep: %s\n", e.what());
    return 1;
  }
}
