#include "cli/report_cmd.hpp"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/config_build.hpp"
#include "report/analyze.hpp"
#include "report/artifact.hpp"

namespace simsweep::cli {

namespace {

constexpr const char* kReportUsage =
    "usage: simsweep report summary FILE... [--json]\n"
    "       simsweep report diff A B [--abs-tol=X] [--rel-tol=X]\n"
    "       simsweep report top FILE [--limit=N]\n";

int usage_error(const char* message) {
  std::fprintf(stderr, "simsweep report: %s\n%s", message, kReportUsage);
  return 2;
}

int report_summary(const std::vector<std::string>& files, bool json) {
  if (json) {
    std::cout << "{\"kind\":\"report-summary\",\"artifacts\":[";
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (i != 0) std::cout << ',';
      const report::Artifact artifact = report::load_artifact(files[i]);
      report::write_summary_json(std::cout, artifact);
    }
    std::cout << "]}\n";
    return 0;
  }
  for (const std::string& file : files)
    report::print_summary(std::cout, report::load_artifact(file));
  return 0;
}

int report_diff(const std::string& path_a, const std::string& path_b,
                const report::DiffOptions& options) {
  const report::Artifact a = report::load_artifact(path_a);
  const report::Artifact b = report::load_artifact(path_b);
  const report::DiffResult result = report::diff_artifacts(a, b, options);
  report::print_diff(std::cout, a, b, result);
  return result.regression() ? 3 : 0;
}

int report_top(const std::string& file, std::size_t limit) {
  const report::Artifact artifact = report::load_artifact(file);
  const auto entries = report::top_entries(artifact, limit);
  std::cout << "top " << entries.size() << " of " << file << " ("
            << report::to_string(artifact.kind) << ")\n";
  for (std::size_t i = 0; i < entries.size(); ++i)
    std::cout << "  " << (i + 1) << ". " << entries[i].label << ": "
              << entries[i].value << " " << entries[i].unit << '\n';
  return 0;
}

}  // namespace

int cmd_report(Args& args) {
  const bool json = args.get_bool("json");
  report::DiffOptions diff_options;
  diff_options.abs_tol = args.get_double("abs-tol", 0.0);
  diff_options.rel_tol = args.get_double("rel-tol", 0.0);
  if (diff_options.abs_tol < 0.0 || diff_options.rel_tol < 0.0)
    throw std::invalid_argument("report diff: tolerances must be >= 0");
  const long limit = args.get_int("limit", 10);
  if (limit <= 0) throw std::invalid_argument("report top: --limit must be > 0");
  reject_unused(args);

  const auto& positional = args.positional();
  if (positional.empty()) return usage_error("missing subcommand");
  const std::string& sub = positional.front();
  const std::vector<std::string> files(positional.begin() + 1,
                                       positional.end());
  if (sub == "summary") {
    if (files.empty()) return usage_error("summary needs at least one FILE");
    return report_summary(files, json);
  }
  if (sub == "diff") {
    if (files.size() != 2) return usage_error("diff needs exactly A and B");
    return report_diff(files[0], files[1], diff_options);
  }
  if (sub == "top") {
    if (files.size() != 1) return usage_error("top needs exactly one FILE");
    return report_top(files[0], static_cast<std::size_t>(limit));
  }
  return usage_error(("unknown subcommand '" + sub + "'").c_str());
}

int cmd_status(Args& args) {
  const double stale_after = args.get_double("stale-after", 30.0);
  if (stale_after < 0.0)
    throw std::invalid_argument("status: --stale-after must be >= 0");
  reject_unused(args);
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: simsweep status FILE [--stale-after=SECONDS]\n");
    return 2;
  }

  const report::Artifact artifact =
      report::load_artifact(args.positional().front());
  if (artifact.kind != report::ArtifactKind::kStatus)
    throw std::runtime_error("status: '" + artifact.path +
                             "' is a " +
                             std::string(report::to_string(artifact.kind)) +
                             " artifact, not a status snapshot");
  report::print_summary(std::cout, artifact);

  const double now_unix_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const double age = report::staleness_s(artifact.status, now_unix_s);
  std::cout << "  heartbeat " << age << " s ago\n";
  if (report::is_stale(artifact.status, now_unix_s, stale_after)) {
    std::cout << "  STALE: run claims to be live but the heartbeat exceeds "
              << stale_after << " s — the writer is dead or wedged\n";
    return 4;
  }
  return 0;
}

}  // namespace simsweep::cli
