// `simsweep report` and `simsweep status` — the artifact-analysis front end.
//
//   report summary FILE...   typed summary of each artifact (--json for one
//                            canonical JSON document on stdout)
//   report diff A B          structural comparison with --abs-tol/--rel-tol;
//                            exit 3 on regression (the CI gate)
//   report top FILE          hottest entries (--limit=N, default 10)
//   status FILE              pretty-print a live --status snapshot; exit 4
//                            when the heartbeat is stale (--stale-after=S)
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 diff regression, 4 stale heartbeat.
#pragma once

#include "cli/args.hpp"

namespace simsweep::cli {

int cmd_report(Args& args);
int cmd_status(Args& args);

}  // namespace simsweep::cli
