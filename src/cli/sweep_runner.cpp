#include "cli/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "audit/auditor.hpp"
#include "core/trial_runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/timeline.hpp"
#include "resilience/journal.hpp"
#include "resilience/json_read.hpp"
#include "resilience/signal.hpp"
#include "resilience/watchdog.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::cli {

namespace {

using resilience::JsonValue;
using resilience::TrialOutcomeKind;

/// Version 2: the sweep is a declarative scenario; the header carries the
/// scenario name and ScenarioSpec::digest() (which folds the full canonical
/// serialization), and cell keys come from the per-cell key extra.  v1
/// journals (hard-coded onoff × technique grids) cannot resume into v2.
constexpr std::uint64_t kJournalVersion = 2;

void write_stats_json(std::ostream& os, const core::TrialStats& s) {
  os << "{\"mean\":";
  obs::write_json_number(os, s.mean);
  os << ",\"stddev\":";
  obs::write_json_number(os, s.stddev);
  os << ",\"min\":";
  obs::write_json_number(os, s.min);
  os << ",\"max\":";
  obs::write_json_number(os, s.max);
  os << ",\"trials\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(s.trials));
  os << ",\"unfinished\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(s.unfinished));
  os << ",\"stalled\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(s.stalled));
  os << ",\"resource_exhausted\":";
  obs::write_json_number(os,
                         static_cast<std::uint64_t>(s.resource_exhausted));
  os << ",\"mean_adaptations\":";
  obs::write_json_number(os, s.mean_adaptations);
  os << ",\"mean_crashes\":";
  obs::write_json_number(os, s.mean_crashes);
  os << ",\"mean_transfer_failures\":";
  obs::write_json_number(os, s.mean_transfer_failures);
  os << ",\"mean_recoveries\":";
  obs::write_json_number(os, s.mean_recoveries);
  os << ",\"mean_checkpoint_failures\":";
  obs::write_json_number(os, s.mean_checkpoint_failures);
  os << ",\"mean_time_lost_s\":";
  obs::write_json_number(os, s.mean_time_lost_s);
  os << ",\"audit_violations\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(s.audit_violations));
  os << '}';
}

/// Inverse of write_stats_json.  Exact: every double was emitted shortest
/// round-trip and is re-read with from_chars.
core::TrialStats parse_stats(const JsonValue& v) {
  core::TrialStats s;
  s.mean = v.at("mean").as_double();
  s.stddev = v.at("stddev").as_double();
  s.min = v.at("min").as_double();
  s.max = v.at("max").as_double();
  s.trials = v.at("trials").as_size();
  s.unfinished = v.at("unfinished").as_size();
  s.stalled = v.at("stalled").as_size();
  s.resource_exhausted = v.at("resource_exhausted").as_size();
  s.mean_adaptations = v.at("mean_adaptations").as_double();
  s.mean_crashes = v.at("mean_crashes").as_double();
  s.mean_transfer_failures = v.at("mean_transfer_failures").as_double();
  s.mean_recoveries = v.at("mean_recoveries").as_double();
  s.mean_checkpoint_failures = v.at("mean_checkpoint_failures").as_double();
  s.mean_time_lost_s = v.at("mean_time_lost_s").as_double();
  s.audit_violations = v.at("audit_violations").as_size();
  return s;
}

/// Rebuilds a registry from its own write_json output.  Merge-into-empty
/// adopts snapshot values verbatim (counters add, gauges/histograms copy
/// min/max/sum exactly), so the rebuilt registry's snapshot is bitwise the
/// original — the salvage path cannot drift from the live path.
std::unique_ptr<obs::MetricsRegistry> registry_from_json(const JsonValue& v) {
  auto registry = std::make_unique<obs::MetricsRegistry>();
  for (const auto& [name, value] : v.at("counters").object)
    registry->counter(name).add(value.as_uint64());
  for (const auto& [name, value] : v.at("gauges").object) {
    obs::Gauge::Snapshot snap;
    snap.last = value.at("last").as_double();
    snap.min = value.at("min").as_double();
    snap.max = value.at("max").as_double();
    registry->gauge(name).merge(snap);
  }
  for (const auto& [name, value] : v.at("histograms").object) {
    obs::Histogram::Snapshot snap;
    for (const JsonValue& b : value.at("bounds").as_array())
      snap.bounds.push_back(b.as_double());
    for (const JsonValue& c : value.at("counts").as_array())
      snap.counts.push_back(c.as_uint64());
    snap.count = value.at("count").as_uint64();
    snap.sum = value.at("sum").as_double();
    snap.min = value.at("min").as_double();
    snap.max = value.at("max").as_double();
    registry->histogram(name, snap.bounds).merge(snap);
  }
  return registry;
}

/// Per-cell state, filled either by simulation or by journal replay; the
/// final artifacts read only this, in index order, so both sources are
/// interchangeable byte-for-byte.
struct CellData {
  bool done = false;
  core::TrialStats stats;
  std::string metrics_json;   ///< registry snapshot (no meta)
  std::string timeline_json;  ///< traceEvents fragment (pids pre-assigned)
  std::string raw_line;       ///< journal record, adopted verbatim on resume
};

std::string header_line(const std::string& scenario_name,
                        const obs::Provenance& prov, std::size_t trials,
                        std::size_t points, std::size_t cells) {
  std::ostringstream os;
  os << "{\"kind\":\"sweep-journal\",\"version\":";
  obs::write_json_number(os, kJournalVersion);
  os << ",\"scenario\":";
  obs::write_json_string(os, scenario_name);
  os << ",\"sweep\":";
  obs::write_json_string(os, prov.config_digest);
  os << ",\"seed\":";
  obs::write_json_number(os, prov.seed);
  os << ",\"trials\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(trials));
  os << ",\"points\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(points));
  os << ",\"cells\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(cells));
  os << '}';
  return os.str();
}

std::string cell_record_line(std::size_t index, const std::string& key,
                             const obs::Provenance& prov, std::size_t trials,
                             const std::string& label, const CellData& data,
                             bool with_metrics, bool with_timeline) {
  std::ostringstream os;
  os << "{\"kind\":\"cell\",\"index\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(index));
  os << ",\"key\":";
  obs::write_json_string(os, key);
  os << ",\"seed\":";
  obs::write_json_number(os, prov.seed);
  os << ",\"trials\":";
  obs::write_json_number(os, static_cast<std::uint64_t>(trials));
  os << ",\"label\":";
  obs::write_json_string(os, label);
  os << ",\"outcome\":\"ok\",\"stats\":";
  write_stats_json(os, data.stats);
  if (with_metrics) {
    os << ",\"metrics\":";
    obs::write_json_string(os, data.metrics_json);
  }
  if (with_timeline) {
    os << ",\"timeline\":";
    obs::write_json_string(os, data.timeline_json);
  }
  os << '}';
  return os.str();
}

[[noreturn]] void resume_mismatch(const std::string& what) {
  throw std::runtime_error(
      "sweep --resume: journal does not match this sweep (" + what +
      "); delete the journal or rerun the original command line");
}

void validate_header(const JsonValue& header, const std::string& scenario_name,
                     const obs::Provenance& prov, std::size_t trials,
                     std::size_t cells) {
  const JsonValue* kind = header.find("kind");
  if (kind == nullptr || kind->as_string() != "sweep-journal")
    resume_mismatch("not a sweep journal");
  if (header.at("version").as_uint64() != kJournalVersion)
    resume_mismatch("journal version " +
                    std::to_string(header.at("version").as_uint64()));
  if (header.at("scenario").as_string() != scenario_name)
    resume_mismatch("scenario " + header.at("scenario").as_string() + " vs " +
                    scenario_name);
  if (header.at("sweep").as_string() != prov.config_digest)
    resume_mismatch("config digest " + header.at("sweep").as_string() +
                    " vs " + prov.config_digest);
  if (header.at("seed").as_uint64() != prov.seed)
    resume_mismatch("seed mismatch");
  if (header.at("trials").as_size() != trials)
    resume_mismatch("trials mismatch");
  if (header.at("cells").as_size() != cells)
    resume_mismatch("cell count mismatch");
}

/// Metric extraction for one report series at one cell (completed cells
/// only; callers substitute NaN for cells that never ran).
double metric_value(scenario::Metric metric, const core::TrialStats& s) {
  switch (metric) {
    case scenario::Metric::kMakespan:
      return s.mean;
    case scenario::Metric::kAdaptations:
      return s.mean_adaptations;
    case scenario::Metric::kCompletionRate:
      return static_cast<double>(s.trials - s.unfinished) /
             static_cast<double>(s.trials);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double metric_adaptations(scenario::Metric metric, const core::TrialStats& s) {
  // The completion-rate view pairs each rate with the mean crash
  // recoveries per run; every other metric keeps the adaptation count.
  return metric == scenario::Metric::kCompletionRate ? s.mean_recoveries
                                                     : s.mean_adaptations;
}

}  // namespace

SweepResult run_sweep(const SweepPlan& plan) {
  // materialize() validates the spec (grid kind, non-empty variants/axis,
  // nonzero trials) and expands the cell grid.
  const scenario::MaterializedGrid grid =
      scenario::materialize(plan.spec, plan.trials);
  if (!plan.hooks.inject_hang.empty() && plan.trial_timeout_s <= 0.0)
    throw std::invalid_argument(
        "sweep: hang injection requires --trial-timeout");

  const std::size_t total = grid.cells.size();
  const std::size_t trials = grid.trials;
  const obs::Provenance base_prov =
      obs::make_provenance(grid.seed, grid.digest);

  std::vector<std::string> keys(total);
  for (std::size_t index = 0; index < total; ++index)
    keys[index] = core::config_digest(grid.cells[index].config,
                                      grid.cells[index].key_extra);

  std::vector<CellData> cells(total);
  std::size_t reused = 0;

  if (!plan.resume_path.empty()) {
    const auto records = resilience::read_journal(plan.resume_path);
    if (!records.empty()) {
      validate_header(records.front().value, plan.spec.name, base_prov,
                      trials, total);
      // Last record per index wins: a cell that was re-executed (e.g. a
      // previous resume needed metrics the old record lacked) appends a
      // fresh, complete record after the stale one.
      std::vector<const resilience::JournalLine*> by_index(total, nullptr);
      for (std::size_t r = 1; r < records.size(); ++r) {
        const JsonValue& v = records[r].value;
        const JsonValue* kind = v.find("kind");
        if (kind == nullptr || kind->as_string() != "cell") continue;
        const std::size_t index = v.at("index").as_size();
        if (index >= total)
          resume_mismatch("cell index " + std::to_string(index) +
                          " out of range");
        by_index[index] = &records[r];
      }
      for (std::size_t index = 0; index < total; ++index) {
        const resilience::JournalLine* line = by_index[index];
        if (line == nullptr) continue;
        const JsonValue& v = line->value;
        if (v.at("key").as_string() != keys[index])
          resume_mismatch("cell " + std::to_string(index) +
                          " key mismatch despite matching header");
        if (v.at("outcome").as_string() != "ok") continue;
        const JsonValue* metrics = v.find("metrics");
        const JsonValue* timeline = v.find("timeline");
        // A record is only reusable when it stored everything this run
        // needs; otherwise the cell silently re-executes.
        if (plan.metrics && metrics == nullptr) continue;
        if (plan.timeline && timeline == nullptr) continue;
        CellData& cell = cells[index];
        cell.stats = parse_stats(v.at("stats"));
        if (metrics != nullptr) cell.metrics_json = metrics->as_string();
        if (timeline != nullptr) cell.timeline_json = timeline->as_string();
        cell.raw_line = line->raw;
        cell.done = true;
        ++reused;
      }
    }
  }

  // Publish the journal (header + replayed records) before simulating, so
  // even an immediately-killed sweep leaves a valid, resumable file.
  std::unique_ptr<resilience::JournalWriter> journal;
  if (!plan.journal_path.empty()) {
    journal =
        std::make_unique<resilience::JournalWriter>(plan.journal_path);
    journal->append(header_line(plan.spec.name, base_prov, trials,
                                grid.points.size(), total),
                    /*flush_now=*/false);
    for (const CellData& cell : cells)
      if (cell.done) journal->append(cell.raw_line, /*flush_now=*/false);
    journal->flush();
  }

  // Watchdog before runner: the runner's destructor joins its workers while
  // the guard must still be alive.
  std::unique_ptr<resilience::Watchdog> watchdog;
  if (plan.trial_timeout_s > 0.0)
    watchdog = std::make_unique<resilience::Watchdog>(plan.trial_timeout_s);
  core::TrialRunner runner(plan.jobs);
  if (watchdog) runner.set_trial_guard(watchdog.get());
  if (plan.profiler != nullptr) runner.set_profiler(plan.profiler);

  obs::StatusBoard* const status = plan.status;
  if (status != nullptr) {
    std::vector<std::string> group_names;
    group_names.reserve(plan.spec.variants.size());
    for (const scenario::VariantSpec& variant : plan.spec.variants)
      group_names.push_back(variant.name);
    status->begin_run(plan.spec.name, base_prov, total, trials,
                      runner.parallelism(), std::move(group_names));
    if (plan.profiler != nullptr) status->set_profiler(plan.profiler);
    for (std::size_t index = 0; index < total; ++index)
      if (cells[index].done) status->cell_reused(index);
  }

  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> skipped{0};
  std::mutex quarantine_mutex;
  std::vector<resilience::QuarantineRecord> quarantined;

  const auto stop_requested = [&plan, &executed]() -> bool {
    if (plan.hooks.interrupted ? plan.hooks.interrupted()
                               : resilience::interrupted())
      return true;
    return plan.hooks.stop_after_cells != 0 &&
           executed.load(std::memory_order_relaxed) >=
               plan.hooks.stop_after_cells;
  };
  const auto injected = [](const std::vector<std::size_t>& list,
                           std::size_t index) {
    return std::find(list.begin(), list.end(), index) != list.end();
  };

  runner.parallel_for(total, [&](std::size_t index) {
    if (cells[index].done) return;  // replayed from the journal
    if (stop_requested()) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const scenario::Cell& cell = grid.cells[index];
    core::ExperimentConfig cfg = cell.config;
    cfg.obs.metrics = plan.metrics;
    cfg.obs.timeline = plan.timeline;
    cfg.audit = plan.audit;

    if (status != nullptr) status->cell_started(index);
    const auto cell_epoch = std::chrono::steady_clock::now();

    TrialOutcomeKind outcome = TrialOutcomeKind::kCrashed;
    std::string error;
    std::size_t attempts = 0;
    for (;;) {
      ++attempts;
      try {
        if (injected(plan.hooks.inject_fail, index))
          throw std::runtime_error("injected failure (inject_fail hook)");
        if (injected(plan.hooks.inject_hang, index)) {
          const std::atomic<bool>* flag =
              core::TrialRunner::current_cancel_flag();
          if (flag == nullptr)
            throw std::runtime_error("inject_hang: no cancel flag published");
          while (!flag->load(std::memory_order_relaxed))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          throw sim::RunCancelled();
        }
        // Trials run serially inside the cell (cells are the parallel
        // unit); the watchdog flag published for this cell reaches every
        // trial's simulator through the runner's thread-local.
        const auto results = core::run_trials_results(
            cfg, *cell.model, *cell.strategy, trials, /*jobs=*/1);
        CellData data;
        data.stats = core::reduce_trials(results);
        if (plan.metrics) {
          const auto merged = core::merge_trial_metrics(results);
          std::ostringstream os;
          merged->write_json(os);
          data.metrics_json = os.str();
        }
        if (plan.timeline) {
          std::vector<obs::TimelineTracer::Process> processes;
          for (std::size_t t = 0; t < results.size(); ++t)
            processes.push_back({cell.label + " trial " + std::to_string(t),
                                 results[t].timeline.get()});
          std::ostringstream os;
          obs::TimelineTracer::write_chrome_fragment(
              os, processes,
              static_cast<std::uint32_t>(index * trials + 1));
          data.timeline_json = os.str();
        }
        data.raw_line =
            cell_record_line(index, keys[index], base_prov, trials,
                             cell.label, data, plan.metrics, plan.timeline);
        data.done = true;
        cells[index] = std::move(data);
        executed.fetch_add(1, std::memory_order_relaxed);
        if (journal) journal->append(cells[index].raw_line);
        if (status != nullptr)
          status->cell_finished(
              index, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - cell_epoch)
                         .count());
        return;
      } catch (const audit::AuditFailure& e) {
        outcome = TrialOutcomeKind::kAuditFailed;
        error = e.what();
      } catch (const sim::RunCancelled& e) {
        outcome = TrialOutcomeKind::kHung;
        error = e.what();
      } catch (const std::exception& e) {
        // A watchdog cancellation can surface as a foreign exception when
        // the strategy wraps it; the fired record disambiguates.
        outcome = (watchdog != nullptr && watchdog->fired(index))
                      ? TrialOutcomeKind::kHung
                      : TrialOutcomeKind::kCrashed;
        error = e.what();
      }
      if (attempts > plan.trial_retries) break;
      if (status != nullptr) status->cell_retried(index);
      if (plan.retry_backoff_s > 0.0) {
        const double backoff_s = std::min(
            plan.retry_backoff_s * std::pow(2.0, double(attempts - 1)), 1.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff_s));
      }
      if (watchdog) watchdog->rearm(index);  // fresh deadline per attempt
    }
    {
      const std::lock_guard<std::mutex> lock(quarantine_mutex);
      quarantined.push_back({index, keys[index], base_prov.seed, trials,
                             cell.label, outcome, attempts, error});
    }
    executed.fetch_add(1, std::memory_order_relaxed);
    if (status != nullptr) status->cell_quarantined(index);
  });

  // A stalled (deadlocked) run must fail the whole sweep when the scenario
  // says so: its "makespan" would silently pollute the figure as an
  // ordinary slow point.
  if (grid.forbid_stalls) {
    for (std::size_t index = 0; index < total; ++index) {
      if (cells[index].done && cells[index].stats.stalled > 0)
        throw std::runtime_error(
            "sweep: " + std::to_string(cells[index].stats.stalled) +
            " stalled run(s) in cell '" + grid.cells[index].label +
            "' — a strategy deadlocked instead of timing out");
    }
  }

  SweepResult result;
  result.cells_total = total;
  result.cells_reused = reused;
  result.cells_executed = executed.load();
  result.cells_skipped = skipped.load();
  std::sort(quarantined.begin(), quarantined.end(),
            [](const resilience::QuarantineRecord& a,
               const resilience::QuarantineRecord& b) {
              return a.index < b.index;
            });
  result.quarantined = std::move(quarantined);

  std::vector<bool> in_quarantine(total, false);
  for (const auto& record : result.quarantined)
    in_quarantine[record.index] = true;
  for (std::size_t index = 0; index < total; ++index)
    if (!cells[index].done && !in_quarantine[index]) result.partial = true;

  result.provenance = base_prov;
  result.provenance.partial = result.partial;

  if (status != nullptr)
    status->finish(result.partial ? "interrupted" : "done");

  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const scenario::ReportSpec& spec_report : grid.reports) {
    core::SeriesReport report;
    report.title = spec_report.title;
    report.x_label = grid.x_label;
    report.x = grid.points;
    for (const scenario::SeriesSpec& series : spec_report.series)
      report.series.push_back({series.name, {}, {}});
    for (std::size_t xi = 0; xi < grid.points.size(); ++xi) {
      for (std::size_t si = 0; si < spec_report.series.size(); ++si) {
        const scenario::SeriesSpec& series = spec_report.series[si];
        const CellData& cell = cells[xi * grid.variant_count + series.variant];
        report.series[si].y.push_back(
            cell.done ? metric_value(series.metric, cell.stats) : nan);
        report.series[si].adaptations.push_back(
            cell.done ? metric_adaptations(series.metric, cell.stats) : nan);
      }
    }
    result.reports.push_back(std::move(report));
    result.expectations.push_back(spec_report.expectation);
  }

  if (plan.metrics) {
    obs::MetricsRegistry merged;
    for (const CellData& cell : cells)
      if (cell.done && !cell.metrics_json.empty())
        merged.merge_from(
            *registry_from_json(resilience::parse_json(cell.metrics_json)));
    std::ostringstream os;
    merged.write_json(os, &result.provenance);
    os << '\n';
    result.metrics_json = os.str();
  }

  if (plan.timeline) {
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"meta\":";
    result.provenance.write_json(os);
    os << "},\"traceEvents\":[";
    bool first = true;
    for (const CellData& cell : cells) {
      if (!cell.done || cell.timeline_json.empty()) continue;
      if (!first) os << ',';
      first = false;
      os << cell.timeline_json;
    }
    os << "]}\n";
    result.timeline_json = os.str();
  }

  return result;
}

}  // namespace simsweep::cli
