// Crash-safe, resumable sweep orchestration over a declarative scenario.
//
// A sweep is any Kind::kGrid ScenarioSpec — the classic `simsweep sweep`
// dynamism grid, every `simsweep bench` figure/ablation, and the golden
// fixtures all route through here.  One pathological cell (axis point ×
// variant) used to cost the whole grid; this runner makes the sweep an
// interruptible, resumable unit of work:
//
//   * every completed cell appends one self-contained record to a
//     crash-consistent journal (resilience::JournalWriter), carrying its
//     stats and — when requested — its serialized metrics snapshot and
//     timeline fragment;
//   * `--resume=FILE` replays matching records instead of re-simulating,
//     and the final artifacts are assembled from per-cell canonical data in
//     cell-index order either way, so an interrupted-then-resumed sweep is
//     byte-identical to an uninterrupted one at any --jobs;
//   * a wall-clock watchdog (resilience::Watchdog) cancels cells that
//     exceed --trial-timeout cooperatively, failed/hung cells retry with
//     capped backoff, and cells that exhaust the budget land in a
//     quarantine report while the sweep continues degraded;
//   * SIGINT/SIGTERM (or the deterministic stop_after_cells test hook)
//     stop claiming new cells, flush the journal, and mark every artifact's
//     provenance "partial":true.
//
// Journal records are keyed by config_digest(cell config, cell key extra),
// and the header carries ScenarioSpec::digest() — the scenario name plus
// its full canonical serialization — so a resumed journal proves it
// describes the same experiment down to the load model and policy lineup.
//
// Factored out of main() so tests can drive interruption, resumption and
// fault injection in-process and compare artifact bytes directly.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/provenance.hpp"
#include "resilience/quarantine.hpp"
#include "scenario/scenario.hpp"

namespace simsweep::obs {
class StatusBoard;
}

namespace simsweep::cli {

/// Test/CI hooks; all inert by default.
struct SweepHooks {
  /// Stop claiming new cells once this many have been executed (not
  /// reused) in this process — a deterministic stand-in for SIGKILL in
  /// resume-identity tests.  0 = no limit.
  std::size_t stop_after_cells = 0;

  /// Cell indices whose every attempt throws (exercises retry exhaustion
  /// and the quarantine path).
  std::vector<std::size_t> inject_fail;

  /// Cell indices whose every attempt spins until the watchdog cancels it
  /// (exercises the hung-outcome path; requires trial_timeout_s > 0).
  std::vector<std::size_t> inject_hang;

  /// Polled before each cell; true stops the sweep gracefully.  Defaults
  /// to resilience::interrupted() (the SIGINT/SIGTERM flag).
  std::function<bool()> interrupted;
};

struct SweepPlan {
  scenario::ScenarioSpec spec;  ///< must be Kind::kGrid
  std::size_t trials = 0;       ///< trials per cell; 0 = spec.trials
  std::size_t jobs = 0;         ///< cell-level parallelism; 0 = default

  /// Invariant auditing applied to every cell (checks are read-only, so
  /// results are bitwise identical with auditing on or off).
  audit::AuditMode audit = audit::AuditMode::kOff;

  bool metrics = false;   ///< collect + merge per-cell metrics registries
  bool timeline = false;  ///< collect + splice per-cell timeline fragments

  double trial_timeout_s = 0.0;   ///< wall-clock budget per cell; 0 = off
  std::size_t trial_retries = 1;  ///< extra attempts before quarantine
  double retry_backoff_s = 0.1;   ///< first backoff; doubles, capped at 1 s

  std::string journal_path;  ///< write the journal here; "" = no journal
  std::string resume_path;   ///< replay this journal first; "" = fresh run

  /// Optional wall-clock profiler attached to the cell runner (one entry
  /// per executed cell).  Must outlive run_sweep.
  obs::TrialProfiler* profiler = nullptr;

  /// Optional live-telemetry board (--status): every cell lifecycle event
  /// is reported through a null check here, and the board periodically
  /// publishes an atomic status snapshot.  Status observation never touches
  /// the simulation, so results are bitwise identical with it on or off.
  /// Must outlive run_sweep.
  obs::StatusBoard* status = nullptr;

  SweepHooks hooks;
};

struct SweepResult {
  /// One SeriesReport per scenario ReportSpec (a scenario with none gets a
  /// default makespan report); quarantined/skipped cells hold NaN.
  std::vector<core::SeriesReport> reports;
  /// Paper expectation per report, parallel to `reports` (may span lines).
  std::vector<std::string> expectations;

  obs::Provenance provenance;  ///< partial flag already set

  /// Complete artifact bodies (trailing newline included); empty unless the
  /// corresponding plan switch was set.  Assembled from per-cell canonical
  /// data in cell-index order, so they are identical for a fresh and a
  /// resumed sweep.
  std::string metrics_json;
  std::string timeline_json;

  std::vector<resilience::QuarantineRecord> quarantined;  ///< index order

  std::size_t cells_total = 0;
  std::size_t cells_reused = 0;    ///< replayed from the resume journal
  std::size_t cells_executed = 0;  ///< simulated in this process
  std::size_t cells_skipped = 0;   ///< unclaimed due to interrupt/stop hook
  bool partial = false;            ///< some cell neither done nor quarantined
};

/// Runs (or resumes) the sweep described by `plan`.  Throws
/// std::runtime_error when the resume journal belongs to a different sweep
/// or is internally inconsistent, scenario::ScenarioError when the spec is
/// not a runnable grid, std::invalid_argument on a malformed plan (empty
/// axis, zero trials, hang injection without a watchdog), and
/// std::runtime_error when the scenario forbids stalls and a cell stalled.
[[nodiscard]] SweepResult run_sweep(const SweepPlan& plan);

}  // namespace simsweep::cli
