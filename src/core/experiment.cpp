#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "net/shared_link.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::core {

strategy::RunResult run_single(const ExperimentConfig& config,
                               const load::LoadModel& model,
                               strategy::Strategy& strat) {
  config.app.validate();
  sim::Simulator simulator;
  sim::Rng platform_rng(config.seed, /*stream=*/0);
  platform::Cluster cluster(simulator, config.cluster, platform_rng);
  // Load sources set their initial state synchronously here, before the
  // initial schedule reads effective speeds.
  auto sources = load::LoadModel::attach_all(model, simulator, cluster,
                                             sim::derive_seed(config.seed, 1));
  net::SharedLinkNetwork network(simulator, config.cluster.link);
  strategy::StrategyContext ctx{
      .simulator = simulator,
      .cluster = cluster,
      .network = network,
      .spec = config.app,
      .spare_count = config.spare_count,
      .initial_schedule = config.initial_schedule,
  };
  auto exec = strat.launch(ctx);
  // Load sources generate events forever; stop as soon as the app is done.
  // run_until(horizon) bounds pathological runs.
  while (!exec->done() && simulator.now() < config.horizon_s &&
         !simulator.idle()) {
    simulator.run_until(
        std::min(config.horizon_s, simulator.now() + 24.0 * 3600.0));
    if (exec->done()) break;
  }
  strategy::RunResult result = exec->result();
  if (!result.finished) result.makespan_s = simulator.now();
  return result;
}

TrialStats run_trials(ExperimentConfig config, const load::LoadModel& model,
                      strategy::Strategy& strategy, std::size_t trials) {
  if (trials == 0) throw std::invalid_argument("run_trials: zero trials");
  TrialStats stats;
  stats.trials = trials;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0, sum_sq = 0.0, adapt_sum = 0.0;
  const std::uint64_t base_seed = config.seed;
  for (std::size_t t = 0; t < trials; ++t) {
    config.seed = base_seed + t;
    const strategy::RunResult r = run_single(config, model, strategy);
    if (!r.finished) ++stats.unfinished;
    sum += r.makespan_s;
    sum_sq += r.makespan_s * r.makespan_s;
    adapt_sum += static_cast<double>(r.adaptations);
    stats.min = std::min(stats.min, r.makespan_s);
    stats.max = std::max(stats.max, r.makespan_s);
  }
  const double n = static_cast<double>(trials);
  stats.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - stats.mean * stats.mean);
  stats.stddev = std::sqrt(var);
  stats.mean_adaptations = adapt_sum / n;
  return stats;
}

void SeriesReport::print_table(std::ostream& os) const {
  os << "# " << title << "\n";
  os << std::setw(14) << x_label;
  for (const Series& s : series) os << std::setw(16) << s.name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << std::setw(14) << std::setprecision(6) << x[i];
    for (const Series& s : series)
      os << std::setw(16) << std::fixed << std::setprecision(1)
         << (i < s.y.size() ? s.y[i] : std::numeric_limits<double>::quiet_NaN())
         << std::defaultfloat;
    os << '\n';
  }
}

void SeriesReport::print_csv(std::ostream& os) const {
  os << std::setprecision(10);
  os << x_label;
  for (const Series& s : series) os << ',' << s.name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << x[i];
    for (const Series& s : series)
      os << ','
         << (i < s.y.size() ? s.y[i] : std::numeric_limits<double>::quiet_NaN());
    os << '\n';
  }
}

}  // namespace simsweep::core
