#include "core/experiment.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/trial_runner.hpp"
#include "net/shared_link.hpp"
#include "obs/timeline.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::core {

namespace {

/// End-of-run cross-checks on the assembled RunResult: the per-event audits
/// in the subsystems see local state; these see the whole ledger at once.
void audit_run_result(audit::InvariantAuditor& auditor,
                      const ExperimentConfig& config, sim::SimTime now,
                      const strategy::RunResult& result) {
  const strategy::FailureStats& fs = result.failures;
  if (!config.faults.enabled() &&
      !(fs == strategy::FailureStats{}))
    auditor.report("experiment", "no_faults_no_failure_stats", now,
                   "fault injection disabled but failure counters are "
                   "non-zero (e.g. " +
                       std::to_string(fs.transfers_failed) +
                       " failed transfers, " +
                       std::to_string(fs.time_lost_s) + " s lost)");
  // Every failed attempt is eventually retried or abandoned; in-flight
  // retry sagas may still be pending when a run stalls or hits the
  // horizon, so the ledger only balances exactly on finished runs.
  if (fs.transfers_failed < fs.transfers_retried + fs.transfers_abandoned)
    auditor.report("experiment", "transfer_ledger_balanced", now,
                   std::to_string(fs.transfers_failed) +
                       " failed transfers but " +
                       std::to_string(fs.transfers_retried) + " retried + " +
                       std::to_string(fs.transfers_abandoned) + " abandoned");
  if (result.finished &&
      fs.transfers_failed != fs.transfers_retried + fs.transfers_abandoned)
    auditor.report("experiment", "transfer_ledger_balanced", now,
                   "finished run has " + std::to_string(fs.transfers_failed) +
                       " failed transfers vs " +
                       std::to_string(fs.transfers_retried) + " retried + " +
                       std::to_string(fs.transfers_abandoned) + " abandoned");
  if (fs.time_lost_s < -sim::kTimeEpsilon)
    auditor.report("experiment", "non_negative_time_lost", now,
                   "time lost to failures is " +
                       std::to_string(fs.time_lost_s) + " s");
  if (result.makespan_s < -sim::kTimeEpsilon ||
      result.makespan_s >
          config.horizon_s * (1.0 + 1e-9) + sim::kTimeEpsilon)
    auditor.report("experiment", "makespan_within_horizon", now,
                   "makespan " + std::to_string(result.makespan_s) +
                       " s outside [0, " + std::to_string(config.horizon_s) +
                       " s]");
  if (result.finished &&
      result.iterations_completed != config.app.iterations)
    auditor.report("experiment", "finished_means_all_iterations", now,
                   "finished with " +
                       std::to_string(result.iterations_completed) + " of " +
                       std::to_string(config.app.iterations) + " iterations");
}

/// Appends one digest field: shortest round-trip decimal for doubles, so
/// the digest is a pure function of the value, not of stream formatting.
void digest_field(std::string& out, double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
  out.push_back(';');
}

void digest_field(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
  out.push_back(';');
}

}  // namespace

std::string config_digest(const ExperimentConfig& config,
                          std::string_view extra) {
  // Every field that shapes the simulation, in a fixed order.  The seed is
  // excluded (provenance reports it separately) and so are the read-only
  // switches (trace_decisions, audit, obs): runs are bitwise identical with
  // or without them, which is exactly what the digest asserts.  `extra`
  // carries the shape inputs that live outside ExperimentConfig — the load
  // model and strategy descriptors.
  std::string blob;
  blob.reserve(256);
  const platform::ClusterSpec& cl = config.cluster;
  digest_field(blob, cl.min_speed_flops);
  digest_field(blob, cl.max_speed_flops);
  digest_field(blob, static_cast<std::uint64_t>(cl.explicit_speeds.size()));
  for (const double s : cl.explicit_speeds) digest_field(blob, s);
  digest_field(blob, static_cast<std::uint64_t>(cl.host_count));
  digest_field(blob, cl.link.latency_s);
  digest_field(blob, cl.link.bandwidth_Bps);
  digest_field(blob, cl.startup_per_process_s);
  const app::AppSpec& ap = config.app;
  digest_field(blob, static_cast<std::uint64_t>(ap.active_processes));
  digest_field(blob, static_cast<std::uint64_t>(ap.iterations));
  digest_field(blob, ap.work_per_iteration_flops);
  digest_field(blob, ap.comm_bytes_per_process);
  digest_field(blob, ap.state_bytes_per_process);
  digest_field(blob, static_cast<std::uint64_t>(config.spare_count));
  digest_field(blob,
               static_cast<std::uint64_t>(config.initial_schedule));
  digest_field(blob, config.horizon_s);
  const fault::FaultSpec& fs = config.faults;
  digest_field(blob, fs.host_mtbf_s);
  digest_field(blob, fs.swap_fail_prob);
  digest_field(blob, fs.checkpoint_fail_prob);
  digest_field(blob, static_cast<std::uint64_t>(fs.max_transfer_retries));
  digest_field(blob, fs.retry_backoff_s);
  digest_field(blob, fs.retry_backoff_cap_s);
  digest_field(blob, static_cast<std::uint64_t>(fs.blacklist_after));
  digest_field(blob, config.max_events);
  blob.append(extra);
  return obs::hex64(obs::fnv1a(blob));
}

obs::Provenance make_run_provenance(const ExperimentConfig& config,
                                    std::string_view extra) {
  return obs::make_provenance(config.seed, config_digest(config, extra));
}

strategy::RunResult run_single(const ExperimentConfig& config,
                               const load::LoadModel& model,
                               strategy::Strategy& strat) {
  config.app.validate();
  config.faults.validate();
  // One auditor per trial: trials fan out across worker threads, and a
  // local auditor keeps each trial's checks (and warn-mode report) private
  // to its own simulation.
  const audit::AuditMode audit_mode = config.audit != audit::AuditMode::kOff
                                          ? config.audit
                                          : audit::mode_from_env();
  audit::InvariantAuditor auditor(audit_mode);
  sim::Simulator simulator;
  if (auditor.enabled()) simulator.set_auditor(&auditor);
  simulator.set_event_budget(config.max_events);
  // When this trial runs under a guarded TrialRunner (a wall-clock watchdog
  // attached via set_trial_guard), let the watchdog interrupt the event loop
  // cooperatively: the simulator throws sim::RunCancelled at the next event
  // once the flag is raised.  Null outside a guarded scope — free then.
  simulator.set_cancel_flag(TrialRunner::current_cancel_flag());
  // Observability collectors attach before any subsystem is built so every
  // instrumentation site sees them from the first event.  Like the auditor
  // they only read simulation state: an observed run is bitwise identical
  // to a plain one.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TimelineTracer> timeline;
  if (config.obs.metrics) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    simulator.set_metrics(metrics.get());
  }
  if (config.obs.timeline) {
    timeline = std::make_shared<obs::TimelineTracer>();
    simulator.set_timeline(timeline.get());
  }
  sim::Rng platform_rng(config.seed, /*stream=*/0);
  platform::Cluster cluster(simulator, config.cluster, platform_rng);
  // Load sources set their initial state synchronously here, before the
  // initial schedule reads effective speeds.
  auto sources = load::LoadModel::attach_all(model, simulator, cluster,
                                             sim::derive_seed(config.seed, 1));
  net::SharedLinkNetwork network(simulator, config.cluster.link);
  // Fault streams derive from the trial seed (stream 2; platform is 0 and
  // load is 1).  A disabled spec builds no injector at all, leaving the
  // run bitwise identical to the fault-free path.
  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults.enabled()) {
    injector = std::make_unique<fault::FaultInjector>(
        simulator, cluster, config.faults, sim::derive_seed(config.seed, 2),
        config.horizon_s);
    injector->arm();
  }
  strategy::StrategyContext ctx{
      .simulator = simulator,
      .cluster = cluster,
      .network = network,
      .spec = config.app,
      .spare_count = config.spare_count,
      .initial_schedule = config.initial_schedule,
      .faults = injector.get(),
      .trace_decisions = config.trace_decisions,
  };
  auto exec = strat.launch(ctx);
  // Load sources generate events forever; stop as soon as the app is done
  // or the strategy gives up.  run_until(horizon) bounds pathological runs.
  while (!exec->done() && !exec->result().resource_exhausted &&
         simulator.now() < config.horizon_s && !simulator.idle()) {
    simulator.run_until(
        std::min(config.horizon_s, simulator.now() + 24.0 * 3600.0));
    if (exec->done()) break;
  }
  strategy::RunResult result = exec->result();
  if (injector) result.failures.host_crashes = injector->crashes_injected();
  if (!result.finished) {
    // Distinct failure shapes: the run outlived the horizon (slow but
    // live), the event queue drained with iterations outstanding (the
    // strategy deadlocked — e.g. a boundary hook that never resumed), or
    // crash recovery ran out of usable hosts and gave up cleanly.
    result.stalled =
        simulator.now() < config.horizon_s || result.resource_exhausted;
    // Resource-exhausted runs already stamped their give-up instant; for
    // the rest the best available makespan is wherever the loop stopped.
    if (!result.resource_exhausted) result.makespan_s = simulator.now();
  }
  if (auditor.enabled()) {
    audit_run_result(auditor, config, simulator.now(), result);
    result.audit_report = auditor.take_violations();
  }
  if (metrics) {
    // Run-level summary metrics, recorded once at the end so they reflect
    // the assembled result (post-horizon/stall fixups included).
    metrics->add("sim.events_fired", simulator.events_fired());
    if (simulator.queue_depth_samples() != 0) {
      metrics->set_gauge("sim.queue_depth_mean",
                         simulator.queue_depth_mean());
      metrics->set_gauge(
          "sim.queue_depth_max",
          static_cast<double>(simulator.queue_depth_max()));
    }
    if (config.max_events != 0)
      metrics->set_gauge("sim.event_budget_headroom",
                         static_cast<double>(config.max_events -
                                             simulator.events_fired()));
    metrics->set_gauge("run.makespan_s", result.makespan_s);
    metrics->add("run.iterations_completed", result.iterations_completed);
    metrics->add("run.adaptations", result.adaptations);
    metrics->add("run.trials");
    if (result.finished) metrics->add("run.finished");
    if (result.stalled) metrics->add("run.stalled");
  }
  result.metrics = std::move(metrics);
  result.timeline = std::move(timeline);
  return result;
}

TrialStats reduce_trials(const std::vector<strategy::RunResult>& results) {
  if (results.empty())
    throw std::invalid_argument("reduce_trials: zero trials");
  TrialStats stats;
  stats.trials = results.size();
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  // Welford's online mean/variance: numerically stable when the spread is
  // tiny relative to the magnitude (makespans near 1e9 s would lose all
  // variance digits to cancellation in the sum-of-squares form).
  double mean = 0.0, m2 = 0.0, adapt_sum = 0.0;
  double crash_sum = 0.0, tf_sum = 0.0, rec_sum = 0.0, ckpt_sum = 0.0,
         lost_sum = 0.0;
  std::size_t n = 0;
  for (const strategy::RunResult& r : results) {
    if (!r.finished) ++stats.unfinished;
    if (r.stalled) ++stats.stalled;
    if (r.resource_exhausted) ++stats.resource_exhausted;
    ++n;
    const double delta = r.makespan_s - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (r.makespan_s - mean);
    adapt_sum += static_cast<double>(r.adaptations);
    crash_sum += static_cast<double>(r.failures.host_crashes);
    tf_sum += static_cast<double>(r.failures.transfers_failed);
    rec_sum += static_cast<double>(r.failures.crash_recoveries);
    ckpt_sum += static_cast<double>(r.failures.checkpoint_failures);
    lost_sum += r.failures.time_lost_s;
    stats.audit_violations += r.audit_report.size();
    stats.min = std::min(stats.min, r.makespan_s);
    stats.max = std::max(stats.max, r.makespan_s);
  }
  stats.mean = mean;
  stats.stddev = std::sqrt(std::max(0.0, m2 / static_cast<double>(n)));
  const double dn = static_cast<double>(n);
  stats.mean_adaptations = adapt_sum / dn;
  stats.mean_crashes = crash_sum / dn;
  stats.mean_transfer_failures = tf_sum / dn;
  stats.mean_recoveries = rec_sum / dn;
  stats.mean_checkpoint_failures = ckpt_sum / dn;
  stats.mean_time_lost_s = lost_sum / dn;
  return stats;
}

namespace {

/// Attaches a profiler to a runner for one scope; detaches on exit even
/// when a trial throws (the shared() runner outlives any one experiment).
class ProfilerAttachment {
 public:
  ProfilerAttachment(TrialRunner* runner, obs::TrialProfiler* profiler)
      : runner_(profiler != nullptr ? runner : nullptr) {
    if (runner_ != nullptr) runner_->set_profiler(profiler);
  }
  ~ProfilerAttachment() {
    if (runner_ != nullptr) runner_->set_profiler(nullptr);
  }
  ProfilerAttachment(const ProfilerAttachment&) = delete;
  ProfilerAttachment& operator=(const ProfilerAttachment&) = delete;

 private:
  TrialRunner* runner_;
};

/// Serial or pooled trial fan-out; results land in trial-index order so the
/// reduction (and therefore the returned stats) is identical either way.
std::vector<strategy::RunResult> run_trials_results_impl(
    ExperimentConfig config, const load::LoadModel& model,
    strategy::Strategy& strategy, std::size_t trials, TrialRunner* runner,
    obs::TrialProfiler* profiler = nullptr) {
  if (trials == 0) throw std::invalid_argument("run_trials: zero trials");
  const std::uint64_t base_seed = config.seed;
  std::vector<strategy::RunResult> results(trials);
  if (runner == nullptr) {
    for (std::size_t t = 0; t < trials; ++t) {
      config.seed = base_seed + t;
      if (profiler != nullptr) {
        // Serial path: no queue, so submit == begin and the wait is zero.
        const double begin_s = profiler->now();
        results[t] = run_single(config, model, strategy);
        profiler->record(t, /*worker=*/0, begin_s, begin_s,
                         profiler->now());
      } else {
        results[t] = run_single(config, model, strategy);
      }
    }
  } else {
    const ProfilerAttachment attachment(runner, profiler);
    runner->parallel_for(trials, [&](std::size_t t) {
      ExperimentConfig trial_config = config;
      trial_config.seed = base_seed + t;
      results[t] = run_single(trial_config, model, strategy);
    });
  }
  return results;
}

}  // namespace

std::vector<strategy::RunResult> run_trials_results(
    ExperimentConfig config, const load::LoadModel& model,
    strategy::Strategy& strategy, std::size_t trials, TrialRunner& runner,
    obs::TrialProfiler* profiler) {
  return run_trials_results_impl(std::move(config), model, strategy, trials,
                                 &runner, profiler);
}

std::vector<strategy::RunResult> run_trials_results(
    ExperimentConfig config, const load::LoadModel& model,
    strategy::Strategy& strategy, std::size_t trials, std::size_t jobs,
    obs::TrialProfiler* profiler) {
  if (jobs == 1) {
    return run_trials_results_impl(std::move(config), model, strategy, trials,
                                   /*runner=*/nullptr, profiler);
  }
  if (jobs == 0) {
    return run_trials_results_impl(std::move(config), model, strategy, trials,
                                   &TrialRunner::shared(), profiler);
  }
  TrialRunner runner(jobs);
  return run_trials_results_impl(std::move(config), model, strategy, trials,
                                 &runner, profiler);
}

std::unique_ptr<obs::MetricsRegistry> merge_trial_metrics(
    const std::vector<strategy::RunResult>& results) {
  auto merged = std::make_unique<obs::MetricsRegistry>();
  for (const strategy::RunResult& r : results)
    if (r.metrics) merged->merge_from(*r.metrics);
  return merged;
}

TrialStats run_trials(ExperimentConfig config, const load::LoadModel& model,
                      strategy::Strategy& strategy, std::size_t trials) {
  return reduce_trials(run_trials_results_impl(std::move(config), model,
                                               strategy, trials,
                                               /*runner=*/nullptr));
}

TrialStats run_trials_parallel(ExperimentConfig config,
                               const load::LoadModel& model,
                               strategy::Strategy& strategy,
                               std::size_t trials, std::size_t jobs) {
  if (jobs == 0) {
    return reduce_trials(run_trials_results_impl(
        std::move(config), model, strategy, trials, &TrialRunner::shared()));
  }
  TrialRunner runner(jobs);
  return reduce_trials(run_trials_results_impl(std::move(config), model,
                                               strategy, trials, &runner));
}

namespace {

/// Shortest decimal form that round-trips to the same double (via
/// std::to_chars); NaN / infinity become null, which JSON requires.
void json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  os.write(buffer, result.ptr - buffer);
}

}  // namespace

void TrialStats::print_json(std::ostream& os,
                            const obs::Provenance* meta) const {
  os << '{';
  if (meta != nullptr) {
    os << "\"meta\":";
    meta->write_json(os);
    os << ',';
  }
  os << "\"mean\":";
  json_number(os, mean);
  os << ",\"stddev\":";
  json_number(os, stddev);
  os << ",\"min\":";
  json_number(os, min);
  os << ",\"max\":";
  json_number(os, max);
  os << ",\"trials\":" << trials << ",\"unfinished\":" << unfinished
     << ",\"stalled\":" << stalled
     << ",\"resource_exhausted\":" << resource_exhausted
     << ",\"mean_adaptations\":";
  json_number(os, mean_adaptations);
  os << ",\"mean_crashes\":";
  json_number(os, mean_crashes);
  os << ",\"mean_transfer_failures\":";
  json_number(os, mean_transfer_failures);
  os << ",\"mean_recoveries\":";
  json_number(os, mean_recoveries);
  os << ",\"mean_checkpoint_failures\":";
  json_number(os, mean_checkpoint_failures);
  os << ",\"mean_time_lost_s\":";
  json_number(os, mean_time_lost_s);
  os << ",\"audit_violations\":" << audit_violations << "}";
}

void SeriesReport::print_table(std::ostream& os) const {
  os << "# " << title << "\n";
  os << std::setw(14) << x_label;
  for (const Series& s : series) os << std::setw(16) << s.name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << std::setw(14) << std::setprecision(6) << x[i];
    for (const Series& s : series)
      os << std::setw(16) << std::fixed << std::setprecision(1)
         << (i < s.y.size() ? s.y[i] : std::numeric_limits<double>::quiet_NaN())
         << std::defaultfloat;
    os << '\n';
  }
}

void SeriesReport::print_csv(std::ostream& os) const {
  os << std::setprecision(10);
  os << x_label;
  for (const Series& s : series) os << ',' << s.name;
  os << '\n';
  for (std::size_t i = 0; i < x.size(); ++i) {
    os << x[i];
    for (const Series& s : series)
      os << ','
         << (i < s.y.size() ? s.y[i] : std::numeric_limits<double>::quiet_NaN());
    os << '\n';
  }
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
void json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: {
        const auto uc = static_cast<unsigned char>(c);
        if (uc < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[uc >> 4] << hex[uc & 0xF];
        } else {
          os << c;
        }
      }
    }
  }
  os << '"';
}

void json_array(std::ostream& os, const std::vector<double>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ',';
    json_number(os, values[i]);
  }
  os << ']';
}

}  // namespace

void SeriesReport::print_json(std::ostream& os,
                              const obs::Provenance* meta) const {
  os << '{';
  if (meta != nullptr) {
    os << "\"meta\":";
    meta->write_json(os);
    os << ',';
  }
  os << "\"title\":";
  json_string(os, title);
  os << ",\"x_label\":";
  json_string(os, x_label);
  os << ",\"x\":";
  json_array(os, x);
  os << ",\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"name\":";
    json_string(os, series[i].name);
    os << ",\"mean_makespan_s\":";
    json_array(os, series[i].y);
    os << ",\"mean_adaptations\":";
    json_array(os, series[i].adaptations);
    os << '}';
  }
  os << "]}";
}

}  // namespace simsweep::core
