// Top-level experiment API: configure a platform + load model + application,
// run strategies on it, repeat across seeds, and report series shaped like
// the paper's figures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/app_spec.hpp"
#include "load/load_model.hpp"
#include "platform/cluster.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::core {

struct ExperimentConfig {
  platform::ClusterSpec cluster;
  app::AppSpec app;

  /// Over-allocated spare processors (M) granted to SWAP and CR.
  std::size_t spare_count = 0;

  /// Pre-execution scheduler policy (the paper's default ranks by current
  /// effective speed).
  strategy::InitialSchedule initial_schedule =
      strategy::InitialSchedule::kFastestEffective;

  /// Root seed; platform speeds, load sources and any strategy randomness
  /// all derive from it.
  std::uint64_t seed = 1;

  /// Safety cap on simulated time; runs that exceed it are reported
  /// unfinished with makespan == horizon.
  double horizon_s = 120.0 * 24.0 * 3600.0;
};

/// One simulated run of `strategy` under `model`.  Fully deterministic in
/// (config, model parameters, strategy).
[[nodiscard]] strategy::RunResult run_single(const ExperimentConfig& config,
                                             const load::LoadModel& model,
                                             strategy::Strategy& strategy);

/// Summary over repeated trials (seeds config.seed, config.seed+1, ...).
struct TrialStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t trials = 0;
  std::size_t unfinished = 0;
  double mean_adaptations = 0.0;
};

[[nodiscard]] TrialStats run_trials(ExperimentConfig config,
                                    const load::LoadModel& model,
                                    strategy::Strategy& strategy,
                                    std::size_t trials);

/// A figure-shaped result: one x axis, one y series per strategy.
struct SeriesReport {
  std::string title;
  std::string x_label;
  std::vector<double> x;
  struct Series {
    std::string name;
    std::vector<double> y;             ///< mean makespan per x point
    std::vector<double> adaptations;   ///< mean adaptation count per x point
  };
  std::vector<Series> series;

  /// Aligned human-readable table.
  void print_table(std::ostream& os) const;

  /// Machine-readable CSV block (x, then one column per series).
  void print_csv(std::ostream& os) const;
};

}  // namespace simsweep::core
