// Top-level experiment API: configure a platform + load model + application,
// run strategies on it, repeat across seeds, and report series shaped like
// the paper's figures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "app/app_spec.hpp"
#include "audit/auditor.hpp"
#include "fault/fault.hpp"
#include "load/load_model.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "platform/cluster.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::core {

class TrialRunner;

/// Per-run observability switches.  Both collectors only *read* simulation
/// state, so an observed run is bitwise identical to a plain one.
struct ObsConfig {
  /// Attach a per-trial obs::MetricsRegistry (RunResult::metrics).
  bool metrics = false;

  /// Attach a per-trial obs::TimelineTracer (RunResult::timeline).
  bool timeline = false;

  [[nodiscard]] bool any() const noexcept { return metrics || timeline; }
};

struct ExperimentConfig {
  platform::ClusterSpec cluster;
  app::AppSpec app;

  /// Over-allocated spare processors (M) granted to SWAP and CR.
  std::size_t spare_count = 0;

  /// Pre-execution scheduler policy (the paper's default ranks by current
  /// effective speed).
  strategy::InitialSchedule initial_schedule =
      strategy::InitialSchedule::kFastestEffective;

  /// Root seed; platform speeds, load sources and any strategy randomness
  /// all derive from it.
  std::uint64_t seed = 1;

  /// Safety cap on simulated time; runs that exceed it are reported
  /// unfinished with makespan == horizon.
  double horizon_s = 120.0 * 24.0 * 3600.0;

  /// Fault model (disabled by default).  When enabled each trial derives
  /// its fault streams from the trial seed, so fault histories are as
  /// deterministic as everything else.
  fault::FaultSpec faults;

  /// Safety cap on events fired per trial; a runaway simulation throws
  /// sim::EventBudgetExceeded instead of spinning forever.  0 = unlimited.
  std::uint64_t max_events = 250'000'000;

  /// Collect per-decision records (candidate swaps weighed, rejection
  /// reasons, recovery actions) into RunResult::decision_trace.  Tracing
  /// never touches the simulation, so makespans are identical either way.
  bool trace_decisions = false;

  /// Invariant auditing.  kOff (the default) skips every check; kFail
  /// throws audit::AuditFailure at the first violation; kWarn collects
  /// violations into RunResult::audit_report.  Audit checks are read-only —
  /// makespans are bitwise identical with auditing on or off.  When left
  /// kOff, the SIMSWEEP_AUDIT environment variable ("fail"/"warn") applies
  /// instead, so whole test suites can run audited without code changes.
  audit::AuditMode audit = audit::AuditMode::kOff;

  /// Observability collection (metrics registry / timeline tracer per
  /// trial).  Off by default: every instrumentation site is a null-pointer
  /// check, so a run without observability does no extra work.
  ObsConfig obs;
};

/// Deterministic hex digest of everything in `config` that shapes a run
/// except the seed (which provenance reports separately).  The load model
/// and strategy are not part of ExperimentConfig, so callers fold them in
/// through `extra` (canonically `model.describe() + ";" + strategy.name()`);
/// with that done, equal digests + equal seeds produce bitwise-identical
/// runs.
[[nodiscard]] std::string config_digest(const ExperimentConfig& config,
                                        std::string_view extra = {});

/// Provenance for `config`'s runs: compiled-in build stamps + the config's
/// seed and digest (with `extra` folded in, as in config_digest).  The
/// shared "meta" block of every JSON artifact.
[[nodiscard]] obs::Provenance make_run_provenance(
    const ExperimentConfig& config, std::string_view extra = {});

/// One simulated run of `strategy` under `model`.  Fully deterministic in
/// (config, model parameters, strategy).
[[nodiscard]] strategy::RunResult run_single(const ExperimentConfig& config,
                                             const load::LoadModel& model,
                                             strategy::Strategy& strategy);

/// Summary over repeated trials (seeds config.seed, config.seed+1, ...).
struct TrialStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t trials = 0;
  std::size_t unfinished = 0;
  /// Runs whose simulation went idle before the horizon with the
  /// application unfinished (deadlocked strategies) or that gave up after
  /// exhausting recovery resources; always a subset of `unfinished`.
  std::size_t stalled = 0;
  /// Runs that gave up because no usable host remained for crash recovery;
  /// a subset of `stalled`.
  std::size_t resource_exhausted = 0;
  double mean_adaptations = 0.0;

  // Fault-injection aggregates; all zero when faults are disabled.
  double mean_crashes = 0.0;
  double mean_transfer_failures = 0.0;
  double mean_recoveries = 0.0;
  double mean_checkpoint_failures = 0.0;
  double mean_time_lost_s = 0.0;

  /// Total invariant violations collected across trials (warn-mode audits
  /// only; fail mode throws before reaching the reduction).
  std::size_t audit_violations = 0;

  /// One-line JSON object with every field above.  When `meta` is non-null
  /// the object leads with a "meta" provenance block.
  void print_json(std::ostream& os, const obs::Provenance* meta) const;
  void print_json(std::ostream& os) const { print_json(os, nullptr); }
};

/// Folds per-trial results, in trial order, into summary statistics.
/// Variance uses Welford's online algorithm, so makespans around 1e9 s do
/// not suffer the catastrophic cancellation of the naive sum-of-squares
/// form.  Both run_trials and run_trials_parallel reduce through this, in
/// the same order, so their outputs are bitwise identical.
[[nodiscard]] TrialStats reduce_trials(
    const std::vector<strategy::RunResult>& results);

[[nodiscard]] TrialStats run_trials(ExperimentConfig config,
                                    const load::LoadModel& model,
                                    strategy::Strategy& strategy,
                                    std::size_t trials);

/// run_trials with the independent trials fanned out over a worker pool.
/// Each trial still derives its seed as config.seed + t and results are
/// reduced in trial order, so the returned TrialStats is bitwise identical
/// to the serial path.  `jobs` == 0 uses the process-wide shared pool
/// (sized by SIMSWEEP_JOBS or hardware concurrency); any other value runs
/// on a dedicated pool of exactly that many executors.  Requires
/// `strategy.launch` to be safe to call concurrently, which holds for all
/// in-tree strategies (launch only reads configuration and builds
/// per-run state).
[[nodiscard]] TrialStats run_trials_parallel(ExperimentConfig config,
                                             const load::LoadModel& model,
                                             strategy::Strategy& strategy,
                                             std::size_t trials,
                                             std::size_t jobs = 0);

/// The per-trial results behind run_trials/run_trials_parallel, in trial
/// order (trial t ran with seed config.seed + t).  Callers that need more
/// than summary statistics — decision traces, per-trial makespans — use
/// this and reduce_trials() the vector themselves.  `jobs` as in
/// run_trials_parallel; `jobs` == 1 runs the trials serially.
[[nodiscard]] std::vector<strategy::RunResult> run_trials_results(
    ExperimentConfig config, const load::LoadModel& model,
    strategy::Strategy& strategy, std::size_t trials, std::size_t jobs = 1,
    obs::TrialProfiler* profiler = nullptr);

/// run_trials_results on a caller-owned runner, so the caller can attach a
/// profiler and/or a trial guard (wall-clock watchdog) of its own before
/// fanning out.  Trials are still seeded and reduced in trial order.
[[nodiscard]] std::vector<strategy::RunResult> run_trials_results(
    ExperimentConfig config, const load::LoadModel& model,
    strategy::Strategy& strategy, std::size_t trials, TrialRunner& runner,
    obs::TrialProfiler* profiler = nullptr);

/// Folds the per-trial metrics registries of `results` into one snapshot,
/// in trial-index order — the same order regardless of --jobs, so the
/// merged snapshot is bitwise identical at any parallelism.  Trials without
/// a registry (obs disabled) are skipped.
[[nodiscard]] std::unique_ptr<obs::MetricsRegistry> merge_trial_metrics(
    const std::vector<strategy::RunResult>& results);

/// A figure-shaped result: one x axis, one y series per strategy.
struct SeriesReport {
  std::string title;
  std::string x_label;
  std::vector<double> x;
  struct Series {
    std::string name;
    std::vector<double> y;             ///< mean makespan per x point
    std::vector<double> adaptations;   ///< mean adaptation count per x point
  };
  std::vector<Series> series;

  /// Aligned human-readable table.
  void print_table(std::ostream& os) const;

  /// Machine-readable CSV block (x, then one column per series).
  void print_csv(std::ostream& os) const;

  /// Machine-readable JSON object: title, x_label, x, and per-series mean
  /// makespans and adaptation counts.  Doubles round-trip exactly.  When
  /// `meta` is non-null the object leads with a "meta" provenance block.
  void print_json(std::ostream& os, const obs::Provenance* meta) const;
  void print_json(std::ostream& os) const { print_json(os, nullptr); }
};

}  // namespace simsweep::core
