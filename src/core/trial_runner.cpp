#include "core/trial_runner.hpp"

#include <cstdlib>
#include <exception>

namespace simsweep::core {

namespace {

/// Cancellation flag of the guarded item running on this thread.  Saved and
/// restored around each body so nested parallel_for calls (a bench cell
/// fanning out trials) see their own innermost guarded scope.
thread_local const std::atomic<bool>* t_cancel_flag = nullptr;

}  // namespace

const std::atomic<bool>* TrialRunner::current_cancel_flag() noexcept {
  return t_cancel_flag;
}

TrialRunner::TrialRunner(std::size_t parallelism) {
  if (parallelism == 0) parallelism = default_parallelism();
  workers_.reserve(parallelism - 1);
  for (std::size_t i = 0; i + 1 < parallelism; ++i)
    workers_.emplace_back([this, id = i + 1] { worker_loop(id); });
}

TrialRunner::~TrialRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t TrialRunner::default_parallelism() {
  if (const char* env = std::getenv("SIMSWEEP_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TrialRunner& TrialRunner::shared() {
  static TrialRunner runner;
  return runner;
}

void TrialRunner::run_one(Batch& batch, std::size_t i,
                          std::size_t worker_id) {
  obs::TrialProfiler* profiler = profiler_.load(std::memory_order_relaxed);
  const double begin_s = profiler != nullptr ? profiler->now() : 0.0;
  TrialGuard* guard = guard_.load(std::memory_order_relaxed);
  const std::atomic<bool>* outer_flag = t_cancel_flag;
  if (guard != nullptr) t_cancel_flag = guard->trial_begin(i);
  std::exception_ptr error;
  try {
    (*batch.body)(i);
  } catch (...) {
    error = std::current_exception();
  }
  if (guard != nullptr) {
    guard->trial_end(i);
    t_cancel_flag = outer_flag;
  }
  if (profiler != nullptr)
    profiler->record(i, worker_id, batch.submitted_s, begin_s,
                     profiler->now());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error && !batch.error) {
      batch.error = error;
      // Cancel every index not yet claimed: the batch fails anyway, so
      // finishing the remaining work would only delay the rethrow.
      batch.next = batch.count;
    }
    ++batch.done;
  }
  done_cv_.notify_all();
}

void TrialRunner::worker_loop(std::size_t worker_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Batch* batch = queue_.front();
    if (batch->next >= batch->count) {
      // Fully claimed; the owning caller removes it once done.
      queue_.pop_front();
      continue;
    }
    const std::size_t i = batch->next++;
    ++batch->started;
    lock.unlock();
    run_one(*batch, i, worker_id);
    lock.lock();
  }
}

void TrialRunner::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  Batch batch;
  batch.body = &body;
  batch.count = count;
  if (obs::TrialProfiler* profiler =
          profiler_.load(std::memory_order_relaxed);
      profiler != nullptr)
    batch.submitted_s = profiler->now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(&batch);
  }
  work_cv_.notify_all();

  // The caller claims indices alongside the workers, so progress never
  // depends on a worker being free (nested calls, parallelism == 1).
  std::unique_lock<std::mutex> lock(mutex_);
  while (batch.next < batch.count) {
    const std::size_t i = batch.next++;
    ++batch.started;
    lock.unlock();
    run_one(batch, i, /*worker_id=*/0);
    lock.lock();
  }
  // Cancellation moves `next` to `count` without claiming, so wait on the
  // calls actually started, not the full range.
  done_cv_.wait(lock, [&batch] { return batch.done == batch.started; });
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == &batch) {
      queue_.erase(it);
      break;
    }
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace simsweep::core
