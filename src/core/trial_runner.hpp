// Fixed-size worker pool for fanning out independent simulation trials.
//
// Every trial of an experiment is a self-contained simulation with its own
// derived seed, so trials (and whole sweep points) can execute on any
// thread in any order.  TrialRunner provides the one primitive the
// experiment layer needs: run `body(i)` for every index of a range across
// a fixed set of workers.  Determinism is the caller's job and is easy:
// write results into slot `i` of a preallocated vector and reduce in index
// order afterwards — see core::run_trials_parallel.
//
// The calling thread participates in its own batch, so a TrialRunner with
// parallelism 1 spawns no threads at all, and nested parallel_for calls
// (a bench dispatching sweep points whose bodies fan out trials) cannot
// deadlock: every caller always has work it can execute itself.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"

namespace simsweep::core {

/// Observes every work item a TrialRunner executes, from the executing
/// thread itself.  The resilience layer's wall-clock watchdog implements
/// this: trial_begin registers the item and hands back a cancellation flag,
/// trial_end retires it.  Implementations must tolerate concurrent calls for
/// distinct indices (one per worker) and begin/end pairs for the same index
/// across retries.
class TrialGuard {
 public:
  virtual ~TrialGuard() = default;

  /// Called right before body(index) on the thread about to run it.  The
  /// returned flag (null = not cancellable) is published to the body via
  /// TrialRunner::current_cancel_flag() and must stay valid until the
  /// matching trial_end.
  virtual const std::atomic<bool>* trial_begin(std::size_t index) = 0;

  /// Called after body(index) returned or threw, on the same thread.
  virtual void trial_end(std::size_t index) noexcept = 0;
};

class TrialRunner {
 public:
  /// A runner with `parallelism` concurrent executors (the calling thread
  /// counts as one, so `parallelism - 1` worker threads are spawned).
  /// Zero selects default_parallelism().
  explicit TrialRunner(std::size_t parallelism = 0);
  ~TrialRunner();

  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;

  /// Total concurrent executors, including the caller.  Always >= 1.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs `body(i)` once for every i in [0, count), distributed over the
  /// workers and the calling thread.  Returns when all calls completed.
  /// The first exception thrown by any call cancels every index not yet
  /// claimed, waits for in-flight calls to drain, and is rethrown here on
  /// the calling thread.  Safe to call from inside a body running on this
  /// runner (nested batches share the worker set).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// SIMSWEEP_JOBS when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static std::size_t default_parallelism();

  /// Process-wide runner sized by default_parallelism() on first use.
  [[nodiscard]] static TrialRunner& shared();

  /// Attaches a wall-clock profiler: every parallel_for call records one
  /// TrialProfiler entry per index (submit time, execution window, worker
  /// id).  The calling thread is worker 0; spawned workers are 1..N-1.
  /// Null (the default) disables recording; the hot path is one relaxed
  /// atomic load.  The profiler must outlive its attachment.
  void set_profiler(obs::TrialProfiler* profiler) noexcept {
    profiler_.store(profiler, std::memory_order_relaxed);
  }

  /// Attaches a trial guard (see TrialGuard): every body invocation is
  /// bracketed by trial_begin/trial_end on the executing thread, and the
  /// flag returned by trial_begin is exposed through current_cancel_flag()
  /// for the duration of the call.  Null (the default) disables the hook;
  /// like the profiler, the hot path is one relaxed atomic load.  The guard
  /// must outlive its attachment.
  void set_trial_guard(TrialGuard* guard) noexcept {
    guard_.store(guard, std::memory_order_relaxed);
  }

  /// Cancellation flag of the guarded work item currently executing on this
  /// thread, or null outside one (or when no guard is attached).  Trial
  /// bodies hand it to sim::Simulator::set_cancel_flag so a wall-clock
  /// watchdog can interrupt the event loop cooperatively.
  [[nodiscard]] static const std::atomic<bool>* current_cancel_flag() noexcept;

 private:
  /// One parallel_for call: a range of indices claimed one at a time under
  /// the pool mutex.  Lives on the caller's stack for the duration of the
  /// call; the queue only ever holds batches whose callers are blocked in
  /// parallel_for.
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;     ///< next unclaimed index
    std::size_t started = 0;  ///< claimed calls (never un-claimed)
    std::size_t done = 0;     ///< completed calls
    double submitted_s = 0.0;  ///< profiler timestamp at parallel_for entry
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker_id);
  /// Executes index `i` of `batch` on `worker_id` and updates completion
  /// state.
  void run_one(Batch& batch, std::size_t i, std::size_t worker_id);

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< queue non-empty or stopping
  std::condition_variable done_cv_;  ///< some batch finished a call
  std::deque<Batch*> queue_;
  std::vector<std::thread> workers_;
  std::atomic<obs::TrialProfiler*> profiler_{nullptr};
  std::atomic<TrialGuard*> guard_{nullptr};
  bool stop_ = false;
};

}  // namespace simsweep::core
