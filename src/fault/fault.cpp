#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simsweep::fault {

bool FaultSpec::crashes_enabled() const noexcept {
  return host_mtbf_s > 0.0 && std::isfinite(host_mtbf_s);
}

bool FaultSpec::enabled() const noexcept {
  return crashes_enabled() || swap_fail_prob > 0.0 ||
         checkpoint_fail_prob > 0.0;
}

void FaultSpec::validate() const {
  if (host_mtbf_s < 0.0)
    throw std::invalid_argument("FaultSpec: negative host MTBF");
  if (swap_fail_prob < 0.0 || swap_fail_prob > 1.0)
    throw std::invalid_argument("FaultSpec: swap_fail_prob outside [0, 1]");
  if (checkpoint_fail_prob < 0.0 || checkpoint_fail_prob > 1.0)
    throw std::invalid_argument(
        "FaultSpec: checkpoint_fail_prob outside [0, 1]");
  if (retry_backoff_s < 0.0 || retry_backoff_cap_s < 0.0)
    throw std::invalid_argument("FaultSpec: negative retry backoff");
  if (blacklist_after == 0)
    throw std::invalid_argument("FaultSpec: blacklist_after must be >= 1");
}

FaultPlan FaultPlan::generate(const FaultSpec& spec, std::size_t host_count,
                              std::uint64_t seed, double horizon_s) {
  FaultPlan plan;
  if (!spec.crashes_enabled()) return plan;
  for (std::size_t h = 0; h < host_count; ++h) {
    // Per-host stream: host h's crash time is independent of the cluster
    // size and of every other host's draw.
    sim::Rng rng(sim::derive_seed(seed, h));
    const double t = rng.exponential_mean(spec.host_mtbf_s);
    if (t < horizon_s)
      plan.crashes_.push_back(
          HostCrash{static_cast<platform::HostId>(h), t});
  }
  std::sort(plan.crashes_.begin(), plan.crashes_.end(),
            [](const HostCrash& a, const HostCrash& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.host < b.host;
            });
  return plan;
}

FaultInjector::FaultInjector(sim::Simulator& simulator,
                             platform::Cluster& cluster, const FaultSpec& spec,
                             std::uint64_t seed, double horizon_s)
    : simulator_(simulator),
      cluster_(cluster),
      spec_(spec),
      plan_(FaultPlan::generate(spec, cluster.size(), seed, horizon_s)),
      transfer_rng_(sim::derive_seed(seed, 0x7452414E53ULL)),
      checkpoint_rng_(sim::derive_seed(seed, 0x434B5054ULL)) {
  spec_.validate();
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  for (const HostCrash& crash : plan_.crashes()) {
    simulator_.at(crash.time_s, [this, crash] {
      cluster_.host(crash.host).set_crashed();
      ++injected_;
      count_injection("host_crash");
      if (obs::TimelineTracer* timeline = simulator_.timeline())
        timeline->instant(timeline->track("faults"), "host_crash", "fault",
                          simulator_.now(),
                          {{"host", static_cast<double>(crash.host)}});
      // Listeners run after the host is marked dead so they observe the
      // post-crash cluster state.
      for (const auto& listener : listeners_) listener(crash.host);
    });
  }
}

void FaultInjector::count_injection(std::string_view kind) {
  if (obs::MetricsRegistry* metrics = simulator_.metrics())
    metrics->add(obs::labelled("fault.injections", "kind", kind));
}

double FaultInjector::retry_backoff(std::size_t attempt) const {
  const double factor = std::pow(2.0, static_cast<double>(attempt));
  return std::min(spec_.retry_backoff_cap_s, spec_.retry_backoff_s * factor);
}

}  // namespace simsweep::fault
