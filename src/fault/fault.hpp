// Seeded, deterministic fault injection.
//
// The paper's platform is a pool of *non-owned* time-shared workstations;
// besides slowing down (external load) and being gracefully reclaimed
// (ReclamationModel), such machines also fail outright.  This module models
// that failure axis:
//
//   * permanent host crashes — each host draws one exponential lifetime
//     (mean = the configured MTBF); when it expires the host goes offline
//     for good and the process state it held is lost,
//   * transient swap-transfer failures — a state transfer dies partway and
//     must be retried (the evicted process is still intact at the source),
//   * checkpoint write failures — a CR checkpoint write to the central
//     store fails; the previous successful checkpoint remains the recovery
//     point.
//
// Everything is driven by streams derived from the trial seed, so one
// (seed, spec) pair produces bitwise-identical fault schedules and draw
// sequences regardless of how many trials run concurrently.  When the spec
// is disabled no injector is constructed at all and the simulation is
// bitwise identical to the historical no-fault path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "platform/cluster.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::fault {

/// Tunable fault model; all defaults mean "no faults".
struct FaultSpec {
  /// Mean time between permanent crashes per host, in seconds.  Zero (or
  /// anything non-positive / non-finite) disables crashes: MTBF -> infinity.
  double host_mtbf_s = 0.0;

  /// Probability that one swap state-transfer attempt dies partway.
  double swap_fail_prob = 0.0;

  /// Probability that one CR checkpoint write fails.
  double checkpoint_fail_prob = 0.0;

  /// Extra attempts after the first failed transfer before the swap
  /// executor abandons the move.
  std::size_t max_transfer_retries = 3;

  /// Base retry backoff; doubles per retry, capped below.
  double retry_backoff_s = 2.0;
  double retry_backoff_cap_s = 120.0;

  /// Failed transfer attempts charged against a destination host before the
  /// swap executor blacklists it (removes it from the spare pool).
  std::size_t blacklist_after = 6;

  [[nodiscard]] bool crashes_enabled() const noexcept;

  /// True when any fault class is active.  False means the experiment layer
  /// skips injector construction entirely.
  [[nodiscard]] bool enabled() const noexcept;

  void validate() const;
};

/// One scheduled permanent crash.
struct HostCrash {
  platform::HostId host = 0;
  double time_s = 0.0;
};

/// The deterministic crash schedule of one trial: every host draws its
/// lifetime from its own derived stream, so the schedule of host h does not
/// depend on the cluster size or on other hosts' draws.
class FaultPlan {
 public:
  [[nodiscard]] static FaultPlan generate(const FaultSpec& spec,
                                          std::size_t host_count,
                                          std::uint64_t seed,
                                          double horizon_s);

  /// Crashes in schedule order (ties broken by host id).
  [[nodiscard]] const std::vector<HostCrash>& crashes() const noexcept {
    return crashes_;
  }

 private:
  std::vector<HostCrash> crashes_;
};

/// Injects the plan into a live simulation and serves the transient-failure
/// draws.  Draw order follows simulator event order, which is deterministic,
/// so the whole failure history of a trial is a pure function of
/// (seed, spec, model, strategy).
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, platform::Cluster& cluster,
                const FaultSpec& spec, std::uint64_t seed, double horizon_s);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every planned crash on the simulator.  Call once, before the
  /// simulation runs.
  void arm();

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Crashes that have actually fired so far.
  [[nodiscard]] std::size_t crashes_injected() const noexcept {
    return injected_;
  }

  /// Registers a crash listener; fired after the host is marked crashed.
  void on_crash(std::function<void(platform::HostId)> listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Draws whether the next transfer attempt fails.
  [[nodiscard]] bool draw_transfer_failure() {
    const bool failed = spec_.swap_fail_prob > 0.0 &&
                        transfer_rng_.uniform01() < spec_.swap_fail_prob;
    if (failed) count_injection("transfer_failure");
    return failed;
  }

  /// How far through its bytes a failing transfer got before dying.
  [[nodiscard]] double draw_failure_fraction() {
    return transfer_rng_.uniform(0.05, 0.95);
  }

  /// Draws whether a checkpoint write fails.
  [[nodiscard]] bool draw_checkpoint_failure() {
    const bool failed =
        spec_.checkpoint_fail_prob > 0.0 &&
        checkpoint_rng_.uniform01() < spec_.checkpoint_fail_prob;
    if (failed) count_injection("checkpoint_failure");
    return failed;
  }

  /// Capped exponential backoff before retry number `attempt` + 1.
  [[nodiscard]] double retry_backoff(std::size_t attempt) const;

 private:
  /// Bumps "fault.injections{kind=...}" when a metrics registry is attached.
  void count_injection(std::string_view kind);

  sim::Simulator& simulator_;
  platform::Cluster& cluster_;
  FaultSpec spec_;
  FaultPlan plan_;
  sim::Rng transfer_rng_;
  sim::Rng checkpoint_rng_;
  std::vector<std::function<void(platform::HostId)>> listeners_;
  std::size_t injected_ = 0;
  bool armed_ = false;
};

}  // namespace simsweep::fault
