#include "forecast/forecaster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace simsweep::forecast {

namespace {

class LastValue final : public Forecaster {
 public:
  void observe(double t, double value) override {
    check_time(t);
    last_ = value;
    seen_ = true;
  }
  [[nodiscard]] double predict(double fallback) const override {
    return seen_ ? last_ : fallback;
  }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<LastValue>(*this);
  }
  [[nodiscard]] std::string name() const override { return "last_value"; }

 private:
  void check_time(double t) {
    if (seen_ && t < last_t_)
      throw std::invalid_argument("Forecaster: time went backwards");
    last_t_ = t;
  }
  double last_ = 0.0;
  double last_t_ = 0.0;
  bool seen_ = false;
};

class WindowedMean final : public Forecaster {
 public:
  explicit WindowedMean(double window_s) : window_(window_s) {
    if (window_s <= 0.0)
      throw std::invalid_argument("WindowedMean: window must be positive");
  }
  void observe(double t, double value) override {
    if (!samples_.empty() && t < samples_.back().first)
      throw std::invalid_argument("Forecaster: time went backwards");
    samples_.emplace_back(t, value);
    // Keep one sample older than the window (its value is in effect at the
    // window's left edge).
    while (samples_.size() > 1 && samples_[1].first <= t - window_)
      samples_.pop_front();
  }
  [[nodiscard]] double predict(double fallback) const override {
    if (samples_.empty()) return fallback;
    const double now = samples_.back().first;
    const double t0 = now - window_;
    if (samples_.size() == 1 || samples_.front().first >= now)
      return samples_.back().second;
    double area = 0.0;
    double value = samples_.front().second;
    double cursor = t0;
    for (const auto& [st, sv] : samples_) {
      if (st <= t0) {
        value = sv;
        continue;
      }
      if (st >= now) break;
      area += value * (st - cursor);
      cursor = st;
      value = sv;
    }
    area += value * (now - cursor);
    return area / window_;
  }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<WindowedMean>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "mean_" + std::to_string(static_cast<int>(window_)) + "s";
  }

 private:
  double window_;
  std::deque<std::pair<double, double>> samples_;
};

class Ewma final : public Forecaster {
 public:
  explicit Ewma(double tau_s) : tau_(tau_s) {
    if (tau_s <= 0.0)
      throw std::invalid_argument("Ewma: time constant must be positive");
  }
  void observe(double t, double value) override {
    if (seen_ && t < last_t_)
      throw std::invalid_argument("Forecaster: time went backwards");
    if (!seen_) {
      state_ = value;
      seen_ = true;
    } else {
      // Decay toward the new observation by the elapsed time.  A zero gap
      // (same-instant update) replaces nothing; value dominates as gap/tau
      // grows.
      const double gap = t - last_t_;
      const double alpha = 1.0 - std::exp(-gap / tau_);
      state_ += alpha * (value - state_);
    }
    last_t_ = t;
  }
  [[nodiscard]] double predict(double fallback) const override {
    return seen_ ? state_ : fallback;
  }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<Ewma>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "ewma_" + std::to_string(static_cast<int>(tau_)) + "s";
  }

 private:
  double tau_;
  double state_ = 0.0;
  double last_t_ = 0.0;
  bool seen_ = false;
};

class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("SlidingMedian: k must be positive");
  }
  void observe(double t, double value) override {
    if (!window_.empty() && t < last_t_)
      throw std::invalid_argument("Forecaster: time went backwards");
    last_t_ = t;
    window_.push_back(value);
    if (window_.size() > k_) window_.pop_front();
  }
  [[nodiscard]] double predict(double fallback) const override {
    if (window_.empty()) return fallback;
    std::vector<double> sorted(window_.begin(), window_.end());
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(sorted.size() / 2),
                     sorted.end());
    return sorted[sorted.size() / 2];
  }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<SlidingMedian>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "median_" + std::to_string(k_);
  }

 private:
  std::size_t k_;
  double last_t_ = 0.0;
  std::deque<double> window_;
};

class Adaptive final : public Forecaster {
 public:
  explicit Adaptive(std::vector<std::unique_ptr<Forecaster>> candidates)
      : candidates_(std::move(candidates)),
        abs_error_(candidates_.size(), 0.0),
        observations_(0) {
    if (candidates_.empty())
      throw std::invalid_argument("Adaptive: no candidate forecasters");
  }

  Adaptive(const Adaptive& other)
      : abs_error_(other.abs_error_), observations_(other.observations_) {
    candidates_.reserve(other.candidates_.size());
    for (const auto& c : other.candidates_) candidates_.push_back(c->clone());
  }

  void observe(double t, double value) override {
    // Score every candidate's standing prediction against the new truth,
    // then let it learn the observation.
    if (observations_ > 0) {
      for (std::size_t i = 0; i < candidates_.size(); ++i)
        abs_error_[i] += std::fabs(candidates_[i]->predict() - value);
    }
    for (auto& c : candidates_) c->observe(t, value);
    ++observations_;
  }

  [[nodiscard]] double predict(double fallback) const override {
    if (observations_ == 0) return fallback;
    return candidates_[best_index()]->predict(fallback);
  }

  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<Adaptive>(*this);
  }

  [[nodiscard]] std::string name() const override {
    return "adaptive[" + candidates_[best_index()]->name() + "]";
  }

 private:
  [[nodiscard]] std::size_t best_index() const {
    return static_cast<std::size_t>(
        std::min_element(abs_error_.begin(), abs_error_.end()) -
        abs_error_.begin());
  }

  std::vector<std::unique_ptr<Forecaster>> candidates_;
  std::vector<double> abs_error_;
  std::size_t observations_;
};

}  // namespace

std::unique_ptr<Forecaster> make_last_value() {
  return std::make_unique<LastValue>();
}

std::unique_ptr<Forecaster> make_windowed_mean(double window_s) {
  return std::make_unique<WindowedMean>(window_s);
}

std::unique_ptr<Forecaster> make_ewma(double tau_s) {
  return std::make_unique<Ewma>(tau_s);
}

std::unique_ptr<Forecaster> make_sliding_median(std::size_t k) {
  return std::make_unique<SlidingMedian>(k);
}

std::unique_ptr<Forecaster> make_adaptive(
    std::vector<std::unique_ptr<Forecaster>> candidates) {
  return std::make_unique<Adaptive>(std::move(candidates));
}

std::unique_ptr<Forecaster> make_default_ensemble() {
  std::vector<std::unique_ptr<Forecaster>> candidates;
  candidates.push_back(make_last_value());
  candidates.push_back(make_windowed_mean(60.0));
  candidates.push_back(make_windowed_mean(300.0));
  candidates.push_back(make_ewma(120.0));
  candidates.push_back(make_sliding_median(5));
  return make_adaptive(std::move(candidates));
}

}  // namespace simsweep::forecast
