// Time-series forecasting for resource performance — the NWS-style
// predictor family the paper's runtime relies on (§2 cites the Network
// Weather Service; §4.1's "amount of performance history" is one point in
// this design space).
//
// A Forecaster consumes (time, value) observations of one series (a host's
// availability, a process's flop rate) and predicts its near-future value.
// The AdaptiveForecaster reproduces NWS's key idea: run several simple
// predictors side by side and answer with whichever has the lowest
// accumulated error so far.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace simsweep::forecast {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Feeds one observation.  Times must be non-decreasing.
  virtual void observe(double t, double value) = 0;

  /// Predicted value for the near future.  `fallback` is returned before
  /// any observation.
  [[nodiscard]] virtual double predict(double fallback = 0.0) const = 0;

  /// Deep copy (forecasters are cheap value-like objects).
  [[nodiscard]] virtual std::unique_ptr<Forecaster> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts the last observed value (the greedy policy's "no history").
[[nodiscard]] std::unique_ptr<Forecaster> make_last_value();

/// Time-weighted mean over a trailing window of `window_s` seconds (the
/// paper's history parameter).
[[nodiscard]] std::unique_ptr<Forecaster> make_windowed_mean(double window_s);

/// Exponentially weighted moving average with time constant `tau_s`: an
/// observation `tau_s` in the past carries weight 1/e.  Irregular sampling
/// is handled by decaying with the actual elapsed time.
[[nodiscard]] std::unique_ptr<Forecaster> make_ewma(double tau_s);

/// Median of the last `k` observations; robust to spikes.
[[nodiscard]] std::unique_ptr<Forecaster> make_sliding_median(std::size_t k);

/// NWS-style adaptive ensemble: tracks the mean absolute prediction error
/// of each candidate and predicts with the current best.
[[nodiscard]] std::unique_ptr<Forecaster> make_adaptive(
    std::vector<std::unique_ptr<Forecaster>> candidates);

/// The default NWS-like ensemble: last-value, 60 s and 300 s means,
/// EWMA(120 s), median-of-5.
[[nodiscard]] std::unique_ptr<Forecaster> make_default_ensemble();

}  // namespace simsweep::forecast
