#include "load/hyperexp.hpp"

#include <stdexcept>

namespace simsweep::load {

namespace {

class HyperExpSource final : public LoadSource {
 public:
  HyperExpSource(const HyperExpParams& params, sim::Rng rng)
      : params_(params), rng_(rng) {}

  void start(sim::Simulator& simulator, platform::Host& host) override {
    simulator_ = &simulator;
    host_ = &host;
    host_->set_external_load(0);
    schedule_arrival();
  }

 private:
  void schedule_arrival() {
    const double gap = rng_.uniform(0.0, 2.0 * params_.mean_interarrival_s);
    simulator_->after(gap, [this] {
      arrive();
      schedule_arrival();
    });
  }

  void arrive() {
    const double lifetime = sample_lifetime();
    if (lifetime <= 0.0) return;  // degenerate branch: exits immediately
    ++alive_;
    host_->set_external_load(alive_);
    simulator_->after(lifetime, [this] {
      --alive_;
      host_->set_external_load(alive_);
    });
  }

  [[nodiscard]] double sample_lifetime() {
    if (!rng_.bernoulli(params_.long_prob)) return 0.0;
    return rng_.exponential_mean(params_.mean_lifetime_s / params_.long_prob);
  }

  HyperExpParams params_;
  sim::Rng rng_;
  sim::Simulator* simulator_ = nullptr;
  platform::Host* host_ = nullptr;
  int alive_ = 0;
};

}  // namespace

HyperExpModel::HyperExpModel(const HyperExpParams& params) : params_(params) {
  if (params.mean_lifetime_s <= 0.0)
    throw std::invalid_argument("HyperExpModel: mean lifetime must be positive");
  if (params.long_prob <= 0.0 || params.long_prob > 1.0)
    throw std::invalid_argument("HyperExpModel: long_prob must lie in (0, 1]");
  if (params.mean_interarrival_s <= 0.0)
    throw std::invalid_argument(
        "HyperExpModel: mean interarrival must be positive");
}

std::unique_ptr<LoadSource> HyperExpModel::make_source(sim::Rng rng) const {
  return std::make_unique<HyperExpSource>(params_, rng);
}

std::string HyperExpModel::describe() const {
  return "hyperexp;mean_lifetime_s=" +
         describe_number(params_.mean_lifetime_s) +
         ";long_prob=" + describe_number(params_.long_prob) +
         ";mean_interarrival_s=" +
         describe_number(params_.mean_interarrival_s);
}

}  // namespace simsweep::load
