// Degenerate hyperexponential CPU load source (paper §6, Fig. 3).
//
// Competing processes arrive with uniformly distributed interarrival times
// and live for a degenerate-hyperexponentially distributed duration, the
// model of Eager, Lazowska & Zahorjan used by the paper to capture the
// heavy-tailed nature of process lifetimes: with probability `long_prob` a
// process lives Exp(mean = mean_lifetime / long_prob), otherwise it exits
// immediately.  The branch means preserve the overall mean lifetime while
// inflating its coefficient of variation.  Unlike the ON/OFF model, several
// competitors may run simultaneously on one host.
#pragma once

#include "load/load_model.hpp"

namespace simsweep::load {

struct HyperExpParams {
  /// Mean competing-process lifetime in seconds (paper Fig. 9 sweeps this).
  double mean_lifetime_s = 100.0;

  /// Probability of the long-lived branch; smaller values give a heavier
  /// tail at the same mean (CV^2 = 2/long_prob - 1).
  double long_prob = 0.2;

  /// Mean interarrival time between competing processes on one host, in
  /// seconds.  Arrivals are Uniform(0, 2 * mean_interarrival_s).
  double mean_interarrival_s = 200.0;
};

class HyperExpModel final : public LoadModel {
 public:
  explicit HyperExpModel(const HyperExpParams& params);

  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const HyperExpParams& params() const noexcept {
    return params_;
  }

  /// Offered load: mean number of simultaneously running competitors
  /// (mean lifetime / mean interarrival).
  [[nodiscard]] double offered_load() const noexcept {
    return params_.mean_lifetime_s / params_.mean_interarrival_s;
  }

  /// Squared coefficient of variation of the lifetime distribution.
  [[nodiscard]] double lifetime_cv2() const noexcept {
    return 2.0 / params_.long_prob - 1.0;
  }

 private:
  HyperExpParams params_;
};

}  // namespace simsweep::load
