#include "load/load_model.hpp"

#include "platform/cluster.hpp"

namespace simsweep::load {

std::vector<std::unique_ptr<LoadSource>> LoadModel::attach_all(
    const LoadModel& model, sim::Simulator& simulator,
    platform::Cluster& cluster, std::uint64_t root_seed) {
  std::vector<std::unique_ptr<LoadSource>> sources;
  sources.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto source = model.make_source(sim::Rng(root_seed, i));
    source->start(simulator, cluster.host(static_cast<platform::HostId>(i)));
    sources.push_back(std::move(source));
  }
  return sources;
}

}  // namespace simsweep::load
