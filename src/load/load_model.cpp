#include "load/load_model.hpp"

#include <charconv>
#include <stdexcept>

#include "platform/cluster.hpp"

namespace simsweep::load {

std::string describe_number(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc())
    throw std::runtime_error("describe_number: to_chars failed");
  return std::string(buf, ptr);
}

std::vector<std::unique_ptr<LoadSource>> LoadModel::attach_all(
    const LoadModel& model, sim::Simulator& simulator,
    platform::Cluster& cluster, std::uint64_t root_seed) {
  std::vector<std::unique_ptr<LoadSource>> sources;
  sources.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto source = model.make_source(sim::Rng(root_seed, i));
    source->start(simulator, cluster.host(static_cast<platform::HostId>(i)));
    sources.push_back(std::move(source));
  }
  return sources;
}

}  // namespace simsweep::load
