// External CPU load models.
//
// A LoadSource drives one host's external competing-process count over
// simulated time by scheduling events on the simulator.  The paper's two
// models are implemented (ON/OFF Markov sources and a degenerate
// hyperexponential lifetime model), plus constant load, trace replay and
// aggregation of ON/OFF sources, which the paper lists as future work.
#pragma once

#include <memory>
#include <string>

#include "platform/host.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::platform {
class Cluster;
}

namespace simsweep::load {

/// Drives the external load of a single host.
class LoadSource {
 public:
  virtual ~LoadSource() = default;

  /// Begins generating load events for `host`.  Must be called once, before
  /// the simulation runs past time 0.
  virtual void start(sim::Simulator& simulator, platform::Host& host) = 0;
};

/// Abstract factory: builds one independent source per host, each with its
/// own derived random stream so platform size does not perturb the draws of
/// other hosts.
class LoadModel {
 public:
  virtual ~LoadModel() = default;

  [[nodiscard]] virtual std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const = 0;

  /// Canonical one-line description of the model and every parameter that
  /// shapes its load process ("onoff;p=0.3;q=0.08;..."), in round-trip
  /// number form.  Folded into the provenance config digest, so two runs
  /// whose digests match really did draw from the same load process.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Attaches a fresh source to every host of a cluster.  `root_seed`
  /// derives one stream per host id.  Returns the sources; callers keep them
  /// alive for the duration of the simulation.
  static std::vector<std::unique_ptr<LoadSource>> attach_all(
      const LoadModel& model, sim::Simulator& simulator,
      platform::Cluster& cluster, std::uint64_t root_seed);
};

/// Shortest round-trip rendering of `value` for describe() strings, so
/// descriptions (and the digests built from them) distinguish any two
/// doubles that differ.
[[nodiscard]] std::string describe_number(double value);

}  // namespace simsweep::load
