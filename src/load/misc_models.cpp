#include "load/misc_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simsweep::load {

// ---------------------------------------------------------------- Constant

namespace {

class ConstantSource final : public LoadSource {
 public:
  explicit ConstantSource(int competitors) : competitors_(competitors) {}
  void start(sim::Simulator&, platform::Host& host) override {
    host.set_external_load(competitors_);
  }

 private:
  int competitors_;
};

}  // namespace

ConstantModel::ConstantModel(int competitors) : competitors_(competitors) {
  if (competitors < 0)
    throw std::invalid_argument("ConstantModel: negative competitor count");
}

std::unique_ptr<LoadSource> ConstantModel::make_source(sim::Rng) const {
  return std::make_unique<ConstantSource>(competitors_);
}

std::string ConstantModel::describe() const {
  return "constant;competitors=" + std::to_string(competitors_);
}

// ------------------------------------------------------------------- Trace

namespace {

class TraceSource final : public LoadSource {
 public:
  TraceSource(const std::vector<sim::Sample>* trace, double period,
              double phase)
      : trace_(trace), period_(period), phase_(phase) {}

  void start(sim::Simulator& simulator, platform::Host& host) override {
    simulator_ = &simulator;
    host_ = &host;
    // Position the cursor at the first sample at or after the phase; the
    // value in effect at the phase is that of the preceding sample.
    index_ = 0;
    while (index_ < trace_->size() && (*trace_)[index_].time <= phase_) ++index_;
    const double initial =
        index_ == 0 ? trace_->back().value : (*trace_)[index_ - 1].value;
    host_->set_external_load(static_cast<int>(std::lround(initial)));
    offset_ = simulator.now() - phase_;  // trace time + offset == sim time
    schedule_next();
  }

 private:
  void schedule_next() {
    if (index_ >= trace_->size()) {  // wrap to the next period
      index_ = 0;
      offset_ += period_;
    }
    const sim::Sample& s = (*trace_)[index_];
    const double when = s.time + offset_;
    simulator_->after(std::max(0.0, when - simulator_->now()), [this, s] {
      host_->set_external_load(static_cast<int>(std::lround(s.value)));
      ++index_;
      schedule_next();
    });
  }

  const std::vector<sim::Sample>* trace_;
  double period_;
  double phase_;
  double offset_ = 0.0;
  std::size_t index_ = 0;
  sim::Simulator* simulator_ = nullptr;
  platform::Host* host_ = nullptr;
};

}  // namespace

TraceModel::TraceModel(std::vector<sim::Sample> trace, double period_s,
                       bool random_phase)
    : trace_(std::move(trace)), period_(period_s), random_phase_(random_phase) {
  if (trace_.empty()) throw std::invalid_argument("TraceModel: empty trace");
  if (!std::is_sorted(trace_.begin(), trace_.end(),
                      [](const sim::Sample& a, const sim::Sample& b) {
                        return a.time < b.time;
                      }))
    throw std::invalid_argument("TraceModel: trace must be time-sorted");
  if (trace_.front().time < 0.0)
    throw std::invalid_argument("TraceModel: negative sample time");
  if (period_ < trace_.back().time || period_ <= 0.0)
    throw std::invalid_argument("TraceModel: period must cover the trace");
}

std::unique_ptr<LoadSource> TraceModel::make_source(sim::Rng rng) const {
  const double phase = random_phase_ ? rng.uniform(0.0, period_) : 0.0;
  return std::make_unique<TraceSource>(&trace_, period_, phase);
}

std::string TraceModel::describe() const {
  std::string out = "trace;period_s=" + describe_number(period_) +
                    ";random_phase=" + (random_phase_ ? "1" : "0") +
                    ";samples=";
  for (const sim::Sample& s : trace_) {
    out += describe_number(s.time);
    out += ':';
    out += describe_number(s.value);
    out += ',';
  }
  return out;
}

// --------------------------------------------------------------- Composite

namespace {

class CompositeOnOffSource final : public LoadSource {
 public:
  CompositeOnOffSource(const std::vector<OnOffParams>& params, sim::Rng rng) {
    parts_.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      parts_.push_back(Part{params[i], rng.split(i), false});
  }

  void start(sim::Simulator& simulator, platform::Host& host) override {
    simulator_ = &simulator;
    host_ = &host;
    int on_count = 0;
    for (Part& part : parts_) {
      const OnOffParams& p = part.params;
      const double pi = p.p + p.q > 0.0 ? p.p / (p.p + p.q) : 0.0;
      part.on = p.stationary_start && part.rng.bernoulli(pi);
      if (part.on) ++on_count;
      schedule_next(part);
    }
    host_->set_external_load(on_count);
  }

 private:
  struct Part {
    OnOffParams params;
    sim::Rng rng;
    bool on;
  };

  void schedule_next(Part& part) {
    const double exit_p = part.on ? part.params.q : part.params.p;
    const double sojourn =
        sample_geometric_sojourn(part.rng, exit_p, part.params.step_s);
    if (sojourn == sim::kTimeInfinity) return;
    simulator_->after(sojourn, [this, &part] {
      part.on = !part.on;
      int on_count = 0;
      for (const Part& q : parts_)
        if (q.on) ++on_count;
      host_->set_external_load(on_count);
      schedule_next(part);
    });
  }

  std::vector<Part> parts_;
  sim::Simulator* simulator_ = nullptr;
  platform::Host* host_ = nullptr;
};

}  // namespace

CompositeOnOffModel::CompositeOnOffModel(std::vector<OnOffParams> sources)
    : sources_(std::move(sources)) {
  if (sources_.empty())
    throw std::invalid_argument("CompositeOnOffModel: no sources");
  for (const OnOffParams& p : sources_) {
    const OnOffModel validator{p};  // reuse the ON/OFF parameter validation
    (void)validator;
  }
}

std::unique_ptr<LoadSource> CompositeOnOffModel::make_source(
    sim::Rng rng) const {
  return std::make_unique<CompositeOnOffSource>(sources_, rng);
}

std::string CompositeOnOffModel::describe() const {
  std::string out = "composite_onoff;sources=";
  for (const OnOffParams& p : sources_) {
    out += OnOffModel(p).describe();
    out += '|';
  }
  return out;
}

}  // namespace simsweep::load
