// Constant, trace-replay and composite load models.
//
// The paper lists trace replay as future work; we provide it so users can
// feed NWS-style measurements.  CompositeModel aggregates several ON/OFF
// sources per host, the paper's suggested route to "more complex loads".
#pragma once

#include <vector>

#include "load/load_model.hpp"
#include "load/onoff.hpp"
#include "simcore/trace_recorder.hpp"

namespace simsweep::load {

/// Fixed competing-process count, forever.  Useful in tests and as the
/// quiescent baseline.
class ConstantModel final : public LoadModel {
 public:
  explicit ConstantModel(int competitors);
  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int competitors_;
};

/// Replays a recorded (time, competing-process-count) step series.  All
/// hosts attached to the same model replay the same trace offset by a
/// per-source random phase when `random_phase` is set (so hosts are not in
/// lockstep), wrapping around at the trace's end.
class TraceModel final : public LoadModel {
 public:
  /// `trace` must be time-sorted, non-empty and start at time >= 0; values
  /// are competitor counts in effect from each sample's time until the next.
  /// `period_s` is the wrap-around length and must cover the last sample.
  TraceModel(std::vector<sim::Sample> trace, double period_s,
             bool random_phase = true);

  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const std::vector<sim::Sample>& trace() const noexcept {
    return trace_;
  }

 private:
  std::vector<sim::Sample> trace_;
  double period_;
  bool random_phase_;
};

/// Sum of several independent ON/OFF sources per host; the external load is
/// the number of sources currently ON.
class CompositeOnOffModel final : public LoadModel {
 public:
  explicit CompositeOnOffModel(std::vector<OnOffParams> sources);
  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<OnOffParams> sources_;
};

}  // namespace simsweep::load
