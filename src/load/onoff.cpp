#include "load/onoff.hpp"

#include <cmath>
#include <stdexcept>

namespace simsweep::load {

double sample_geometric_sojourn(sim::Rng& rng, double exit_p, double step_s) {
  if (exit_p <= 0.0) return sim::kTimeInfinity;
  if (exit_p >= 1.0) return step_s;
  // Geometric (number of trials until first success, support {1, 2, ...})
  // via inversion: k = ceil(ln(U) / ln(1 - p)).
  const double u = rng.uniform01();
  const double k =
      std::ceil(std::log(1.0 - u) / std::log(1.0 - exit_p));
  return std::max(1.0, k) * step_s;
}

namespace {

class OnOffSource final : public LoadSource {
 public:
  OnOffSource(const OnOffParams& params, sim::Rng rng)
      : params_(params), rng_(rng) {}

  void start(sim::Simulator& simulator, platform::Host& host) override {
    simulator_ = &simulator;
    host_ = &host;
    const double pi =
        params_.p + params_.q > 0.0 ? params_.p / (params_.p + params_.q) : 0.0;
    on_ = params_.stationary_start && rng_.bernoulli(pi);
    host_->set_external_load(on_ ? 1 : 0);
    schedule_next();
  }

 private:
  void schedule_next() {
    const double exit_p = on_ ? params_.q : params_.p;
    const double sojourn = sample_geometric_sojourn(rng_, exit_p, params_.step_s);
    if (sojourn == sim::kTimeInfinity) return;  // absorbed in this state
    simulator_->after(sojourn, [this] {
      on_ = !on_;
      host_->set_external_load(on_ ? 1 : 0);
      schedule_next();
    });
  }

  OnOffParams params_;
  sim::Rng rng_;
  sim::Simulator* simulator_ = nullptr;
  platform::Host* host_ = nullptr;
  bool on_ = false;
};

}  // namespace

OnOffModel::OnOffModel(const OnOffParams& params) : params_(params) {
  if (params.p < 0.0 || params.p > 1.0 || params.q < 0.0 || params.q > 1.0)
    throw std::invalid_argument("OnOffModel: p and q must lie in [0, 1]");
  if (params.step_s <= 0.0)
    throw std::invalid_argument("OnOffModel: step must be positive");
}

std::unique_ptr<LoadSource> OnOffModel::make_source(sim::Rng rng) const {
  return std::make_unique<OnOffSource>(params_, rng);
}

std::string OnOffModel::describe() const {
  return "onoff;p=" + describe_number(params_.p) +
         ";q=" + describe_number(params_.q) +
         ";step_s=" + describe_number(params_.step_s) + ";stationary_start=" +
         (params_.stationary_start ? "1" : "0");
}

double OnOffModel::stationary_on_fraction() const noexcept {
  const double total = params_.p + params_.q;
  return total > 0.0 ? params_.p / total : 0.0;
}

}  // namespace simsweep::load
