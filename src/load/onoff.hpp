// ON/OFF Markov-chain CPU load source (paper §6, Fig. 2).
//
// A two-state discrete-time Markov chain with fixed probabilities of exiting
// each state: every `step_s` seconds an OFF host becomes loaded with
// probability p and an ON host becomes unloaded with probability q.  Sojourn
// times are therefore geometric; we sample them directly instead of stepping,
// so each source emits one event per state change rather than one per step.
//
// ON means one external compute-bound competitor (the paper simulates a
// single competing process per host under this model).
#pragma once

#include "load/load_model.hpp"

namespace simsweep::load {

struct OnOffParams {
  double p = 0.3;     ///< probability of leaving OFF (becoming loaded) per step
  double q = 0.08;    ///< probability of leaving ON (becoming unloaded) per step

  /// Markov-chain time step in seconds.  The paper leaves this implicit,
  /// but the dynamism sweep pins it from two sides: at low probabilities
  /// competing load must persist across several of the 1-5 minute
  /// iterations (sojourn = step/x), so that adaptation can pay off, while
  /// at x -> 1 the load must flip within an iteration ("load changes
  /// dramatically during each application iteration") yet still be averaged
  /// away by the safe policy's 5-minute history window (window >> step).
  /// 100 s satisfies both.
  double step_s = 100.0;
  bool stationary_start = true;  ///< draw the initial state from pi = p/(p+q)

  /// The paper's "environment dynamism [load probability]" sweep: a single
  /// knob x in [0, 1] with p = q = x.  x -> 0 is quiescent (transitions
  /// rarer than the application run), x -> 1 flips state every step.
  [[nodiscard]] static OnOffParams dynamism(double x) {
    OnOffParams out;
    out.p = x;
    out.q = x;
    return out;
  }
};

class OnOffModel final : public LoadModel {
 public:
  explicit OnOffModel(const OnOffParams& params);

  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const OnOffParams& params() const noexcept { return params_; }

  /// Long-run fraction of time a host is loaded: p / (p + q); 0 when the
  /// chain never leaves OFF.
  [[nodiscard]] double stationary_on_fraction() const noexcept;

 private:
  OnOffParams params_;
};

/// Samples a geometric sojourn duration: the number of whole steps spent in
/// a state whose per-step exit probability is `exit_p`, times step_s.
/// Returns +infinity when exit_p == 0.
[[nodiscard]] double sample_geometric_sojourn(sim::Rng& rng, double exit_p,
                                              double step_s);

}  // namespace simsweep::load
