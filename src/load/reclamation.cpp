#include "load/reclamation.hpp"

#include <stdexcept>

namespace simsweep::load {

namespace {

class ReclamationSource final : public LoadSource {
 public:
  ReclamationSource(std::unique_ptr<LoadSource> base,
                    const ReclamationParams& params, sim::Rng rng)
      : base_(std::move(base)), params_(params), rng_(rng) {}

  void start(sim::Simulator& simulator, platform::Host& host) override {
    simulator_ = &simulator;
    host_ = &host;
    if (base_) base_->start(simulator, host);
    available_ = params_.start_available;
    host_->set_online(available_);
    schedule_toggle();
  }

 private:
  void schedule_toggle() {
    const double mean =
        available_ ? params_.mean_available_s : params_.mean_reclaimed_s;
    simulator_->after(rng_.exponential_mean(mean), [this] {
      available_ = !available_;
      host_->set_online(available_);
      schedule_toggle();
    });
  }

  std::unique_ptr<LoadSource> base_;
  ReclamationParams params_;
  sim::Rng rng_;
  sim::Simulator* simulator_ = nullptr;
  platform::Host* host_ = nullptr;
  bool available_ = true;
};

}  // namespace

ReclamationModel::ReclamationModel(std::shared_ptr<const LoadModel> base,
                                   ReclamationParams params)
    : base_(std::move(base)), params_(params) {
  if (params.mean_available_s <= 0.0 || params.mean_reclaimed_s <= 0.0)
    throw std::invalid_argument(
        "ReclamationModel: phase durations must be positive");
}

std::unique_ptr<LoadSource> ReclamationModel::make_source(sim::Rng rng) const {
  auto base_source = base_ ? base_->make_source(rng.split(1)) : nullptr;
  return std::make_unique<ReclamationSource>(std::move(base_source), params_,
                                             rng.split(2));
}

std::string ReclamationModel::describe() const {
  return "reclaim;mean_available_s=" +
         describe_number(params_.mean_available_s) + ";mean_reclaimed_s=" +
         describe_number(params_.mean_reclaimed_s) + ";start_available=" +
         (params_.start_available ? "1" : "0") + ";base=[" +
         (base_ ? base_->describe() : "none") + "]";
}

}  // namespace simsweep::load
