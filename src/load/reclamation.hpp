// Owner reclamation: the desktop-grid behaviour the paper proposes to
// combine with process swapping (§2, the Condor/XtremWeb discussion).
//
// A workstation alternates between *available* (the owner is away; the
// application may use it, subject to whatever competing load the wrapped
// base model generates) and *reclaimed* (the owner is at the console; the
// guest application gets no cycles at all).  Durations of both phases are
// exponential.  We model graceful reclamation: the guest process is
// suspended, its memory stays reachable, so the swap runtime can still
// transfer its state away — exactly the eviction-plus-migration combination
// the paper sketches.
#pragma once

#include "load/load_model.hpp"

namespace simsweep::load {

struct ReclamationParams {
  double mean_available_s = 7200.0;  ///< mean owner-away stretch
  double mean_reclaimed_s = 600.0;   ///< mean owner-at-console stretch
  bool start_available = true;
};

class ReclamationModel final : public LoadModel {
 public:
  /// `base` (optional) drives the competing-process count while the host is
  /// available; reclamation toggles the host's online flag independently.
  ReclamationModel(std::shared_ptr<const LoadModel> base,
                   ReclamationParams params);

  [[nodiscard]] std::unique_ptr<LoadSource> make_source(
      sim::Rng rng) const override;

  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const ReclamationParams& params() const noexcept {
    return params_;
  }

  /// Long-run fraction of time the host is available.
  [[nodiscard]] double availability_fraction() const noexcept {
    return params_.mean_available_s /
           (params_.mean_available_s + params_.mean_reclaimed_s);
  }

 private:
  std::shared_ptr<const LoadModel> base_;
  ReclamationParams params_;
};

}  // namespace simsweep::load
