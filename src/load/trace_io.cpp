#include "load/trace_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace simsweep::load {

namespace {

/// strtod accepts "nan"/"inf", which would poison availability math
/// downstream, so a successful parse additionally requires a finite value.
bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0' && std::isfinite(out);
}

}  // namespace

std::vector<sim::Sample> read_trace_csv(std::istream& in) {
  std::vector<sim::Sample> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing carriage returns from Windows-authored files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": expected 'time,load'");
    const std::string time_text = line.substr(0, comma);
    const std::string load_text = line.substr(comma + 1);
    double t = 0.0, v = 0.0;
    if (!parse_double(time_text, t)) {
      // A non-numeric *time* on the first line is a header; anywhere else
      // it is an error.
      if (line_no == 1) continue;
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": non-numeric or non-finite time");
    }
    if (!parse_double(load_text, v))
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": non-numeric or non-finite load");
    if (!trace.empty() && t < trace.back().time)
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": time went backwards");
    if (v < 0.0)
      throw std::invalid_argument("trace csv line " + std::to_string(line_no) +
                                  ": negative load");
    // Collapse repeated timestamps (step-edge output style) to the last
    // value seen at that instant.
    if (!trace.empty() && t == trace.back().time) {
      trace.back().value = v;
    } else {
      trace.push_back(sim::Sample{t, v});
    }
  }
  if (trace.empty())
    throw std::invalid_argument("trace csv: no samples");
  return trace;
}

std::vector<sim::Sample> read_trace_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open trace file: " + path);
  try {
    return read_trace_csv(file);
  } catch (const std::invalid_argument& e) {
    // Prefix the file so "which of my traces is broken" is answerable from
    // the message alone.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void write_trace_csv(std::ostream& out,
                     const std::vector<sim::Sample>& trace) {
  out << "time,cpu_load\n";
  std::ostringstream buffer;
  buffer.precision(10);
  for (const sim::Sample& s : trace)
    buffer << s.time << ',' << s.value << '\n';
  out << buffer.str();
}

}  // namespace simsweep::load
