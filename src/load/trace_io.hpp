// Reading and writing CPU-load traces as CSV.
//
// The paper cites NWS-style measurement archives as the realistic (future
// work) alternative to stochastic load models; this module gives TraceModel
// a file format: two columns `time,cpu_load`, header optional, time in
// seconds (strictly non-decreasing), load = competing-process count
// (fractional values are rounded by the replay source).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simcore/trace_recorder.hpp"

namespace simsweep::load {

/// Parses a CSV trace.  Throws std::invalid_argument on malformed rows or
/// decreasing times.  Skips blank lines and a leading header row.
[[nodiscard]] std::vector<sim::Sample> read_trace_csv(std::istream& in);

/// Reads a trace from a file path.  Throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] std::vector<sim::Sample> read_trace_file(
    const std::string& path);

/// Writes `time,cpu_load` rows with a header.
void write_trace_csv(std::ostream& out, const std::vector<sim::Sample>& trace);

}  // namespace simsweep::load
