#include "net/shared_link.hpp"

#include <stdexcept>

namespace simsweep::net {

void Flow::cancel() {
  if (!active_) return;
  active_ = false;
  event_.cancel();
  if (net_ != nullptr && !in_latency_) net_->remove_flow(this);
  if (net_ != nullptr && !in_latency_) net_->reshare();
  net_ = nullptr;
}

SharedLinkNetwork::SharedLinkNetwork(sim::Simulator& simulator,
                                     platform::LinkSpec link)
    : simulator_(simulator), link_(link) {
  if (link.bandwidth_Bps <= 0.0)
    throw std::invalid_argument("SharedLinkNetwork: bandwidth must be positive");
  if (link.latency_s < 0.0)
    throw std::invalid_argument("SharedLinkNetwork: negative latency");
}

std::shared_ptr<Flow> SharedLinkNetwork::start_transfer(double bytes,
                                                        Flow::Completion done) {
  if (bytes < 0.0)
    throw std::invalid_argument("SharedLinkNetwork: negative payload");
  auto flow = std::shared_ptr<Flow>(new Flow(*this, bytes, std::move(done)));
  std::weak_ptr<Flow> weak = flow;
  flow->event_ = simulator_.after(link_.latency_s, [this, weak] {
    if (auto f = weak.lock(); f && f->active()) admit(f);
  });
  return flow;
}

void SharedLinkNetwork::admit(const std::shared_ptr<Flow>& flow) {
  flow->in_latency_ = false;
  flow->last_update_ = simulator_.now();
  if (flow->remaining_ <= 0.0) {
    // Latency-only message: complete immediately after alpha.
    flow->active_ = false;
    flow->net_ = nullptr;
    if (flow->done_) flow->done_();
    return;
  }
  flows_.push_back(flow);
  reshare();
}

void SharedLinkNetwork::reshare() {
  const SimTime now = simulator_.now();
  const double rate =
      flows_.empty() ? 0.0
                     : link_.bandwidth_Bps / static_cast<double>(flows_.size());
  std::vector<std::shared_ptr<Flow>> snapshot = flows_;
  for (auto& flow : snapshot) {
    if (!flow->active()) continue;
    flow->remaining_ -= flow->rate_ * (now - flow->last_update_);
    if (flow->remaining_ < 0.0) flow->remaining_ = 0.0;
    flow->last_update_ = now;
    flow->rate_ = rate;
    flow->event_.cancel();
    schedule_completion(flow);
  }
}

void SharedLinkNetwork::schedule_completion(const std::shared_ptr<Flow>& flow) {
  if (flow->rate_ <= 0.0) return;
  const SimDuration eta = flow->remaining_ / flow->rate_;
  std::weak_ptr<Flow> weak = flow;
  flow->event_ = simulator_.after(eta, [this, weak] {
    if (auto f = weak.lock(); f && f->active()) finish(f);
  });
}

void SharedLinkNetwork::finish(const std::shared_ptr<Flow>& flow) {
  flow->remaining_ = 0.0;
  flow->active_ = false;
  flow->net_ = nullptr;
  remove_flow(flow.get());
  reshare();
  if (flow->done_) flow->done_();
}

void SharedLinkNetwork::remove_flow(const Flow* flow) {
  std::erase_if(flows_, [flow](const std::shared_ptr<Flow>& f) {
    return f.get() == flow;
  });
}

}  // namespace simsweep::net
