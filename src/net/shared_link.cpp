#include "net/shared_link.hpp"

#include <stdexcept>
#include <string>

namespace simsweep::net {

void Flow::cancel() {
  if (!active_) return;
  active_ = false;
  event_.cancel();
  if (net_ != nullptr) {
    if (obs::MetricsRegistry* metrics = net_->simulator_.metrics())
      metrics->add("net.flows_cancelled");
    if (!in_latency_) {
      net_->remove_flow(this);
      net_->reshare();
    }
  }
  net_ = nullptr;
}

SharedLinkNetwork::SharedLinkNetwork(sim::Simulator& simulator,
                                     platform::LinkSpec link)
    : simulator_(simulator), link_(link) {
  if (link.bandwidth_Bps <= 0.0)
    throw std::invalid_argument("SharedLinkNetwork: bandwidth must be positive");
  if (link.latency_s < 0.0)
    throw std::invalid_argument("SharedLinkNetwork: negative latency");
}

std::shared_ptr<Flow> SharedLinkNetwork::start_transfer(double bytes,
                                                        Flow::Completion done) {
  if (bytes < 0.0)
    throw std::invalid_argument("SharedLinkNetwork: negative payload");
  auto flow = std::shared_ptr<Flow>(new Flow(*this, bytes, std::move(done)));
  flow->started_ = simulator_.now();
  if (obs::MetricsRegistry* metrics = simulator_.metrics())
    metrics->add("net.flows_started");
  std::weak_ptr<Flow> weak = flow;
  flow->event_ = simulator_.after(link_.latency_s, [this, weak] {
    if (auto f = weak.lock(); f && f->active()) admit(f);
  });
  return flow;
}

void SharedLinkNetwork::admit(const std::shared_ptr<Flow>& flow) {
  flow->in_latency_ = false;
  flow->last_update_ = simulator_.now();
  if (flow->remaining_ <= 0.0) {
    // Latency-only message: complete immediately after alpha.
    flow->active_ = false;
    flow->net_ = nullptr;
    observe_completion(*flow);
    if (flow->done_) flow->done_();
    return;
  }
  flows_.push_back(flow);
  reshare();
}

void SharedLinkNetwork::reshare() {
  if (resharing_) {
    // Re-entered from a callback inside the pass below; defer so the outer
    // pass finishes assigning consistent rates, then re-run.
    reshare_pending_ = true;
    return;
  }
  resharing_ = true;
  const audit::InvariantAuditor* auditor = simulator_.auditor();
  const bool auditing = auditor != nullptr && auditor->enabled();
  do {
    reshare_pending_ = false;
    if (obs::MetricsRegistry* metrics = simulator_.metrics())
      metrics->add("net.reshare_passes");
    reshare_pass(auditing);
  } while (reshare_pending_);
  resharing_ = false;
}

void SharedLinkNetwork::reshare_pass(bool auditing) {
  const SimTime now = simulator_.now();
  const double rate =
      flows_.empty() ? 0.0
                     : link_.bandwidth_Bps / static_cast<double>(flows_.size());
  if (auditing && rate * static_cast<double>(flows_.size()) >
                      link_.bandwidth_Bps * (1.0 + 1e-9))
    simulator_.auditor()->report(
        "net", "rates_within_bandwidth", now,
        std::to_string(flows_.size()) + " flows at " + std::to_string(rate) +
            " B/s exceed link bandwidth " +
            std::to_string(link_.bandwidth_Bps) + " B/s");
  std::vector<std::shared_ptr<Flow>> snapshot = flows_;
  for (auto& flow : snapshot) {
    if (!flow->active()) continue;
    const double elapsed = now - flow->last_update_;
    flow->remaining_ -= flow->rate_ * elapsed;
    if (auditing) audit_accrual(*flow, now, elapsed);
    if (flow->remaining_ < 0.0) flow->remaining_ = 0.0;
    flow->last_update_ = now;
    flow->rate_ = rate;
    flow->event_.cancel();
    schedule_completion(flow);
  }
}

/// Per-flow conservation checks at one accrual point: the interval since the
/// last re-share is non-negative, and the remaining payload stays within
/// [-rounding slack, initial bytes].  The slack covers completion-event
/// quantisation (eta = remaining/rate re-multiplied by rate); genuine
/// double-accounting overshoots by whole rate*dt amounts, orders beyond it.
void SharedLinkNetwork::audit_accrual(const Flow& flow, SimTime now,
                                      double elapsed) const {
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (elapsed < -sim::kTimeEpsilon)
    auditor->report("net", "non_negative_elapsed", now,
                    "flow accrued over a negative interval of " +
                        std::to_string(elapsed) + " s");
  const double slack = 1e-9 * flow.initial_bytes_ + 1e-3;
  if (flow.remaining_ < -slack)
    auditor->report("net", "byte_conservation", now,
                    "flow overdrew its payload: remaining " +
                        std::to_string(flow.remaining_) + " B of " +
                        std::to_string(flow.initial_bytes_) + " B");
  if (flow.remaining_ > flow.initial_bytes_ + slack)
    auditor->report("net", "byte_conservation", now,
                    "flow grew beyond its payload: remaining " +
                        std::to_string(flow.remaining_) + " B of " +
                        std::to_string(flow.initial_bytes_) + " B");
}

void SharedLinkNetwork::schedule_completion(const std::shared_ptr<Flow>& flow) {
  if (flow->rate_ <= 0.0) return;
  const SimDuration eta = flow->remaining_ / flow->rate_;
  std::weak_ptr<Flow> weak = flow;
  flow->event_ = simulator_.after(eta, [this, weak] {
    if (auto f = weak.lock(); f && f->active()) finish(f);
  });
}

void SharedLinkNetwork::finish(const std::shared_ptr<Flow>& flow) {
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (auditor != nullptr && auditor->enabled()) {
    // The completion event was scheduled from (remaining, rate); at the
    // instant it fires the un-accrued residual must be a rounding error,
    // not unsent payload being silently dropped.
    const double residual =
        flow->remaining_ -
        flow->rate_ * (simulator_.now() - flow->last_update_);
    const double slack = 1e-9 * flow->initial_bytes_ + 1e-3;
    if (residual > slack || residual < -slack)
      auditor->report("net", "byte_conservation", simulator_.now(),
                      "flow finished with " + std::to_string(residual) +
                          " B unaccounted of " +
                          std::to_string(flow->initial_bytes_) + " B");
  }
  flow->remaining_ = 0.0;
  flow->active_ = false;
  flow->net_ = nullptr;
  remove_flow(flow.get());
  observe_completion(*flow);
  reshare();
  if (flow->done_) flow->done_();
}

/// Completion-side observability: one counter tick, the payload into the
/// bytes histogram, and a [submit, land] span on the shared "network" track.
void SharedLinkNetwork::observe_completion(const Flow& flow) {
  const SimTime now = simulator_.now();
  if (obs::MetricsRegistry* metrics = simulator_.metrics()) {
    metrics->add("net.flows_completed");
    metrics->observe("net.flow_bytes", flow.initial_bytes_);
    metrics->observe("net.flow_duration_s", now - flow.started_);
  }
  if (obs::TimelineTracer* timeline = simulator_.timeline())
    timeline->span(timeline->track("network"), "flow", "net", flow.started_,
                   now, {{"bytes", flow.initial_bytes_}});
}

void SharedLinkNetwork::remove_flow(const Flow* flow) {
  std::erase_if(flows_, [flow](const std::shared_ptr<Flow>& f) {
    return f.get() == flow;
  });
}

}  // namespace simsweep::net
