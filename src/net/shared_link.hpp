// Flow-level model of a single shared communication link.
//
// The paper models its 100baseT LAN as one shared link with latency alpha
// and bandwidth beta: messages compete for a fixed amount of bandwidth and
// collisions delay transmission.  We implement the classic fluid
// approximation — the n concurrently active flows each progress at beta/n —
// and each message additionally pays the latency alpha up front (during
// which it does not consume bandwidth).  Rates are re-shared whenever a flow
// joins or leaves.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "platform/cluster.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::net {

using sim::SimDuration;
using sim::SimTime;

class SharedLinkNetwork;

/// One in-flight message.
class Flow {
 public:
  using Completion = std::function<void()>;

  /// Bytes still to transfer as of the last re-share.
  [[nodiscard]] double remaining_bytes() const noexcept { return remaining_; }

  /// True until the completion callback fires or cancel() is called.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Abandons the transfer; the completion callback will not fire.
  void cancel();

 private:
  friend class SharedLinkNetwork;
  Flow(SharedLinkNetwork& net, double bytes, Completion done)
      : net_(&net), remaining_(bytes), initial_bytes_(bytes),
        done_(std::move(done)) {}

  SharedLinkNetwork* net_;
  double remaining_;
  double initial_bytes_;  // payload at start; auditor conservation bound
  Completion done_;
  SimTime started_ = 0.0;  // submission time; timeline flow spans
  SimTime last_update_ = 0.0;
  double rate_ = 0.0;  // bytes/s granted at last re-share
  bool in_latency_ = true;
  sim::EventHandle event_;
  bool active_ = true;
};

class SharedLinkNetwork {
 public:
  SharedLinkNetwork(sim::Simulator& simulator, platform::LinkSpec link);

  SharedLinkNetwork(const SharedLinkNetwork&) = delete;
  SharedLinkNetwork& operator=(const SharedLinkNetwork&) = delete;

  /// Starts transferring `bytes`; `done` fires when the last byte lands.
  /// Zero-byte messages still pay the latency.
  std::shared_ptr<Flow> start_transfer(double bytes, Flow::Completion done);

  /// Number of flows currently consuming bandwidth (excludes flows still in
  /// their latency phase).
  [[nodiscard]] std::size_t active_flows() const noexcept {
    return flows_.size();
  }

  [[nodiscard]] const platform::LinkSpec& link() const noexcept { return link_; }

  /// Transfer time of `bytes` on an otherwise idle link.
  [[nodiscard]] double uncontended_time(double bytes) const noexcept {
    return link_.latency_s + bytes / link_.bandwidth_Bps;
  }

 private:
  friend class Flow;
  void admit(const std::shared_ptr<Flow>& flow);
  void reshare();
  void reshare_pass(bool auditing);
  void schedule_completion(const std::shared_ptr<Flow>& flow);
  void finish(const std::shared_ptr<Flow>& flow);
  void remove_flow(const Flow* flow);
  void audit_accrual(const Flow& flow, SimTime now, double elapsed) const;
  void observe_completion(const Flow& flow);

  sim::Simulator& simulator_;
  platform::LinkSpec link_;
  std::vector<std::shared_ptr<Flow>> flows_;  // bandwidth-consuming flows
  // Re-entrancy guard: a callback reached from inside a re-share pass (a
  // completion that starts or cancels another flow) must not interleave a
  // second rate assignment with the one in progress; the nested request is
  // deferred and the pass re-runs against the settled flow set.
  bool resharing_ = false;
  bool reshare_pending_ = false;
};

}  // namespace simsweep::net
