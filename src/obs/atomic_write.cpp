#include "obs/atomic_write.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace simsweep::obs {

namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

/// Directory part of `path` ("." when there is none), for the post-rename
/// directory fsync that makes the new name itself durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_all(int fd, std::string_view contents, const std::string& path) {
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail_errno("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

/// True when `path` exists and is not a regular file (device node, pipe,
/// socket): rename would replace the special file with a regular one, so the
/// caller must write into it directly instead.
bool is_special_target(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return false;  // absent: regular publish
  return !S_ISREG(st.st_mode);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  if (is_special_target(path)) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) fail_errno("open", path);
    write_all(fd, contents, path);
    if (::close(fd) != 0) fail_errno("close", path);
    return;
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("open", tmp);
  write_all(fd, contents, tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("fsync", tmp);
  }
  if (::close(fd) != 0) fail_errno("close", tmp);

  if (::rename(tmp.c_str(), path.c_str()) != 0) fail_errno("rename", tmp);

  // fsync the directory so the rename (the publish) is itself durable.
  const std::string dir = parent_dir(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    if (::fsync(dfd) != 0) {
      ::close(dfd);
      fail_errno("fsync", dir);
    }
    ::close(dfd);
  }
}

}  // namespace simsweep::obs
