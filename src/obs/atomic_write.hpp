// Crash-consistent file publication for every JSON artifact emitter.
//
// The sweep journal proved the discipline: write the full contents to
// `<path>.tmp`, fsync, atomically rename over `<path>`, fsync the directory.
// A reader then only ever sees either the previous complete file or the new
// complete file — SIGKILL at any instant cannot leave a torn, half-written
// artifact.  This header gives the same guarantee to the one-shot artifacts
// (--metrics, --timeline, --quarantine, --status, --profile-json) that used
// to stream straight into an ofstream.
//
// Special targets (/dev/null, pipes, character devices) cannot be renamed
// over without destroying them; for those the helper falls back to a plain
// write, which is fine — nothing durable was requested.
#pragma once

#include <string>
#include <string_view>

namespace simsweep::obs {

/// Durably replaces `path` with `contents` (tmp + fsync + rename + directory
/// fsync).  When `path` names an existing non-regular file (e.g.
/// /dev/null), writes straight into it instead.  Throws std::runtime_error
/// with the failing step and errno text on any I/O failure.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace simsweep::obs
