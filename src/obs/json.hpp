// Shared JSON scalar emission for the observability layer.
//
// Every obs emitter (metrics snapshot, Chrome trace, profiler report,
// provenance block) writes numbers via std::to_chars shortest round-trip so
// a value re-read from JSON compares bitwise-equal to the in-memory double —
// the property the --jobs identity guarantees rest on.  Non-finite doubles
// become null: JSON has no inf/nan, and emitting a bare token would make the
// file unparseable exactly when something went wrong.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <ostream>
#include <string_view>

namespace simsweep::obs {

inline void write_json_number(std::ostream& os, double value) {
  if (value != value || value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    os << "null";
    return;
  }
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    os << "null";
    return;
  }
  os.write(buf, end - buf);
}

inline void write_json_number(std::ostream& os, std::uint64_t value) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    os << 0;
    return;
  }
  os.write(buf, end - buf);
}

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
inline void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace simsweep::obs
