#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace simsweep::obs {

void Gauge::set(double value) {
  last_ = value;
  if (!set_) {
    min_ = max_ = value;
    set_ = true;
    return;
  }
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Gauge::merge(const Snapshot& other) {
  last_ = other.last;
  if (!set_) {
    min_ = other.min;
    max_ = other.max;
    set_ = true;
    return;
  }
  min_ = std::min(min_, other.min);
  max_ = std::max(max_, other.max);
}

Gauge::Snapshot Gauge::snapshot() const {
  return Snapshot{last_, min_, max_};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be sorted");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::merge(const Snapshot& other) {
  if (other.bounds != bounds_)
    throw std::invalid_argument(
        "Histogram::merge: bucket bounds mismatch (merged histograms must "
        "describe the same quantity)");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts[i];
  if (other.count == 0) return;
  sum_ += other.sum;
  if (count_ == 0) {
    min_ = other.min;
    max_ = other.max;
  } else {
    min_ = std::min(min_, other.min);
    max_ = std::max(max_, other.max);
  }
  count_ += other.count;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

const std::vector<double>& default_histogram_bounds() {
  static const std::vector<double> kBounds{
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1,
      1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8, 1e9};
  return kBounds;
}

std::string labelled(std::string_view base, std::string_view key,
                     std::string_view value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 3);
  out.append(base);
  out.push_back('{');
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('}');
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, default_histogram_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.snapshot().bounds != bounds)
      throw std::invalid_argument("MetricsRegistry: histogram '" +
                                  std::string(name) +
                                  "' re-registered with different bounds");
    return it->second;
  }
  return histograms_.try_emplace(std::string(name), bounds).first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::optional<Gauge::Snapshot> MetricsRegistry::gauge_snapshot(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second.snapshot();
}

std::optional<Histogram::Snapshot> MetricsRegistry::histogram_snapshot(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return it->second.snapshot();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, _] : counters_) out.push_back(name);
  return out;
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Copy the other side out under its lock, then apply through the public
  // get-or-create API (which takes our lock per call) — never both at once.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, Gauge::Snapshot>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, c] : other.counters_)
      counters.emplace_back(name, c.value());
    for (const auto& [name, g] : other.gauges_)
      gauges.emplace_back(name, g.snapshot());
    for (const auto& [name, h] : other.histograms_)
      histograms.emplace_back(name, h.snapshot());
  }
  for (const auto& [name, value] : counters) counter(name).add(value);
  for (const auto& [name, snap] : gauges) gauge(name).merge(snap);
  for (const auto& [name, snap] : histograms)
    histogram(name, snap.bounds).merge(snap);
}

void MetricsRegistry::write_json(std::ostream& os,
                                 const Provenance* meta) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << '{';
  if (meta != nullptr) {
    os << "\"meta\":";
    meta->write_json(os);
    os << ',';
  }
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':';
    write_json_number(os, c.value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    const Gauge::Snapshot snap = g.snapshot();
    write_json_string(os, name);
    os << ":{\"last\":";
    write_json_number(os, snap.last);
    os << ",\"min\":";
    write_json_number(os, snap.min);
    os << ",\"max\":";
    write_json_number(os, snap.max);
    os << '}';
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const Histogram::Snapshot snap = h.snapshot();
    write_json_string(os, name);
    os << ":{\"count\":";
    write_json_number(os, snap.count);
    os << ",\"sum\":";
    write_json_number(os, snap.sum);
    os << ",\"min\":";
    write_json_number(os, snap.min);
    os << ",\"max\":";
    write_json_number(os, snap.max);
    os << ",\"bounds\":[";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i != 0) os << ',';
      write_json_number(os, snap.bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i != 0) os << ',';
      write_json_number(os, snap.counts[i]);
    }
    os << "]}";
  }
  os << "}}";
}

}  // namespace simsweep::obs
