// Labelled counters, gauges and histograms for the whole simulator stack.
//
// The registry follows the auditor's cost model: it is always compiled,
// normally absent, and every instrumentation site guards with a null-pointer
// check, so a run without --metrics does no extra work.  When present, one
// registry is created per trial and fed only from simulation events, which
// makes its JSON snapshot a pure function of (config, seed): merging the
// per-trial registries in trial-index order yields bitwise-identical output
// at any --jobs.
//
// Thread-safety: Counter::add is a relaxed atomic and safe from any thread
// (swampi ranks share one registry and record counters concurrently).  Gauge
// and Histogram updates are deliberately unsynchronised — they are written
// only by the single simulation thread that owns the trial, and a per-sample
// mutex would dominate the cost of instrumenting event-dense runs.  The
// registry's own mutex guards map shape (get-or-create), so handing out
// references is still safe from any thread.  Registry-wide operations
// (merge_from, write_json) assume mutation has quiesced — they run after the
// trial, never during it.
//
// Labels are encoded in the metric name as "base{key=value}" via labelled();
// std::map keeps every emission order deterministic.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace simsweep::obs {

struct Provenance;

/// Monotonic event count.  add() is lock-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value with running min/max.  Single-writer: updated only by
/// the simulation thread that owns the trial.
class Gauge {
 public:
  struct Snapshot {
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void set(double value);
  /// Folds another gauge in: last-write-wins (the merged-in gauge is the
  /// later trial), min/max combine.
  void merge(const Snapshot& other);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  bool set_ = false;
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bound histogram.  Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i] (inclusive upper edge); one extra overflow
/// bucket catches everything above the last bound.  Bounds are fixed at
/// creation; observing NaN throws (a NaN observation is always a bug).
/// Single-writer, like Gauge: observe() is the hottest metric operation
/// (per network flow, per availability sample), so it is inline and lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, overflow last
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void observe(double value) {
    if (std::isnan(value))
      throw std::invalid_argument("Histogram::observe: NaN observation");
    // Upper-inclusive bucket edges: the first bound >= value takes it, +inf
    // and anything above the last bound land in the overflow bucket.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    sum_ += value;
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
  }

  /// Adds another histogram's buckets in.  Throws std::invalid_argument on a
  /// bounds mismatch — merged histograms must describe the same quantity.
  void merge(const Snapshot& other);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-spaced default bounds (1e-6 .. 1e9, one per decade): wide enough for
/// seconds, bytes and queue depths without per-site tuning.
[[nodiscard]] const std::vector<double>& default_histogram_bounds();

/// "base{key=value}" — the labelled-metric naming convention.
[[nodiscard]] std::string labelled(std::string_view base, std::string_view key,
                                   std::string_view value);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  Returned references stay valid for the registry's
  /// lifetime (node-based map), so hot paths may cache them.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  /// Explicit bounds; throws std::invalid_argument if `name` already exists
  /// with different bounds.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     const std::vector<double>& bounds);

  // One-shot conveniences for call sites that fire rarely.
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }
  void set_gauge(std::string_view name, double value) {
    gauge(name).set(value);
  }
  void observe(std::string_view name, double value) {
    histogram(name).observe(value);
  }

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::optional<Gauge::Snapshot> gauge_snapshot(
      std::string_view name) const;
  [[nodiscard]] std::optional<Histogram::Snapshot> histogram_snapshot(
      std::string_view name) const;
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] bool empty() const;

  /// Folds `other` into this registry: counters and histogram buckets add,
  /// gauges last-write-wins with combined min/max.  Merging per-trial
  /// registries in trial-index order is associative and independent of how
  /// trials were scheduled across workers — the --jobs identity.
  void merge_from(const MetricsRegistry& other);

  /// Deterministic snapshot: {"meta":..?,"counters":{},"gauges":{},
  /// "histograms":{}} with sorted keys and round-trip doubles.
  void write_json(std::ostream& os, const Provenance* meta = nullptr) const;

 private:
  // Guards map shape (get-or-create and iteration), not metric values.
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace simsweep::obs
