#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace simsweep::obs {

void TrialProfiler::record(std::size_t task, std::size_t worker,
                           double submitted_s, double begin_s, double end_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(TaskRecord{task, worker, submitted_s, begin_s, end_s});
}

std::vector<TrialProfiler::TaskRecord> TrialProfiler::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

TrialProfiler::Report TrialProfiler::report() const {
  const std::vector<TaskRecord> recs = records();
  Report report;
  report.tasks = recs.size();
  if (recs.empty()) return report;
  double first_submit = recs.front().submitted_s;
  double last_end = recs.front().end_s;
  double task_total = 0.0;
  double wait_total = 0.0;
  std::size_t max_worker = 0;
  report.min_task_s = recs.front().end_s - recs.front().begin_s;
  for (const TaskRecord& r : recs) {
    first_submit = std::min(first_submit, r.submitted_s);
    last_end = std::max(last_end, r.end_s);
    const double task_s = r.end_s - r.begin_s;
    const double wait_s = std::max(0.0, r.begin_s - r.submitted_s);
    task_total += task_s;
    wait_total += wait_s;
    report.min_task_s = std::min(report.min_task_s, task_s);
    report.max_task_s = std::max(report.max_task_s, task_s);
    report.max_queue_wait_s = std::max(report.max_queue_wait_s, wait_s);
    max_worker = std::max(max_worker, r.worker);
  }
  report.wall_s = std::max(0.0, last_end - first_submit);
  report.mean_task_s = task_total / static_cast<double>(recs.size());
  report.mean_queue_wait_s = wait_total / static_cast<double>(recs.size());
  report.workers.assign(max_worker + 1, WorkerStats{});
  for (const TaskRecord& r : recs) {
    WorkerStats& w = report.workers[r.worker];
    ++w.tasks;
    w.busy_s += r.end_s - r.begin_s;
  }
  for (WorkerStats& w : report.workers)
    w.utilization = report.wall_s > 0.0 ? w.busy_s / report.wall_s : 0.0;
  return report;
}

void TrialProfiler::print(std::ostream& os) const {
  const Report r = report();
  os << "profile: " << r.tasks << " trials in " << r.wall_s << " s wall\n";
  os << "profile: trial duration mean=" << r.mean_task_s
     << " s min=" << r.min_task_s << " s max=" << r.max_task_s << " s\n";
  os << "profile: queue wait mean=" << r.mean_queue_wait_s
     << " s max=" << r.max_queue_wait_s << " s\n";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const WorkerStats& w = r.workers[i];
    os << "profile: worker " << i << ": " << w.tasks << " trials, busy "
       << w.busy_s << " s, utilization " << w.utilization * 100.0 << "%\n";
  }
}

void TrialProfiler::write_json(std::ostream& os, const Provenance* meta) const {
  const Report r = report();
  os << '{';
  if (meta != nullptr) {
    os << "\"meta\":";
    meta->write_json(os);
    os << ',';
  }
  os << "\"tasks\":";
  write_json_number(os, static_cast<std::uint64_t>(r.tasks));
  os << ",\"wall_s\":";
  write_json_number(os, r.wall_s);
  os << ",\"mean_task_s\":";
  write_json_number(os, r.mean_task_s);
  os << ",\"min_task_s\":";
  write_json_number(os, r.min_task_s);
  os << ",\"max_task_s\":";
  write_json_number(os, r.max_task_s);
  os << ",\"mean_queue_wait_s\":";
  write_json_number(os, r.mean_queue_wait_s);
  os << ",\"max_queue_wait_s\":";
  write_json_number(os, r.max_queue_wait_s);
  os << ",\"workers\":[";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    if (i != 0) os << ',';
    const WorkerStats& w = r.workers[i];
    os << "{\"worker\":";
    write_json_number(os, static_cast<std::uint64_t>(i));
    os << ",\"tasks\":";
    write_json_number(os, static_cast<std::uint64_t>(w.tasks));
    os << ",\"busy_s\":";
    write_json_number(os, w.busy_s);
    os << ",\"utilization\":";
    write_json_number(os, w.utilization);
    os << '}';
  }
  os << "]}";
}

}  // namespace simsweep::obs
