// Wall-clock profiling of the trial engine.
//
// Where the metrics registry and timeline tracer observe *simulated* time,
// the profiler observes the host machine: how long each trial really took,
// how long it waited in the pool queue, and how evenly the workers were
// loaded.  Timestamps come from std::chrono::steady_clock relative to the
// profiler's construction, so reports are inherently non-deterministic and
// are never merged into the reproducible artifacts.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace simsweep::obs {

struct Provenance;

class TrialProfiler {
 public:
  TrialProfiler() : epoch_(std::chrono::steady_clock::now()) {}
  TrialProfiler(const TrialProfiler&) = delete;
  TrialProfiler& operator=(const TrialProfiler&) = delete;

  /// Wall seconds since construction (steady clock).
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Records one completed task.  `submitted_s` is when the batch entered
  /// the pool, `begin_s`/`end_s` bracket the task body on worker `worker`
  /// (0 = the calling thread, which participates in the pool).
  void record(std::size_t task, std::size_t worker, double submitted_s,
              double begin_s, double end_s);

  struct TaskRecord {
    std::size_t task = 0;
    std::size_t worker = 0;
    double submitted_s = 0.0;
    double begin_s = 0.0;
    double end_s = 0.0;
  };

  [[nodiscard]] std::vector<TaskRecord> records() const;

  struct WorkerStats {
    std::size_t tasks = 0;
    double busy_s = 0.0;
    double utilization = 0.0;  // busy_s / wall_s
  };

  struct Report {
    std::size_t tasks = 0;
    double wall_s = 0.0;  // first submit -> last completion
    double mean_task_s = 0.0;
    double min_task_s = 0.0;
    double max_task_s = 0.0;
    double mean_queue_wait_s = 0.0;
    double max_queue_wait_s = 0.0;
    std::vector<WorkerStats> workers;  // indexed by worker id
  };

  [[nodiscard]] Report report() const;

  /// Human-readable report ("profile: ..." lines).
  void print(std::ostream& os) const;

  void write_json(std::ostream& os, const Provenance* meta = nullptr) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TaskRecord> records_;
};

}  // namespace simsweep::obs
