#include "obs/provenance.hpp"

#include <ostream>
#include <utility>

#include "obs/json.hpp"

#ifndef SIMSWEEP_GIT_DESCRIBE
#define SIMSWEEP_GIT_DESCRIBE "unknown"
#endif
#ifndef SIMSWEEP_BUILD_TYPE
#define SIMSWEEP_BUILD_TYPE "unknown"
#endif

namespace simsweep::obs {

void Provenance::write_json(std::ostream& os) const {
  os << "{\"version\":";
  write_json_string(os, version);
  os << ",\"build_type\":";
  write_json_string(os, build_type);
  os << ",\"seed\":";
  write_json_number(os, seed);
  os << ",\"config_digest\":";
  write_json_string(os, config_digest);
  if (partial) os << ",\"partial\":true";
  os << '}';
}

Provenance make_provenance(std::uint64_t seed, std::string config_digest) {
  Provenance p;
  p.version = SIMSWEEP_GIT_DESCRIBE;
  p.build_type = SIMSWEEP_BUILD_TYPE;
  p.seed = seed;
  p.config_digest = std::move(config_digest);
  return p;
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace simsweep::obs
