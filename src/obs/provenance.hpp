// Build/run provenance stamped into every JSON emitter.
//
// A metrics snapshot or trace file divorced from the binary and config that
// produced it is unreproducible; the shared "meta" object ties each artifact
// back to the exact build (git describe + build type, captured at configure
// time) and run (root seed + a digest of the experiment config).  Emitters
// take an optional `const Provenance*` so existing callers pay nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace simsweep::obs {

struct Provenance {
  std::string version;     // git describe --always --dirty (configure time)
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::uint64_t seed = 0;  // root seed of the run
  std::string config_digest;  // hex FNV-1a over the serialized config

  /// True when the artifact covers only part of the run — an interrupted
  /// sweep flushed what it had (journal salvage) instead of finishing.
  /// Consumers must not diff a partial artifact against a complete one.
  bool partial = false;

  /// Writes the {"version":...,"build_type":...,"seed":...,
  /// "config_digest":...} object (no trailing newline).  A "partial":true
  /// member is appended only when `partial` is set, so complete artifacts
  /// are byte-for-byte what they were before the flag existed.
  void write_json(std::ostream& os) const;
};

/// Provenance pre-filled with the compiled-in version/build-type stamps.
[[nodiscard]] Provenance make_provenance(std::uint64_t seed,
                                         std::string config_digest);

/// 64-bit FNV-1a, the digest primitive behind config_digest.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// Lower-case fixed-width hex of a 64-bit value ("00ff...").
[[nodiscard]] std::string hex64(std::uint64_t value);

}  // namespace simsweep::obs
