#include "obs/status.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/atomic_write.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace simsweep::obs {

EtaEstimator::EtaEstimator(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0)
    alpha_ = 0.25;  // nonsense weight: fall back to the default
}

void EtaEstimator::record(double duration_s) {
  if (!(duration_s >= 0.0)) duration_s = 0.0;  // rejects NaN too
  if (completed_ == 0)
    ewma_s_ = duration_s;
  else
    ewma_s_ = alpha_ * duration_s + (1.0 - alpha_) * ewma_s_;
  ++completed_;
}

double EtaEstimator::eta_s(std::size_t cells_remaining,
                           std::size_t jobs) const noexcept {
  if (completed_ == 0 || cells_remaining == 0) return 0.0;
  const double workers = static_cast<double>(std::max<std::size_t>(1, jobs));
  return ewma_s_ * static_cast<double>(cells_remaining) / workers;
}

StatusBoard::StatusBoard(Options options) : options_(std::move(options)),
                                            eta_(options_.eta_alpha) {
  epoch_ = std::chrono::steady_clock::now();
  last_write_ = epoch_;
}

void StatusBoard::begin_run(const std::string& scenario,
                            const Provenance& provenance,
                            std::size_t cells_total, std::size_t trials,
                            std::size_t jobs,
                            std::vector<std::string> group_names) {
  const std::lock_guard<std::mutex> lock(mutex_);
  scenario_ = scenario;
  provenance_ = provenance;
  cells_total_ = cells_total;
  trials_ = trials;
  jobs_ = std::max<std::size_t>(1, jobs);
  groups_.clear();
  if (!group_names.empty()) {
    const std::size_t n = group_names.size();
    groups_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Group g;
      g.name = std::move(group_names[i]);
      // The grid is x-major: cell index % group-count selects the group, so
      // the first (total % n) groups get one extra cell when it divides
      // unevenly (it never does for a full grid, but resumed partial plans
      // keep the same mapping).
      g.total = cells_total / n + (i < cells_total % n ? 1 : 0);
      groups_.push_back(std::move(g));
    }
  }
  // Publish immediately: a kill before the first cell completes must still
  // leave a parseable, partial-marked snapshot on disk.
  write_snapshot_locked("running", /*force=*/true);
}

void StatusBoard::set_profiler(const TrialProfiler* profiler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  profiler_ = profiler;
}

void StatusBoard::cell_reused(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  ++reused_;
  if (!groups_.empty()) ++groups_[index % groups_.size()].done;
  write_snapshot_locked("running", /*force=*/false);
}

void StatusBoard::cell_started(std::size_t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++in_flight_;
  write_snapshot_locked("running", /*force=*/false);
}

void StatusBoard::cell_retried(std::size_t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++retries_;
  write_snapshot_locked("running", /*force=*/false);
}

void StatusBoard::cell_quarantined(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
  ++done_;
  ++quarantined_;
  if (!groups_.empty()) ++groups_[index % groups_.size()].done;
  write_snapshot_locked("running", /*force=*/false);
}

void StatusBoard::cell_finished(std::size_t index, double duration_s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
  ++done_;
  ++executed_;
  if (!groups_.empty()) ++groups_[index % groups_.size()].done;
  eta_.record(duration_s);
  write_snapshot_locked("running", /*force=*/false);
}

void StatusBoard::finish(const std::string& state) {
  const std::lock_guard<std::mutex> lock(mutex_);
  write_snapshot_locked(state, /*force=*/true);
}

std::string StatusBoard::snapshot_json() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_json_locked("running");
}

double StatusBoard::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::string StatusBoard::snapshot_json_locked(const std::string& state) {
  std::ostringstream os;
  os << "{\"kind\":\"sweep-status\",\"meta\":";
  Provenance meta = provenance_;
  // Anything short of "done" is a partial view of the run; a monitor (or
  // `report`) must not treat it as a complete result.
  meta.partial = provenance_.partial || state != "done";
  meta.write_json(os);
  os << ",\"scenario\":";
  write_json_string(os, scenario_);
  os << ",\"state\":";
  write_json_string(os, state);
  const double unix_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  os << ",\"heartbeat_unix_s\":";
  write_json_number(os, unix_s);
  os << ",\"elapsed_s\":";
  write_json_number(os, elapsed_s());
  os << ",\"heartbeat_s\":";
  write_json_number(os, options_.heartbeat_s);
  os << ",\"jobs\":";
  write_json_number(os, static_cast<std::uint64_t>(jobs_));
  os << ",\"trials\":";
  write_json_number(os, static_cast<std::uint64_t>(trials_));
  os << ",\"cells\":{\"total\":";
  write_json_number(os, static_cast<std::uint64_t>(cells_total_));
  os << ",\"done\":";
  write_json_number(os, static_cast<std::uint64_t>(done_));
  os << ",\"reused\":";
  write_json_number(os, static_cast<std::uint64_t>(reused_));
  os << ",\"executed\":";
  write_json_number(os, static_cast<std::uint64_t>(executed_));
  os << ",\"in_flight\":";
  write_json_number(os, static_cast<std::uint64_t>(in_flight_));
  os << ",\"retries\":";
  write_json_number(os, static_cast<std::uint64_t>(retries_));
  os << ",\"quarantined\":";
  write_json_number(os, static_cast<std::uint64_t>(quarantined_));
  os << "},\"groups\":[";
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"name\":";
    write_json_string(os, groups_[i].name);
    os << ",\"done\":";
    write_json_number(os, static_cast<std::uint64_t>(groups_[i].done));
    os << ",\"total\":";
    write_json_number(os, static_cast<std::uint64_t>(groups_[i].total));
    os << '}';
  }
  os << "],\"eta\":{\"ewma_cell_s\":";
  write_json_number(os, eta_.ewma_s());
  const std::size_t remaining = cells_total_ > done_ ? cells_total_ - done_ : 0;
  os << ",\"eta_s\":";
  write_json_number(os, eta_.eta_s(remaining, jobs_));
  os << ",\"percent\":";
  const double percent =
      cells_total_ == 0 ? 100.0
                        : 100.0 * static_cast<double>(done_) /
                              static_cast<double>(cells_total_);
  write_json_number(os, percent);
  os << '}';
  if (profiler_ != nullptr) {
    const TrialProfiler::Report report = profiler_->report();
    os << ",\"workers\":[";
    for (std::size_t i = 0; i < report.workers.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"tasks\":";
      write_json_number(os,
                        static_cast<std::uint64_t>(report.workers[i].tasks));
      os << ",\"busy_s\":";
      write_json_number(os, report.workers[i].busy_s);
      os << ",\"utilization\":";
      write_json_number(os, report.workers[i].utilization);
      os << '}';
    }
    os << ']';
  }
  os << "}\n";
  return os.str();
}

void StatusBoard::write_snapshot_locked(const std::string& state, bool force) {
  const auto now = std::chrono::steady_clock::now();
  if (!force && wrote_once_) {
    const double since =
        std::chrono::duration<double>(now - last_write_).count();
    if (since < options_.heartbeat_s) return;
  }
  atomic_write_file(options_.path, snapshot_json_locked(state));
  last_write_ = now;
  wrote_once_ = true;
  if (options_.progress) {
    const std::size_t remaining =
        cells_total_ > done_ ? cells_total_ - done_ : 0;
    const double percent =
        cells_total_ == 0 ? 100.0
                          : 100.0 * static_cast<double>(done_) /
                                static_cast<double>(cells_total_);
    std::fprintf(stderr, "progress: %zu/%zu cells (%.1f%%), eta %.1fs [%s]\n",
                 done_, cells_total_, percent, eta_.eta_s(remaining, jobs_),
                 state.c_str());
  }
}

}  // namespace simsweep::obs
