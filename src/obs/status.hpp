// Live sweep telemetry: periodic, crash-consistent status snapshots.
//
// A multi-hour sweep used to give no sign of life until it exited.  The
// StatusBoard fixes that without touching the simulation: the sweep runner
// reports cell lifecycle events (started / finished / reused / retried /
// quarantined) through null-guarded pointer calls — the same zero-overhead
// contract as the auditor and the metrics registry — and the board
// periodically publishes a JSON snapshot via obs::atomic_write_file, so a
// monitor (or `simsweep status FILE`) always reads a complete, current
// document even if the sweep is SIGKILLed mid-heartbeat.
//
// Snapshots are deliberately wall-clock artifacts, like the trial profiler:
// they carry epoch timestamps and host-machine durations and are never
// merged into the reproducible artifacts.  The ETA, however, is a pure
// function of the recorded per-cell durations (EtaEstimator), so replaying
// the same duration sequence yields bitwise-identical estimates at any
// --jobs.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/provenance.hpp"

namespace simsweep::obs {

class TrialProfiler;

/// Wall-clock ETA from an exponentially weighted moving average of
/// completed-cell durations.  Pure and deterministic: feeding the same
/// duration sequence produces bitwise-identical estimates regardless of how
/// many workers produced them.
class EtaEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest sample, in (0, 1].
  explicit EtaEstimator(double alpha = 0.25);

  /// Records one completed cell's wall-clock duration, in completion order.
  void record(double duration_s);

  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

  /// Smoothed per-cell duration; 0 until the first record.
  [[nodiscard]] double ewma_s() const noexcept { return ewma_s_; }

  /// Estimated wall-clock seconds to finish `cells_remaining` more cells
  /// with `jobs` parallel workers (jobs 0 counts as 1).  0 until the first
  /// record — no history means no estimate, not an infinite one.
  [[nodiscard]] double eta_s(std::size_t cells_remaining,
                             std::size_t jobs) const noexcept;

 private:
  double alpha_;
  double ewma_s_ = 0.0;
  std::size_t completed_ = 0;
};

/// Periodic status-snapshot publisher for a running sweep.  Thread-safe:
/// worker threads report cell events concurrently; the internal mutex is
/// taken only on those (rare — once per cell, not per simulation event)
/// calls.  Disabled telemetry never constructs a board at all: the sweep
/// runner holds a `StatusBoard*` and every call site is a null check.
class StatusBoard {
 public:
  struct Options {
    std::string path;          ///< snapshot file; must be non-empty
    double heartbeat_s = 1.0;  ///< min seconds between periodic snapshots
    bool progress = false;     ///< one-line progress updates on stderr
    double eta_alpha = 0.25;   ///< EWMA weight for the ETA estimator
  };

  explicit StatusBoard(Options options);

  StatusBoard(const StatusBoard&) = delete;
  StatusBoard& operator=(const StatusBoard&) = delete;

  /// Describes the run and publishes the initial snapshot immediately, so
  /// the file exists from the first instant (a kill before the first cell
  /// still leaves a parseable, partial-marked snapshot).  `group_names` is
  /// the strategy lineup; cell index i belongs to group i % group_names
  /// .size() (the sweep grid is x-major).
  void begin_run(const std::string& scenario, const Provenance& provenance,
                 std::size_t cells_total, std::size_t trials, std::size_t jobs,
                 std::vector<std::string> group_names);

  /// Optional wall-clock profiler whose per-worker utilization is embedded
  /// in each snapshot.  Must outlive the board.
  void set_profiler(const TrialProfiler* profiler);

  // Cell lifecycle, called from worker threads.
  void cell_reused(std::size_t index);      ///< replayed from a journal
  void cell_started(std::size_t index);     ///< claimed by a worker
  void cell_retried(std::size_t index);     ///< one failed attempt, retrying
  void cell_quarantined(std::size_t index); ///< retry budget exhausted
  /// Completed successfully after `duration_s` wall-clock seconds (feeds
  /// the ETA estimator).
  void cell_finished(std::size_t index, double duration_s);

  /// Publishes the final snapshot with the given terminal state
  /// ("done" or "interrupted") — always written, heartbeat throttle ignored.
  void finish(const std::string& state);

  /// The snapshot JSON (single line + trailing newline).  Exposed for
  /// tests; writers use the path from Options.
  [[nodiscard]] std::string snapshot_json();

 private:
  struct Group {
    std::string name;
    std::size_t done = 0;
    std::size_t total = 0;
  };

  void write_snapshot_locked(const std::string& state, bool force);
  [[nodiscard]] std::string snapshot_json_locked(const std::string& state);
  [[nodiscard]] double elapsed_s() const;

  Options options_;
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::chrono::steady_clock::time_point last_write_;
  bool wrote_once_ = false;

  std::string scenario_;
  Provenance provenance_;
  std::size_t cells_total_ = 0;
  std::size_t trials_ = 0;
  std::size_t jobs_ = 1;
  std::vector<Group> groups_;

  std::size_t done_ = 0;      ///< finished + reused
  std::size_t reused_ = 0;
  std::size_t executed_ = 0;  ///< finished in this process
  std::size_t in_flight_ = 0;
  std::size_t retries_ = 0;
  std::size_t quarantined_ = 0;

  EtaEstimator eta_;
  const TrialProfiler* profiler_ = nullptr;
};

}  // namespace simsweep::obs
