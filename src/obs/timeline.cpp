#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace simsweep::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

std::vector<std::pair<std::string, double>> copy_args(
    std::initializer_list<TimelineTracer::Arg> args) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(args.size());
  for (const auto& arg : args) out.emplace_back(std::string(arg.name), arg.value);
  return out;
}

void write_event(std::ostream& os, const TimelineTracer::Event& e,
                 std::uint32_t pid) {
  os << "{\"name\":";
  write_json_string(os, e.name);
  os << ",\"cat\":";
  write_json_string(os, e.category.empty() ? "sim" : e.category);
  os << ",\"ph\":\"" << (e.phase == TimelineTracer::Phase::kSpan ? 'X' : 'i')
     << "\",\"ts\":";
  write_json_number(os, e.begin_s * kMicrosPerSecond);
  if (e.phase == TimelineTracer::Phase::kSpan) {
    os << ",\"dur\":";
    write_json_number(os, (e.end_s - e.begin_s) * kMicrosPerSecond);
  } else {
    os << ",\"s\":\"t\"";
  }
  os << ",\"pid\":";
  write_json_number(os, static_cast<std::uint64_t>(pid));
  os << ",\"tid\":";
  write_json_number(os, static_cast<std::uint64_t>(e.track));
  if (!e.args.empty()) {
    os << ",\"args\":{";
    bool first = true;
    for (const auto& [name, value] : e.args) {
      if (!first) os << ',';
      first = false;
      write_json_string(os, name);
      os << ':';
      write_json_number(os, value);
    }
    os << '}';
  }
  os << '}';
}

void write_metadata_string(std::ostream& os, std::string_view meta_name,
                           std::string_view value, std::uint32_t pid,
                           std::uint32_t tid) {
  os << "{\"name\":";
  write_json_string(os, meta_name);
  os << ",\"ph\":\"M\",\"pid\":";
  write_json_number(os, static_cast<std::uint64_t>(pid));
  os << ",\"tid\":";
  write_json_number(os, static_cast<std::uint64_t>(tid));
  os << ",\"args\":{\"name\":";
  write_json_string(os, value);
  os << "}}";
}

}  // namespace

TimelineTracer::TrackId TimelineTracer::track(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < tracks_.size(); ++i)
    if (tracks_[i] == name) return static_cast<TrackId>(i);
  tracks_.emplace_back(name);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void TimelineTracer::span(TrackId track, std::string_view name,
                          std::string_view category, double begin_s,
                          double end_s, std::initializer_list<Arg> args) {
  if (!std::isfinite(begin_s) || !std::isfinite(end_s))
    throw std::invalid_argument("TimelineTracer::span: non-finite endpoint");
  if (end_s < begin_s)
    throw std::invalid_argument("TimelineTracer::span: end before begin");
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{Phase::kSpan, track, std::string(name),
                          std::string(category), begin_s, end_s,
                          copy_args(args)});
}

void TimelineTracer::instant(TrackId track, std::string_view name,
                             std::string_view category, double time_s,
                             std::initializer_list<Arg> args) {
  if (!std::isfinite(time_s))
    throw std::invalid_argument("TimelineTracer::instant: non-finite time");
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{Phase::kInstant, track, std::string(name),
                          std::string(category), time_s, time_s,
                          copy_args(args)});
}

std::size_t TimelineTracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<std::string> TimelineTracer::track_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tracks_;
}

std::vector<TimelineTracer::Event> TimelineTracer::sorted_events() const {
  std::vector<Event> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.begin_s < b.begin_s;
                   });
  return out;
}

void TimelineTracer::write_chrome_json(std::ostream& os,
                                       const Provenance* meta) const {
  write_chrome_json(os, {Process{"trial 0", this}}, meta);
}

void TimelineTracer::write_chrome_json(std::ostream& os,
                                       const std::vector<Process>& processes,
                                       const Provenance* meta) {
  os << "{\"displayTimeUnit\":\"ms\"";
  if (meta != nullptr) {
    os << ",\"otherData\":{\"meta\":";
    meta->write_json(os);
    os << '}';
  }
  os << ",\"traceEvents\":[";
  write_chrome_fragment(os, processes, 1);
  os << "]}\n";
}

bool TimelineTracer::write_chrome_fragment(std::ostream& os,
                                           const std::vector<Process>& processes,
                                           std::uint32_t first_pid) {
  bool first = true;
  std::uint32_t pid = first_pid - 1;
  for (const Process& process : processes) {
    ++pid;
    if (process.tracer == nullptr) continue;
    if (!first) os << ',';
    first = false;
    write_metadata_string(os, "process_name", process.name, pid, 0);
    const std::vector<std::string> tracks = process.tracer->track_names();
    for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
      os << ',';
      write_metadata_string(os, "thread_name", tracks[tid], pid,
                            static_cast<std::uint32_t>(tid));
    }
    for (const Event& e : process.tracer->sorted_events()) {
      os << ',';
      write_event(os, e, pid);
    }
  }
  return !first;
}

}  // namespace simsweep::obs
