// Virtually-timestamped timeline tracing with Chrome trace-event export.
//
// Subsystems record typed span ("ph":"X") and instant ("ph":"i") events on
// named tracks — one per host, rank, or logical subsystem — stamped with
// *simulated* time.  write_chrome_json() emits the Chrome trace-event JSON
// format (https://ui.perfetto.dev loads it directly): virtual seconds map to
// trace microseconds, tracks map to threads, and trials map to processes.
//
// Like the metrics registry, a tracer is attached per trial behind a null
// pointer, fed only from simulation events, and therefore bitwise
// reproducible at any --jobs.  Recording is mutex-protected so swampi ranks
// can share one tracer; export assumes mutation has quiesced.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace simsweep::obs {

struct Provenance;

class TimelineTracer {
 public:
  using TrackId = std::uint32_t;

  /// One numeric event argument, rendered into the Chrome "args" object.
  struct Arg {
    std::string_view name;
    double value;
  };

  enum class Phase : std::uint8_t { kSpan, kInstant };

  struct Event {
    Phase phase;
    TrackId track;
    std::string name;
    std::string category;
    double begin_s;
    double end_s;  // == begin_s for instants
    std::vector<std::pair<std::string, double>> args;
  };

  TimelineTracer() = default;
  TimelineTracer(const TimelineTracer&) = delete;
  TimelineTracer& operator=(const TimelineTracer&) = delete;

  /// Get-or-create a track by name.  Ids are dense and assigned in first-use
  /// order, which is deterministic because recording is.
  [[nodiscard]] TrackId track(std::string_view name);

  /// Records a completed span [begin_s, end_s] of simulated time.  Throws
  /// std::invalid_argument on end_s < begin_s or a non-finite endpoint.
  void span(TrackId track, std::string_view name, std::string_view category,
            double begin_s, double end_s,
            std::initializer_list<Arg> args = {});

  /// Records a point event at time_s.
  void instant(TrackId track, std::string_view name, std::string_view category,
               double time_s, std::initializer_list<Arg> args = {});

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::vector<std::string> track_names() const;

  /// Events stable-sorted by begin time: equal timestamps keep recording
  /// order, so the export is deterministic and causally readable.
  [[nodiscard]] std::vector<Event> sorted_events() const;

  /// Single-process export (pid 1).
  void write_chrome_json(std::ostream& os,
                         const Provenance* meta = nullptr) const;

  /// Multi-process export: one Chrome "process" per entry (pid = index + 1),
  /// used to stitch per-trial tracers into one trace file.
  struct Process {
    std::string name;
    const TimelineTracer* tracer;
  };
  static void write_chrome_json(std::ostream& os,
                                const std::vector<Process>& processes,
                                const Provenance* meta = nullptr);

  /// Writes only the comma-joined traceEvents array *elements* for
  /// `processes`, with pids assigned sequentially from `first_pid` (no
  /// leading/trailing comma, no enclosing brackets).  Returns whether
  /// anything was written (null tracers are skipped but still consume a
  /// pid).  This is the salvage primitive behind resumable sweeps: a cell
  /// serializes its slice once, the journal stores the string, and a
  /// resumed sweep splices it back verbatim — byte-identical by
  /// construction.
  static bool write_chrome_fragment(std::ostream& os,
                                    const std::vector<Process>& processes,
                                    std::uint32_t first_pid);

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

}  // namespace simsweep::obs
