#include "platform/cluster.hpp"

#include <algorithm>
#include <numeric>

namespace simsweep::platform {

Cluster::Cluster(sim::Simulator& simulator, const ClusterSpec& spec,
                 sim::Rng& rng)
    : simulator_(simulator), spec_(spec) {
  if (!spec.explicit_speeds.empty() &&
      spec.explicit_speeds.size() != spec.host_count)
    throw std::invalid_argument(
        "Cluster: explicit_speeds size must match host_count");
  if (spec.host_count == 0)
    throw std::invalid_argument("Cluster: host_count must be positive");
  if (spec.min_speed_flops <= 0.0 || spec.max_speed_flops < spec.min_speed_flops)
    throw std::invalid_argument("Cluster: invalid speed range");

  hosts_.reserve(spec.host_count);
  for (std::size_t i = 0; i < spec.host_count; ++i) {
    const double speed =
        spec.explicit_speeds.empty()
            ? rng.uniform(spec.min_speed_flops, spec.max_speed_flops)
            : spec.explicit_speeds[i];
    hosts_.push_back(std::make_unique<Host>(
        simulator_, static_cast<HostId>(i), speed, "host" + std::to_string(i)));
  }
}

std::vector<HostId> Cluster::by_effective_speed() const {
  std::vector<HostId> ids(hosts_.size());
  std::iota(ids.begin(), ids.end(), HostId{0});
  std::stable_sort(ids.begin(), ids.end(), [this](HostId a, HostId b) {
    return hosts_[a]->effective_speed() > hosts_[b]->effective_speed();
  });
  return ids;
}

std::vector<HostId> Cluster::by_peak_speed() const {
  std::vector<HostId> ids(hosts_.size());
  std::iota(ids.begin(), ids.end(), HostId{0});
  std::stable_sort(ids.begin(), ids.end(), [this](HostId a, HostId b) {
    return hosts_[a]->peak_speed() > hosts_[b]->peak_speed();
  });
  return ids;
}

}  // namespace simsweep::platform
