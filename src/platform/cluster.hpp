// Cluster: the simulated execution platform of the paper —
// heterogeneous workstations on a single shared Ethernet segment.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/host.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"

namespace simsweep::platform {

/// Shared communication link parameters (paper §6: 100baseT LAN modelled as
/// a single shared link; latency alpha, bandwidth beta = 6 MB/s).
struct LinkSpec {
  double latency_s = 1e-4;          ///< per-message latency alpha (seconds)
  double bandwidth_Bps = 6.0e6;     ///< shared bandwidth beta (bytes/second)
};

/// Platform-wide constants.
struct ClusterSpec {
  /// Host peak speeds in flop/s.  The paper simulates machines in the
  /// "hundreds of megaflops" range; the builder draws uniformly from
  /// [min_speed, max_speed] unless explicit speeds are given.
  double min_speed_flops = 100.0e6;
  double max_speed_flops = 500.0e6;
  std::vector<double> explicit_speeds;  ///< overrides the range when nonempty

  std::size_t host_count = 32;
  LinkSpec link;

  /// MPI startup cost per allocated process (paper: 3/4 s per process).
  double startup_per_process_s = 0.75;
};

/// Heterogeneous set of hosts sharing one link.
class Cluster {
 public:
  /// Builds a cluster; random speeds are drawn from `rng` when explicit
  /// speeds are not supplied.
  Cluster(sim::Simulator& simulator, const ClusterSpec& spec, sim::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return hosts_.size(); }
  [[nodiscard]] Host& host(HostId id) { return *hosts_.at(id); }
  [[nodiscard]] const Host& host(HostId id) const { return *hosts_.at(id); }
  [[nodiscard]] const LinkSpec& link() const noexcept { return spec_.link; }
  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }

  /// Total startup delay for allocating `process_count` MPI processes.
  [[nodiscard]] double startup_cost(std::size_t process_count) const noexcept {
    return spec_.startup_per_process_s * static_cast<double>(process_count);
  }

  /// Hosts sorted by current effective speed, fastest first.
  [[nodiscard]] std::vector<HostId> by_effective_speed() const;

  /// Hosts sorted by peak speed, fastest first.
  [[nodiscard]] std::vector<HostId> by_peak_speed() const;

 private:
  sim::Simulator& simulator_;
  ClusterSpec spec_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace simsweep::platform
