#include "platform/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace simsweep::platform {

void ComputeTask::cancel() {
  if (!active_) return;
  active_ = false;
  completion_event_.cancel();
  if (host_ != nullptr) host_->remove_task(this);
  host_ = nullptr;
}

Host::Host(sim::Simulator& simulator, HostId id, double peak_speed_flops,
           std::string name)
    : simulator_(simulator),
      id_(id),
      peak_speed_(peak_speed_flops),
      name_(std::move(name)) {
  if (peak_speed_flops <= 0.0)
    throw std::invalid_argument("Host: peak speed must be positive");
  load_history_.push_back(sim::Sample{simulator_.now(), 0.0});
}

void Host::set_external_load(int competitors) {
  if (competitors < 0)
    throw std::invalid_argument("Host: negative competing-process count");
  if (competitors == external_load_) return;
  external_load_ = competitors;
  if (online_) record_state();
  replan();
}

void Host::set_online(bool online) {
  if (crashed_) return;  // dead hosts stay dead
  if (online == online_) return;
  online_ = online;
  record_state();
  replan();
}

void Host::set_crashed() {
  if (crashed_) return;
  set_online(false);  // records the offline marker and stalls running tasks
  crashed_ = true;
}

void Host::record_state() {
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (auditor != nullptr && auditor->enabled()) {
    const double avail = availability();
    if (avail < 0.0 || avail > 1.0)
      auditor->report("platform", "availability_in_unit_interval",
                      simulator_.now(),
                      name_ + " availability " + std::to_string(avail));
    if (!load_history_.empty() &&
        simulator_.now() < load_history_.back().time - sim::kTimeEpsilon)
      auditor->report("platform", "load_history_time_ordered",
                      simulator_.now(),
                      name_ + " history sample behind tail at t=" +
                          std::to_string(load_history_.back().time));
  }
  load_history_.push_back(sim::Sample{
      simulator_.now(),
      online_ ? static_cast<double>(external_load_) : kOfflineMarker});
  if (trace_ != nullptr)
    trace_->record("avail." + name_, simulator_.now(), availability());
  if (obs::MetricsRegistry* metrics = simulator_.metrics()) {
    if (load_changes_metric_ == nullptr) {
      static const std::vector<double> kAvailabilityBounds{
          0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
      load_changes_metric_ = &metrics->counter("platform.load_changes");
      availability_metric_ =
          &metrics->histogram("platform.availability", kAvailabilityBounds);
    }
    load_changes_metric_->add();
    availability_metric_->observe(availability());
  }
  if (obs::TimelineTracer* timeline = simulator_.timeline()) {
    if (!timeline_track_cached_) {
      timeline_track_ = timeline->track(name_);
      timeline_track_cached_ = true;
    }
    timeline->instant(timeline_track_, "load", "platform", simulator_.now(),
                      {{"availability", availability()},
                       {"external_load", online_
                                             ? static_cast<double>(
                                                   external_load_)
                                             : kOfflineMarker}});
  }
}

std::shared_ptr<ComputeTask> Host::start_compute(double work,
                                                 ComputeTask::Completion done) {
  if (work < 0.0) throw std::invalid_argument("Host: negative work");
  auto task = std::shared_ptr<ComputeTask>(
      new ComputeTask(*this, work, std::move(done)));
  task->last_update_ = simulator_.now();
  tasks_.push_back(task);
  replan();  // adding a task changes every task's share
  return task;
}

void Host::attach_trace(sim::TraceRecorder* recorder) {
  trace_ = recorder;
  if (trace_ != nullptr)
    trace_->record("avail." + name_, simulator_.now(), availability());
}

double Host::mean_availability(SimTime t0, SimTime t1) const {
  // load_history_ is a step series of competing-process counts; convert the
  // time-averaged count into availability segment by segment.
  if (t1 < t0) throw std::invalid_argument("mean_availability: t1 < t0");
  if (sim::time_close(t0, t1)) return availability();
  double area = 0.0;
  double value = 0.0;
  SimTime cursor = t0;
  for (const sim::Sample& s : load_history_) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= t1) break;
    area += (s.time - cursor) * availability_of_sample(value);
    cursor = s.time;
    value = s.value;
  }
  area += (t1 - cursor) * availability_of_sample(value);
  const double mean = area / (t1 - t0);
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (auditor != nullptr && auditor->enabled()) {
    // The integral of a step series bounded to [0, 1] must itself land in
    // [0, 1]; anything else means the window walk double-counted a segment.
    if (mean < -1e-12 || mean > 1.0 + 1e-12)
      auditor->report("platform", "availability_integral_in_unit_interval",
                      simulator_.now(),
                      name_ + " mean availability " + std::to_string(mean) +
                          " over [" + std::to_string(t0) + ", " +
                          std::to_string(t1) + "]");
  }
  return mean;
}

double Host::per_task_rate() const noexcept {
  if (tasks_.empty() || !online_) return 0.0;
  const double sharers =
      static_cast<double>(external_load_) + static_cast<double>(tasks_.size());
  return peak_speed_ / std::max(1.0, sharers);
}

void Host::accrue(ComputeTask& task, SimTime now) const {
  const double elapsed = now - task.last_update_;
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (auditor != nullptr && auditor->enabled() && elapsed < -sim::kTimeEpsilon)
    auditor->report("platform", "non_negative_elapsed", now,
                    name_ + " task accrued over a negative interval of " +
                        std::to_string(elapsed) + " s");
  task.remaining_ -= task.rate_ * elapsed;
  if (task.remaining_ < 0.0) task.remaining_ = 0.0;
  task.last_update_ = now;
}

void Host::replan() {
  const SimTime now = simulator_.now();
  const double rate = per_task_rate();
  // Snapshot: completions triggered below may mutate tasks_.
  std::vector<std::shared_ptr<ComputeTask>> snapshot = tasks_;
  for (auto& task : snapshot) {
    if (!task->active()) continue;
    accrue(*task, now);
    task->rate_ = rate;
    task->completion_event_.cancel();
    schedule_completion(task);
  }
}

void Host::schedule_completion(const std::shared_ptr<ComputeTask>& task) {
  if (task->rate_ <= 0.0) return;  // stalled; re-planned on next load change
  const SimDuration eta = task->remaining_ / task->rate_;
  std::weak_ptr<ComputeTask> weak = task;
  task->completion_event_ = simulator_.after(eta, [this, weak] {
    if (auto t = weak.lock(); t && t->active()) finish(t);
  });
}

void Host::finish(const std::shared_ptr<ComputeTask>& task) {
  accrue(*task, simulator_.now());
  task->active_ = false;
  task->host_ = nullptr;
  remove_task(task.get());
  replan();  // remaining tasks get a bigger share
  if (task->done_) task->done_();
}

void Host::remove_task(const ComputeTask* task) {
  std::erase_if(tasks_, [task](const std::shared_ptr<ComputeTask>& t) {
    return t.get() == task;
  });
}

}  // namespace simsweep::platform
