// Simulated workstation.
//
// A Host has a fixed peak speed and a time-varying number of external
// competing compute-bound processes.  The CPU is shared fairly between the
// competitors and every application task running on the host, so each
// application task progresses at
//
//     peak_speed / (external_load + running_app_tasks)        [flop/s]
//
// Application work is executed through ComputeTask objects: the host
// schedules a completion event from the remaining work and the current rate,
// and re-plans all running tasks whenever the load or the task count changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simcore/sim_time.hpp"
#include "simcore/simulator.hpp"
#include "simcore/trace_recorder.hpp"

namespace simsweep::platform {

using sim::SimDuration;
using sim::SimTime;

class Host;

/// A unit of CPU work executing on a host.  Created via Host::start_compute;
/// destroyed (or cancelled) when complete.
class ComputeTask {
 public:
  using Completion = std::function<void()>;

  /// Work still to do, in flops, as of the last re-plan.
  [[nodiscard]] double remaining_work() const noexcept { return remaining_; }

  /// True until the completion callback has fired or cancel() was called.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Abandons the task; the completion callback will not fire.
  void cancel();

 private:
  friend class Host;
  ComputeTask(Host& host, double work, Completion done)
      : host_(&host), remaining_(work), done_(std::move(done)) {}

  Host* host_;
  double remaining_;
  Completion done_;
  SimTime last_update_ = 0.0;
  double rate_ = 0.0;  // flop/s granted at last re-plan
  sim::EventHandle completion_event_;
  bool active_ = true;
};

/// Identifier of a host within its cluster.
using HostId = std::uint32_t;

class Host {
 public:
  Host(sim::Simulator& simulator, HostId id, double peak_speed_flops,
       std::string name);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Peak speed in flop/s with no competition.
  [[nodiscard]] double peak_speed() const noexcept { return peak_speed_; }

  /// Number of external competing compute-bound processes right now.
  [[nodiscard]] int external_load() const noexcept { return external_load_; }

  /// Fraction of peak speed an application task would receive if it were the
  /// only app task on the host: 1 / (1 + external_load), or 0 while the
  /// host is offline (reclaimed by its owner).
  [[nodiscard]] double availability() const noexcept {
    if (!online_) return 0.0;
    return 1.0 / (1.0 + static_cast<double>(external_load_));
  }

  /// Effective speed (flop/s) a single app task would get right now.
  [[nodiscard]] double effective_speed() const noexcept {
    return peak_speed_ * availability();
  }

  /// Sets the external competing-process count; re-plans running tasks.
  /// Called by load models.
  void set_external_load(int competitors);

  /// Marks the host reclaimed by its owner (offline) or available again.
  /// While offline the host contributes no cycles: availability() is 0 and
  /// running tasks stall until the host returns.  Orthogonal to the
  /// competing-process count, which is preserved across the outage.
  /// Ignored once the host has crashed — a dead machine does not come back.
  void set_online(bool online);

  [[nodiscard]] bool online() const noexcept { return online_; }

  /// Permanent failure (fault injection): the host goes offline forever and
  /// any process state it held is lost.  Unlike graceful reclamation
  /// (set_online(false)), a crashed host never returns; subsequent
  /// set_online(true) calls from load models are no-ops.
  void set_crashed();

  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// Starts `work` flops of application work; `done` fires at completion.
  /// The returned task stays valid until completion or cancellation.
  std::shared_ptr<ComputeTask> start_compute(double work,
                                             ComputeTask::Completion done);

  /// Number of application tasks currently running here.
  [[nodiscard]] std::size_t running_tasks() const noexcept {
    return tasks_.size();
  }

  /// Optional availability trace: when a recorder is attached the host logs
  /// availability() on every load change under series "avail.<name>".
  void attach_trace(sim::TraceRecorder* recorder);

  /// Recorded load history since construction: sample values are the
  /// competing-process count while online and kOfflineMarker (-1) while the
  /// host is reclaimed.  Used by performance-history estimators.
  [[nodiscard]] const std::vector<sim::Sample>& load_history() const noexcept {
    return load_history_;
  }

  /// Sentinel value in load_history() marking an offline interval.
  static constexpr double kOfflineMarker = -1.0;

  /// Availability implied by one load_history() sample value.
  [[nodiscard]] static double availability_of_sample(double value) noexcept {
    return value < 0.0 ? 0.0 : 1.0 / (1.0 + value);
  }

  /// Mean availability over [t0, t1] from the recorded history.
  [[nodiscard]] double mean_availability(SimTime t0, SimTime t1) const;

 private:
  friend class ComputeTask;

  /// Progress accrual + completion-event rebuild for all running tasks.
  void replan();
  void record_state();
  void accrue(ComputeTask& task, SimTime now) const;
  void schedule_completion(const std::shared_ptr<ComputeTask>& task);
  void finish(const std::shared_ptr<ComputeTask>& task);
  void remove_task(const ComputeTask* task);

  /// Rate currently granted to each app task.
  [[nodiscard]] double per_task_rate() const noexcept;

  sim::Simulator& simulator_;
  HostId id_;
  double peak_speed_;
  std::string name_;
  int external_load_ = 0;
  bool online_ = true;
  bool crashed_ = false;
  std::vector<std::shared_ptr<ComputeTask>> tasks_;
  std::vector<sim::Sample> load_history_;
  sim::TraceRecorder* trace_ = nullptr;

  // Cached observability handles: record_state fires on every load change
  // (the hottest instrumented path), and the registry/tracer are fixed for
  // a simulation's lifetime, so the name lookups happen once per host.
  obs::Counter* load_changes_metric_ = nullptr;
  obs::Histogram* availability_metric_ = nullptr;
  obs::TimelineTracer::TrackId timeline_track_ = 0;
  bool timeline_track_cached_ = false;
};

}  // namespace simsweep::platform
