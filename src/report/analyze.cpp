#include "report/analyze.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace simsweep::report {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Shortest round-trip text of a double (the emitters' convention), "nan"
/// for non-finite values.
std::string fmt(double value) {
  if (!std::isfinite(value)) return std::isnan(value) ? "nan" : "inf";
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "?";
  return std::string(buf, end);
}

using Flat = std::vector<std::pair<std::string, double>>;

void flatten_stats(Flat& out, const std::string& prefix,
                   const core::TrialStats& s) {
  out.emplace_back(prefix + "/mean", s.mean);
  out.emplace_back(prefix + "/stddev", s.stddev);
  out.emplace_back(prefix + "/min", s.min);
  out.emplace_back(prefix + "/max", s.max);
  out.emplace_back(prefix + "/trials", double(s.trials));
  out.emplace_back(prefix + "/unfinished", double(s.unfinished));
  out.emplace_back(prefix + "/stalled", double(s.stalled));
  out.emplace_back(prefix + "/resource_exhausted",
                   double(s.resource_exhausted));
  out.emplace_back(prefix + "/mean_adaptations", s.mean_adaptations);
  out.emplace_back(prefix + "/mean_crashes", s.mean_crashes);
  out.emplace_back(prefix + "/mean_transfer_failures",
                   s.mean_transfer_failures);
  out.emplace_back(prefix + "/mean_recoveries", s.mean_recoveries);
  out.emplace_back(prefix + "/mean_checkpoint_failures",
                   s.mean_checkpoint_failures);
  out.emplace_back(prefix + "/mean_time_lost_s", s.mean_time_lost_s);
  out.emplace_back(prefix + "/audit_violations", double(s.audit_violations));
}

/// Keys where only growth is bad.  Everything else out of tolerance is
/// "changed", which gates just the same — the distinction is for humans.
bool lower_is_better(const std::string& key) {
  const auto contains = [&key](std::string_view needle) {
    return key.find(needle) != std::string::npos;
  };
  return contains("makespan") || contains("time_lost") ||
         contains("/mean") || contains("/stddev") || contains("unfinished") ||
         contains("stalled") || contains("crashes") || contains("failures") ||
         contains("audit_violations") || contains("quarantine");
}

}  // namespace

std::string_view to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "regressed";
    case Verdict::kChanged:
      return "changed";
    case Verdict::kMissing:
      return "missing";
    case Verdict::kAdded:
      return "added";
  }
  return "?";
}

bool DiffResult::regression() const noexcept {
  return std::any_of(deltas.begin(), deltas.end(), [](const KeyDelta& d) {
    return d.verdict == Verdict::kRegressed || d.verdict == Verdict::kChanged ||
           d.verdict == Verdict::kMissing;
  });
}

Flat flatten(const Artifact& artifact) {
  Flat out;
  switch (artifact.kind) {
    case ArtifactKind::kMetrics: {
      const MetricsModel& m = artifact.metrics;
      for (const auto& [name, value] : m.counters)
        out.emplace_back("counters/" + name, double(value));
      for (const auto& [name, g] : m.gauges) {
        out.emplace_back("gauges/" + name + "/last", g.last);
        out.emplace_back("gauges/" + name + "/min", g.min);
        out.emplace_back("gauges/" + name + "/max", g.max);
      }
      for (const auto& [name, h] : m.histograms) {
        out.emplace_back("histograms/" + name + "/count", double(h.count));
        out.emplace_back("histograms/" + name + "/sum", h.sum);
        out.emplace_back("histograms/" + name + "/min", h.min);
        out.emplace_back("histograms/" + name + "/max", h.max);
        for (std::size_t i = 0; i < h.counts.size(); ++i)
          out.emplace_back(
              "histograms/" + name + "/bucket" + std::to_string(i),
              double(h.counts[i]));
      }
      break;
    }
    case ArtifactKind::kSeries: {
      const SeriesModel& m = artifact.series;
      for (const SeriesModel::Series& s : m.series) {
        for (std::size_t i = 0; i < s.makespan.size(); ++i) {
          const std::string x =
              i < m.x.size() ? fmt(m.x[i]) : std::to_string(i);
          out.emplace_back("series/" + s.name + "/x=" + x + "/makespan",
                           s.makespan[i]);
          if (i < s.adaptations.size())
            out.emplace_back("series/" + s.name + "/x=" + x + "/adaptations",
                             s.adaptations[i]);
        }
      }
      break;
    }
    case ArtifactKind::kJournal: {
      const JournalModel& m = artifact.journal;
      out.emplace_back("journal/cells_total", double(m.cells_total));
      out.emplace_back("journal/trials", double(m.trials));
      out.emplace_back("journal/points", double(m.points));
      for (const JournalModel::Cell& cell : m.cells)
        flatten_stats(out, "cells/" + std::to_string(cell.index), cell.stats);
      break;
    }
    case ArtifactKind::kQuarantine: {
      const QuarantineModel& m = artifact.quarantine;
      out.emplace_back("quarantine/count", double(m.records.size()));
      for (const QuarantineModel::Record& r : m.records)
        out.emplace_back("quarantine/cell" + std::to_string(r.index),
                         double(r.attempts));
      break;
    }
    case ArtifactKind::kProfile:
      // Wall-clock durations are excluded by design; only structure stays.
      out.emplace_back("profile/tasks", double(artifact.profile.tasks));
      out.emplace_back("profile/workers",
                       double(artifact.profile.workers.size()));
      break;
    case ArtifactKind::kStatus: {
      const StatusModel& m = artifact.status;
      out.emplace_back("status/cells_total", double(m.cells_total));
      out.emplace_back("status/done", double(m.cells_done));
      out.emplace_back("status/quarantined", double(m.quarantined));
      for (const StatusModel::Group& g : m.groups) {
        out.emplace_back("status/group/" + g.name + "/done", double(g.done));
        out.emplace_back("status/group/" + g.name + "/total",
                         double(g.total));
      }
      break;
    }
    case ArtifactKind::kTimeline:
      out.emplace_back("timeline/events", double(artifact.timeline.events));
      out.emplace_back("timeline/processes",
                       double(artifact.timeline.processes));
      break;
  }
  return out;
}

DiffResult diff_artifacts(const Artifact& a, const Artifact& b,
                          const DiffOptions& options) {
  if (a.kind != b.kind)
    throw std::invalid_argument(
        "report diff: artifact kinds differ (" + std::string(to_string(a.kind)) +
        " vs " + std::string(to_string(b.kind)) + ")");
  const Flat flat_a = flatten(a);
  const Flat flat_b = flatten(b);
  std::map<std::string, double> map_b(flat_b.begin(), flat_b.end());
  std::map<std::string, double> map_a(flat_a.begin(), flat_a.end());

  DiffResult result;
  const auto within = [&options](double va, double vb) {
    const double delta = std::fabs(vb - va);
    return delta <= options.abs_tol ||
           delta <= options.rel_tol * std::max(std::fabs(va), std::fabs(vb));
  };
  for (const auto& [key, va] : flat_a) {
    const auto it = map_b.find(key);
    if (it == map_b.end()) {
      result.deltas.push_back({key, va, kNaN, Verdict::kMissing});
      continue;
    }
    const double vb = it->second;
    ++result.compared;
    const bool nan_a = std::isnan(va);
    const bool nan_b = std::isnan(vb);
    if (nan_a && nan_b) {
      ++result.within_tol;  // a quarantined cell that stayed quarantined
      continue;
    }
    if (nan_a != nan_b) {
      result.deltas.push_back({key, va, vb, Verdict::kRegressed});
      continue;
    }
    if (within(va, vb)) {
      ++result.within_tol;
      continue;
    }
    Verdict verdict = Verdict::kChanged;
    if (lower_is_better(key))
      verdict = vb > va ? Verdict::kRegressed : Verdict::kImproved;
    result.deltas.push_back({key, va, vb, verdict});
  }
  for (const auto& [key, vb] : flat_b)
    if (map_a.find(key) == map_a.end())
      result.deltas.push_back({key, kNaN, vb, Verdict::kAdded});
  return result;
}

void print_diff(std::ostream& os, const Artifact& a, const Artifact& b,
                const DiffResult& result) {
  os << "diff " << a.path << " vs " << b.path << " ("
     << to_string(a.kind) << ")\n";
  if (a.meta.present && b.meta.present &&
      a.meta.config_digest != b.meta.config_digest)
    os << "note: config digests differ (" << a.meta.config_digest << " vs "
       << b.meta.config_digest << ") — comparing different experiments\n";
  if (a.meta.partial || b.meta.partial)
    os << "note: " << (a.meta.partial ? "A" : "B")
       << " is a partial artifact — an interrupted run flushed what it had\n";
  std::size_t gating = 0;
  for (const KeyDelta& d : result.deltas) {
    os << to_string(d.verdict) << "  " << d.key << "  " << fmt(d.a) << " -> "
       << fmt(d.b);
    if (!std::isnan(d.a) && !std::isnan(d.b))
      os << "  (delta " << fmt(d.b - d.a) << ")";
    os << '\n';
    if (d.verdict == Verdict::kRegressed || d.verdict == Verdict::kChanged ||
        d.verdict == Verdict::kMissing)
      ++gating;
  }
  os << "compared " << result.compared << " key(s): " << result.within_tol
     << " within tolerance, " << result.deltas.size() << " delta(s), "
     << gating << " gating\n";
  os << (result.regression() ? "verdict: REGRESSION\n" : "verdict: ok\n");
}

namespace {

void write_meta_json(std::ostream& os, const Meta& meta) {
  if (!meta.present) {
    os << "null";
    return;
  }
  obs::Provenance prov;
  prov.version = meta.version;
  prov.build_type = meta.build_type;
  prov.seed = meta.seed;
  prov.config_digest = meta.config_digest;
  prov.partial = meta.partial;
  prov.write_json(os);
}

}  // namespace

void print_summary(std::ostream& os, const Artifact& artifact) {
  os << artifact.path << ": " << to_string(artifact.kind);
  if (artifact.meta.present) {
    os << " (seed " << artifact.meta.seed << ", config "
       << artifact.meta.config_digest
       << (artifact.meta.partial ? ", PARTIAL" : "") << ")";
  }
  os << '\n';
  switch (artifact.kind) {
    case ArtifactKind::kMetrics: {
      const MetricsModel& m = artifact.metrics;
      os << "  " << m.counters.size() << " counter(s), " << m.gauges.size()
         << " gauge(s), " << m.histograms.size() << " histogram(s)\n";
      for (const auto& [name, value] : m.counters)
        os << "  counter " << name << " = " << value << '\n';
      break;
    }
    case ArtifactKind::kTimeline:
      os << "  " << artifact.timeline.events << " event(s) across "
         << artifact.timeline.processes << " process(es), span "
         << fmt(artifact.timeline.span_us) << " us\n";
      break;
    case ArtifactKind::kProfile: {
      const ProfileModel& m = artifact.profile;
      os << "  " << m.tasks << " task(s) in " << fmt(m.wall_s)
         << " s wall; task mean " << fmt(m.mean_task_s) << " s in ["
         << fmt(m.min_task_s) << ", " << fmt(m.max_task_s) << "]\n";
      for (const ProfileModel::Worker& w : m.workers)
        os << "  worker " << w.worker << ": " << w.tasks << " task(s), busy "
           << fmt(w.busy_s) << " s (" << fmt(w.utilization * 100.0) << "%)\n";
      break;
    }
    case ArtifactKind::kJournal: {
      const JournalModel& m = artifact.journal;
      os << "  scenario " << m.scenario << " v" << m.version << ": "
         << m.cells.size() << "/" << m.cells_total << " cell(s) recorded, "
         << m.trials << " trial(s)/cell, " << m.points << " point(s)\n";
      break;
    }
    case ArtifactKind::kQuarantine: {
      os << "  " << artifact.quarantine.records.size()
         << " quarantined cell(s)\n";
      for (const QuarantineModel::Record& r : artifact.quarantine.records)
        os << "  cell " << r.index << " (" << r.label << "): " << r.outcome
           << " after " << r.attempts << " attempt(s)\n";
      break;
    }
    case ArtifactKind::kStatus: {
      const StatusModel& m = artifact.status;
      os << "  scenario " << m.scenario << ": " << m.state << ", "
         << m.cells_done << "/" << m.cells_total << " cell(s) ("
         << fmt(m.percent) << "%), " << m.retries << " retr"
         << (m.retries == 1 ? "y" : "ies") << ", " << m.quarantined
         << " quarantined\n";
      os << "  elapsed " << fmt(m.elapsed_s) << " s, eta " << fmt(m.eta_s)
         << " s (ewma cell " << fmt(m.ewma_cell_s) << " s, jobs " << m.jobs
         << ")\n";
      for (const StatusModel::Group& g : m.groups)
        os << "  " << g.name << ": " << g.done << "/" << g.total << '\n';
      break;
    }
    case ArtifactKind::kSeries: {
      const SeriesModel& m = artifact.series;
      os << "  " << m.title << ": " << m.series.size() << " series over "
         << m.x.size() << " point(s) of " << m.x_label << '\n';
      break;
    }
  }
}

void write_summary_json(std::ostream& os, const Artifact& artifact) {
  os << "{\"kind\":";
  obs::write_json_string(os, to_string(artifact.kind));
  os << ",\"path\":";
  obs::write_json_string(os, artifact.path);
  os << ",\"meta\":";
  write_meta_json(os, artifact.meta);
  os << ",\"values\":{";
  bool first = true;
  for (const auto& [key, value] : flatten(artifact)) {
    if (!first) os << ',';
    first = false;
    obs::write_json_string(os, key);
    os << ':';
    obs::write_json_number(os, value);
  }
  os << "}}";
}

std::vector<TopEntry> top_entries(const Artifact& artifact,
                                  std::size_t limit) {
  std::vector<TopEntry> entries;
  switch (artifact.kind) {
    case ArtifactKind::kJournal:
      for (const JournalModel::Cell& cell : artifact.journal.cells)
        entries.push_back(
            {"cell " + std::to_string(cell.index) + " (" + cell.label + ")",
             cell.stats.mean, "s simulated makespan"});
      break;
    case ArtifactKind::kMetrics:
      for (const auto& [name, h] : artifact.metrics.histograms) {
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (h.counts[i] == 0) continue;
          const std::string lo = i == 0 ? "-inf" : fmt(h.bounds[i - 1]);
          const std::string hi =
              i < h.bounds.size() ? fmt(h.bounds[i]) : "+inf";
          entries.push_back({name + " [" + lo + ", " + hi + ")",
                             double(h.counts[i]), "sample(s)"});
        }
      }
      break;
    case ArtifactKind::kProfile:
      for (const ProfileModel::Worker& w : artifact.profile.workers)
        entries.push_back({"worker " + std::to_string(w.worker), w.busy_s,
                           "s busy"});
      break;
    case ArtifactKind::kStatus:
      for (const ProfileModel::Worker& w : artifact.status.workers)
        entries.push_back({"worker " + std::to_string(w.worker), w.busy_s,
                           "s busy"});
      if (entries.empty())
        throw std::invalid_argument(
            "report top: status snapshot has no worker data (run with "
            "--profile or --profile-json to embed it)");
      break;
    default:
      throw std::invalid_argument(
          "report top: nothing to rank in a " +
          std::string(to_string(artifact.kind)) + " artifact");
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TopEntry& a, const TopEntry& b) {
                     // NaN sinks to the bottom.
                     if (std::isnan(a.value)) return false;
                     if (std::isnan(b.value)) return true;
                     return a.value > b.value;
                   });
  if (entries.size() > limit) entries.resize(limit);
  return entries;
}

double staleness_s(const StatusModel& status, double now_unix_s) {
  return now_unix_s - status.heartbeat_unix_s;
}

bool is_stale(const StatusModel& status, double now_unix_s,
              double threshold_s) {
  return status.state == "running" &&
         staleness_s(status, now_unix_s) > threshold_s;
}

}  // namespace simsweep::report
