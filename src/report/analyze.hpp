// Analysis over loaded artifacts: summarize one run, diff two runs with
// tolerances (the CI regression gate), rank the hot spots, detect dead runs.
//
// Diffing flattens each artifact into "<section>/<name>[/<field>]" keys so
// two runs compare structurally, key by key, independent of member order.
// Tolerances are boundary-inclusive (|delta| <= abs_tol, or <= rel_tol *
// max(|a|,|b|)); both-NaN compares equal (a quarantined cell that stayed
// quarantined is not a regression), NaN-vs-number is a regression in either
// direction (a cell that disappeared, or one that came back changed).  For
// lower-is-better keys (makespan, time lost, waits) only growth beyond
// tolerance is a regression; direction-less keys treat any drift as one —
// this repo promises bitwise identity, so unexplained drift must gate.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "report/artifact.hpp"

namespace simsweep::report {

struct DiffOptions {
  double abs_tol = 0.0;  ///< absolute tolerance, boundary inclusive
  double rel_tol = 0.0;  ///< relative tolerance vs max(|a|,|b|), inclusive
};

enum class Verdict : std::uint8_t {
  kOk,        ///< equal within tolerance (or both NaN)
  kImproved,  ///< lower-is-better key decreased beyond tolerance
  kRegressed, ///< worse beyond tolerance, or NaN appeared/disappeared
  kChanged,   ///< direction-less key drifted beyond tolerance (gates)
  kMissing,   ///< key present in A, absent in B (gates)
  kAdded,     ///< key present only in B (informational)
};

[[nodiscard]] std::string_view to_string(Verdict verdict) noexcept;

struct KeyDelta {
  std::string key;
  double a = 0.0, b = 0.0;  ///< NaN when absent or null
  Verdict verdict = Verdict::kOk;
};

struct DiffResult {
  std::size_t compared = 0;    ///< keys present on both sides
  std::size_t within_tol = 0;  ///< of those, equal within tolerance
  /// Every non-kOk delta, key order.
  std::vector<KeyDelta> deltas;

  /// True when any delta gates (kRegressed, kChanged, or kMissing) —
  /// `report diff` exits 3 on this.
  [[nodiscard]] bool regression() const noexcept;
};

/// Flattens an artifact into (key, value) pairs for structural comparison.
/// Wall-clock values (profile/status durations, timeline spans) are
/// deliberately excluded — they differ between any two runs and would make
/// every diff fail; structural counts (tasks, cells, events) stay in.
[[nodiscard]] std::vector<std::pair<std::string, double>> flatten(
    const Artifact& artifact);

/// Structural diff of two artifacts of the same kind.  Throws
/// std::invalid_argument when the kinds differ.
[[nodiscard]] DiffResult diff_artifacts(const Artifact& a, const Artifact& b,
                                        const DiffOptions& options);

/// Writes the human diff report (one line per non-ok delta plus a summary
/// tail).
void print_diff(std::ostream& os, const Artifact& a, const Artifact& b,
                const DiffResult& result);

/// Human summary of one artifact (kind-specific table).
void print_summary(std::ostream& os, const Artifact& artifact);

/// Canonical JSON summary of one artifact (no trailing newline): kind,
/// meta, and the same headline numbers the human table shows.
void write_summary_json(std::ostream& os, const Artifact& artifact);

/// One ranked hot-spot entry from `top`.
struct TopEntry {
  std::string label;
  double value = 0.0;
  std::string unit;
};

/// The `limit` hottest entries of an artifact: journal → slowest cells by
/// mean makespan; metrics → fullest histogram buckets; profile → busiest
/// workers.  Throws std::invalid_argument for kinds with nothing to rank.
[[nodiscard]] std::vector<TopEntry> top_entries(const Artifact& artifact,
                                                std::size_t limit);

/// Seconds since the snapshot's heartbeat at wall-clock time `now_unix_s`.
[[nodiscard]] double staleness_s(const StatusModel& status, double now_unix_s);

/// A run is stale when it claims to be live ("running") but its heartbeat
/// is older than `threshold_s` — the writer was SIGKILLed or is wedged.
[[nodiscard]] bool is_stale(const StatusModel& status, double now_unix_s,
                            double threshold_s);

}  // namespace simsweep::report
