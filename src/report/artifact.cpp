#include "report/artifact.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "resilience/journal.hpp"
#include "resilience/json_read.hpp"

namespace simsweep::report {

namespace {

using resilience::JsonValue;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Null-tolerant double: the emitters write NaN/inf as JSON null.
double as_double_or_nan(const JsonValue& v) {
  return v.is_null() ? kNaN : v.as_double();
}

Meta parse_meta(const JsonValue& doc) {
  Meta meta;
  const JsonValue* m = doc.find("meta");
  if (m == nullptr) return meta;
  meta.present = true;
  meta.version = m->at("version").as_string();
  meta.build_type = m->at("build_type").as_string();
  meta.seed = m->at("seed").as_uint64();
  meta.config_digest = m->at("config_digest").as_string();
  const JsonValue* partial = m->find("partial");
  meta.partial = partial != nullptr && partial->as_bool();
  return meta;
}

core::TrialStats parse_stats(const JsonValue& v) {
  core::TrialStats s;
  s.mean = as_double_or_nan(v.at("mean"));
  s.stddev = as_double_or_nan(v.at("stddev"));
  s.min = as_double_or_nan(v.at("min"));
  s.max = as_double_or_nan(v.at("max"));
  s.trials = v.at("trials").as_size();
  s.unfinished = v.at("unfinished").as_size();
  s.stalled = v.at("stalled").as_size();
  s.resource_exhausted = v.at("resource_exhausted").as_size();
  s.mean_adaptations = as_double_or_nan(v.at("mean_adaptations"));
  s.mean_crashes = as_double_or_nan(v.at("mean_crashes"));
  s.mean_transfer_failures = as_double_or_nan(v.at("mean_transfer_failures"));
  s.mean_recoveries = as_double_or_nan(v.at("mean_recoveries"));
  s.mean_checkpoint_failures =
      as_double_or_nan(v.at("mean_checkpoint_failures"));
  s.mean_time_lost_s = as_double_or_nan(v.at("mean_time_lost_s"));
  s.audit_violations = v.at("audit_violations").as_size();
  return s;
}

MetricsModel parse_metrics(const JsonValue& doc) {
  MetricsModel model;
  for (const auto& [name, value] : doc.at("counters").object)
    model.counters[name] = value.as_uint64();
  for (const auto& [name, value] : doc.at("gauges").object) {
    MetricsModel::Gauge g;
    g.last = as_double_or_nan(value.at("last"));
    g.min = as_double_or_nan(value.at("min"));
    g.max = as_double_or_nan(value.at("max"));
    model.gauges[name] = g;
  }
  for (const auto& [name, value] : doc.at("histograms").object) {
    MetricsModel::Histogram h;
    h.count = value.at("count").as_uint64();
    h.sum = as_double_or_nan(value.at("sum"));
    h.min = as_double_or_nan(value.at("min"));
    h.max = as_double_or_nan(value.at("max"));
    for (const JsonValue& b : value.at("bounds").as_array())
      h.bounds.push_back(b.as_double());
    for (const JsonValue& c : value.at("counts").as_array())
      h.counts.push_back(c.as_uint64());
    model.histograms[name] = std::move(h);
  }
  return model;
}

TimelineModel parse_timeline(const JsonValue& doc) {
  TimelineModel model;
  std::vector<std::uint64_t> pids;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    ++model.events;
    if (const JsonValue* pid = event.find("pid")) {
      const std::uint64_t value = pid->as_uint64();
      if (std::find(pids.begin(), pids.end(), value) == pids.end())
        pids.push_back(value);
    }
    const JsonValue* ts = event.find("ts");
    const JsonValue* dur = event.find("dur");
    if (ts != nullptr && dur != nullptr)
      model.span_us =
          std::max(model.span_us, ts->as_double() + dur->as_double());
  }
  model.processes = pids.size();
  return model;
}

std::vector<ProfileModel::Worker> parse_workers(const JsonValue& workers) {
  std::vector<ProfileModel::Worker> out;
  for (const JsonValue& w : workers.as_array()) {
    ProfileModel::Worker worker;
    if (const JsonValue* id = w.find("worker")) worker.worker = id->as_size();
    worker.tasks = w.at("tasks").as_size();
    worker.busy_s = as_double_or_nan(w.at("busy_s"));
    worker.utilization = as_double_or_nan(w.at("utilization"));
    out.push_back(worker);
  }
  return out;
}

ProfileModel parse_profile(const JsonValue& doc) {
  ProfileModel model;
  model.tasks = doc.at("tasks").as_size();
  model.wall_s = as_double_or_nan(doc.at("wall_s"));
  model.mean_task_s = as_double_or_nan(doc.at("mean_task_s"));
  model.min_task_s = as_double_or_nan(doc.at("min_task_s"));
  model.max_task_s = as_double_or_nan(doc.at("max_task_s"));
  model.mean_queue_wait_s = as_double_or_nan(doc.at("mean_queue_wait_s"));
  model.max_queue_wait_s = as_double_or_nan(doc.at("max_queue_wait_s"));
  model.workers = parse_workers(doc.at("workers"));
  return model;
}

QuarantineModel parse_quarantine(const JsonValue& doc) {
  QuarantineModel model;
  for (const JsonValue& r : doc.at("quarantined").as_array()) {
    QuarantineModel::Record record;
    record.index = r.at("index").as_size();
    record.key = r.at("key").as_string();
    record.seed = r.at("seed").as_uint64();
    record.trials = r.at("trials").as_size();
    record.label = r.at("label").as_string();
    record.outcome = r.at("outcome").as_string();
    record.attempts = r.at("attempts").as_size();
    record.error = r.at("error").as_string();
    model.records.push_back(std::move(record));
  }
  return model;
}

StatusModel parse_status(const JsonValue& doc) {
  StatusModel model;
  model.scenario = doc.at("scenario").as_string();
  model.state = doc.at("state").as_string();
  model.heartbeat_unix_s = as_double_or_nan(doc.at("heartbeat_unix_s"));
  model.elapsed_s = as_double_or_nan(doc.at("elapsed_s"));
  model.heartbeat_s = as_double_or_nan(doc.at("heartbeat_s"));
  model.jobs = doc.at("jobs").as_size();
  model.trials = doc.at("trials").as_size();
  const JsonValue& cells = doc.at("cells");
  model.cells_total = cells.at("total").as_size();
  model.cells_done = cells.at("done").as_size();
  model.cells_reused = cells.at("reused").as_size();
  model.cells_executed = cells.at("executed").as_size();
  model.cells_in_flight = cells.at("in_flight").as_size();
  model.retries = cells.at("retries").as_size();
  model.quarantined = cells.at("quarantined").as_size();
  for (const JsonValue& g : doc.at("groups").as_array()) {
    StatusModel::Group group;
    group.name = g.at("name").as_string();
    group.done = g.at("done").as_size();
    group.total = g.at("total").as_size();
    model.groups.push_back(std::move(group));
  }
  const JsonValue& eta = doc.at("eta");
  model.ewma_cell_s = as_double_or_nan(eta.at("ewma_cell_s"));
  model.eta_s = as_double_or_nan(eta.at("eta_s"));
  model.percent = as_double_or_nan(eta.at("percent"));
  if (const JsonValue* workers = doc.find("workers"))
    model.workers = parse_workers(*workers);
  return model;
}

SeriesModel parse_series(const JsonValue& doc) {
  SeriesModel model;
  model.title = doc.at("title").as_string();
  model.x_label = doc.at("x_label").as_string();
  for (const JsonValue& x : doc.at("x").as_array())
    model.x.push_back(x.as_double());
  for (const JsonValue& s : doc.at("series").as_array()) {
    SeriesModel::Series series;
    series.name = s.at("name").as_string();
    for (const JsonValue& y : s.at("mean_makespan_s").as_array())
      series.makespan.push_back(as_double_or_nan(y));
    for (const JsonValue& a : s.at("mean_adaptations").as_array())
      series.adaptations.push_back(as_double_or_nan(a));
    model.series.push_back(std::move(series));
  }
  return model;
}

JournalModel parse_journal(const std::string& path) {
  const auto records = resilience::read_journal(path);
  if (records.empty())
    throw std::runtime_error("report: journal '" + path +
                             "' has no readable records");
  const JsonValue& header = records.front().value;
  JournalModel model;
  model.version = header.at("version").as_uint64();
  model.scenario = header.at("scenario").as_string();
  model.sweep_digest = header.at("sweep").as_string();
  model.seed = header.at("seed").as_uint64();
  model.trials = header.at("trials").as_size();
  model.points = header.at("points").as_size();
  model.cells_total = header.at("cells").as_size();

  // Last record per index wins — the exact rule the resume path applies.
  std::vector<const JsonValue*> by_index(model.cells_total, nullptr);
  for (std::size_t r = 1; r < records.size(); ++r) {
    const JsonValue& v = records[r].value;
    const JsonValue* kind = v.find("kind");
    if (kind == nullptr || kind->as_string() != "cell") continue;
    const std::size_t index = v.at("index").as_size();
    if (index >= model.cells_total)
      throw std::runtime_error("report: journal '" + path + "' cell index " +
                               std::to_string(index) + " out of range");
    by_index[index] = &v;
  }
  for (std::size_t index = 0; index < model.cells_total; ++index) {
    if (by_index[index] == nullptr) continue;
    const JsonValue& v = *by_index[index];
    JournalModel::Cell cell;
    cell.index = index;
    cell.key = v.at("key").as_string();
    cell.label = v.at("label").as_string();
    cell.outcome = v.at("outcome").as_string();
    cell.stats = parse_stats(v.at("stats"));
    model.cells.push_back(std::move(cell));
  }
  return model;
}

}  // namespace

std::string_view to_string(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::kMetrics:
      return "metrics";
    case ArtifactKind::kTimeline:
      return "timeline";
    case ArtifactKind::kProfile:
      return "profile";
    case ArtifactKind::kJournal:
      return "journal";
    case ArtifactKind::kQuarantine:
      return "quarantine";
    case ArtifactKind::kStatus:
      return "status";
    case ArtifactKind::kSeries:
      return "series";
  }
  return "unknown";
}

Artifact load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("report: cannot open artifact '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Artifact artifact;
  artifact.path = path;

  // A journal is JSONL: sniff its header from the first line so a multi-line
  // file never reaches the single-document parser.
  const std::size_t newline = text.find('\n');
  const std::string first_line =
      newline == std::string::npos ? text : text.substr(0, newline);
  {
    JsonValue header;
    bool parsed = true;
    try {
      header = resilience::parse_json(first_line);
    } catch (const resilience::JsonError&) {
      parsed = false;
    }
    const JsonValue* kind = parsed ? header.find("kind") : nullptr;
    if (kind != nullptr && kind->as_string() == "sweep-journal") {
      artifact.kind = ArtifactKind::kJournal;
      artifact.journal = parse_journal(path);
      return artifact;
    }
  }

  const JsonValue doc = resilience::parse_json(text);
  artifact.meta = parse_meta(doc);
  const JsonValue* kind = doc.find("kind");
  if (kind != nullptr && kind->as_string() == "sweep-status") {
    artifact.kind = ArtifactKind::kStatus;
    artifact.status = parse_status(doc);
  } else if (doc.find("counters") != nullptr &&
             doc.find("histograms") != nullptr) {
    artifact.kind = ArtifactKind::kMetrics;
    artifact.metrics = parse_metrics(doc);
  } else if (doc.find("traceEvents") != nullptr) {
    artifact.kind = ArtifactKind::kTimeline;
    artifact.timeline = parse_timeline(doc);
    // The sweep timeline nests its meta under "otherData".
    if (const JsonValue* other = doc.find("otherData"))
      artifact.meta = parse_meta(*other);
  } else if (doc.find("quarantined") != nullptr) {
    artifact.kind = ArtifactKind::kQuarantine;
    artifact.quarantine = parse_quarantine(doc);
  } else if (doc.find("tasks") != nullptr && doc.find("workers") != nullptr) {
    artifact.kind = ArtifactKind::kProfile;
    artifact.profile = parse_profile(doc);
  } else if (doc.find("title") != nullptr && doc.find("series") != nullptr) {
    artifact.kind = ArtifactKind::kSeries;
    artifact.series = parse_series(doc);
  } else {
    throw std::runtime_error("report: '" + path +
                             "' is not a recognized simsweep artifact");
  }
  return artifact;
}

}  // namespace simsweep::report
