// Typed read-back of every JSON artifact the simulator emits.
//
// PR 5/6 gave the repo rich artifacts — metrics snapshots, Chrome
// timelines, trial-engine profiles, sweep journals, quarantine reports —
// and PR 10 adds live status snapshots; until now nothing in-tree could
// read any of them back.  This library inverts the emitters through the
// same minimal JSON reader the resume path trusts
// (resilience::parse_json), so a value loaded here compares bitwise-equal
// to the double the simulator wrote (shortest round-trip out, from_chars
// back in).  `load_artifact` sniffs the kind from the document structure —
// no filename conventions — and returns one typed model per kind.
//
// Consumers: `simsweep report` (summary / diff / top), `simsweep status`,
// and tests that want to assert on artifact contents without regexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace simsweep::report {

enum class ArtifactKind : std::uint8_t {
  kMetrics,     ///< merged metrics snapshot (--metrics)
  kTimeline,    ///< Chrome trace-event timeline (--timeline)
  kProfile,     ///< trial-engine wall-clock profile (--profile-json)
  kJournal,     ///< sweep journal, JSONL (--journal)
  kQuarantine,  ///< quarantine report (--quarantine)
  kStatus,      ///< live status snapshot (--status)
  kSeries,      ///< a SeriesReport printed with --json
};

[[nodiscard]] std::string_view to_string(ArtifactKind kind) noexcept;

/// The provenance "meta" block, when the artifact carries one.
struct Meta {
  bool present = false;
  std::string version;
  std::string build_type;
  std::uint64_t seed = 0;
  std::string config_digest;
  bool partial = false;
};

struct MetricsModel {
  struct Gauge {
    double last = 0.0, min = 0.0, max = 0.0;
  };
  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
    std::vector<double> bounds;           ///< upper bucket bounds
    std::vector<std::uint64_t> counts;    ///< bounds.size() + 1 buckets
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Timelines are too big to model event-by-event; the summary facts suffice.
struct TimelineModel {
  std::size_t events = 0;     ///< traceEvents entries (metadata included)
  std::size_t processes = 0;  ///< distinct pids
  double span_us = 0.0;       ///< max(ts + dur) over duration events
};

struct ProfileModel {
  struct Worker {
    std::size_t worker = 0, tasks = 0;
    double busy_s = 0.0, utilization = 0.0;
  };
  std::size_t tasks = 0;
  double wall_s = 0.0;
  double mean_task_s = 0.0, min_task_s = 0.0, max_task_s = 0.0;
  double mean_queue_wait_s = 0.0, max_queue_wait_s = 0.0;
  std::vector<Worker> workers;
};

struct JournalModel {
  std::string scenario;
  std::uint64_t version = 0;
  std::string sweep_digest;
  std::uint64_t seed = 0;
  std::size_t trials = 0, points = 0, cells_total = 0;

  struct Cell {
    std::size_t index = 0;
    std::string key;
    std::string label;
    std::string outcome;
    core::TrialStats stats;
  };
  /// Completed cells, index order, last record per index (the resume rule).
  std::vector<Cell> cells;
};

struct QuarantineModel {
  struct Record {
    std::size_t index = 0;
    std::string key, label, outcome, error;
    std::uint64_t seed = 0;
    std::size_t trials = 0, attempts = 0;
  };
  std::vector<Record> records;
};

struct StatusModel {
  std::string scenario;
  std::string state;  ///< "running" | "done" | "interrupted"
  double heartbeat_unix_s = 0.0;
  double elapsed_s = 0.0;
  double heartbeat_s = 0.0;
  std::size_t jobs = 0, trials = 0;
  std::size_t cells_total = 0, cells_done = 0, cells_reused = 0;
  std::size_t cells_executed = 0, cells_in_flight = 0;
  std::size_t retries = 0, quarantined = 0;
  struct Group {
    std::string name;
    std::size_t done = 0, total = 0;
  };
  std::vector<Group> groups;
  double ewma_cell_s = 0.0, eta_s = 0.0, percent = 0.0;
  std::vector<ProfileModel::Worker> workers;
};

struct SeriesModel {
  std::string title, x_label;
  std::vector<double> x;
  struct Series {
    std::string name;
    std::vector<double> makespan;     ///< NaN where the JSON held null
    std::vector<double> adaptations;  ///< NaN where the JSON held null
  };
  std::vector<Series> series;
};

/// One loaded artifact.  Only the member matching `kind` is populated.
struct Artifact {
  ArtifactKind kind = ArtifactKind::kMetrics;
  std::string path;
  Meta meta;

  MetricsModel metrics;
  TimelineModel timeline;
  ProfileModel profile;
  JournalModel journal;
  QuarantineModel quarantine;
  StatusModel status;
  SeriesModel series;
};

/// Loads `path`, sniffs the artifact kind from the document structure (a
/// "kind" member, or the emitter's distinctive top-level keys), and parses
/// it into the matching typed model.  Throws std::runtime_error on missing
/// files and unrecognizable documents, resilience::JsonError on malformed
/// JSON.
[[nodiscard]] Artifact load_artifact(const std::string& path);

}  // namespace simsweep::report
