#include "resilience/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace simsweep::resilience {

namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("journal: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

/// Directory part of `path` ("." when there is none), for the post-rename
/// directory fsync that makes the new name itself durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) fail_errno("fsync", path);
}

}  // namespace

JournalWriter::JournalWriter(std::string path) : path_(std::move(path)) {}

void JournalWriter::append(std::string line, bool flush_now) {
  if (line.find('\n') != std::string::npos)
    throw std::invalid_argument("journal: record must be a single line");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(std::move(line));
  }
  if (flush_now) flush();
}

void JournalWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string tmp = path_ + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno("open", tmp);
  std::string payload;
  for (const std::string& line : lines_) {
    payload += line;
    payload += '\n';
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail_errno("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  fsync_fd(fd, tmp);
  if (::close(fd) != 0) fail_errno("close", tmp);

  if (::rename(tmp.c_str(), path_.c_str()) != 0) fail_errno("rename", tmp);

  // fsync the directory so the rename (the publish) is itself durable.
  const std::string dir = parent_dir(path_);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    fsync_fd(dfd, dir);
    ::close(dfd);
  }
}

std::size_t JournalWriter::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

std::vector<JournalLine> read_journal(const std::string& path) {
  std::vector<JournalLine> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalLine record;
    try {
      record.value = parse_json(line);
    } catch (const JsonError&) {
      break;  // torn tail from a non-atomic writer: keep the durable prefix
    }
    record.raw = std::move(line);
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace simsweep::resilience
