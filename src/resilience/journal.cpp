#include "resilience/journal.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/atomic_write.hpp"

namespace simsweep::resilience {

JournalWriter::JournalWriter(std::string path) : path_(std::move(path)) {}

void JournalWriter::append(std::string line, bool flush_now) {
  if (line.find('\n') != std::string::npos)
    throw std::invalid_argument("journal: record must be a single line");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(std::move(line));
  }
  if (flush_now) flush();
}

void JournalWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string payload;
  for (const std::string& line : lines_) {
    payload += line;
    payload += '\n';
  }
  obs::atomic_write_file(path_, payload);
}

std::size_t JournalWriter::record_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

std::vector<JournalLine> read_journal(const std::string& path) {
  std::vector<JournalLine> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalLine record;
    try {
      record.value = parse_json(line);
    } catch (const JsonError&) {
      break;  // torn tail from a non-atomic writer: keep the durable prefix
    }
    record.raw = std::move(line);
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace simsweep::resilience
