// Crash-consistent sweep journal: an append-only JSONL record of completed
// cells.
//
// The journal is the durability primitive behind `sweep --resume`: every
// completed cell appends one self-contained JSON line (cell digest, seed,
// outcome, serialized results), and the file is republished crash-
// consistently on every flush — the full contents are written to
// `<path>.tmp`, fsync'ed, and atomically renamed over `<path>`, so a reader
// only ever sees a complete journal from *some* prefix of the run, never a
// torn write.  SIGKILL at any instant loses at most the cells not yet
// flushed, and a resumed sweep replays the survivors byte-for-byte.
//
// The writer holds the lines in memory (a sweep journals one line per cell,
// hundreds at most) and is thread-safe: worker threads finishing cells call
// append() concurrently.  Record *content* is the caller's contract — the
// journal stores opaque single-line strings and hands parsed JSON back.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "resilience/json_read.hpp"

namespace simsweep::resilience {

class JournalWriter {
 public:
  /// Binds the writer to `path`.  Nothing is written until the first
  /// append/flush; an existing file is only replaced then.
  explicit JournalWriter(std::string path);

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record (must be a single line — no '\n') and, by default,
  /// flushes the whole journal durably.  Throws std::runtime_error when the
  /// temp file cannot be written or renamed.
  void append(std::string line, bool flush_now = true);

  /// Durably republishes the journal: write <path>.tmp, fsync, rename over
  /// <path>, fsync the directory.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t record_count() const;

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// One parsed journal line plus its raw text (adopted verbatim on resume).
struct JournalLine {
  std::string raw;
  JsonValue value;
};

/// Reads `path` and parses each line.  A missing file returns an empty
/// vector (resume of a journal that never got written is a fresh start).
/// Reading stops silently at the first malformed line: with the atomic-
/// rename writer that only happens when someone else appended to the file,
/// and the torn tail is exactly the part that was never durable.
[[nodiscard]] std::vector<JournalLine> read_journal(const std::string& path);

}  // namespace simsweep::resilience
