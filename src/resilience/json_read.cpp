#include "resilience/json_read.hpp"

#include <cctype>
#include <charconv>
#include <cstddef>

namespace simsweep::resilience {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw JsonError("json: " + std::string(what) + " at byte " +
                  std::to_string(offset));
}

/// Recursive-descent parser over a fixed string_view.  Depth-limited so a
/// corrupt journal line cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data", pos_);
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep", pos_);
    skip_ws();
    JsonValue value;
    value.offset = pos_;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        value.kind = JsonValue::Kind::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    value.offset = pos_;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      const std::size_t key_off = pos_;
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      value.object.back().second.key_offset = key_off;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    value.offset = pos_;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  /// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("bad hex digit in \\u escape", pos_ - 1);
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate", pos_);
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("unpaired surrogate", pos_);
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate", pos_);
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("unknown escape", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value", start);
    JsonValue value;
    value.offset = start;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::string(text_.substr(start, pos_ - start));
    // Validate eagerly so a malformed token fails at parse time with an
    // offset, not at first access with none.  std::from_chars is laxer than
    // the JSON grammar (it accepts "01" and "1."), so walk the grammar —
    // int frac? exp? with no leading zeros — by hand first.
    const std::string& t = value.number;
    std::size_t p = (t[0] == '-') ? 1 : 0;
    const auto digit = [&](std::size_t i) {
      return i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]));
    };
    bool ok = digit(p);
    if (ok) {
      if (t[p] == '0') ++p;
      else while (digit(p)) ++p;
      if (p < t.size() && t[p] == '.') {
        ++p;
        ok = digit(p);
        while (digit(p)) ++p;
      }
      if (ok && p < t.size() && (t[p] == 'e' || t[p] == 'E')) {
        ++p;
        if (p < t.size() && (t[p] == '+' || t[p] == '-')) ++p;
        ok = digit(p);
        while (digit(p)) ++p;
      }
    }
    double probe = 0.0;
    const auto [end, ec] = std::from_chars(
        value.number.data(), value.number.data() + value.number.size(), probe);
    if (!ok || p != t.size() || ec != std::errc() ||
        end != value.number.data() + value.number.size())
      fail("malformed number '" + value.number + "'", start);
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_kind(std::string_view wanted) {
  throw JsonError("json: value is not " + std::string(wanted));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) wrong_kind("a boolean");
  return boolean;
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) wrong_kind("a number");
  double out = 0.0;
  const auto [end, ec] =
      std::from_chars(number.data(), number.data() + number.size(), out);
  if (ec != std::errc() || end != number.data() + number.size())
    throw JsonError("json: malformed number token '" + number + "'");
  return out;
}

std::uint64_t JsonValue::as_uint64() const {
  if (kind != Kind::kNumber) wrong_kind("a number");
  std::uint64_t out = 0;
  const auto [end, ec] =
      std::from_chars(number.data(), number.data() + number.size(), out);
  if (ec != std::errc() || end != number.data() + number.size())
    throw JsonError("json: number token '" + number +
                    "' is not an unsigned integer");
  return out;
}

std::size_t JsonValue::as_size() const {
  return static_cast<std::size_t>(as_uint64());
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) wrong_kind("a string");
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind != Kind::kArray) wrong_kind("an array");
  return array;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) wrong_kind("an object");
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr)
    throw JsonError("json: missing key '" + std::string(key) + "'");
  return *value;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace simsweep::resilience
