// Minimal JSON reader for the resilience layer.
//
// The sweep journal and quarantine report are JSON the simulator itself
// emitted, so the reader only needs to invert obs/json.hpp faithfully: it
// keeps each number's *raw token* and reparses it on demand with
// std::from_chars, which round-trips both shortest-decimal doubles and full
// 64-bit counters bitwise — the property the resume-identity guarantee
// rests on.  Objects preserve member order (journal records are written in
// a fixed order; preserving it keeps error messages and tests simple).
//
// Deliberately not a general-purpose parser: no streaming, no SAX, inputs
// are one journal line or one report file.  Malformed input throws
// JsonError with a byte offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simsweep::resilience {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  std::size_t offset = 0;      ///< byte offset of the value's first character
  std::size_t key_offset = 0;  ///< byte offset of the member key (object children)
  bool boolean = false;
  std::string number;  ///< raw token, e.g. "-3.25e9" (kNumber only)
  std::string string;  ///< decoded text (kString only)
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }

  /// Typed accessors; throw JsonError naming the expected kind on mismatch
  /// (and, for numbers, on tokens that do not fit the requested type).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member lookup.  `find` returns null when absent; `at` throws
  /// JsonError naming the missing key.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed).  Throws JsonError on anything else.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace simsweep::resilience
