#include "resilience/quarantine.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace simsweep::resilience {

std::string_view to_string(TrialOutcomeKind kind) noexcept {
  switch (kind) {
    case TrialOutcomeKind::kOk:
      return "ok";
    case TrialOutcomeKind::kHung:
      return "hung";
    case TrialOutcomeKind::kCrashed:
      return "crashed";
    case TrialOutcomeKind::kAuditFailed:
      return "audit-failed";
  }
  return "crashed";
}

void write_quarantine_json(std::ostream& os,
                           const std::vector<QuarantineRecord>& records,
                           const obs::Provenance* meta) {
  os << '{';
  if (meta != nullptr) {
    os << "\"meta\":";
    meta->write_json(os);
    os << ',';
  }
  os << "\"quarantined\":[";
  bool first = true;
  for (const QuarantineRecord& record : records) {
    if (!first) os << ',';
    first = false;
    os << "{\"index\":";
    obs::write_json_number(os, static_cast<std::uint64_t>(record.index));
    os << ",\"key\":";
    obs::write_json_string(os, record.key);
    os << ",\"seed\":";
    obs::write_json_number(os, record.seed);
    os << ",\"trials\":";
    obs::write_json_number(os, static_cast<std::uint64_t>(record.trials));
    os << ",\"label\":";
    obs::write_json_string(os, record.label);
    os << ",\"outcome\":";
    obs::write_json_string(os, to_string(record.outcome));
    os << ",\"attempts\":";
    obs::write_json_number(os, static_cast<std::uint64_t>(record.attempts));
    os << ",\"error\":";
    obs::write_json_string(os, record.error);
    os << '}';
  }
  os << "]}\n";
}

}  // namespace simsweep::resilience
