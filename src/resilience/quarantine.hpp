// Trial-outcome taxonomy and the quarantine report.
//
// A resilient sweep never lets one pathological cell abort the grid: after
// the retry budget is exhausted the cell is *quarantined* — recorded with
// its config digest, seed, typed outcome, attempt count, and error text —
// and the sweep continues degraded.  The report is a JSON artifact with the
// same provenance meta block as every other emitter, so CI can schema-check
// it and a human can re-run exactly the quarantined cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace simsweep::obs {
struct Provenance;
}

namespace simsweep::resilience {

/// How a trial (or sweep cell) ended.
enum class TrialOutcomeKind : std::uint8_t {
  kOk,           ///< completed normally
  kHung,         ///< cancelled by the wall-clock watchdog
  kCrashed,      ///< threw (model/strategy/engine fault)
  kAuditFailed,  ///< an invariant auditor rejected the run
};

[[nodiscard]] std::string_view to_string(TrialOutcomeKind kind) noexcept;

/// One quarantined cell: everything needed to reproduce it in isolation.
struct QuarantineRecord {
  std::size_t index = 0;      ///< cell index in sweep order
  std::string key;            ///< per-cell config digest
  std::uint64_t seed = 0;     ///< root seed the cell derives its streams from
  std::size_t trials = 0;     ///< trials per cell
  std::string label;          ///< human label, e.g. "x=0.2 strategy=greedy"
  TrialOutcomeKind outcome = TrialOutcomeKind::kCrashed;
  std::size_t attempts = 0;   ///< total attempts including retries
  std::string error;          ///< what() tail of the final failure
};

/// Writes the quarantine report: {"meta":...,"quarantined":[...]} with one
/// object per record, in cell-index order, trailing newline included.
void write_quarantine_json(std::ostream& os,
                           const std::vector<QuarantineRecord>& records,
                           const obs::Provenance* meta = nullptr);

}  // namespace simsweep::resilience
