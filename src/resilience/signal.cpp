#include "resilience/signal.hpp"

#include <csignal>

namespace simsweep::resilience {

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void on_signal(int /*signum*/) { g_interrupted = 1; }

}  // namespace

void arm_interrupt_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

bool interrupted() noexcept { return g_interrupted != 0; }

void clear_interrupted() noexcept { g_interrupted = 0; }

void simulate_interrupt() noexcept { g_interrupted = 1; }

}  // namespace simsweep::resilience
