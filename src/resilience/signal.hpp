// Cooperative SIGINT/SIGTERM handling for sweeps.
//
// The handler only flips a sig_atomic_t; the sweep loop polls interrupted()
// between cells, flushes the journal, and emits partial artifacts marked
// "partial":true.  A second Ctrl-C therefore still kills the process the
// default way if the graceful path wedges (the handler is one-shot per
// signal number only in effect, not installation — it stays armed, but the
// loop exits on the first observation).
#pragma once

namespace simsweep::resilience {

/// Installs SIGINT and SIGTERM handlers that set the interrupted flag.
/// Idempotent; safe to call once at the top of a command.
void arm_interrupt_handlers();

/// True once SIGINT or SIGTERM has been received since the last clear.
[[nodiscard]] bool interrupted() noexcept;

/// Resets the flag (tests drive the interrupt path in-process).
void clear_interrupted() noexcept;

/// Test hook: sets the flag exactly as the signal handler would.
void simulate_interrupt() noexcept;

}  // namespace simsweep::resilience
