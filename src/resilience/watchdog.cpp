#include "resilience/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simsweep::resilience {

namespace {

/// Monitor tick: a fraction of the deadline, clamped so short deadlines
/// still fire promptly and long ones don't spin the thread.
std::chrono::steady_clock::duration tick_for(double deadline_s) {
  const double tick_s = std::clamp(deadline_s / 20.0, 0.001, 0.25);
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(tick_s));
}

}  // namespace

Watchdog::Watchdog(double deadline_s)
    : deadline_s_(deadline_s), tick_(tick_for(deadline_s)) {
  if (!std::isfinite(deadline_s) || deadline_s <= 0.0)
    throw std::invalid_argument("Watchdog: deadline must be positive");
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

const std::atomic<bool>* Watchdog::trial_begin(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = active_[index];
  entry.start = std::chrono::steady_clock::now();
  entry.flag = std::make_unique<std::atomic<bool>>(false);
  return entry.flag.get();
}

void Watchdog::trial_end(std::size_t index) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(index);
}

bool Watchdog::fired(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fired_.count(index) != 0;
}

void Watchdog::clear_fired(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fired_.erase(index);
}

void Watchdog::rearm(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fired_.erase(index);
  const auto it = active_.find(index);
  if (it == active_.end()) return;
  it->second.start = std::chrono::steady_clock::now();
  it->second.flag->store(false, std::memory_order_relaxed);
}

void Watchdog::monitor_loop() {
  const auto deadline = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(deadline_s_));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, tick_, [this] { return stop_; });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [index, entry] : active_) {
      if (now - entry.start >= deadline &&
          !entry.flag->exchange(true, std::memory_order_relaxed))
        fired_.insert(index);
    }
  }
}

}  // namespace simsweep::resilience
