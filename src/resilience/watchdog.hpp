// Per-trial wall-clock watchdog.
//
// The simulator is deterministic in *virtual* time, but a buggy strategy or
// an injected fault can spin forever in *wall* time.  The watchdog plugs
// into core::TrialRunner as a TrialGuard: every trial gets a fresh cancel
// flag at trial_begin(), a monitor thread scans active trials on a short
// tick, and any trial past the deadline has its flag set — the simulator's
// event loop observes it and throws sim::RunCancelled, unwinding the trial
// cooperatively (no thread killing, destructors run, ASan stays happy).
//
// fired(i) records which indices the watchdog cancelled, so callers can
// classify the resulting exception as "hung" (deadline) rather than
// "crashed" (the trial's own fault).  clear_fired(i) resets an index before
// a retry attempt.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/trial_runner.hpp"

namespace simsweep::resilience {

class Watchdog final : public core::TrialGuard {
 public:
  /// Starts the monitor thread.  `deadline_s` is the wall-clock budget per
  /// trial; must be positive and finite.
  explicit Watchdog(double deadline_s);
  ~Watchdog() override;

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // core::TrialGuard
  const std::atomic<bool>* trial_begin(std::size_t index) override;
  void trial_end(std::size_t index) noexcept override;

  /// True when the watchdog cancelled trial `index` (its deadline passed
  /// while it was active).  Sticky until clear_fired() or rearm().
  [[nodiscard]] bool fired(std::size_t index) const;
  void clear_fired(std::size_t index);

  /// Restarts `index`'s deadline and resets its still-published cancel flag
  /// — called between retry attempts while the guard bracket stays open.
  /// No-op when the index is not active.
  void rearm(std::size_t index);

  [[nodiscard]] double deadline_s() const noexcept { return deadline_s_; }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point start;
    std::unique_ptr<std::atomic<bool>> flag;
  };

  void monitor_loop();

  double deadline_s_;
  std::chrono::steady_clock::duration tick_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::unordered_map<std::size_t, Entry> active_;
  std::unordered_set<std::size_t> fired_;
  std::thread monitor_;
};

}  // namespace simsweep::resilience
