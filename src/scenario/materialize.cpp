// ScenarioSpec -> runnable objects: ExperimentConfig, load models, policies,
// strategies, and the expanded cell grid the sweep runner executes.
#include "scenario/scenario.hpp"

#include <utility>

#include "load/hyperexp.hpp"
#include "load/onoff.hpp"
#include "load/reclamation.hpp"
#include "strategy/estimator.hpp"

namespace simsweep::scenario {

core::ExperimentConfig base_config(const ScenarioSpec& spec) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = spec.hosts;
  cfg.app = app::AppSpec::with_iteration_minutes(spec.active, spec.iterations,
                                                 spec.iter_minutes);
  cfg.app.state_bytes_per_process = spec.state_mb * app::kMiB;
  cfg.app.comm_bytes_per_process = spec.comm_kb * app::kKiB;
  cfg.spare_count = spec.spares;
  cfg.seed = spec.seed;
  cfg.horizon_s = spec.horizon_hours * 3600.0;
  cfg.initial_schedule = spec.initial_schedule;
  cfg.max_events = spec.max_events;
  cfg.faults.host_mtbf_s = spec.mtbf_hours * 3600.0;
  cfg.faults.swap_fail_prob = spec.swap_fail_prob;
  cfg.faults.checkpoint_fail_prob = spec.checkpoint_fail_prob;
  cfg.faults.max_transfer_retries = spec.max_transfer_retries;
  cfg.faults.retry_backoff_s = spec.retry_backoff_s;
  cfg.faults.retry_backoff_cap_s = spec.retry_backoff_cap_s;
  cfg.faults.blacklist_after = spec.blacklist_after;
  cfg.faults.validate();
  if (spec.active + cfg.spare_count > cfg.cluster.host_count)
    throw std::invalid_argument("config: active + spares exceeds --hosts");
  return cfg;
}

std::shared_ptr<const load::LoadModel> make_load_model(const LoadSpec& spec) {
  switch (spec.kind) {
    case LoadKind::kOnOff: {
      load::OnOffParams params;
      params.p = spec.p;
      params.q = spec.q;
      params.step_s = spec.step_s;
      params.stationary_start = spec.stationary_start;
      return std::make_shared<load::OnOffModel>(params);
    }
    case LoadKind::kHyperExp: {
      load::HyperExpParams params;
      params.mean_lifetime_s = spec.mean_lifetime_s;
      params.long_prob = spec.long_prob;
      params.mean_interarrival_s = spec.mean_interarrival_s;
      return std::make_shared<load::HyperExpModel>(params);
    }
    case LoadKind::kReclaim: {
      load::ReclamationParams params;
      params.mean_available_s = spec.mean_available_s;
      params.mean_reclaimed_s = spec.mean_reclaimed_s;
      params.start_available = spec.start_available;
      std::shared_ptr<const load::LoadModel> base;
      if (spec.base != nullptr) base = make_load_model(*spec.base);
      return std::make_shared<load::ReclamationModel>(std::move(base), params);
    }
  }
  throw ScenarioError("scenario: unhandled load kind");
}

swap::PolicyParams make_policy(const PolicySpec& spec) {
  swap::PolicyParams policy;
  if (spec.base == "greedy") {
    policy = swap::greedy_policy();
  } else if (spec.base == "safe") {
    policy = swap::safe_policy();
  } else if (spec.base == "friendly") {
    policy = swap::friendly_policy();
  } else {
    throw ScenarioError("unknown policy base '" + spec.base +
                        "' (greedy|safe|friendly)");
  }
  if (spec.payback_threshold_iters.has_value())
    policy.payback_threshold_iters = *spec.payback_threshold_iters;
  if (spec.min_process_improvement.has_value())
    policy.min_process_improvement = *spec.min_process_improvement;
  if (spec.min_app_improvement.has_value())
    policy.min_app_improvement = *spec.min_app_improvement;
  if (spec.history_window_s.has_value())
    policy.history_window_s = *spec.history_window_s;
  if (spec.max_swaps_per_decision.has_value())
    policy.max_swaps_per_decision =
        static_cast<std::size_t>(*spec.max_swaps_per_decision);
  return policy;
}

namespace {

std::shared_ptr<strategy::SpeedEstimator> make_estimator(
    const EstimatorSpec& spec) {
  switch (spec.kind) {
    case EstimatorKind::kPolicy:
      return nullptr;  // policy window semantics
    case EstimatorKind::kWindow:
      return strategy::make_window_estimator(spec.window_s);
    case EstimatorKind::kEwma: {
      const double tau = spec.tau_s;
      return strategy::make_forecast_estimator(
          [tau] { return forecast::make_ewma(tau); },
          "ewma_" + std::to_string(static_cast<int>(tau)) + "s");
    }
    case EstimatorKind::kMedian: {
      const std::size_t k = spec.k;
      return strategy::make_forecast_estimator(
          [k] { return forecast::make_sliding_median(k); },
          "median_" + std::to_string(k));
    }
    case EstimatorKind::kNws:
      return strategy::make_forecast_estimator(
          [] { return forecast::make_default_ensemble(); }, "nws_adaptive");
  }
  throw ScenarioError("scenario: unhandled estimator kind");
}

}  // namespace

std::unique_ptr<strategy::Strategy> make_strategy(const StrategySpec& spec) {
  switch (spec.kind) {
    case StrategyKind::kNone:
      return std::make_unique<strategy::NoneStrategy>();
    case StrategyKind::kDlb:
      return std::make_unique<strategy::DlbStrategy>();
    case StrategyKind::kDlbSwap:
      return std::make_unique<strategy::DlbSwapStrategy>(
          make_policy(spec.policy));
    case StrategyKind::kCr:
      return std::make_unique<strategy::CrStrategy>(make_policy(spec.policy));
    case StrategyKind::kSwap: {
      strategy::SwapOptions options;
      options.estimator = make_estimator(spec.estimator);
      options.eviction_guard = spec.guard;
      options.stall_factor = spec.stall_factor;
      return std::make_unique<strategy::SwapStrategy>(make_policy(spec.policy),
                                                      options);
    }
  }
  throw ScenarioError("scenario: unhandled strategy kind");
}

MaterializedGrid materialize(const ScenarioSpec& spec,
                             std::size_t trials_override) {
  if (spec.kind != Kind::kGrid)
    throw ScenarioError("scenario '" + spec.name +
                        "' is not a grid scenario and cannot be swept");
  if (spec.variants.empty())
    throw ScenarioError("scenario '" + spec.name + "' has no variants");
  // The empty-grid / zero-trials messages predate the scenario layer; the
  // resilience tests (and any caller catching them) pin the exact text.
  if (spec.axis.x.empty())
    throw std::invalid_argument("sweep: empty --points grid");
  const std::size_t trials =
      trials_override != 0 ? trials_override : spec.trials;
  if (trials == 0) throw std::invalid_argument("sweep: zero --trials");

  MaterializedGrid grid;
  grid.points = spec.axis.x;
  grid.x_label = spec.axis.label;
  grid.variant_count = spec.variants.size();
  grid.digest = spec.digest();
  grid.seed = spec.seed;
  grid.trials = trials;
  grid.forbid_stalls = spec.forbid_stalls;

  for (const double x : spec.axis.x) {
    for (const VariantSpec& variant : spec.variants) {
      Cell cell;
      cell.config = base_config(spec);
      if (variant.state_mb.has_value())
        cell.config.app.state_bytes_per_process = *variant.state_mb * app::kMiB;
      if (variant.initial_schedule.has_value())
        cell.config.initial_schedule = *variant.initial_schedule;

      LoadSpec load = variant.load.has_value() ? *variant.load : spec.load;
      StrategySpec strat = variant.strategy;

      switch (spec.axis.binding) {
        case AxisBinding::kNone:
          break;
        case AxisBinding::kLoadDynamism:
          if (load.kind != LoadKind::kOnOff)
            throw ScenarioError("scenario '" + spec.name +
                                "': axis binds load.dynamism but the load "
                                "model is not onoff");
          load.p = x;
          load.q = x;
          break;
        case AxisBinding::kSparesPercentOfActive:
          cell.config.spare_count = static_cast<std::size_t>(
              static_cast<double>(spec.active) * x / 100.0 + 0.5);
          if (spec.active + cell.config.spare_count > spec.hosts)
            throw ScenarioError("scenario '" + spec.name +
                                "': axis point " + load::describe_number(x) +
                                "% over-allocates beyond the host count");
          break;
        case AxisBinding::kHyperexpLifetime:
          if (load.kind != LoadKind::kHyperExp)
            throw ScenarioError("scenario '" + spec.name +
                                "': axis binds load.mean_lifetime_s but the "
                                "load model is not hyperexp");
          load.mean_lifetime_s = x;
          if (spec.axis.interarrival_factor > 0.0)
            load.mean_interarrival_s = spec.axis.interarrival_factor * x;
          break;
        case AxisBinding::kFaultMtbfHours:
          cell.config.faults.host_mtbf_s = x * 3600.0;
          if (x > 0.0) {
            cell.config.faults.swap_fail_prob =
                spec.axis.on_positive_swap_fail_prob;
            cell.config.faults.checkpoint_fail_prob =
                spec.axis.on_positive_checkpoint_fail_prob;
          }
          cell.config.faults.validate();
          break;
        case AxisBinding::kReclaimedMinutes:
          if (load.kind != LoadKind::kReclaim)
            throw ScenarioError("scenario '" + spec.name +
                                "': axis binds load.mean_reclaimed_min but "
                                "the load model is not reclaim");
          load.mean_reclaimed_s = x * 60.0;
          break;
        case AxisBinding::kPolicyPayback:
          strat.policy.payback_threshold_iters = x;
          break;
        case AxisBinding::kPolicyHistoryWindow:
          strat.policy.history_window_s = x;
          break;
        case AxisBinding::kPolicyMinProcess:
          strat.policy.min_process_improvement = x;
          break;
        case AxisBinding::kPolicyMaxSwaps:
          strat.policy.max_swaps_per_decision = x;
          break;
      }

      cell.model = make_load_model(load);
      cell.strategy = make_strategy(strat);
      cell.label = "x=" + load::describe_number(x) +
                   " strategy=" + variant.name;
      cell.key_extra = "cell;scenario=" + spec.name +
                       ";point=" + load::describe_number(x) +
                       ";variant=" + variant.name +
                       ";model=" + cell.model->describe() +
                       ";strategy=" + cell.strategy->name() +
                       ";trials=" + std::to_string(trials);
      grid.cells.push_back(std::move(cell));
    }
  }

  grid.reports = spec.reports;
  if (grid.reports.empty()) {
    ReportSpec report;
    report.title = spec.title;
    report.expectation = spec.expectation;
    for (std::size_t i = 0; i < spec.variants.size(); ++i)
      report.series.push_back(
          {spec.variants[i].name, i, Metric::kMakespan});
    grid.reports.push_back(std::move(report));
  }
  return grid;
}

ScenarioSpec sweep_scenario() {
  ScenarioSpec spec;
  spec.name = "sweep";
  spec.title = "sweep: techniques vs ON/OFF dynamism";
  spec.axis.label = "load_probability";
  spec.axis.binding = AxisBinding::kLoadDynamism;
  spec.axis.x = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0};
  VariantSpec none;
  none.name = "NONE";
  VariantSpec swap;
  swap.name = "SWAP(greedy)";
  swap.strategy.kind = StrategyKind::kSwap;
  VariantSpec dlb;
  dlb.name = "DLB";
  dlb.strategy.kind = StrategyKind::kDlb;
  VariantSpec cr;
  cr.name = "CR";
  cr.strategy.kind = StrategyKind::kCr;
  spec.variants = {none, swap, dlb, cr};
  return spec;
}

}  // namespace simsweep::scenario
