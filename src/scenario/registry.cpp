// The shipped-scenario registry: scenarios/*.json by stem name.
#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifndef SIMSWEEP_SCENARIO_DEFAULT_DIR
#define SIMSWEEP_SCENARIO_DEFAULT_DIR "scenarios"
#endif

namespace simsweep::scenario {

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError("scenario: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(),
                        std::filesystem::path(path).filename().string());
}

std::string default_scenario_dir() {
  const char* env = std::getenv("SIMSWEEP_SCENARIO_DIR");
  if (env != nullptr && *env != '\0') return env;
  return SIMSWEEP_SCENARIO_DEFAULT_DIR;
}

std::vector<std::string> list_scenarios(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() == ".json") names.push_back(path.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

ScenarioSpec find_scenario(const std::string& name_or_path,
                           const std::string& dir) {
  const bool is_path =
      name_or_path.find('/') != std::string::npos ||
      (name_or_path.size() > 5 &&
       name_or_path.compare(name_or_path.size() - 5, 5, ".json") == 0);
  if (is_path) return load_scenario_file(name_or_path);

  const std::string path = dir + "/" + name_or_path + ".json";
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec))
    throw UnknownScenarioError("unknown scenario '" + name_or_path + "'",
                               name_or_path, list_scenarios(dir));
  ScenarioSpec spec = load_scenario_file(path);
  if (spec.name != name_or_path)
    throw ScenarioError("scenario file '" + path + "' declares name '" +
                        spec.name + "' but is registered as '" + name_or_path +
                        "'");
  return spec;
}

}  // namespace simsweep::scenario
