// ScenarioSpec JSON parsing and canonical serialization.
//
// Parsing is strict: every key must be known to the section that owns it
// and every value must have the expected kind, with errors reported as
// "<source>:<line>:<col>: ...".  Numbers travel as raw tokens
// (resilience::parse_json) and are re-read with std::from_chars, and the
// serializer writes them back shortest-round-trip (obs::write_json_number),
// so parse(serialize(s)) == s bitwise for every numeric field.
#include "scenario/scenario.hpp"

#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "resilience/json_read.hpp"

namespace simsweep::scenario {

namespace {

using resilience::JsonValue;

// ---------------------------------------------------------------------------
// Parse context: converts byte offsets into file:line:col error prefixes.

struct Ctx {
  std::string_view text;
  std::string source;

  [[nodiscard]] std::string where(std::size_t offset) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return source + ":" + std::to_string(line) + ":" + std::to_string(col);
  }

  [[noreturn]] void fail(std::size_t offset, const std::string& what) const {
    throw ScenarioError(where(offset) + ": " + what);
  }
};

/// One JSON object with strict key accounting: every member must be
/// consumed by find()/require() before finish(), which reports the first
/// untouched key as unknown — so each scenario kind only admits the keys it
/// actually reads.
class Section {
 public:
  Section(const Ctx& ctx, const JsonValue& value, std::string what)
      : ctx_(ctx), value_(value), what_(std::move(what)) {
    if (value.kind != JsonValue::Kind::kObject)
      ctx.fail(value.offset, what_ + " must be an object");
  }

  [[nodiscard]] const Ctx& ctx() const noexcept { return ctx_; }
  [[nodiscard]] const JsonValue& value() const noexcept { return value_; }

  const JsonValue* find(std::string_view key) {
    for (const auto& [k, v] : value_.object) {
      if (k == key) {
        used_.insert(std::string(key));
        return &v;
      }
    }
    return nullptr;
  }

  const JsonValue& require(std::string_view key) {
    const JsonValue* v = find(key);
    if (v == nullptr)
      ctx_.fail(value_.offset,
                what_ + " is missing required key '" + std::string(key) + "'");
    return *v;
  }

  double to_double(const JsonValue& v, std::string_view key) {
    if (v.kind != JsonValue::Kind::kNumber)
      ctx_.fail(v.offset, "'" + std::string(key) + "' must be a number");
    return v.as_double();
  }

  std::uint64_t to_uint(const JsonValue& v, std::string_view key) {
    if (v.kind != JsonValue::Kind::kNumber)
      ctx_.fail(v.offset, "'" + std::string(key) + "' must be a number");
    try {
      return v.as_uint64();
    } catch (const resilience::JsonError&) {
      ctx_.fail(v.offset, "'" + std::string(key) +
                              "' must be a non-negative integer, got '" +
                              v.number + "'");
    }
  }

  double get_double(std::string_view key, double fallback) {
    const JsonValue* v = find(key);
    return v == nullptr ? fallback : to_double(*v, key);
  }

  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) {
    const JsonValue* v = find(key);
    return v == nullptr ? fallback : to_uint(*v, key);
  }

  std::size_t get_size(std::string_view key, std::size_t fallback) {
    return static_cast<std::size_t>(
        get_uint(key, static_cast<std::uint64_t>(fallback)));
  }

  bool get_bool(std::string_view key, bool fallback) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    if (v->kind != JsonValue::Kind::kBool)
      ctx_.fail(v->offset, "'" + std::string(key) + "' must be a boolean");
    return v->boolean;
  }

  std::string get_string(std::string_view key, std::string fallback) {
    const JsonValue* v = find(key);
    if (v == nullptr) return fallback;
    if (v->kind != JsonValue::Kind::kString)
      ctx_.fail(v->offset, "'" + std::string(key) + "' must be a string");
    return v->string;
  }

  std::string require_string(std::string_view key) {
    const JsonValue& v = require(key);
    if (v.kind != JsonValue::Kind::kString)
      ctx_.fail(v.offset, "'" + std::string(key) + "' must be a string");
    return v.string;
  }

  /// Sets `out` only when the key is present (policy-override semantics).
  void get_optional(std::string_view key, std::optional<double>& out) {
    const JsonValue* v = find(key);
    if (v != nullptr) out = to_double(*v, key);
  }

  std::vector<double> get_double_list(std::string_view key) {
    const JsonValue* v = find(key);
    std::vector<double> out;
    if (v == nullptr) return out;
    if (v->kind != JsonValue::Kind::kArray)
      ctx_.fail(v->offset, "'" + std::string(key) + "' must be an array");
    for (const JsonValue& e : v->array) out.push_back(to_double(e, key));
    return out;
  }

  void finish() {
    for (const auto& [k, v] : value_.object)
      if (used_.find(k) == used_.end())
        ctx_.fail(v.key_offset, what_ + ": unknown key '" + k + "'");
  }

 private:
  const Ctx& ctx_;
  const JsonValue& value_;
  std::string what_;
  std::set<std::string, std::less<>> used_;
};

// ---------------------------------------------------------------------------
// Enum <-> string tables.

constexpr std::pair<Kind, const char*> kKindNames[] = {
    {Kind::kGrid, "grid"},
    {Kind::kPayback, "payback"},
    {Kind::kLoadTrace, "load_trace"},
    {Kind::kDecisionHistogram, "decision_histogram"},
};

constexpr std::pair<AxisBinding, const char*> kBindingNames[] = {
    {AxisBinding::kNone, "none"},
    {AxisBinding::kLoadDynamism, "load.dynamism"},
    {AxisBinding::kSparesPercentOfActive, "spares.percent_of_active"},
    {AxisBinding::kHyperexpLifetime, "load.mean_lifetime_s"},
    {AxisBinding::kFaultMtbfHours, "faults.mtbf_hours"},
    {AxisBinding::kReclaimedMinutes, "load.mean_reclaimed_min"},
    {AxisBinding::kPolicyPayback, "policy.payback_threshold_iters"},
    {AxisBinding::kPolicyHistoryWindow, "policy.history_window_s"},
    {AxisBinding::kPolicyMinProcess, "policy.min_process_improvement"},
    {AxisBinding::kPolicyMaxSwaps, "policy.max_swaps_per_decision"},
};

constexpr std::pair<Metric, const char*> kMetricNames[] = {
    {Metric::kMakespan, "makespan"},
    {Metric::kAdaptations, "adaptations"},
    {Metric::kCompletionRate, "completion_rate"},
};

constexpr std::pair<StrategyKind, const char*> kStrategyNames[] = {
    {StrategyKind::kNone, "none"},     {StrategyKind::kSwap, "swap"},
    {StrategyKind::kDlb, "dlb"},       {StrategyKind::kDlbSwap, "dlbswap"},
    {StrategyKind::kCr, "cr"},
};

constexpr std::pair<EstimatorKind, const char*> kEstimatorNames[] = {
    {EstimatorKind::kPolicy, "policy"}, {EstimatorKind::kWindow, "window"},
    {EstimatorKind::kEwma, "ewma"},     {EstimatorKind::kMedian, "median"},
    {EstimatorKind::kNws, "nws"},
};

constexpr std::pair<strategy::InitialSchedule, const char*> kScheduleNames[] = {
    {strategy::InitialSchedule::kFastestEffective, "effective"},
    {strategy::InitialSchedule::kFastestPeak, "peak"},
    {strategy::InitialSchedule::kLoadBlind, "blind"},
};

constexpr std::pair<LoadKind, const char*> kLoadNames[] = {
    {LoadKind::kOnOff, "onoff"},
    {LoadKind::kHyperExp, "hyperexp"},
    {LoadKind::kReclaim, "reclaim"},
};

template <typename E, std::size_t N>
const char* enum_name(const std::pair<E, const char*> (&table)[N], E value) {
  for (const auto& [e, name] : table)
    if (e == value) return name;
  return "?";
}

template <typename E, std::size_t N>
E parse_enum(const Ctx& ctx, const JsonValue& v,
             const std::pair<E, const char*> (&table)[N],
             const std::string& what, const std::string& token) {
  for (const auto& [e, name] : table)
    if (token == name) return e;
  std::string choices;
  for (const auto& [e, name] : table) {
    if (!choices.empty()) choices += '|';
    choices += name;
  }
  ctx.fail(v.offset, "unknown " + what + " '" + token + "' (" + choices + ")");
}

// ---------------------------------------------------------------------------
// Section parsers.

LoadSpec parse_load(const Ctx& ctx, const JsonValue& value,
                    const std::string& what) {
  Section s(ctx, value, what);
  LoadSpec out;
  const JsonValue& model = s.require("model");
  if (model.kind != JsonValue::Kind::kString)
    ctx.fail(model.offset, "'model' must be a string");
  out.kind = parse_enum(ctx, model, kLoadNames, "load model", model.string);
  switch (out.kind) {
    case LoadKind::kOnOff: {
      const JsonValue* dynamism = s.find("dynamism");
      if (dynamism != nullptr) {
        // Shorthand for the paper's symmetric chain: p = q = dynamism.
        if (s.find("p") != nullptr || s.find("q") != nullptr)
          ctx.fail(dynamism->offset,
                   "'dynamism' excludes explicit 'p'/'q' values");
        out.p = out.q = s.to_double(*dynamism, "dynamism");
      } else {
        out.p = s.get_double("p", out.p);
        out.q = s.get_double("q", out.q);
      }
      out.step_s = s.get_double("step_s", out.step_s);
      out.stationary_start = s.get_bool("stationary_start", out.stationary_start);
      break;
    }
    case LoadKind::kHyperExp:
      out.mean_lifetime_s = s.get_double("mean_lifetime_s", out.mean_lifetime_s);
      out.long_prob = s.get_double("long_prob", out.long_prob);
      out.mean_interarrival_s =
          s.get_double("mean_interarrival_s", out.mean_interarrival_s);
      break;
    case LoadKind::kReclaim: {
      out.mean_available_s = s.get_double("mean_available_s", out.mean_available_s);
      out.mean_reclaimed_s = s.get_double("mean_reclaimed_s", out.mean_reclaimed_s);
      out.start_available = s.get_bool("start_available", out.start_available);
      const JsonValue* base = s.find("base");
      if (base != nullptr && !base->is_null())
        out.base = std::make_shared<LoadSpec>(
            parse_load(ctx, *base, what + ".base"));
      break;
    }
  }
  s.finish();
  return out;
}

PolicySpec parse_policy(const Ctx& ctx, const JsonValue& value,
                        const std::string& what) {
  Section s(ctx, value, what);
  PolicySpec out;
  const JsonValue* base = s.find("base");
  if (base != nullptr) {
    if (base->kind != JsonValue::Kind::kString)
      ctx.fail(base->offset, "'base' must be a string");
    if (base->string != "greedy" && base->string != "safe" &&
        base->string != "friendly")
      ctx.fail(base->offset, "unknown policy base '" + base->string +
                                 "' (greedy|safe|friendly)");
    out.base = base->string;
  }
  s.get_optional("payback_threshold_iters", out.payback_threshold_iters);
  s.get_optional("min_process_improvement", out.min_process_improvement);
  s.get_optional("min_app_improvement", out.min_app_improvement);
  s.get_optional("history_window_s", out.history_window_s);
  s.get_optional("max_swaps_per_decision", out.max_swaps_per_decision);
  s.finish();
  return out;
}

EstimatorSpec parse_estimator(const Ctx& ctx, const JsonValue& value,
                              const std::string& what) {
  Section s(ctx, value, what);
  EstimatorSpec out;
  const JsonValue& kind = s.require("kind");
  if (kind.kind != JsonValue::Kind::kString)
    ctx.fail(kind.offset, "'kind' must be a string");
  out.kind =
      parse_enum(ctx, kind, kEstimatorNames, "estimator kind", kind.string);
  switch (out.kind) {
    case EstimatorKind::kWindow:
      out.window_s = s.get_double("window_s", out.window_s);
      break;
    case EstimatorKind::kEwma:
      out.tau_s = s.get_double("tau_s", out.tau_s);
      break;
    case EstimatorKind::kMedian:
      out.k = s.get_size("k", out.k);
      break;
    case EstimatorKind::kPolicy:
    case EstimatorKind::kNws:
      break;
  }
  s.finish();
  return out;
}

StrategySpec parse_strategy(const Ctx& ctx, const JsonValue& value,
                            const std::string& what) {
  Section s(ctx, value, what);
  StrategySpec out;
  const JsonValue& kind = s.require("kind");
  if (kind.kind != JsonValue::Kind::kString)
    ctx.fail(kind.offset, "'kind' must be a string");
  out.kind =
      parse_enum(ctx, kind, kStrategyNames, "strategy kind", kind.string);
  const bool has_policy = out.kind == StrategyKind::kSwap ||
                          out.kind == StrategyKind::kDlbSwap ||
                          out.kind == StrategyKind::kCr;
  if (has_policy) {
    const JsonValue* policy = s.find("policy");
    if (policy != nullptr)
      out.policy = parse_policy(ctx, *policy, what + ".policy");
  }
  if (out.kind == StrategyKind::kSwap) {
    const JsonValue* estimator = s.find("estimator");
    if (estimator != nullptr)
      out.estimator = parse_estimator(ctx, *estimator, what + ".estimator");
    out.guard = s.get_bool("guard", out.guard);
    out.stall_factor = s.get_double("stall_factor", out.stall_factor);
  }
  s.finish();
  return out;
}

AxisSpec parse_axis(const Ctx& ctx, const JsonValue& value) {
  Section s(ctx, value, "axis");
  AxisSpec out;
  out.label = s.get_string("label", out.label);
  const JsonValue* binds = s.find("binds");
  if (binds != nullptr) {
    if (binds->kind != JsonValue::Kind::kString)
      ctx.fail(binds->offset, "'binds' must be a string");
    out.binding =
        parse_enum(ctx, *binds, kBindingNames, "axis binding", binds->string);
  }
  out.x = s.get_double_list("x");
  out.interarrival_factor =
      s.get_double("interarrival_factor", out.interarrival_factor);
  out.on_positive_swap_fail_prob = s.get_double(
      "on_positive_swap_fail_prob", out.on_positive_swap_fail_prob);
  out.on_positive_checkpoint_fail_prob = s.get_double(
      "on_positive_checkpoint_fail_prob", out.on_positive_checkpoint_fail_prob);
  s.finish();
  return out;
}

VariantSpec parse_variant(const Ctx& ctx, const JsonValue& value,
                          std::size_t index) {
  const std::string what = "variants[" + std::to_string(index) + "]";
  Section s(ctx, value, what);
  VariantSpec out;
  out.name = s.require_string("name");
  out.strategy = parse_strategy(ctx, s.require("strategy"), what + ".strategy");
  const JsonValue* state = s.find("state_mb");
  if (state != nullptr) out.state_mb = s.to_double(*state, "state_mb");
  const JsonValue* load = s.find("load");
  if (load != nullptr) out.load = parse_load(ctx, *load, what + ".load");
  const JsonValue* schedule = s.find("initial_schedule");
  if (schedule != nullptr) {
    if (schedule->kind != JsonValue::Kind::kString)
      ctx.fail(schedule->offset, "'initial_schedule' must be a string");
    out.initial_schedule = parse_enum(ctx, *schedule, kScheduleNames,
                                      "initial schedule", schedule->string);
  }
  s.finish();
  return out;
}

ReportSpec parse_report(const Ctx& ctx, const JsonValue& value,
                        std::size_t index) {
  const std::string what = "reports[" + std::to_string(index) + "]";
  Section s(ctx, value, what);
  ReportSpec out;
  out.title = s.require_string("title");
  out.expectation = s.get_string("expectation", "");
  const JsonValue& series = s.require("series");
  if (series.kind != JsonValue::Kind::kArray)
    ctx.fail(series.offset, "'series' must be an array");
  for (std::size_t i = 0; i < series.array.size(); ++i) {
    const std::string swhat = what + ".series[" + std::to_string(i) + "]";
    Section e(ctx, series.array[i], swhat);
    SeriesSpec entry;
    entry.name = e.require_string("name");
    entry.variant = e.get_size("variant", 0);
    const JsonValue* metric = e.find("metric");
    if (metric != nullptr) {
      if (metric->kind != JsonValue::Kind::kString)
        ctx.fail(metric->offset, "'metric' must be a string");
      entry.metric =
          parse_enum(ctx, *metric, kMetricNames, "metric", metric->string);
    }
    e.finish();
    out.series.push_back(std::move(entry));
  }
  if (out.series.empty())
    ctx.fail(series.offset, what + ": 'series' must not be empty");
  s.finish();
  return out;
}

void parse_config(const Ctx& ctx, const JsonValue& value, ScenarioSpec& out) {
  Section s(ctx, value, "config");
  out.hosts = s.get_size("hosts", out.hosts);
  out.active = s.get_size("active", out.active);
  out.iterations = s.get_size("iterations", out.iterations);
  out.iter_minutes = s.get_double("iter_minutes", out.iter_minutes);
  out.state_mb = s.get_double("state_mb", out.state_mb);
  out.comm_kb = s.get_double("comm_kb", out.comm_kb);
  out.spares = s.get_size("spares", out.hosts - out.active);
  out.seed = s.get_uint("seed", out.seed);
  out.horizon_hours = s.get_double("horizon_hours", out.horizon_hours);
  const JsonValue* schedule = s.find("initial_schedule");
  if (schedule != nullptr) {
    if (schedule->kind != JsonValue::Kind::kString)
      ctx.fail(schedule->offset, "'initial_schedule' must be a string");
    out.initial_schedule = parse_enum(ctx, *schedule, kScheduleNames,
                                      "initial schedule", schedule->string);
  }
  out.max_events = s.get_uint("max_events", out.max_events);
  s.finish();
}

void parse_faults(const Ctx& ctx, const JsonValue& value, ScenarioSpec& out) {
  Section s(ctx, value, "faults");
  out.mtbf_hours = s.get_double("mtbf_hours", out.mtbf_hours);
  out.swap_fail_prob = s.get_double("swap_fail_prob", out.swap_fail_prob);
  out.checkpoint_fail_prob =
      s.get_double("checkpoint_fail_prob", out.checkpoint_fail_prob);
  out.max_transfer_retries =
      s.get_size("max_transfer_retries", out.max_transfer_retries);
  out.retry_backoff_s = s.get_double("retry_backoff_s", out.retry_backoff_s);
  out.retry_backoff_cap_s =
      s.get_double("retry_backoff_cap_s", out.retry_backoff_cap_s);
  out.blacklist_after = s.get_size("blacklist_after", out.blacklist_after);
  s.finish();
}

}  // namespace

bool operator==(const LoadSpec& a, const LoadSpec& b) {
  const bool base_equal =
      (a.base == nullptr && b.base == nullptr) ||
      (a.base != nullptr && b.base != nullptr && *a.base == *b.base);
  return a.kind == b.kind && a.p == b.p && a.q == b.q &&
         a.step_s == b.step_s && a.stationary_start == b.stationary_start &&
         a.mean_lifetime_s == b.mean_lifetime_s &&
         a.long_prob == b.long_prob &&
         a.mean_interarrival_s == b.mean_interarrival_s &&
         a.mean_available_s == b.mean_available_s &&
         a.mean_reclaimed_s == b.mean_reclaimed_s &&
         a.start_available == b.start_available && base_equal;
}

ScenarioSpec parse_scenario(std::string_view text,
                            std::string_view source_name) {
  const Ctx ctx{text, std::string(source_name)};
  JsonValue doc;
  try {
    doc = resilience::parse_json(text);
  } catch (const resilience::JsonError& e) {
    // json_read reports "... at byte N"; convert to line:col context.
    const std::string what = e.what();
    const std::string marker = " at byte ";
    const std::size_t pos = what.rfind(marker);
    if (pos != std::string::npos) {
      const std::size_t offset =
          static_cast<std::size_t>(std::stoull(what.substr(pos + marker.size())));
      ctx.fail(offset, what.substr(0, pos));
    }
    throw ScenarioError(ctx.source + ": " + what);
  }

  Section s(ctx, doc, "scenario");
  ScenarioSpec out;
  out.name = s.require_string("name");
  const JsonValue* kind = s.find("kind");
  if (kind != nullptr) {
    if (kind->kind != JsonValue::Kind::kString)
      ctx.fail(kind->offset, "'kind' must be a string");
    out.kind =
        parse_enum(ctx, *kind, kKindNames, "scenario kind", kind->string);
  }
  out.title = s.get_string("title", "");
  out.expectation = s.get_string("expectation", "");

  const bool has_platform = out.kind == Kind::kGrid ||
                            out.kind == Kind::kDecisionHistogram;
  if (has_platform) {
    const JsonValue* config = s.find("config");
    if (config != nullptr) {
      parse_config(ctx, *config, out);
    } else {
      out.spares = out.hosts - out.active;
    }
    const JsonValue* faults = s.find("faults");
    if (faults != nullptr) parse_faults(ctx, *faults, out);
    out.trials = s.get_size("trials", out.trials);
  }

  switch (out.kind) {
    case Kind::kGrid: {
      out.forbid_stalls = s.get_bool("forbid_stalls", out.forbid_stalls);
      const JsonValue* load = s.find("load");
      if (load != nullptr) out.load = parse_load(ctx, *load, "load");
      const JsonValue* axis = s.find("axis");
      if (axis != nullptr) out.axis = parse_axis(ctx, *axis);
      const JsonValue& variants = s.require("variants");
      if (variants.kind != JsonValue::Kind::kArray)
        ctx.fail(variants.offset, "'variants' must be an array");
      for (std::size_t i = 0; i < variants.array.size(); ++i)
        out.variants.push_back(parse_variant(ctx, variants.array[i], i));
      if (out.variants.empty())
        ctx.fail(variants.offset, "'variants' must not be empty");
      const JsonValue* reports = s.find("reports");
      if (reports != nullptr) {
        if (reports->kind != JsonValue::Kind::kArray)
          ctx.fail(reports->offset, "'reports' must be an array");
        for (std::size_t i = 0; i < reports->array.size(); ++i)
          out.reports.push_back(parse_report(ctx, reports->array[i], i));
        for (const ReportSpec& report : out.reports)
          for (const SeriesSpec& series : report.series)
            if (series.variant >= out.variants.size())
              ctx.fail(reports->offset,
                       "report series '" + series.name +
                           "' references variant " +
                           std::to_string(series.variant) + " but only " +
                           std::to_string(out.variants.size()) +
                           " variant(s) are defined");
      }
      break;
    }
    case Kind::kPayback: {
      const JsonValue* payback = s.find("payback");
      if (payback != nullptr) {
        Section p(ctx, *payback, "payback");
        out.payback_iter_s = p.get_double("iter_s", out.payback_iter_s);
        out.payback_swap_s = p.get_double("swap_s", out.payback_swap_s);
        p.finish();
      }
      break;
    }
    case Kind::kLoadTrace: {
      out.load = parse_load(ctx, s.require("load"), "load");
      const JsonValue* trace = s.find("trace");
      if (trace != nullptr) {
        Section t(ctx, *trace, "trace");
        out.trace_horizon_s = t.get_double("horizon_s", out.trace_horizon_s);
        out.trace_seed = t.get_uint("seed", out.trace_seed);
        t.finish();
      }
      break;
    }
    case Kind::kDecisionHistogram: {
      const JsonValue& histogram = s.require("histogram");
      Section h(ctx, histogram, "histogram");
      const JsonValue& policies = h.require("policies");
      if (policies.kind != JsonValue::Kind::kArray)
        ctx.fail(policies.offset, "'policies' must be an array");
      for (const JsonValue& p : policies.array) {
        if (p.kind != JsonValue::Kind::kString)
          ctx.fail(p.offset, "'policies' entries must be strings");
        if (p.string != "greedy" && p.string != "safe" &&
            p.string != "friendly")
          ctx.fail(p.offset, "unknown policy '" + p.string +
                                 "' (greedy|safe|friendly)");
        out.histogram_policies.push_back(p.string);
      }
      out.histogram_dynamisms = h.get_double_list("dynamisms");
      h.finish();
      if (out.histogram_policies.empty() || out.histogram_dynamisms.empty())
        ctx.fail(histogram.offset,
                 "'histogram' needs non-empty policies and dynamisms");
      break;
    }
  }
  s.finish();
  return out;
}

// ---------------------------------------------------------------------------
// Canonical serialization.

namespace {

void write_num(std::ostream& os, double v) { obs::write_json_number(os, v); }
void write_num(std::ostream& os, std::uint64_t v) {
  obs::write_json_number(os, v);
}
void write_str(std::ostream& os, const std::string& s) {
  obs::write_json_string(os, s);
}
void write_bool(std::ostream& os, bool b) { os << (b ? "true" : "false"); }

void write_load(std::ostream& os, const LoadSpec& l) {
  os << "{\"model\":\"" << enum_name(kLoadNames, l.kind) << '"';
  switch (l.kind) {
    case LoadKind::kOnOff:
      os << ",\"p\":";
      write_num(os, l.p);
      os << ",\"q\":";
      write_num(os, l.q);
      os << ",\"step_s\":";
      write_num(os, l.step_s);
      os << ",\"stationary_start\":";
      write_bool(os, l.stationary_start);
      break;
    case LoadKind::kHyperExp:
      os << ",\"mean_lifetime_s\":";
      write_num(os, l.mean_lifetime_s);
      os << ",\"long_prob\":";
      write_num(os, l.long_prob);
      os << ",\"mean_interarrival_s\":";
      write_num(os, l.mean_interarrival_s);
      break;
    case LoadKind::kReclaim:
      os << ",\"mean_available_s\":";
      write_num(os, l.mean_available_s);
      os << ",\"mean_reclaimed_s\":";
      write_num(os, l.mean_reclaimed_s);
      os << ",\"start_available\":";
      write_bool(os, l.start_available);
      if (l.base != nullptr) {
        os << ",\"base\":";
        write_load(os, *l.base);
      }
      break;
  }
  os << '}';
}

void write_policy(std::ostream& os, const PolicySpec& p) {
  os << "{\"base\":";
  write_str(os, p.base);
  const auto field = [&os](const char* key, const std::optional<double>& v) {
    if (!v.has_value()) return;
    os << ",\"" << key << "\":";
    write_num(os, *v);
  };
  field("payback_threshold_iters", p.payback_threshold_iters);
  field("min_process_improvement", p.min_process_improvement);
  field("min_app_improvement", p.min_app_improvement);
  field("history_window_s", p.history_window_s);
  field("max_swaps_per_decision", p.max_swaps_per_decision);
  os << '}';
}

void write_estimator(std::ostream& os, const EstimatorSpec& e) {
  os << "{\"kind\":\"" << enum_name(kEstimatorNames, e.kind) << '"';
  switch (e.kind) {
    case EstimatorKind::kWindow:
      os << ",\"window_s\":";
      write_num(os, e.window_s);
      break;
    case EstimatorKind::kEwma:
      os << ",\"tau_s\":";
      write_num(os, e.tau_s);
      break;
    case EstimatorKind::kMedian:
      os << ",\"k\":";
      write_num(os, e.k);
      break;
    case EstimatorKind::kPolicy:
    case EstimatorKind::kNws:
      break;
  }
  os << '}';
}

void write_strategy(std::ostream& os, const StrategySpec& s) {
  os << "{\"kind\":\"" << enum_name(kStrategyNames, s.kind) << '"';
  if (s.kind == StrategyKind::kSwap || s.kind == StrategyKind::kDlbSwap ||
      s.kind == StrategyKind::kCr) {
    os << ",\"policy\":";
    write_policy(os, s.policy);
  }
  if (s.kind == StrategyKind::kSwap) {
    os << ",\"estimator\":";
    write_estimator(os, s.estimator);
    os << ",\"guard\":";
    write_bool(os, s.guard);
    os << ",\"stall_factor\":";
    write_num(os, s.stall_factor);
  }
  os << '}';
}

void write_variant(std::ostream& os, const VariantSpec& v) {
  os << "{\"name\":";
  write_str(os, v.name);
  os << ",\"strategy\":";
  write_strategy(os, v.strategy);
  if (v.state_mb.has_value()) {
    os << ",\"state_mb\":";
    write_num(os, *v.state_mb);
  }
  if (v.load.has_value()) {
    os << ",\"load\":";
    write_load(os, *v.load);
  }
  if (v.initial_schedule.has_value())
    os << ",\"initial_schedule\":\""
       << enum_name(kScheduleNames, *v.initial_schedule) << '"';
  os << '}';
}

void write_axis(std::ostream& os, const AxisSpec& a) {
  os << "{\"label\":";
  write_str(os, a.label);
  os << ",\"binds\":\"" << enum_name(kBindingNames, a.binding)
     << "\",\"x\":[";
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    if (i > 0) os << ',';
    write_num(os, a.x[i]);
  }
  os << "],\"interarrival_factor\":";
  write_num(os, a.interarrival_factor);
  os << ",\"on_positive_swap_fail_prob\":";
  write_num(os, a.on_positive_swap_fail_prob);
  os << ",\"on_positive_checkpoint_fail_prob\":";
  write_num(os, a.on_positive_checkpoint_fail_prob);
  os << '}';
}

void write_report(std::ostream& os, const ReportSpec& r) {
  os << "{\"title\":";
  write_str(os, r.title);
  os << ",\"expectation\":";
  write_str(os, r.expectation);
  os << ",\"series\":[";
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"name\":";
    write_str(os, r.series[i].name);
    os << ",\"variant\":";
    write_num(os, r.series[i].variant);
    os << ",\"metric\":\"" << enum_name(kMetricNames, r.series[i].metric)
       << "\"}";
  }
  os << "]}";
}

}  // namespace

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{\"name\":";
  write_str(os, spec.name);
  os << ",\"kind\":\"" << enum_name(kKindNames, spec.kind) << "\",\"title\":";
  write_str(os, spec.title);
  os << ",\"expectation\":";
  write_str(os, spec.expectation);

  const bool has_platform =
      spec.kind == Kind::kGrid || spec.kind == Kind::kDecisionHistogram;
  if (has_platform) {
    os << ",\"config\":{\"hosts\":";
    write_num(os, spec.hosts);
    os << ",\"active\":";
    write_num(os, spec.active);
    os << ",\"iterations\":";
    write_num(os, spec.iterations);
    os << ",\"iter_minutes\":";
    write_num(os, spec.iter_minutes);
    os << ",\"state_mb\":";
    write_num(os, spec.state_mb);
    os << ",\"comm_kb\":";
    write_num(os, spec.comm_kb);
    os << ",\"spares\":";
    write_num(os, spec.spares);
    os << ",\"seed\":";
    write_num(os, spec.seed);
    os << ",\"horizon_hours\":";
    write_num(os, spec.horizon_hours);
    os << ",\"initial_schedule\":\""
       << enum_name(kScheduleNames, spec.initial_schedule)
       << "\",\"max_events\":";
    write_num(os, spec.max_events);
    os << "},\"faults\":{\"mtbf_hours\":";
    write_num(os, spec.mtbf_hours);
    os << ",\"swap_fail_prob\":";
    write_num(os, spec.swap_fail_prob);
    os << ",\"checkpoint_fail_prob\":";
    write_num(os, spec.checkpoint_fail_prob);
    os << ",\"max_transfer_retries\":";
    write_num(os, spec.max_transfer_retries);
    os << ",\"retry_backoff_s\":";
    write_num(os, spec.retry_backoff_s);
    os << ",\"retry_backoff_cap_s\":";
    write_num(os, spec.retry_backoff_cap_s);
    os << ",\"blacklist_after\":";
    write_num(os, spec.blacklist_after);
    os << "},\"trials\":";
    write_num(os, spec.trials);
  }

  switch (spec.kind) {
    case Kind::kGrid: {
      os << ",\"forbid_stalls\":";
      write_bool(os, spec.forbid_stalls);
      os << ",\"load\":";
      write_load(os, spec.load);
      os << ",\"axis\":";
      write_axis(os, spec.axis);
      os << ",\"variants\":[";
      for (std::size_t i = 0; i < spec.variants.size(); ++i) {
        if (i > 0) os << ',';
        write_variant(os, spec.variants[i]);
      }
      os << ']';
      if (!spec.reports.empty()) {
        os << ",\"reports\":[";
        for (std::size_t i = 0; i < spec.reports.size(); ++i) {
          if (i > 0) os << ',';
          write_report(os, spec.reports[i]);
        }
        os << ']';
      }
      break;
    }
    case Kind::kPayback:
      os << ",\"payback\":{\"iter_s\":";
      write_num(os, spec.payback_iter_s);
      os << ",\"swap_s\":";
      write_num(os, spec.payback_swap_s);
      os << '}';
      break;
    case Kind::kLoadTrace:
      os << ",\"load\":";
      write_load(os, spec.load);
      os << ",\"trace\":{\"horizon_s\":";
      write_num(os, spec.trace_horizon_s);
      os << ",\"seed\":";
      write_num(os, spec.trace_seed);
      os << '}';
      break;
    case Kind::kDecisionHistogram: {
      os << ",\"histogram\":{\"policies\":[";
      for (std::size_t i = 0; i < spec.histogram_policies.size(); ++i) {
        if (i > 0) os << ',';
        write_str(os, spec.histogram_policies[i]);
      }
      os << "],\"dynamisms\":[";
      for (std::size_t i = 0; i < spec.histogram_dynamisms.size(); ++i) {
        if (i > 0) os << ',';
        write_num(os, spec.histogram_dynamisms[i]);
      }
      os << "]}";
      break;
    }
  }
  os << '}';
  return os.str();
}

std::string ScenarioSpec::digest() const {
  // The seed stays out of the digest (provenance reports it separately, and
  // resumable sweeps validate it against the journal header on its own),
  // but everything else — platform, load model, strategy lineup, axis,
  // reports — is folded in through the canonical serialization, so callers
  // can no longer forget the `extra` argument.
  ScenarioSpec canonical = *this;
  canonical.seed = 0;
  return core::config_digest(
      base_config(*this),
      "scenario;name=" + name + ";spec=" + serialize_scenario(canonical));
}

}  // namespace simsweep::scenario
