// Declarative experiment scenarios: every figure, ablation and golden
// fixture as data.
//
// A ScenarioSpec captures everything that shapes an experiment — platform,
// application, load model, fault spec, strategy/policy lineup, the sweep
// axis and what it binds to, trial count, and the paper expectation — and
// round-trips through JSON bitwise: parse(serialize(s)) == s for every
// field, including doubles (numbers are written shortest-round-trip by
// obs::write_json_number and re-read with std::from_chars via
// resilience::parse_json).
//
// The same spec feeds three consumers that used to own divergent copies of
// this logic:
//   * `simsweep bench <name|file>` materializes the spec into a cell grid
//     and routes it through cli::run_sweep (journaling, --resume, watchdog,
//     retry/quarantine and metrics/timeline included);
//   * `simsweep run`/`sweep` build their flag defaults on top of a spec;
//   * the golden-identity tests load the shipped scenarios/golden_*.json
//     so goldens and benches can never drift.
//
// ScenarioSpec::digest() is the single provenance entry point: it folds the
// scenario name and the full canonical serialization (load model, strategy
// lineup, axis — everything) into core::config_digest, closing the gap
// where callers had to remember to pass `extra` by hand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "load/load_model.hpp"
#include "strategy/strategy.hpp"
#include "swap/policy.hpp"

namespace simsweep::scenario {

/// Malformed scenario text or an inconsistent spec.  Parse errors carry
/// "<source>:<line>:<col>: " context.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A scenario name that matches no registered scenario file.  Carries the
/// registry contents so callers can build a did-you-mean suggestion; the
/// CLI maps this to exit code 2.
class UnknownScenarioError : public ScenarioError {
 public:
  UnknownScenarioError(const std::string& message, std::string name,
                       std::vector<std::string> available)
      : ScenarioError(message),
        name_(std::move(name)),
        available_(std::move(available)) {}

  /// The name that failed to resolve (suggestion input).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] const std::vector<std::string>& available() const noexcept {
    return available_;
  }

 private:
  std::string name_;
  std::vector<std::string> available_;
};

/// What shape of experiment the scenario describes.  kGrid is the common
/// case (x-axis × variants, run through the sweep runner); the other kinds
/// cover the paper's illustrative figures whose output is not a series
/// report.
enum class Kind {
  kGrid,               ///< sweep axis × strategy variants -> SeriesReport(s)
  kPayback,            ///< fig 1: the payback-distance worked example
  kLoadTrace,          ///< figs 2/3: one host's load trace as CSV
  kDecisionHistogram,  ///< decision-trace rejection histogram per policy
};

enum class LoadKind { kOnOff, kHyperExp, kReclaim };

/// Declarative load model.  Only the fields of the active `kind` are
/// meaningful (and serialized); a reclamation model may wrap a base model.
struct LoadSpec {
  LoadKind kind = LoadKind::kOnOff;

  // kOnOff (paper defaults; OnOffParams::dynamism(x) == p = q = x).
  double p = 0.3;
  double q = 0.08;
  double step_s = 100.0;
  bool stationary_start = true;

  // kHyperExp.
  double mean_lifetime_s = 100.0;
  double long_prob = 0.2;
  double mean_interarrival_s = 200.0;

  // kReclaim.
  double mean_available_s = 7200.0;
  double mean_reclaimed_s = 600.0;
  bool start_available = true;
  std::shared_ptr<LoadSpec> base;  ///< competing load while available

  friend bool operator==(const LoadSpec& a, const LoadSpec& b);
  friend bool operator!=(const LoadSpec& a, const LoadSpec& b) {
    return !(a == b);
  }
};

/// Swap policy: a named paper base plus explicit overrides.  Only set
/// overrides serialize, so a spec stays diffable against the paper presets.
struct PolicySpec {
  std::string base = "greedy";  ///< greedy | safe | friendly
  std::optional<double> payback_threshold_iters;
  std::optional<double> min_process_improvement;
  std::optional<double> min_app_improvement;
  std::optional<double> history_window_s;
  std::optional<double> max_swaps_per_decision;

  bool operator==(const PolicySpec&) const = default;
};

enum class EstimatorKind {
  kPolicy,  ///< null estimator: the policy's own history window applies
  kWindow,  ///< flat averaging window of window_s seconds
  kEwma,    ///< forecast::make_ewma(tau_s)
  kMedian,  ///< forecast::make_sliding_median(k)
  kNws,     ///< forecast::make_default_ensemble()
};

struct EstimatorSpec {
  EstimatorKind kind = EstimatorKind::kPolicy;
  double window_s = 0.0;  ///< kWindow
  double tau_s = 120.0;   ///< kEwma
  std::size_t k = 5;      ///< kMedian

  bool operator==(const EstimatorSpec&) const = default;
};

enum class StrategyKind { kNone, kSwap, kDlb, kDlbSwap, kCr };

struct StrategySpec {
  StrategyKind kind = StrategyKind::kNone;
  PolicySpec policy;        ///< kSwap / kDlbSwap / kCr
  EstimatorSpec estimator;  ///< kSwap only
  bool guard = false;       ///< kSwap: eviction watchdog
  double stall_factor = 3.0;

  bool operator==(const StrategySpec&) const = default;
};

/// One report series (a line in the figure): which variant's column and
/// which statistic it plots.
enum class Metric {
  kMakespan,        ///< y = mean makespan, adaptations column alongside
  kAdaptations,     ///< y = mean adaptation count
  kCompletionRate,  ///< y = finished/trials, adaptations = mean recoveries
};

/// One plotted line of a grid scenario's report; `variant` indexes
/// ScenarioSpec::variants.
struct SeriesSpec {
  std::string name;
  std::size_t variant = 0;
  Metric metric = Metric::kMakespan;

  bool operator==(const SeriesSpec&) const = default;
};

/// One emitted report.  A scenario without explicit reports gets a default
/// one: spec title/expectation, one makespan series per variant.
struct ReportSpec {
  std::string title;
  std::string expectation;
  std::vector<SeriesSpec> series;

  bool operator==(const ReportSpec&) const = default;
};

/// Which knob the sweep-axis x values turn.
enum class AxisBinding {
  kNone,                    ///< single-point grids (golden fixtures)
  kLoadDynamism,            ///< ON/OFF p = q = x
  kSparesPercentOfActive,   ///< spares = round(active * x / 100)
  kHyperexpLifetime,        ///< mean lifetime = x (see interarrival_factor)
  kFaultMtbfHours,          ///< host MTBF = x hours (see on_positive_*)
  kReclaimedMinutes,        ///< mean reclaimed stretch = x minutes
  kPolicyPayback,           ///< payback_threshold_iters = x
  kPolicyHistoryWindow,     ///< history_window_s = x
  kPolicyMinProcess,        ///< min_process_improvement = x
  kPolicyMaxSwaps,          ///< max_swaps_per_decision = x
};

struct AxisSpec {
  std::string label = "x";  ///< report x_label
  AxisBinding binding = AxisBinding::kNone;
  std::vector<double> x;

  /// kHyperexpLifetime: when > 0, mean_interarrival_s = factor * x, so the
  /// axis varies persistence at constant offered load.
  double interarrival_factor = 0.0;

  /// kFaultMtbfHours: transient failure probabilities applied only at
  /// points with x > 0 (x == 0 disables fault injection bitwise).
  double on_positive_swap_fail_prob = 0.0;
  double on_positive_checkpoint_fail_prob = 0.0;

  bool operator==(const AxisSpec&) const = default;
};

/// One line of the strategy lineup, with optional per-variant overrides of
/// the base platform/load (fig 6 state sizes, per-dynamism ablations).
struct VariantSpec {
  std::string name;
  StrategySpec strategy;
  std::optional<double> state_mb;
  std::optional<LoadSpec> load;
  std::optional<strategy::InitialSchedule> initial_schedule;

  bool operator==(const VariantSpec&) const = default;
};

struct ScenarioSpec {
  std::string name;
  Kind kind = Kind::kGrid;
  std::string title;
  std::string expectation;  ///< may span lines for the trace kinds

  // Platform / application (paper defaults).
  std::size_t hosts = 32;
  std::size_t active = 4;
  std::size_t iterations = 60;
  double iter_minutes = 2.0;
  double state_mb = 1.0;
  double comm_kb = 100.0;
  std::size_t spares = 28;
  std::uint64_t seed = 1;
  double horizon_hours = 2880.0;
  strategy::InitialSchedule initial_schedule =
      strategy::InitialSchedule::kFastestEffective;
  std::uint64_t max_events = 250'000'000;

  // Fault injection (FaultSpec defaults; disabled unless mtbf_hours > 0 or
  // a probability is set).
  double mtbf_hours = 0.0;
  double swap_fail_prob = 0.0;
  double checkpoint_fail_prob = 0.0;
  std::size_t max_transfer_retries = 3;
  double retry_backoff_s = 2.0;
  double retry_backoff_cap_s = 120.0;
  std::size_t blacklist_after = 6;

  std::size_t trials = 8;
  /// Fail (throw) instead of reporting when any run stalls — a deadlocked
  /// strategy must not pollute a figure as an ordinary slow point.
  bool forbid_stalls = false;

  LoadSpec load;
  AxisSpec axis;
  std::vector<VariantSpec> variants;
  std::vector<ReportSpec> reports;

  // Kind::kPayback parameters.
  double payback_iter_s = 10.0;
  double payback_swap_s = 10.0;

  // Kind::kLoadTrace parameters.
  double trace_horizon_s = 2000.0;
  std::uint64_t trace_seed = 1;

  // Kind::kDecisionHistogram parameters.
  std::vector<std::string> histogram_policies;
  std::vector<double> histogram_dynamisms;

  bool operator==(const ScenarioSpec&) const = default;

  /// Provenance digest over everything that shapes the scenario's runs
  /// except the seed: the base ExperimentConfig plus the scenario name and
  /// its full canonical serialization, so the load model, strategy lineup
  /// and axis are always folded in (no caller-supplied `extra` to forget).
  [[nodiscard]] std::string digest() const;
};

/// Parses a scenario from JSON.  Strict: unknown keys, wrong value kinds
/// and inconsistent specs throw ScenarioError with "<source>:<line>:<col>"
/// context.  Bitwise: every number is kept as its raw token and re-read
/// with std::from_chars.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text,
                                          std::string_view source_name);

/// Reads and parses `path` (the file name becomes the error-context source).
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

/// Canonical JSON serialization: fixed key order, shortest-round-trip
/// numbers, optional fields only when set.  parse(serialize(s)) == s.
[[nodiscard]] std::string serialize_scenario(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// Materialization: spec -> runnable objects.

/// The spec's base ExperimentConfig (no axis point or variant overrides
/// applied).  Throws std::invalid_argument when active + spares exceed the
/// host count, mirroring the CLI validation.
[[nodiscard]] core::ExperimentConfig base_config(const ScenarioSpec& spec);

[[nodiscard]] std::shared_ptr<const load::LoadModel> make_load_model(
    const LoadSpec& spec);

[[nodiscard]] swap::PolicyParams make_policy(const PolicySpec& spec);

[[nodiscard]] std::unique_ptr<strategy::Strategy> make_strategy(
    const StrategySpec& spec);

/// One runnable cell of a grid scenario: the config with every override and
/// axis binding applied, plus its model, strategy, human label and journal
/// key extra (fed to config_digest to key the cell's journal record).
struct Cell {
  core::ExperimentConfig config;
  std::shared_ptr<const load::LoadModel> model;
  std::shared_ptr<strategy::Strategy> strategy;
  std::string label;
  std::string key_extra;
};

struct MaterializedGrid {
  std::vector<double> points;
  std::string x_label;
  std::size_t variant_count = 0;
  std::vector<Cell> cells;  ///< points.size() * variant_count, x-major
  std::vector<ReportSpec> reports;  ///< defaulted when the spec had none
  std::string digest;               ///< ScenarioSpec::digest()
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  bool forbid_stalls = false;
};

/// Expands a Kind::kGrid scenario into its cell grid.  `trials_override`
/// (0 = use spec.trials) participates in the per-cell journal keys.
/// Throws ScenarioError for non-grid kinds or empty variants, and
/// std::invalid_argument for an empty axis.
[[nodiscard]] MaterializedGrid materialize(const ScenarioSpec& spec,
                                           std::size_t trials_override = 0);

/// The classic `simsweep sweep` scenario: NONE/SWAP(greedy)/DLB/CR across
/// ON/OFF dynamism, paper platform defaults.
[[nodiscard]] ScenarioSpec sweep_scenario();

// ---------------------------------------------------------------------------
// Registry: shipped scenarios/*.json by name.

/// SIMSWEEP_SCENARIO_DIR when set and non-empty, else the compiled-in
/// source-tree scenarios/ directory.
[[nodiscard]] std::string default_scenario_dir();

/// Stems of every *.json in `dir`, sorted.  Missing directory = empty list.
[[nodiscard]] std::vector<std::string> list_scenarios(const std::string& dir);

/// Loads a scenario by registry name or explicit path.  Anything containing
/// a path separator or ending in ".json" is read as a file; otherwise
/// `dir/<name>.json` must exist (its spec name must equal the stem) or
/// UnknownScenarioError carrying the registry listing is thrown.
[[nodiscard]] ScenarioSpec find_scenario(const std::string& name_or_path,
                                         const std::string& dir);

}  // namespace simsweep::scenario
