// Pending-event set for the discrete-event engine.
//
// A binary heap ordered by (time, sequence number): ties in simulated time
// are broken by insertion order, which makes event processing fully
// deterministic.  Cancellation is lazy — a cancelled entry stays in the heap
// until it bubbles to the top — keeping push/pop at O(log n) with no
// auxiliary index structure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "simcore/sim_time.hpp"

namespace simsweep::sim {

/// Handle to a scheduled event; lets the scheduler cancel it later.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Safe to call repeatedly and
  /// on default-constructed handles.
  void cancel() {
    if (auto p = flag_.lock()) *p = true;
  }

  /// True when this handle refers to an event that is still pending
  /// (scheduled, not yet fired, not cancelled).
  [[nodiscard]] bool pending() const {
    auto p = flag_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::weak_ptr<bool> flag_;
};

/// Min-heap of (time, seq, callback) with lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute simulated time `at`.
  EventHandle schedule(SimTime at, Callback cb) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Entry{at, next_seq_++, std::move(cb), cancelled});
    return EventHandle(cancelled);
  }

  /// True when no live (non-cancelled) event remains.  Lazily purges
  /// cancelled entries from the top of the heap.
  [[nodiscard]] bool empty() {
    drop_cancelled();
    return heap_.empty();
  }

  /// Upper bound on the number of live events (cancelled entries buried in
  /// the heap are still counted until they surface).  Diagnostic only.
  [[nodiscard]] std::size_t size_bound() const { return heap_.size(); }

  /// Total events ever scheduled (fired, cancelled or pending).  The
  /// auditor checks fired-event counts against this bound.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept {
    return next_seq_;
  }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] SimTime next_time() {
    drop_cancelled();
    return heap_.empty() ? kTimeInfinity : heap_.top().time;
  }

  /// Removes and returns the earliest live event.  Precondition: !empty().
  [[nodiscard]] std::pair<SimTime, Callback> pop() {
    drop_cancelled();
    Entry top = heap_.top();
    heap_.pop();
    *top.cancelled = true;  // fired events report pending() == false
    return {top.time, std::move(top.callback)};
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback callback;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace simsweep::sim
