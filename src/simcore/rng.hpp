// Deterministic random-number generation for simulations.
//
// Every stochastic model in the simulator draws from an Rng that is seeded
// explicitly, so a (seed, stream) pair fully determines an experiment.
// Streams let independent model components (e.g. the load source of each
// host) consume randomness without perturbing one another when the platform
// size changes.
#pragma once

#include <cstdint>
#include <random>

namespace simsweep::sim {

/// Derives a child seed from a root seed and a stream index using
/// SplitMix64, the standard seed-sequence scrambler.  Distinct streams of
/// the same root seed are statistically independent for our purposes.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t z = root + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic random source.  Thin wrapper over std::mt19937_64 exposing
/// only the distributions the models need; copyable so tests can snapshot
/// generator state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  Rng(std::uint64_t root, std::uint64_t stream) : engine_(derive_seed(root, stream)) {}

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() { return uniform(0.0, 1.0); }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential_mean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Raw 64-bit draw, for hashing/splitting.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Spawn an independent child generator.
  [[nodiscard]] Rng split(std::uint64_t stream) { return Rng(engine_(), stream); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace simsweep::sim
