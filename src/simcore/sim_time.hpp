// Virtual time for the discrete-event simulation core.
//
// Simulated time is a double measured in seconds since the start of the
// simulation.  A thin strong-ish vocabulary layer keeps call sites readable
// and provides the comparison tolerance used throughout the engine.
#pragma once

#include <cmath>
#include <limits>

namespace simsweep::sim {

/// Simulated seconds since simulation start.
using SimTime = double;

/// Durations share the representation of SimTime (seconds).
using SimDuration = double;

/// Sentinel for "never" / "no deadline".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Absolute tolerance used when comparing simulated times.  Experiments run
/// for at most a few million simulated seconds, so 1 ns of virtual time is
/// far below anything the models can distinguish.
inline constexpr SimTime kTimeEpsilon = 1e-9;

/// True when two simulated times are indistinguishable.
[[nodiscard]] inline bool time_close(SimTime a, SimTime b) noexcept {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::fabs(a - b) <= kTimeEpsilon;
}

/// Seconds-per-unit helpers; keep magic numbers out of model code.
inline constexpr SimDuration kMillisecond = 1e-3;
inline constexpr SimDuration kSecond = 1.0;
inline constexpr SimDuration kMinute = 60.0;
inline constexpr SimDuration kHour = 3600.0;

}  // namespace simsweep::sim
