// Discrete-event simulation driver.
//
// The Simulator owns virtual time and the pending-event set.  Model code
// schedules callbacks at absolute or relative times; run() processes events
// in deterministic (time, insertion) order until the queue drains, a time
// horizon is reached, or a model calls stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "audit/auditor.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/sim_time.hpp"

namespace simsweep::sim {

/// Thrown by run_until() when the configured event budget is exhausted.
/// A runaway simulation (livelocked model, pathological retry loop) fails
/// fast with a diagnosable error instead of spinning forever.
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("Simulator: event budget exceeded (" +
                           std::to_string(budget) + " events fired)") {}
};

/// Thrown by run_until() when an attached cancellation flag was raised —
/// typically a wall-clock watchdog marking the trial hung.  The event budget
/// bounds *virtual* time; the cancel flag is the cooperative escape hatch for
/// *wall-clock* deadlines, checked once per fired event.
class RunCancelled : public std::runtime_error {
 public:
  RunCancelled()
      : std::runtime_error(
            "Simulator: run cancelled (wall-clock deadline exceeded)") {}
};

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events fired so far.
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Attaches (or detaches, with nullptr) the invariant auditor.  The
  /// simulator audits its own clock and event bookkeeping, and every model
  /// holding a Simulator reference reaches the auditor through here, so
  /// per-run wiring is a single call.  Checks only read state — an audited
  /// run is bitwise identical to an unaudited one.
  void set_auditor(audit::InvariantAuditor* auditor) noexcept {
    auditor_ = auditor;
  }

  [[nodiscard]] audit::InvariantAuditor* auditor() const noexcept {
    return auditor_;
  }

  /// Attaches (or detaches, with nullptr) the metrics registry.  Follows the
  /// auditor pattern: models reach the per-run registry through the
  /// simulator, every site null-checks, and recording only reads simulation
  /// state — an instrumented run is bitwise identical to a plain one.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  // Queue-depth statistics, accumulated per popped event while a registry
  // is attached.  Kept as plain members (no registry lookup, no lock) so
  // the per-event cost is a handful of arithmetic ops; the experiment layer
  // flushes them into gauges at end of run.
  [[nodiscard]] std::uint64_t queue_depth_samples() const noexcept {
    return depth_samples_;
  }
  [[nodiscard]] double queue_depth_mean() const noexcept {
    return depth_samples_ == 0
               ? 0.0
               : depth_sum_ / static_cast<double>(depth_samples_);
  }
  [[nodiscard]] std::size_t queue_depth_max() const noexcept {
    return depth_max_;
  }

  /// Attaches (or detaches, with nullptr) the timeline tracer.
  void set_timeline(obs::TimelineTracer* timeline) noexcept {
    timeline_ = timeline;
  }

  [[nodiscard]] obs::TimelineTracer* timeline() const noexcept {
    return timeline_;
  }

  /// Schedules `cb` at absolute time `at` (must not be in the past).
  EventHandle at(SimTime at, Callback cb) {
    if (at < now_ - kTimeEpsilon)
      throw std::invalid_argument("Simulator::at: scheduling in the past");
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  /// Schedules `cb` after `delay` seconds of simulated time.
  EventHandle after(SimDuration delay, Callback cb) {
    if (delay < 0.0)
      throw std::invalid_argument("Simulator::after: negative delay");
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue drains or stop() is called.
  void run() { run_until(kTimeInfinity); }

  /// Caps the total number of events this simulator may fire; run_until()
  /// throws EventBudgetExceeded once the cap is hit.  0 (the default)
  /// disables the guard.
  void set_event_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// Attaches (or detaches, with nullptr) a cooperative cancellation flag.
  /// run_until() throws RunCancelled before firing the next event once the
  /// flag reads true.  The flag is owned by the caller (a watchdog) and only
  /// ever flips false -> true, so a relaxed load per event is enough; an
  /// attached-but-never-raised flag leaves the run bitwise identical.
  void set_cancel_flag(const std::atomic<bool>* flag) noexcept {
    cancel_ = flag;
  }

  /// Runs until `horizon` (events at exactly the horizon still fire).
  /// Advances now() to the horizon when it is finite and the queue drained
  /// earlier, so time-based observers see a consistent clock.
  void run_until(SimTime horizon) {
    stopped_ = false;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
      if (budget_ != 0 && fired_ >= budget_) throw EventBudgetExceeded(budget_);
      if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
        throw RunCancelled();
      auto [t, cb] = queue_.pop();
      if (auditor_ != nullptr && auditor_->enabled()) audit_pop(t);
      // size_bound() is an upper bound (buried cancelled entries count),
      // which is exactly the memory-pressure quantity worth watching.
      if (metrics_ != nullptr) {
        const std::size_t depth = queue_.size_bound();
        depth_sum_ += static_cast<double>(depth);
        ++depth_samples_;
        if (depth > depth_max_) depth_max_ = depth;
      }
      now_ = t;
      ++fired_;
      cb();
    }
    if (!stopped_ && horizon != kTimeInfinity && now_ < horizon) now_ = horizon;
  }

  /// Requests that the run loop exit after the current event returns.
  void stop() noexcept { stopped_ = true; }

  /// True when stop() ended the previous run.
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Live-event check (lazily purges cancelled entries).
  [[nodiscard]] bool idle() { return queue_.empty(); }

 private:
  /// Clock/bookkeeping invariants, checked per popped event while auditing:
  /// virtual time never runs backwards, we never fire more events than were
  /// scheduled, and the budget guard above actually bounded the count.
  void audit_pop(SimTime t) {
    if (t < now_ - kTimeEpsilon)
      auditor_->report("simcore", "virtual_time_monotonic", now_,
                       "event at t=" + std::to_string(t) +
                           " fired behind now=" + std::to_string(now_));
    if (fired_ >= queue_.scheduled_total())
      auditor_->report("simcore", "fired_within_scheduled", now_,
                       std::to_string(fired_) + " events fired but only " +
                           std::to_string(queue_.scheduled_total()) +
                           " ever scheduled");
    if (budget_ != 0 && fired_ >= budget_)
      auditor_->report("simcore", "event_budget_respected", now_,
                       "fired " + std::to_string(fired_) +
                           " events past budget " + std::to_string(budget_));
  }

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t fired_ = 0;
  std::uint64_t budget_ = 0;  // 0 = unlimited
  bool stopped_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  audit::InvariantAuditor* auditor_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimelineTracer* timeline_ = nullptr;
  // Queue-depth accumulators (active only while metrics_ is attached).
  std::uint64_t depth_samples_ = 0;
  double depth_sum_ = 0.0;
  std::size_t depth_max_ = 0;
};

}  // namespace simsweep::sim
