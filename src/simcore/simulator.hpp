// Discrete-event simulation driver.
//
// The Simulator owns virtual time and the pending-event set.  Model code
// schedules callbacks at absolute or relative times; run() processes events
// in deterministic (time, insertion) order until the queue drains, a time
// horizon is reached, or a model calls stop().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "simcore/event_queue.hpp"
#include "simcore/sim_time.hpp"

namespace simsweep::sim {

/// Thrown by run_until() when the configured event budget is exhausted.
/// A runaway simulation (livelocked model, pathological retry loop) fails
/// fast with a diagnosable error instead of spinning forever.
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("Simulator: event budget exceeded (" +
                           std::to_string(budget) + " events fired)") {}
};

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events fired so far.
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Schedules `cb` at absolute time `at` (must not be in the past).
  EventHandle at(SimTime at, Callback cb) {
    if (at < now_ - kTimeEpsilon)
      throw std::invalid_argument("Simulator::at: scheduling in the past");
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  /// Schedules `cb` after `delay` seconds of simulated time.
  EventHandle after(SimDuration delay, Callback cb) {
    if (delay < 0.0)
      throw std::invalid_argument("Simulator::after: negative delay");
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue drains or stop() is called.
  void run() { run_until(kTimeInfinity); }

  /// Caps the total number of events this simulator may fire; run_until()
  /// throws EventBudgetExceeded once the cap is hit.  0 (the default)
  /// disables the guard.
  void set_event_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// Runs until `horizon` (events at exactly the horizon still fire).
  /// Advances now() to the horizon when it is finite and the queue drained
  /// earlier, so time-based observers see a consistent clock.
  void run_until(SimTime horizon) {
    stopped_ = false;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
      if (budget_ != 0 && fired_ >= budget_) throw EventBudgetExceeded(budget_);
      auto [t, cb] = queue_.pop();
      now_ = t;
      ++fired_;
      cb();
    }
    if (!stopped_ && horizon != kTimeInfinity && now_ < horizon) now_ = horizon;
  }

  /// Requests that the run loop exit after the current event returns.
  void stop() noexcept { stopped_ = true; }

  /// True when stop() ended the previous run.
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Live-event check (lazily purges cancelled entries).
  [[nodiscard]] bool idle() { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t fired_ = 0;
  std::uint64_t budget_ = 0;  // 0 = unlimited
  bool stopped_ = false;
};

}  // namespace simsweep::sim
