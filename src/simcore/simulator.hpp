// Discrete-event simulation driver.
//
// The Simulator owns virtual time and the pending-event set.  Model code
// schedules callbacks at absolute or relative times; run() processes events
// in deterministic (time, insertion) order until the queue drains, a time
// horizon is reached, or a model calls stop().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "audit/auditor.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/sim_time.hpp"

namespace simsweep::sim {

/// Thrown by run_until() when the configured event budget is exhausted.
/// A runaway simulation (livelocked model, pathological retry loop) fails
/// fast with a diagnosable error instead of spinning forever.
class EventBudgetExceeded : public std::runtime_error {
 public:
  explicit EventBudgetExceeded(std::uint64_t budget)
      : std::runtime_error("Simulator: event budget exceeded (" +
                           std::to_string(budget) + " events fired)") {}
};

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events fired so far.
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Attaches (or detaches, with nullptr) the invariant auditor.  The
  /// simulator audits its own clock and event bookkeeping, and every model
  /// holding a Simulator reference reaches the auditor through here, so
  /// per-run wiring is a single call.  Checks only read state — an audited
  /// run is bitwise identical to an unaudited one.
  void set_auditor(audit::InvariantAuditor* auditor) noexcept {
    auditor_ = auditor;
  }

  [[nodiscard]] audit::InvariantAuditor* auditor() const noexcept {
    return auditor_;
  }

  /// Schedules `cb` at absolute time `at` (must not be in the past).
  EventHandle at(SimTime at, Callback cb) {
    if (at < now_ - kTimeEpsilon)
      throw std::invalid_argument("Simulator::at: scheduling in the past");
    return queue_.schedule(at < now_ ? now_ : at, std::move(cb));
  }

  /// Schedules `cb` after `delay` seconds of simulated time.
  EventHandle after(SimDuration delay, Callback cb) {
    if (delay < 0.0)
      throw std::invalid_argument("Simulator::after: negative delay");
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Runs until the event queue drains or stop() is called.
  void run() { run_until(kTimeInfinity); }

  /// Caps the total number of events this simulator may fire; run_until()
  /// throws EventBudgetExceeded once the cap is hit.  0 (the default)
  /// disables the guard.
  void set_event_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// Runs until `horizon` (events at exactly the horizon still fire).
  /// Advances now() to the horizon when it is finite and the queue drained
  /// earlier, so time-based observers see a consistent clock.
  void run_until(SimTime horizon) {
    stopped_ = false;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= horizon) {
      if (budget_ != 0 && fired_ >= budget_) throw EventBudgetExceeded(budget_);
      auto [t, cb] = queue_.pop();
      if (auditor_ != nullptr && auditor_->enabled()) audit_pop(t);
      now_ = t;
      ++fired_;
      cb();
    }
    if (!stopped_ && horizon != kTimeInfinity && now_ < horizon) now_ = horizon;
  }

  /// Requests that the run loop exit after the current event returns.
  void stop() noexcept { stopped_ = true; }

  /// True when stop() ended the previous run.
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Live-event check (lazily purges cancelled entries).
  [[nodiscard]] bool idle() { return queue_.empty(); }

 private:
  /// Clock/bookkeeping invariants, checked per popped event while auditing:
  /// virtual time never runs backwards, we never fire more events than were
  /// scheduled, and the budget guard above actually bounded the count.
  void audit_pop(SimTime t) {
    if (t < now_ - kTimeEpsilon)
      auditor_->report("simcore", "virtual_time_monotonic", now_,
                       "event at t=" + std::to_string(t) +
                           " fired behind now=" + std::to_string(now_));
    if (fired_ >= queue_.scheduled_total())
      auditor_->report("simcore", "fired_within_scheduled", now_,
                       std::to_string(fired_) + " events fired but only " +
                           std::to_string(queue_.scheduled_total()) +
                           " ever scheduled");
    if (budget_ != 0 && fired_ >= budget_)
      auditor_->report("simcore", "event_budget_respected", now_,
                       "fired " + std::to_string(fired_) +
                           " events past budget " + std::to_string(budget_));
  }

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t fired_ = 0;
  std::uint64_t budget_ = 0;  // 0 = unlimited
  bool stopped_ = false;
  audit::InvariantAuditor* auditor_ = nullptr;
};

}  // namespace simsweep::sim
