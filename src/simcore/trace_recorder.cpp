#include "simcore/trace_recorder.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace simsweep::sim {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void TraceRecorder::write_csv(std::ostream& os, std::string_view name) const {
  os << "time," << csv_escape(name) << '\n';
  for (const Sample& s : series(name)) os << s.time << ',' << s.value << '\n';
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"series\":{";
  bool first_series = true;
  for (const auto& [name, samples] : series_) {
    if (!first_series) os << ',';
    first_series = false;
    obs::write_json_string(os, name);
    os << ":[";
    bool first_sample = true;
    for (const Sample& s : samples) {
      if (!first_sample) os << ',';
      first_sample = false;
      os << '[';
      obs::write_json_number(os, s.time);
      os << ',';
      obs::write_json_number(os, s.value);
      os << ']';
    }
    os << ']';
  }
  os << "}}";
}

double integrate_step_series(const std::vector<Sample>& samples, SimTime t0,
                             SimTime t1, double initial) {
  if (t1 < t0) throw std::invalid_argument("integrate_step_series: t1 < t0");
  double value = initial;
  double area = 0.0;
  SimTime cursor = t0;
  for (const Sample& s : samples) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= t1) break;
    area += value * (s.time - cursor);
    cursor = s.time;
    value = s.value;
  }
  area += value * (t1 - cursor);
  return area;
}

double mean_step_series(const std::vector<Sample>& samples, SimTime t0,
                        SimTime t1, double initial) {
  if (time_close(t0, t1)) {
    // Point query: value in effect at t0.
    double value = initial;
    for (const Sample& s : samples) {
      if (s.time > t0) break;
      value = s.value;
    }
    return value;
  }
  return integrate_step_series(samples, t0, t1, initial) / (t1 - t0);
}

}  // namespace simsweep::sim
