#include "simcore/trace_recorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace simsweep::sim {

double integrate_step_series(const std::vector<Sample>& samples, SimTime t0,
                             SimTime t1, double initial) {
  if (t1 < t0) throw std::invalid_argument("integrate_step_series: t1 < t0");
  double value = initial;
  double area = 0.0;
  SimTime cursor = t0;
  for (const Sample& s : samples) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= t1) break;
    area += value * (s.time - cursor);
    cursor = s.time;
    value = s.value;
  }
  area += value * (t1 - cursor);
  return area;
}

double mean_step_series(const std::vector<Sample>& samples, SimTime t0,
                        SimTime t1, double initial) {
  if (time_close(t0, t1)) {
    // Point query: value in effect at t0.
    double value = initial;
    for (const Sample& s : samples) {
      if (s.time > t0) break;
      value = s.value;
    }
    return value;
  }
  return integrate_step_series(samples, t0, t1, initial) / (t1 - t0);
}

}  // namespace simsweep::sim
