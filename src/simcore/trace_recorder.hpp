// Time-series capture for simulations.
//
// Models append (time, value) samples under a named series; experiment
// drivers and the figure benches read the series back or dump them as CSV.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/sim_time.hpp"

namespace simsweep::sim {

/// One sampled point of a series.
struct Sample {
  SimTime time;
  double value;
  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Named collection of time series.
class TraceRecorder {
 public:
  /// Appends a sample to `series` at time `t`.
  void record(std::string_view series, SimTime t, double value) {
    series_[std::string(series)].push_back(Sample{t, value});
  }

  /// Read access to one series; empty vector when the name is unknown.
  [[nodiscard]] const std::vector<Sample>& series(std::string_view name) const {
    static const std::vector<Sample> kEmpty;
    auto it = series_.find(std::string(name));
    return it == series_.end() ? kEmpty : it->second;
  }

  /// Names of all recorded series, sorted.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [name, _] : series_) out.push_back(name);
    return out;
  }

  [[nodiscard]] bool empty() const { return series_.empty(); }

  void clear() { series_.clear(); }

  /// Writes `time,value` rows for one series in CSV form with a header.
  /// Series names containing CSV metacharacters (comma, quote, newline) are
  /// quoted and escaped per RFC 4180 so the header stays two columns.
  void write_csv(std::ostream& os, std::string_view name) const;

  /// Dumps every series as {"series":{"name":[[t,v],...],...}} with sorted
  /// names and round-trip doubles — the structured sibling of write_csv for
  /// names (or tools) that CSV handles poorly.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, std::vector<Sample>, std::less<>> series_;
};

/// RFC 4180 field escaping: returns `field` unchanged when it contains no
/// comma/quote/CR/LF, otherwise wrapped in quotes with inner quotes doubled.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Integrates a piecewise-constant (step) series between t0 and t1.  The
/// value of the series at time t is the value of the latest sample at or
/// before t; before the first sample the series is `initial`.
[[nodiscard]] double integrate_step_series(const std::vector<Sample>& samples,
                                           SimTime t0, SimTime t1,
                                           double initial = 0.0);

/// Mean value of a step series over [t0, t1].
[[nodiscard]] double mean_step_series(const std::vector<Sample>& samples,
                                      SimTime t0, SimTime t1,
                                      double initial = 0.0);

}  // namespace simsweep::sim
