// Composable adaptation components, one per mechanism the paper compares:
// swapping onto spares (SwapComponent), free repartitioning (DlbComponent)
// and checkpoint/restart (CrComponent).  Techniques assemble these behind a
// Remediation — DLB+SWAP is literally SwapComponent plus DlbComponent, not
// a third copy of either.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "strategy/runtime.hpp"
#include "strategy/schedule.hpp"
#include "swap/planner.hpp"

namespace simsweep::strategy {

/// Equal chunks in flops, one per slot.
inline std::vector<double> chunk_flops(const app::AppSpec& spec,
                                       const app::WorkPartition& partition) {
  std::vector<double> out;
  out.reserve(partition.slots());
  for (std::size_t slot = 0; slot < partition.slots(); ++slot)
    out.push_back(spec.work_per_iteration_flops * partition.fraction(slot));
  return out;
}

/// Current effective speeds of the hosts in `placement`.
inline std::vector<double> effective_speeds(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement) {
  std::vector<double> out;
  out.reserve(placement.size());
  for (platform::HostId h : placement)
    out.push_back(cluster.host(h).effective_speed());
  return out;
}

/// One boundary planning round: the planner's full output plus the index
/// of the trace record it produced (kNoTrace when tracing is off).
struct BoundaryPlan {
  swap::SwapPlan plan;
  std::size_t trace_index = TechniqueRuntime::kNoTrace;
};

/// Runs the policy planner against the current placement and `spare_hosts`
/// using the runtime's estimator, and records the round in the decision
/// trace.  `adaptation_cost_s` overrides the planner's per-process transfer
/// estimate (checkpoint/restart's whole-application cost); unset selects
/// the estimate.
[[nodiscard]] BoundaryPlan plan_boundary_swaps(
    TechniqueRuntime& rt, const swap::PolicyParams& policy,
    const std::vector<platform::HostId>& spare_hosts,
    std::optional<double> adaptation_cost_s = std::nullopt);

/// The paper's swap mechanism: a spare pool, faulty state transfers with
/// strike-based blacklisting of unreliable destinations, all-or-nothing
/// crash recovery onto spares, and the optional eviction-guard watchdog.
class SwapComponent {
 public:
  SwapComponent(swap::PolicyParams policy,
                std::vector<platform::HostId> spares,
                double stall_factor = 3.0)
      : policy_(std::move(policy)),
        spares_(std::move(spares)),
        stall_factor_(stall_factor) {}

  /// Hook run after every completed crash recovery, before the iteration
  /// restarts (DLB+SWAP repartitions for the repaired placement here).
  void set_post_recovery(std::function<void(TechniqueRuntime&)> hook) {
    post_recovery_ = std::move(hook);
  }

  /// Plans this boundary's swaps against the current spare pool.
  [[nodiscard]] BoundaryPlan plan(TechniqueRuntime& rt) {
    return plan_boundary_swaps(rt, policy_, spares_, std::nullopt);
  }

  /// Transfers every swapped process's state concurrently over the shared
  /// link; the application stays paused (full barrier) until the last
  /// transfer lands or is abandoned, then the surviving placement changes
  /// take effect (an abandoned move leaves the evicted process in place)
  /// and `finish` runs (plain SWAP resumes; DLB+SWAP repartitions first).
  void execute(TechniqueRuntime& rt,
               const std::vector<swap::SwapDecision>& decisions,
               std::size_t trace_index, std::function<void()> finish);

  /// Crash recovery: rounds of replace-dead-slot-with-online-spare until
  /// none remains (all-or-nothing; too few spares is terminal).
  void recover(TechniqueRuntime& rt);

  /// A dead spare is no candidate.
  void prune_spare(platform::HostId host) { std::erase(spares_, host); }

  /// The eviction guard's iteration-start observer: (re-)arms a watchdog
  /// that force-swaps processes stuck on reclaimed hosts.
  [[nodiscard]] std::function<void(IterativeExecution&)> guard_observer(
      TechniqueRuntime& rt);

 private:
  void apply_move(TechniqueRuntime& rt, std::size_t slot, platform::HostId to);
  void note_strike(TechniqueRuntime& rt, platform::HostId to);
  [[nodiscard]] std::vector<platform::HostId> usable_spares(
      TechniqueRuntime& rt) const;
  void recover_round(TechniqueRuntime& rt);
  void finish_recovery(TechniqueRuntime& rt);
  void handle_stall(TechniqueRuntime& rt);

  swap::PolicyParams policy_;
  std::vector<platform::HostId> spares_;
  double stall_factor_ = 3.0;
  std::map<platform::HostId, std::size_t> strikes_;  // failed transfers/dst
  std::set<platform::HostId> blacklist_;
  std::function<void(TechniqueRuntime&)> post_recovery_;
  std::size_t recovery_begin_recoveries_ = 0;
};

/// Free repartitioning (the paper treats redistribution as a lower bound:
/// zero cost).  Stateless; usable standalone (DLB) or post-swap (DLB+SWAP).
class DlbComponent {
 public:
  /// Rebalances for the placement's current effective speeds.
  static void repartition_effective(IterativeExecution& exec);

  /// Rebalances for the estimator's predicted speeds, floored at 1 flop/s
  /// so a host predicted offline keeps a sliver instead of dividing by 0.
  static void repartition_estimated(TechniqueRuntime& rt);

  /// Crash recovery: dead slots are reassigned round-robin to the
  /// surviving allocated hosts (online first, fastest first) and the work
  /// repartitioned, at zero cost like every DLB adaptation.  All hosts
  /// dead is terminal.
  static void recover(TechniqueRuntime& rt);
};

/// Checkpoint/restart against a reliable central store: policy-gated
/// whole-application restarts at boundaries, rollback to the last
/// successful checkpoint on a crash.
class CrComponent {
 public:
  CrComponent(swap::PolicyParams policy, std::vector<platform::HostId> pool)
      : policy_(std::move(policy)), pool_(std::move(pool)) {}

  /// CR's true adaptation cost, charged in the payback computation via
  /// PlanContext::adaptation_cost_s: write N states, restart the
  /// application, read N states.
  [[nodiscard]] static double adaptation_cost(IterativeExecution& exec);

  void at_boundary(TechniqueRuntime& rt, std::function<void()> resume);

  /// Crash recovery: roll back to the last successful checkpoint (from
  /// scratch when none exists), pay the restart startup, re-read the
  /// checkpoint from the reliable store and resume on the best pool hosts
  /// still alive.  Too few online pool hosts is terminal.
  void recover(TechniqueRuntime& rt);

  /// Dead hosts leave the pool for good.
  void prune(platform::HostId host) { std::erase(pool_, host); }

 private:
  [[nodiscard]] std::vector<platform::HostId> best_of_pool(
      TechniqueRuntime& rt, const std::vector<platform::HostId>& pool,
      std::size_t n) const;
  [[nodiscard]] std::vector<platform::HostId> online_pool(
      TechniqueRuntime& rt) const;
  void checkpoint_and_restart(TechniqueRuntime& rt, std::size_t trace_index,
                              std::function<void()> resume);
  void finish_restart(TechniqueRuntime& rt);

  swap::PolicyParams policy_;
  std::vector<platform::HostId> pool_;  // every allocated host still alive
  bool has_ckpt_ = false;           // a checkpoint write has succeeded
  std::size_t last_ckpt_iter_ = 0;  // iterations covered by that checkpoint
};

}  // namespace simsweep::strategy
