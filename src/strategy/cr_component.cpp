#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "strategy/components.hpp"

namespace simsweep::strategy {

double CrComponent::adaptation_cost(IterativeExecution& exec) {
  const platform::LinkSpec& link = exec.cluster().link();
  const std::size_t n = exec.spec().active_processes;
  const double transfer_each =
      link.latency_s + exec.spec().state_bytes_per_process *
                           static_cast<double>(n) / link.bandwidth_Bps;
  return 2.0 * transfer_each + exec.cluster().startup_cost(n);
}

/// N fastest pool hosts by the runtime's estimator, fastest first.
std::vector<platform::HostId> CrComponent::best_of_pool(
    TechniqueRuntime& rt, const std::vector<platform::HostId>& pool,
    std::size_t n) const {
  IterativeExecution& exec = rt.exec();
  const sim::SimTime now = rt.now();
  std::vector<platform::HostId> sorted = pool;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return rt.estimator().estimate(exec.cluster().host(a),
                                                    now) >
                            rt.estimator().estimate(exec.cluster().host(b),
                                                    now);
                   });
  sorted.resize(n);
  return sorted;
}

/// Pool hosts currently usable for a restart (crashed ones were pruned on
/// the crash callback; reclaimed-offline ones are skipped too).
std::vector<platform::HostId> CrComponent::online_pool(
    TechniqueRuntime& rt) const {
  IterativeExecution& exec = rt.exec();
  std::vector<platform::HostId> out;
  for (platform::HostId h : pool_)
    if (exec.cluster().host(h).online()) out.push_back(h);
  return out;
}

void CrComponent::at_boundary(TechniqueRuntime& rt,
                              std::function<void()> resume) {
  IterativeExecution& exec = rt.exec();
  std::vector<platform::HostId> idle;
  for (platform::HostId h : pool_)
    if (std::find(exec.placement().begin(), exec.placement().end(), h) ==
        exec.placement().end())
      idle.push_back(h);
  const BoundaryPlan planned =
      plan_boundary_swaps(rt, policy_, idle, adaptation_cost(exec));
  if (planned.plan.decisions.empty()) {
    resume();
    return;
  }
  checkpoint_and_restart(rt, planned.trace_index, std::move(resume));
}

/// Checkpoint: all processes write state to the central store.  The write
/// may fail (drawn once per checkpoint): the transfer time is still spent,
/// but the store keeps the previous successful checkpoint and the planned
/// restart is skipped.  On success: pay startup, move to the best pool
/// hosts, and every process reads the checkpoint on the new placement.
void CrComponent::checkpoint_and_restart(TechniqueRuntime& rt,
                                         std::size_t trace_index,
                                         std::function<void()> resume) {
  IterativeExecution& exec = rt.exec();
  const std::size_t n = exec.spec().active_processes;
  const bool write_fails =
      rt.faults() != nullptr && rt.faults()->draw_checkpoint_failure();
  const std::size_t ckpt_iter = exec.iteration();
  const sim::SimTime ckpt_begin = rt.now();
  rt.begin_adaptation_pause();
  auto self = rt.shared_from_this();
  rt.reliable_broadcast(n, [this, self, resume = std::move(resume), n,
                            write_fails, ckpt_iter, ckpt_begin, trace_index] {
    sim::Simulator& simulator = self->exec().simulator();
    if (obs::MetricsRegistry* metrics = simulator.metrics())
      metrics->add(obs::labelled("cr.checkpoints", "result",
                                 write_fails ? "failed" : "ok"));
    if (obs::TimelineTracer* timeline = simulator.timeline())
      timeline->span(timeline->track("strategy"), "checkpoint write", "cr",
                     ckpt_begin, simulator.now(),
                     {{"iter", static_cast<double>(ckpt_iter)},
                      {"failed", write_fails ? 1.0 : 0.0}});
    if (write_fails) {
      ++self->exec().result().failures.checkpoint_failures;
      self->charge_failure_pause();
      self->trace_swaps_applied(trace_index, 0);
      resume();
      return;
    }
    has_ckpt_ = true;
    last_ckpt_iter_ = ckpt_iter;
    self->exec().simulator().after(
        self->exec().cluster().startup_cost(n),
        [this, self, resume, n, trace_index] {
          self->exec().set_placement(best_of_pool(*self, pool_, n));
          self->reliable_broadcast(n, [this, self, resume, trace_index] {
            ++self->exec().result().adaptations;
            self->charge_adaptation_pause();
            self->trace_swaps_applied(trace_index, 1);
            resume();
          });
        });
  });
}

void CrComponent::recover(TechniqueRuntime& rt) {
  rt.begin_recovery();
  IterativeExecution& exec = rt.exec();
  exec.rollback_to_iteration(has_ckpt_ ? last_ckpt_iter_ : 0);
  const std::size_t n = exec.spec().active_processes;
  auto self = rt.shared_from_this();
  exec.simulator().after(exec.cluster().startup_cost(n), [this, self, n] {
    if (!has_ckpt_) {
      finish_restart(*self);
      return;
    }
    self->reliable_broadcast(n, [this, self] { finish_restart(*self); });
  });
}

/// Tail of a crash restart: re-check the pool (more hosts may have died
/// during the startup pause), place on the best N survivors and resume.
void CrComponent::finish_restart(TechniqueRuntime& rt) {
  IterativeExecution& exec = rt.exec();
  const std::size_t n = exec.spec().active_processes;
  const auto usable = online_pool(rt);
  if (usable.size() < n) {
    rt.mark_resource_exhausted();
    return;
  }
  exec.set_placement(best_of_pool(rt, usable, n));
  ++exec.result().adaptations;
  ++exec.result().failures.crash_recoveries;
  rt.charge_recovery_pause();
  rt.trace_recovery("checkpoint_restore", n);
  exec.restart_iteration();
}

}  // namespace simsweep::strategy
