#include "strategy/decision_trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace simsweep::strategy {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kBoundary:
      return "boundary";
    case TraceKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

namespace {

/// Shortest round-trip representation; non-finite values (an infinite
/// payback means "no gain at all") become null, which JSON can carry.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void write_trace_jsonl(std::ostream& os, const std::string& strategy,
                       std::uint64_t seed, std::size_t trial,
                       const std::vector<DecisionRecord>& trace) {
  std::string line;
  for (const DecisionRecord& rec : trace) {
    line.clear();
    line += "{\"strategy\":";
    append_string(line, strategy);
    line += ",\"trial\":" + std::to_string(trial);
    line += ",\"seed\":" + std::to_string(seed);
    line += ",\"kind\":\"";
    line += to_string(rec.kind);
    line += "\",\"iteration\":" + std::to_string(rec.iteration);
    line += ",\"time_s\":";
    append_number(line, rec.time_s);
    if (rec.kind == TraceKind::kBoundary) {
      line += ",\"measured_iter_time_s\":";
      append_number(line, rec.measured_iter_time_s);
      line += ",\"predicted_iter_time_s\":";
      append_number(line, rec.predicted_iter_time_s);
      line += ",\"adaptation_cost_s\":";
      append_number(line, rec.adaptation_cost_s);
      line += ",\"active\":" + std::to_string(rec.active_count);
      line += ",\"spares\":" + std::to_string(rec.spare_count);
      line += ",\"swaps_planned\":" + std::to_string(rec.swaps_planned);
      line += ",\"swaps_applied\":" + std::to_string(rec.swaps_applied);
      line += ",\"considered\":[";
      bool first = true;
      for (const swap::CandidateEvaluation& c : rec.considered) {
        if (!first) line += ',';
        first = false;
        line += "{\"slot\":" + std::to_string(c.slot);
        line += ",\"from\":" + std::to_string(c.from);
        line += ",\"to\":" + std::to_string(c.to);
        line += ",\"from_est_speed\":";
        append_number(line, c.from_est_speed);
        line += ",\"to_est_speed\":";
        append_number(line, c.to_est_speed);
        line += ",\"payback_iters\":";
        append_number(line, c.payback_iters);
        line += ",\"process_gain\":";
        append_number(line, c.process_gain);
        line += ",\"app_gain\":";
        append_number(line, c.app_gain);
        line += ",\"rejection\":\"";
        line += swap::to_string(c.rejection);
        line += "\"}";
      }
      line += ']';
    } else {
      line += ",\"action\":";
      append_string(line, rec.action);
      line += ",\"processes\":" + std::to_string(rec.processes);
    }
    line += "}\n";
    os << line;
  }
}

}  // namespace simsweep::strategy
