// Structured per-decision accounting for the strategy layer.
//
// Every iteration boundary at which a policy weighed candidate swaps, and
// every fault-recovery action, can be recorded as a DecisionRecord.  The
// records collect into RunResult::decision_trace (only when tracing is
// enabled — the vectors stay empty otherwise, so the hot path pays one
// branch) and serialise as JSON lines for offline analysis (CLI
// `--trace-decisions`, bench/abl_decision_trace).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "swap/planner.hpp"

namespace simsweep::strategy {

enum class TraceKind : std::uint8_t {
  kBoundary = 0,  ///< a boundary planning round (candidates weighed)
  kRecovery,      ///< a fault-recovery action (restart, replace, stall swap)
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// One traced policy decision or recovery action.
struct DecisionRecord {
  TraceKind kind = TraceKind::kBoundary;

  /// Iterations completed when the record was made.
  std::size_t iteration = 0;

  /// Simulated time of the record.
  double time_s = 0.0;

  // --- boundary records ---------------------------------------------------

  /// Last measured iteration time fed to the planner (0 on the first
  /// boundary: nothing measured yet, so the planner declines to act).
  double measured_iter_time_s = 0.0;

  /// Planner's predicted iteration time for the unmodified placement.
  double predicted_iter_time_s = 0.0;

  /// Adaptation pause charged in the payback computation: the per-process
  /// transfer estimate for swapping, the full write + restart + read cost
  /// for checkpoint/restart.
  double adaptation_cost_s = 0.0;

  std::size_t active_count = 0;
  std::size_t spare_count = 0;

  /// Every candidate the planner examined, with its payback distance and
  /// the policy parameter that rejected it (if any).
  std::vector<swap::CandidateEvaluation> considered;

  std::size_t swaps_planned = 0;

  /// Planned swaps whose state transfer actually landed (abandoned moves
  /// leave the evicted process in place); for CR, restarts completed.
  std::size_t swaps_applied = 0;

  // --- recovery records ---------------------------------------------------

  /// What the technique did: "restart_from_scratch",
  /// "rebalance_onto_survivors", "replace_on_spares", "checkpoint_restore",
  /// "stall_force_swap", "host_blacklisted", "resource_exhausted".
  std::string action;

  /// Processes affected by the action.
  std::size_t processes = 0;
};

/// Serialises one trace as JSON lines: one object per record, annotated
/// with the run's identity so traces from many trials can be concatenated.
void write_trace_jsonl(std::ostream& os, const std::string& strategy,
                       std::uint64_t seed, std::size_t trial,
                       const std::vector<DecisionRecord>& trace);

}  // namespace simsweep::strategy
