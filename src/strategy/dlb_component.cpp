#include <algorithm>
#include <vector>

#include "strategy/components.hpp"

namespace simsweep::strategy {

void DlbComponent::repartition_effective(IterativeExecution& exec) {
  exec.set_partition(app::WorkPartition::proportional(
      effective_speeds(exec.cluster(), exec.placement())));
}

void DlbComponent::repartition_estimated(TechniqueRuntime& rt) {
  IterativeExecution& exec = rt.exec();
  const sim::SimTime now = rt.now();
  std::vector<double> speeds;
  speeds.reserve(exec.placement().size());
  for (platform::HostId h : exec.placement())
    speeds.push_back(
        std::max(1.0, rt.estimator().estimate(exec.cluster().host(h), now)));
  exec.set_partition(app::WorkPartition::proportional(speeds));
}

void DlbComponent::recover(TechniqueRuntime& rt) {
  IterativeExecution& exec = rt.exec();
  std::vector<std::size_t> dead;
  std::vector<platform::HostId> survivors;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot) {
    const platform::HostId h = exec.placement()[slot];
    if (exec.cluster().host(h).crashed()) {
      dead.push_back(slot);
    } else if (std::find(survivors.begin(), survivors.end(), h) ==
               survivors.end()) {
      survivors.push_back(h);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     const auto& ha = exec.cluster().host(a);
                     const auto& hb = exec.cluster().host(b);
                     if (ha.online() != hb.online()) return ha.online();
                     return ha.effective_speed() > hb.effective_speed();
                   });
  if (survivors.empty()) {
    rt.mark_resource_exhausted();
    return;
  }
  for (std::size_t i = 0; i < dead.size(); ++i)
    exec.move_process(dead[i], survivors[i % survivors.size()]);
  exec.result().failures.crash_recoveries += dead.size();
  repartition_effective(exec);
  rt.trace_recovery("rebalance_onto_survivors", dead.size());
  exec.restart_iteration();
}

}  // namespace simsweep::strategy
