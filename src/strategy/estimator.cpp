#include "strategy/estimator.hpp"

#include <utility>

#include "strategy/schedule.hpp"
#include "swap/policy.hpp"

namespace simsweep::strategy {

double WindowEstimator::estimate(const platform::Host& host,
                                 sim::SimTime now) {
  return estimate_speed(host, now, window_);
}

std::string WindowEstimator::name() const {
  return "window_" + std::to_string(static_cast<int>(window_)) + "s";
}

ForecastEstimator::ForecastEstimator(Factory factory, std::string label)
    : factory_(std::move(factory)), label_(std::move(label)) {
  if (!factory_)
    throw std::invalid_argument("ForecastEstimator: null factory");
}

double ForecastEstimator::estimate(const platform::Host& host,
                                   sim::SimTime now) {
  PerHost& state = hosts_[host.id()];
  if (!state.forecaster) state.forecaster = factory_();
  const auto& history = host.load_history();
  for (; state.consumed < history.size(); ++state.consumed) {
    const sim::Sample& s = history[state.consumed];
    state.forecaster->observe(
        s.time, platform::Host::availability_of_sample(s.value));
  }
  // The step series still holds its last value at `now`; telling the
  // forecaster keeps window/EWMA predictors current on quiet hosts.
  state.forecaster->observe(now, host.availability());
  return host.peak_speed() * state.forecaster->predict(host.availability());
}

std::shared_ptr<SpeedEstimator> make_window_estimator(double window_s) {
  return std::make_shared<WindowEstimator>(window_s);
}

std::shared_ptr<SpeedEstimator> make_forecast_estimator(
    ForecastEstimator::Factory factory, std::string label) {
  return std::make_shared<ForecastEstimator>(std::move(factory),
                                             std::move(label));
}

std::shared_ptr<SpeedEstimator> make_policy_estimator(
    const swap::PolicyParams& policy,
    const std::shared_ptr<SpeedEstimator>& preferred) {
  if (preferred) return preferred->fresh();
  return make_window_estimator(policy.history_window_s);
}

}  // namespace simsweep::strategy
