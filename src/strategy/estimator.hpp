// Pluggable host-speed prediction for the swapping strategies.
//
// The paper's runtime estimates each processor's near-future performance
// from a configurable amount of history (§4.1).  WindowEstimator implements
// exactly that semantics (flat time-weighted window over the availability
// history; 0 = instantaneous).  ForecastEstimator plugs in any forecaster
// from simsweep::forecast (EWMA, sliding median, the NWS-style adaptive
// ensemble), which the abl_predictor bench compares.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "forecast/forecaster.hpp"
#include "platform/host.hpp"

namespace simsweep::strategy {

class SpeedEstimator {
 public:
  virtual ~SpeedEstimator() = default;

  /// Predicted sustained flop/s for one application process on `host`.
  [[nodiscard]] virtual double estimate(const platform::Host& host,
                                        sim::SimTime now) = 0;

  /// A fresh, unlearned instance of the same configuration.  Strategies
  /// call this once per launched run, so one SwapOptions value can be
  /// reused across trials without leaking state between simulations.
  [[nodiscard]] virtual std::shared_ptr<SpeedEstimator> fresh() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's semantics: peak speed times the mean availability over the
/// trailing `window_s` seconds (instantaneous when 0).
class WindowEstimator final : public SpeedEstimator {
 public:
  explicit WindowEstimator(double window_s) : window_(window_s) {}
  [[nodiscard]] double estimate(const platform::Host& host,
                                sim::SimTime now) override;
  [[nodiscard]] std::shared_ptr<SpeedEstimator> fresh() const override {
    return std::make_shared<WindowEstimator>(window_);
  }
  [[nodiscard]] std::string name() const override;

 private:
  double window_;
};

/// Feeds each host's availability history into a per-host forecaster and
/// predicts peak * forecast(availability).
class ForecastEstimator final : public SpeedEstimator {
 public:
  using Factory = std::function<std::unique_ptr<forecast::Forecaster>()>;

  /// `factory` builds one fresh forecaster per host; `label` names the
  /// configuration in reports.
  ForecastEstimator(Factory factory, std::string label);

  [[nodiscard]] double estimate(const platform::Host& host,
                                sim::SimTime now) override;
  [[nodiscard]] std::shared_ptr<SpeedEstimator> fresh() const override {
    return std::make_shared<ForecastEstimator>(factory_, label_);
  }
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  struct PerHost {
    std::unique_ptr<forecast::Forecaster> forecaster;
    std::size_t consumed = 0;  ///< load_history samples already observed
  };
  Factory factory_;
  std::string label_;
  std::map<platform::HostId, PerHost> hosts_;
};

[[nodiscard]] std::shared_ptr<SpeedEstimator> make_window_estimator(
    double window_s);
[[nodiscard]] std::shared_ptr<SpeedEstimator> make_forecast_estimator(
    ForecastEstimator::Factory factory, std::string label);

}  // namespace simsweep::strategy

namespace simsweep::swap {
struct PolicyParams;  // swap/policy.hpp
}

namespace simsweep::strategy {

/// The one place that turns a policy plus an optional caller-preferred
/// estimator into the estimator a launched run actually uses: a fresh()
/// clone of `preferred` when given (so one configured estimator can be
/// reused across trials without leaking learned state), otherwise the
/// paper's windowed mean driven by the policy's history_window_s.
[[nodiscard]] std::shared_ptr<SpeedEstimator> make_policy_estimator(
    const swap::PolicyParams& policy,
    const std::shared_ptr<SpeedEstimator>& preferred = nullptr);

}  // namespace simsweep::strategy
