#include "strategy/executor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace simsweep::strategy {

IterativeExecution::IterativeExecution(
    sim::Simulator& simulator, platform::Cluster& cluster,
    net::SharedLinkNetwork& network, const app::AppSpec& spec,
    std::vector<platform::HostId> placement, app::WorkPartition partition,
    BoundaryHook hook)
    : simulator_(simulator),
      cluster_(cluster),
      network_(network),
      spec_(spec),
      placement_(std::move(placement)),
      partition_(std::move(partition)),
      hook_(std::move(hook)) {
  spec_.validate();
  if (placement_.size() != spec_.active_processes)
    throw std::invalid_argument(
        "IterativeExecution: placement size != active processes");
  if (partition_.slots() != spec_.active_processes)
    throw std::invalid_argument(
        "IterativeExecution: partition slots != active processes");
  for (platform::HostId h : placement_)
    if (h >= cluster_.size())
      throw std::invalid_argument("IterativeExecution: placement host out of range");
}

void IterativeExecution::start(double startup_cost_s) {
  if (startup_cost_s < 0.0)
    throw std::invalid_argument("IterativeExecution: negative startup cost");
  result_.startup_s = startup_cost_s;
  simulator_.after(startup_cost_s, [this] { begin_iteration(); });
}

double IterativeExecution::last_iteration_time() const {
  if (result_.iteration_times_s.empty())
    throw std::logic_error("last_iteration_time: no iteration completed yet");
  return result_.iteration_times_s.back();
}

void IterativeExecution::move_process(std::size_t slot, platform::HostId host) {
  if (slot >= placement_.size())
    throw std::invalid_argument("move_process: slot out of range");
  if (host >= cluster_.size())
    throw std::invalid_argument("move_process: host out of range");
  placement_[slot] = host;
}

void IterativeExecution::set_placement(std::vector<platform::HostId> placement) {
  if (placement.size() != spec_.active_processes)
    throw std::invalid_argument("set_placement: wrong size");
  for (platform::HostId h : placement)
    if (h >= cluster_.size())
      throw std::invalid_argument("set_placement: host out of range");
  placement_ = std::move(placement);
}

void IterativeExecution::set_partition(app::WorkPartition partition) {
  if (partition.slots() != spec_.active_processes)
    throw std::invalid_argument("set_partition: wrong slot count");
  partition_ = std::move(partition);
}

void IterativeExecution::begin_iteration() {
  iter_start_ = simulator_.now();
  in_flight_ = true;
  pending_ = placement_.size();
  tasks_.clear();
  tasks_.reserve(placement_.size());
  for (std::size_t slot = 0; slot < placement_.size(); ++slot) {
    const double work =
        spec_.work_per_iteration_flops * partition_.fraction(slot);
    tasks_.push_back(cluster_.host(placement_[slot])
                         .start_compute(work, [this] { compute_done(); }));
  }
  if (iteration_start_observer_) iteration_start_observer_(*this);
}

double IterativeExecution::abort_iteration() {
  if (!in_flight_)
    throw std::logic_error("abort_iteration: no iteration in flight");
  for (auto& task : tasks_) task->cancel();
  for (auto& flow : flows_) flow->cancel();
  tasks_.clear();
  flows_.clear();
  pending_ = 0;
  in_flight_ = false;
  // The abandoned partial iteration is adaptation-induced lost time; charge
  // it so makespan always decomposes into startup + iterations + overhead.
  const double lost = simulator_.now() - iter_start_;
  result_.adaptation_overhead_s += lost;
  if (obs::MetricsRegistry* metrics = simulator_.metrics()) {
    metrics->add("app.iterations_aborted");
    metrics->observe("app.iteration_lost_s", lost);
  }
  if (obs::TimelineTracer* timeline = simulator_.timeline())
    timeline->span(timeline->track("app"), "aborted iteration", "app",
                   iter_start_, simulator_.now(),
                   {{"iter",
                     static_cast<double>(result_.iterations_completed)}});
  return lost;
}

void IterativeExecution::rollback_to_iteration(std::size_t iteration) {
  if (in_flight_)
    throw std::logic_error("rollback_to_iteration: iteration in flight");
  if (done_)
    throw std::logic_error("rollback_to_iteration: run already finished");
  if (iteration > result_.iterations_completed)
    throw std::invalid_argument(
        "rollback_to_iteration: target beyond completed iterations");
  double lost = 0.0;
  std::size_t rolled_back = 0;
  while (result_.iterations_completed > iteration) {
    lost += result_.iteration_times_s.back();
    result_.iteration_times_s.pop_back();
    --result_.iterations_completed;
    ++result_.failures.iterations_recomputed;
    ++rolled_back;
  }
  result_.adaptation_overhead_s += lost;
  result_.failures.time_lost_s += lost;
  if (obs::MetricsRegistry* metrics = simulator_.metrics()) {
    metrics->add("app.rollbacks");
    metrics->add("app.iterations_rolled_back", rolled_back);
  }
  if (obs::TimelineTracer* timeline = simulator_.timeline())
    timeline->instant(timeline->track("app"), "rollback", "app",
                      simulator_.now(),
                      {{"to_iteration", static_cast<double>(iteration)},
                       {"iterations_lost", static_cast<double>(rolled_back)},
                       {"time_lost_s", lost}});
}

void IterativeExecution::restart_iteration() {
  if (in_flight_)
    throw std::logic_error("restart_iteration: iteration already running");
  if (done_) throw std::logic_error("restart_iteration: run already finished");
  begin_iteration();
}

void IterativeExecution::compute_done() {
  if (--pending_ > 0) return;
  tasks_.clear();
  // Communication phase: every process exchanges its boundary data over the
  // shared link concurrently.  A single-process run has nobody to talk to.
  if (placement_.size() < 2 || spec_.comm_bytes_per_process <= 0.0) {
    iteration_complete();
    return;
  }
  pending_ = placement_.size();
  flows_.clear();
  flows_.reserve(placement_.size());
  for (std::size_t slot = 0; slot < placement_.size(); ++slot) {
    flows_.push_back(network_.start_transfer(spec_.comm_bytes_per_process,
                                             [this] { comm_done(); }));
  }
}

void IterativeExecution::comm_done() {
  if (--pending_ > 0) return;
  flows_.clear();
  iteration_complete();
}

void IterativeExecution::iteration_complete() {
  in_flight_ = false;
  const double iter_time = simulator_.now() - iter_start_;
  audit::InvariantAuditor* auditor = simulator_.auditor();
  if (auditor != nullptr && auditor->enabled() &&
      iter_time < -sim::kTimeEpsilon)
    auditor->report("strategy", "non_negative_iteration_time",
                    simulator_.now(),
                    "iteration " +
                        std::to_string(result_.iterations_completed) +
                        " measured " + std::to_string(iter_time) + " s");
  result_.iteration_times_s.push_back(iter_time);
  ++result_.iterations_completed;
  if (obs::MetricsRegistry* metrics = simulator_.metrics()) {
    metrics->add("app.iterations_completed");
    metrics->observe("app.iteration_time_s", iter_time);
  }
  if (obs::TimelineTracer* timeline = simulator_.timeline())
    timeline->span(
        timeline->track("app"), "iteration", "app", iter_start_,
        simulator_.now(),
        {{"iter", static_cast<double>(result_.iterations_completed - 1)}});
  if (result_.iterations_completed >= spec_.iterations) {
    done_ = true;
    result_.finished = true;
    result_.makespan_s = simulator_.now();
    if (auditor != nullptr && auditor->enabled()) audit_makespan();
    return;
  }
  if (hook_) {
    hook_(*this, [this] { begin_iteration(); });
  } else {
    begin_iteration();
  }
}

// The paper's headline quantity must balance its own books: every simulated
// second between submission and completion is either startup, a completed
// iteration, or an adaptation/recovery pause charged to overhead (aborted
// partial iterations and rolled-back work are folded into the overhead term
// by abort_iteration/rollback_to_iteration).  The tolerance is purely for
// floating-point accumulation over thousands of charges; an uncharged pause
// would show up as whole seconds, not nanoseconds.
void IterativeExecution::audit_makespan() {
  const double accounted =
      result_.startup_s + result_.adaptation_overhead_s +
      std::accumulate(result_.iteration_times_s.begin(),
                      result_.iteration_times_s.end(), 0.0);
  const double drift = result_.makespan_s - accounted;
  if (std::fabs(drift) >
      1e-9 * std::fmax(1.0, result_.makespan_s) + 1e-6)
    simulator_.auditor()->report(
        "strategy", "makespan_decomposition", simulator_.now(),
        "makespan " + std::to_string(result_.makespan_s) +
            " s vs startup+iterations+overhead " + std::to_string(accounted) +
            " s (drift " + std::to_string(drift) + " s)");
  if (result_.iteration_times_s.size() != result_.iterations_completed)
    simulator_.auditor()->report(
        "strategy", "iteration_count_consistent", simulator_.now(),
        std::to_string(result_.iterations_completed) +
            " iterations completed but " +
            std::to_string(result_.iteration_times_s.size()) +
            " durations recorded");
}

}  // namespace simsweep::strategy
