// BSP-style iterative application executor.
//
// Runs the simulated application: startup delay, then a loop of
// [compute phase || on every active host] -> [communication phase || over
// the shared link] -> iteration boundary.  At each boundary a strategy hook
// may adapt the execution (swap processes, repartition work, checkpoint and
// restart) before resuming; the hook receives a continuation so adaptation
// costs can be modelled with real simulated events.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "app/app_spec.hpp"
#include "net/shared_link.hpp"
#include "platform/cluster.hpp"
#include "simcore/simulator.hpp"
#include "strategy/run_result.hpp"

namespace simsweep::strategy {

class IterativeExecution {
 public:
  /// Called after each completed iteration (and not after the last).  The
  /// hook may mutate placement/partition via the mutators below, schedule
  /// simulated work, and must eventually invoke `resume` exactly once.
  using BoundaryHook =
      std::function<void(IterativeExecution&, std::function<void()> resume)>;

  IterativeExecution(sim::Simulator& simulator, platform::Cluster& cluster,
                     net::SharedLinkNetwork& network, const app::AppSpec& spec,
                     std::vector<platform::HostId> placement,
                     app::WorkPartition partition, BoundaryHook hook);

  /// Schedules the run: `startup_cost_s` of startup delay, then iterations.
  /// Call once, then run the simulator.
  void start(double startup_cost_s);

  /// True once all iterations completed.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Result so far; complete once done() is true.
  [[nodiscard]] const RunResult& result() const noexcept { return result_; }
  [[nodiscard]] RunResult& result() noexcept { return result_; }

  // --- state visible to boundary hooks -----------------------------------

  [[nodiscard]] const std::vector<platform::HostId>& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const app::WorkPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const app::AppSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] platform::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] net::SharedLinkNetwork& network() noexcept { return network_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

  /// Duration of the most recently completed iteration.
  [[nodiscard]] double last_iteration_time() const;

  /// Iterations completed so far.
  [[nodiscard]] std::size_t iteration() const noexcept {
    return result_.iterations_completed;
  }

  // --- mutators for boundary hooks ----------------------------------------

  /// Moves the process in `slot` to `host` (takes effect next iteration).
  void move_process(std::size_t slot, platform::HostId host);

  /// Replaces the whole placement (size must match active process count).
  void set_placement(std::vector<platform::HostId> placement);

  /// Replaces the work partition (slot count must match).
  void set_partition(app::WorkPartition partition);

  // --- mid-iteration interruption (eviction handling) ----------------------

  /// Observer invoked every time an iteration starts (including restarts);
  /// strategies use it to arm stall watchdogs.
  void set_iteration_start_observer(
      std::function<void(IterativeExecution&)> observer) {
    iteration_start_observer_ = std::move(observer);
  }

  /// True while an iteration's compute or communication phase is in flight.
  [[nodiscard]] bool iteration_in_flight() const noexcept {
    return in_flight_;
  }

  /// Abandons the in-flight iteration: running compute tasks and transfers
  /// are cancelled and their partial progress is lost.  The caller must
  /// eventually call restart_iteration() (possibly after simulated
  /// recovery work such as a forced swap).  Returns the abandoned partial
  /// iteration time, already charged to adaptation overhead; fault-recovery
  /// callers additionally book it as time lost to failures.
  double abort_iteration();

  /// Re-runs the iteration abandoned by abort_iteration().
  void restart_iteration();

  /// Rolls completed iterations back to `iteration` (fault recovery: CR
  /// restores the last successful checkpoint, NONE restarts from scratch).
  /// The rolled-back iterations' durations move into adaptation overhead
  /// and failure accounting; the work will be recomputed.  Requires no
  /// iteration in flight.
  void rollback_to_iteration(std::size_t iteration);

 private:
  void begin_iteration();
  void compute_done();
  void comm_done();
  void iteration_complete();
  void audit_makespan();

  sim::Simulator& simulator_;
  platform::Cluster& cluster_;
  net::SharedLinkNetwork& network_;
  app::AppSpec spec_;
  std::vector<platform::HostId> placement_;  // slot -> host
  app::WorkPartition partition_;
  BoundaryHook hook_;

  RunResult result_;
  bool done_ = false;
  bool in_flight_ = false;
  sim::SimTime iter_start_ = 0.0;
  std::size_t pending_ = 0;  // outstanding compute tasks / flows this phase
  std::vector<std::shared_ptr<platform::ComputeTask>> tasks_;
  std::vector<std::shared_ptr<net::Flow>> flows_;
  std::function<void(IterativeExecution&)> iteration_start_observer_;
};

}  // namespace simsweep::strategy
