// Outcome of one simulated application run.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "audit/auditor.hpp"
#include "strategy/decision_trace.hpp"

namespace simsweep::obs {
class MetricsRegistry;
class TimelineTracer;
}  // namespace simsweep::obs

namespace simsweep::strategy {

/// Failure accounting for one run under fault injection.  All zero when
/// faults are disabled.
struct FailureStats {
  /// Permanent host crashes that fired during the run (cluster-wide).
  std::size_t host_crashes = 0;

  /// State-transfer attempts that died partway.
  std::size_t transfers_failed = 0;

  /// Failed attempts that were retried after backoff.
  std::size_t transfers_retried = 0;

  /// Transfers abandoned after exhausting every retry.
  std::size_t transfers_abandoned = 0;

  /// CR checkpoint writes that failed (the previous successful checkpoint
  /// remains the recovery point).
  std::size_t checkpoint_failures = 0;

  /// Crashed active processes successfully replaced/restarted.
  std::size_t crash_recoveries = 0;

  /// Hosts blacklisted by the swap executor after repeated transfer
  /// failures.
  std::size_t hosts_blacklisted = 0;

  /// Completed iterations rolled back and recomputed (CR restores, NONE
  /// restarts from scratch).
  std::size_t iterations_recomputed = 0;

  /// Simulated time attributable to failures: dead partial transfers,
  /// retry backoffs, recovery pauses, recomputed iterations.  Overlaps with
  /// adaptation_overhead_s (failure recovery is charged to both views so
  /// the makespan decomposition stays intact).
  double time_lost_s = 0.0;

  friend bool operator==(const FailureStats&, const FailureStats&) = default;
};

struct RunResult {
  /// Wall-clock (simulated) time from submission to completion, including
  /// startup and all adaptation overheads.
  double makespan_s = 0.0;

  std::size_t iterations_completed = 0;

  /// Adaptation events: swaps for SWAP, restarts for CR, repartitions for
  /// DLB, always 0 for NONE.
  std::size_t adaptations = 0;

  /// Simulated time spent paused for adaptation (state transfers,
  /// checkpoint writes/reads, restart startup costs).  Excludes the initial
  /// startup, which is reported separately.
  double adaptation_overhead_s = 0.0;

  /// Initial MPI startup cost (includes over-allocated processes).
  double startup_s = 0.0;

  /// Per-iteration durations, in order.
  std::vector<double> iteration_times_s;

  /// False when the run hit the simulation horizon before completing.
  bool finished = false;

  /// True when the simulation went idle before the horizon with the
  /// application unfinished: the strategy deadlocked (e.g. a boundary hook
  /// never resumed).  Distinct from a horizon timeout, which is merely a
  /// slow run; a stalled run's makespan is meaningless.  Also set for
  /// resource-exhausted runs, which stop early by design.
  bool stalled = false;

  /// Diagnostic: the strategy gave up because no usable host remained to
  /// recover onto (spare pool exhausted / too few online hosts after
  /// crashes).  The run stops cleanly instead of deadlocking; makespan is
  /// the give-up time and `stalled` is set by the experiment layer.
  bool resource_exhausted = false;

  /// Fault-injection accounting; all zero when faults are disabled.
  FailureStats failures;

  /// Per-decision records (boundary planning rounds, recovery actions).
  /// Empty unless the run was launched with decision tracing enabled.
  std::vector<DecisionRecord> decision_trace;

  /// Invariant violations collected while auditing in warn mode.  Always
  /// empty when auditing is off (nothing is checked) or in fail mode (the
  /// first violation throws audit::AuditFailure instead).
  std::vector<audit::Violation> audit_report;

  /// Per-trial metrics registry; null unless the run was launched with
  /// ExperimentConfig::obs.metrics.  A pure function of (config, seed):
  /// merging per-trial registries in trial order is --jobs invariant.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  /// Per-trial timeline tracer; null unless obs.timeline was set.
  std::shared_ptr<obs::TimelineTracer> timeline;
};

}  // namespace simsweep::strategy
