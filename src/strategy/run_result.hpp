// Outcome of one simulated application run.
#pragma once

#include <cstddef>
#include <vector>

namespace simsweep::strategy {

struct RunResult {
  /// Wall-clock (simulated) time from submission to completion, including
  /// startup and all adaptation overheads.
  double makespan_s = 0.0;

  std::size_t iterations_completed = 0;

  /// Adaptation events: swaps for SWAP, restarts for CR, repartitions for
  /// DLB, always 0 for NONE.
  std::size_t adaptations = 0;

  /// Simulated time spent paused for adaptation (state transfers,
  /// checkpoint writes/reads, restart startup costs).  Excludes the initial
  /// startup, which is reported separately.
  double adaptation_overhead_s = 0.0;

  /// Initial MPI startup cost (includes over-allocated processes).
  double startup_s = 0.0;

  /// Per-iteration durations, in order.
  std::vector<double> iteration_times_s;

  /// False when the run hit the simulation horizon before completing.
  bool finished = false;

  /// True when the simulation went idle before the horizon with the
  /// application unfinished: the strategy deadlocked (e.g. a boundary hook
  /// never resumed).  Distinct from a horizon timeout, which is merely a
  /// slow run; a stalled run's makespan is meaningless.
  bool stalled = false;
};

}  // namespace simsweep::strategy
