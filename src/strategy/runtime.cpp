#include "strategy/runtime.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "swap/planner.hpp"

namespace simsweep::strategy {

double estimate_comm_time(const app::AppSpec& spec,
                          const platform::LinkSpec& link) {
  if (spec.active_processes < 2 || spec.comm_bytes_per_process <= 0.0)
    return 0.0;
  const double total_bytes =
      spec.comm_bytes_per_process * static_cast<double>(spec.active_processes);
  return link.latency_s + total_bytes / link.bandwidth_Bps;
}

void Remediation::at_boundary(TechniqueRuntime& /*rt*/,
                              std::function<void()> resume) {
  resume();
}

void Remediation::on_host_crashed(TechniqueRuntime& /*rt*/,
                                  platform::HostId /*host*/) {}

std::function<void(IterativeExecution&)> Remediation::iteration_start_observer(
    TechniqueRuntime& /*rt*/) {
  return {};
}

IterativeExecution::BoundaryHook TechniqueRuntime::boundary_hook(
    std::shared_ptr<TechniqueRuntime> rt) {
  return [rt = std::move(rt)](IterativeExecution&,
                              std::function<void()> resume) {
    rt->on_boundary(std::move(resume));
  };
}

void TechniqueRuntime::on_boundary(std::function<void()> resume) {
  watchdog_.cancel();  // boundary reached: the iteration completed
  remediation_->at_boundary(*this, std::move(resume));
}

void TechniqueRuntime::wire(IterativeExecution& exec,
                            std::unique_ptr<Remediation> remediation) {
  exec_ = &exec;
  remediation_ = std::move(remediation);
  auto arm = remediation_->iteration_start_observer(*this);
  if (faults_ == nullptr) {
    if (arm) exec_->set_iteration_start_observer(std::move(arm));
    return;
  }
  auto self = shared_from_this();
  faults_->on_crash([self](platform::HostId host) {
    self->remediation_->on_host_crashed(*self, host);
    self->react_to_crash();
  });
  exec_->set_iteration_start_observer(
      [self, arm = std::move(arm)](IterativeExecution& e) {
        if (arm) arm(e);
        self->react_to_crash();
      });
}

void TechniqueRuntime::react_to_crash() {
  IterativeExecution& e = *exec_;
  if (recovering_ || e.done() || e.result().resource_exhausted) return;
  if (!e.iteration_in_flight() || !placement_hit_by_crash()) return;
  abort_for_crash();
  remediation_->recover(*this);
}

// --------------------------------------------------------- fault primitives

bool TechniqueRuntime::placement_hit_by_crash() {
  for (platform::HostId h : exec_->placement())
    if (exec_->cluster().host(h).crashed()) return true;
  return false;
}

void TechniqueRuntime::abort_for_crash() {
  exec_->result().failures.time_lost_s += exec_->abort_iteration();
}

void TechniqueRuntime::mark_resource_exhausted() {
  exec_->result().resource_exhausted = true;
  exec_->result().makespan_s = now();
  recovering_ = false;
  transfers_.clear();
  if (obs::MetricsRegistry* metrics = exec_->simulator().metrics())
    metrics->add("strategy.resource_exhausted");
  trace_recovery("resource_exhausted", 0);
}

// ------------------------------------------------------------------ transfers

void TechniqueRuntime::start_faulty_transfer(
    double bytes, std::size_t attempt, std::function<void()> on_attempt_failed,
    std::function<void(bool)> done) {
  IterativeExecution& exec = *exec_;
  if (faults_ == nullptr || !faults_->draw_transfer_failure()) {
    transfers_.push_back(exec.network().start_transfer(
        bytes, [done = std::move(done)] { done(true); }));
    return;
  }
  ++exec.result().failures.transfers_failed;
  const double partial = bytes * faults_->draw_failure_fraction();
  const sim::SimTime begin = exec.simulator().now();
  auto self = shared_from_this();
  transfers_.push_back(exec.network().start_transfer(
      partial, [self, bytes, attempt, begin,
                on_attempt_failed = std::move(on_attempt_failed),
                done = std::move(done)] {
        IterativeExecution& e = *self->exec_;
        auto& fs = e.result().failures;
        fs.time_lost_s += e.simulator().now() - begin;
        if (on_attempt_failed) on_attempt_failed();
        if (attempt >= self->faults_->spec().max_transfer_retries) {
          ++fs.transfers_abandoned;
          if (obs::MetricsRegistry* metrics = e.simulator().metrics())
            metrics->add("strategy.transfers_abandoned");
          done(false);
          return;
        }
        ++fs.transfers_retried;
        if (obs::MetricsRegistry* metrics = e.simulator().metrics())
          metrics->add("strategy.transfer_retries");
        const double backoff = self->faults_->retry_backoff(attempt);
        fs.time_lost_s += backoff;
        e.simulator().after(backoff,
                            [self, bytes, attempt, on_attempt_failed, done] {
                              self->start_faulty_transfer(
                                  bytes, attempt + 1, on_attempt_failed, done);
                            });
      }));
}

void TechniqueRuntime::transfer_moves(
    const std::vector<PlannedMove>& moves,
    std::function<void(platform::HostId)> on_strike,
    std::function<void(std::size_t, platform::HostId)> apply,
    std::function<void(std::size_t)> done) {
  pending_ = moves.size();
  transfers_.clear();
  auto self = shared_from_this();
  auto landed = std::make_shared<std::size_t>(0);
  for (const PlannedMove& move : moves) {
    start_faulty_transfer(
        exec_->spec().state_bytes_per_process, 0,
        on_strike ? std::function<void()>(
                        [on_strike, to = move.to] { on_strike(to); })
                  : std::function<void()>{},
        [self, landed, apply, done, slot = move.slot, to = move.to](bool ok) {
          if (ok) {
            ++*landed;
            apply(slot, to);
          }
          if (--self->pending_ == 0) {
            self->transfers_.clear();
            done(*landed);
          }
        });
  }
}

void TechniqueRuntime::reliable_broadcast(std::size_t count,
                                          std::function<void()> done) {
  pending_ = count;
  transfers_.clear();
  auto self = shared_from_this();
  for (std::size_t i = 0; i < count; ++i) {
    transfers_.push_back(exec_->network().start_transfer(
        exec_->spec().state_bytes_per_process, [self, done] {
          if (--self->pending_ == 0) {
            self->transfers_.clear();
            done();
          }
        }));
  }
}

// ----------------------------------------------------------- pause accounting

void TechniqueRuntime::begin_recovery() {
  watchdog_.cancel();
  recovering_ = true;
  pause_start_ = now();
}

void TechniqueRuntime::charge_adaptation_pause() {
  exec_->result().adaptation_overhead_s += audited_pause("adaptation");
}

void TechniqueRuntime::charge_failure_pause() {
  const double pause = audited_pause("failure");
  exec_->result().adaptation_overhead_s += pause;
  exec_->result().failures.time_lost_s += pause;
}

/// The elapsed pause being charged; audited non-negative (a negative charge
/// means begin_*_pause was never called for this charge, silently shrinking
/// the overhead the figures report).
double TechniqueRuntime::audited_pause(const char* kind) {
  const double pause = now() - pause_start_;
  audit::InvariantAuditor* auditor = exec_->simulator().auditor();
  if (auditor != nullptr && auditor->enabled() && pause < -sim::kTimeEpsilon)
    auditor->report("strategy", "non_negative_pause", now(),
                    std::string(kind) + " pause of " + std::to_string(pause) +
                        " s (pause clock started at t=" +
                        std::to_string(pause_start_) + ")");
  if (obs::MetricsRegistry* metrics = exec_->simulator().metrics())
    metrics->histogram(obs::labelled("strategy.pause_s", "kind", kind))
        .observe(pause);
  // A negative pause is an accounting bug the auditor reports above; the
  // tracer would reject the inverted span, so only well-formed pauses are
  // drawn.
  if (pause >= 0.0)
    if (obs::TimelineTracer* timeline = exec_->simulator().timeline())
      timeline->span(timeline->track("strategy"),
                     std::string(kind) + " pause", "strategy", pause_start_,
                     now());
  return pause;
}

void TechniqueRuntime::charge_recovery_pause() {
  charge_failure_pause();
  recovering_ = false;
}

// ------------------------------------------------------------ decision traces

std::size_t TechniqueRuntime::trace_boundary(const swap::SwapPlan& plan,
                                             double measured_iter_time_s,
                                             double adaptation_cost_s,
                                             std::size_t active_count,
                                             std::size_t spare_count) {
  // Planner observability is independent of decision tracing: every plan is
  // counted (with per-reason rejection counters bridging the decision-trace
  // taxonomy into the metrics snapshot) even when no trace is collected.
  if (obs::MetricsRegistry* metrics = exec_->simulator().metrics()) {
    metrics->add("swap.plans");
    metrics->add("swap.candidates_evaluated", plan.considered.size());
    metrics->add("swap.swaps_planned", plan.decisions.size());
    for (const swap::CandidateEvaluation& cand : plan.considered) {
      if (cand.accepted())
        metrics->add("swap.candidates_accepted");
      else
        metrics->add(obs::labelled("swap.candidates_rejected", "reason",
                                   swap::to_string(cand.rejection)));
    }
  }
  if (obs::TimelineTracer* timeline = exec_->simulator().timeline())
    timeline->instant(
        timeline->track("strategy"), "plan_boundary", "swap", now(),
        {{"considered", static_cast<double>(plan.considered.size())},
         {"planned", static_cast<double>(plan.decisions.size())},
         {"measured_iter_s", measured_iter_time_s}});
  if (!trace_enabled_) return kNoTrace;
  DecisionRecord rec;
  rec.kind = TraceKind::kBoundary;
  rec.iteration = exec_->iteration();
  rec.time_s = now();
  rec.measured_iter_time_s = measured_iter_time_s;
  rec.predicted_iter_time_s = plan.predicted_iter_time_s;
  rec.adaptation_cost_s = adaptation_cost_s;
  rec.active_count = active_count;
  rec.spare_count = spare_count;
  rec.considered = plan.considered;
  rec.swaps_planned = plan.decisions.size();
  auto& trace = exec_->result().decision_trace;
  trace.push_back(std::move(rec));
  return trace.size() - 1;
}

void TechniqueRuntime::trace_swaps_applied(std::size_t index,
                                           std::size_t applied) {
  if (index == kNoTrace) return;
  exec_->result().decision_trace[index].swaps_applied = applied;
}

void TechniqueRuntime::trace_recovery(const char* action,
                                      std::size_t processes) {
  if (obs::MetricsRegistry* metrics = exec_->simulator().metrics())
    metrics->add(obs::labelled("strategy.recoveries", "action", action));
  if (obs::TimelineTracer* timeline = exec_->simulator().timeline())
    timeline->instant(timeline->track("strategy"), action, "recovery", now(),
                      {{"processes", static_cast<double>(processes)}});
  if (!trace_enabled_) return;
  DecisionRecord rec;
  rec.kind = TraceKind::kRecovery;
  rec.iteration = exec_->iteration();
  rec.time_s = now();
  rec.action = action;
  rec.processes = processes;
  exec_->result().decision_trace.push_back(std::move(rec));
}

}  // namespace simsweep::strategy
