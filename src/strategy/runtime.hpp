// Shared technique runtime: the one place that drives the common
// measure → estimate → decide → act → recover loop for every technique.
//
// A launched run is an IterativeExecution (the BSP iteration driver) plus a
// TechniqueRuntime (the shared adaptation/fault machinery) plus one
// Remediation (the technique-specific part: what to do at an iteration
// boundary and how to recover from a crash).  The runtime owns:
//
//   - the boundary dispatch (cancel any stall watchdog, delegate to the
//     remediation, which must eventually resume the application);
//   - the fault-recovery ladder from the fault-injection subsystem: the
//     crash callback and the iteration-start observer both funnel into one
//     guarded react path that aborts the in-flight iteration and hands the
//     crash to the remediation;
//   - faulty state transfers (partial payload on failure, capped
//     exponential backoff, abandonment) and reliable central-store
//     transfers, with the flow keep-alive bookkeeping;
//   - pause accounting (adaptation overhead vs. failure-induced lost time);
//   - decision-trace collection (strategy.hpp's trace_decisions flag).
//
// Techniques (technique_*.cpp) combine the components in components.hpp
// behind a Remediation; none of them re-implements any of the above.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "strategy/decision_trace.hpp"
#include "strategy/estimator.hpp"
#include "strategy/executor.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

class TechniqueRuntime;

/// The narrow per-technique interface: how to adapt at an iteration
/// boundary and how to recover from a crash that hit the placement.  The
/// runtime aborts the in-flight iteration before calling recover(); the
/// remediation repairs the placement and restarts (or gives up via
/// TechniqueRuntime::mark_resource_exhausted).
class Remediation {
 public:
  virtual ~Remediation() = default;

  /// Boundary adaptation.  Must eventually invoke `resume` exactly once
  /// (possibly after scheduling simulated work).  Default: do nothing.
  virtual void at_boundary(TechniqueRuntime& rt, std::function<void()> resume);

  /// Crash recovery; runs with the iteration already aborted.
  virtual void recover(TechniqueRuntime& rt) = 0;

  /// Candidate-pool pruning when `host` crashes, before recovery fires.
  /// Default: nothing to prune.
  virtual void on_host_crashed(TechniqueRuntime& rt, platform::HostId host);

  /// Optional observer chained before the crash check at every iteration
  /// start (the eviction guard arms its stall watchdog here).  Default:
  /// none.
  [[nodiscard]] virtual std::function<void(IterativeExecution&)>
  iteration_start_observer(TechniqueRuntime& rt);
};

/// Shared state and machinery for one launched run.  Created via
/// std::make_shared (the boundary hook and fault callbacks keep it alive);
/// holds a non-owning pointer to the IterativeExecution that owns the run.
class TechniqueRuntime
    : public std::enable_shared_from_this<TechniqueRuntime> {
 public:
  TechniqueRuntime(fault::FaultInjector* faults,
                   std::shared_ptr<SpeedEstimator> estimator,
                   bool trace_decisions)
      : faults_(faults),
        estimator_(std::move(estimator)),
        trace_enabled_(trace_decisions) {}

  /// The boundary hook to construct the IterativeExecution with: cancels
  /// any armed stall watchdog (the boundary proves the iteration finished)
  /// and delegates to the remediation.
  [[nodiscard]] static IterativeExecution::BoundaryHook boundary_hook(
      std::shared_ptr<TechniqueRuntime> rt);

  /// Binds the execution and remediation and installs the fault-recovery
  /// ladder: both triggers (the injector's crash callback and the
  /// iteration-start observer) only act while an iteration is in flight —
  /// begin_iteration starts tasks before the observer runs, so a crash in
  /// any other window (startup, boundary pause, recovery) is caught at the
  /// next iteration start.  Call once, before IterativeExecution::start.
  void wire(IterativeExecution& exec, std::unique_ptr<Remediation> remediation);

  // --- accessors ----------------------------------------------------------

  [[nodiscard]] IterativeExecution& exec() noexcept { return *exec_; }
  [[nodiscard]] fault::FaultInjector* faults() noexcept { return faults_; }
  [[nodiscard]] SpeedEstimator& estimator() noexcept { return *estimator_; }
  [[nodiscard]] sim::SimTime now() noexcept {
    return exec_->simulator().now();
  }
  [[nodiscard]] bool recovering() const noexcept { return recovering_; }
  [[nodiscard]] sim::EventHandle& watchdog() noexcept { return watchdog_; }

  // --- fault primitives ---------------------------------------------------

  /// True when any active process currently sits on a crashed host.
  [[nodiscard]] bool placement_hit_by_crash();

  /// Aborts the in-flight iteration because of a crash; the abandoned
  /// partial work is failure-induced lost time on top of the adaptation
  /// charge.
  void abort_for_crash();

  /// The technique gives up: no usable host remains to recover onto.  The
  /// give-up instant is recorded as the makespan here because the
  /// experiment loop only notices at its next chunk boundary, possibly
  /// hours later.  Ends any recovery in progress.
  void mark_resource_exhausted();

  // --- transfers ----------------------------------------------------------

  /// Runs one logical state transfer of `bytes` over the shared link,
  /// subject to fault injection: an attempt may die partway (the partial
  /// payload still occupied the link), failed attempts retry after capped
  /// exponential backoff, and the move is abandoned once retries run out.
  /// `done(true)` fires when the full payload lands, `done(false)` on
  /// abandonment; `on_attempt_failed` fires once per failed attempt
  /// (blacklist strikes).  With a null injector this is exactly one clean
  /// start_transfer.
  void start_faulty_transfer(double bytes, std::size_t attempt,
                             std::function<void()> on_attempt_failed,
                             std::function<void(bool)> done);

  /// One planned process relocation (partition slot -> destination host).
  struct PlannedMove {
    std::size_t slot = 0;
    platform::HostId to = 0;
  };

  /// Transfers every move's state concurrently over the shared link, each
  /// via start_faulty_transfer with the process state size.  `apply` fires
  /// per landed payload (an abandoned move leaves the process in place),
  /// `on_strike(to)` per failed attempt, and `done(landed)` once after the
  /// last transfer completes or is abandoned.
  void transfer_moves(
      const std::vector<PlannedMove>& moves,
      std::function<void(platform::HostId)> on_strike,
      std::function<void(std::size_t, platform::HostId)> apply,
      std::function<void(std::size_t)> done);

  /// `count` concurrent reliable transfers of the process state size (the
  /// central checkpoint store does not fail); `done` fires after the last.
  void reliable_broadcast(std::size_t count, std::function<void()> done);

  // --- pause accounting ---------------------------------------------------

  /// Marks the start of an adaptation pause at the current time.
  void begin_adaptation_pause() { pause_start_ = now(); }

  /// Marks the start of crash recovery: cancels any stall watchdog, raises
  /// the recovering flag (masking re-entrant crash reactions) and starts
  /// the pause clock.
  void begin_recovery();

  /// Charges the elapsed pause to adaptation overhead.
  void charge_adaptation_pause();

  /// Charges the elapsed pause to adaptation overhead AND failure-induced
  /// lost time (failed checkpoints, recovery work).
  void charge_failure_pause();

  /// Ends crash recovery: charge_failure_pause + clears the flag.
  void charge_recovery_pause();

  // --- decision traces ----------------------------------------------------

  static constexpr std::size_t kNoTrace = static_cast<std::size_t>(-1);

  /// Appends a boundary record (stamped with iteration/time) and returns
  /// its index for later trace_swaps_applied; kNoTrace when disabled.
  std::size_t trace_boundary(const swap::SwapPlan& plan,
                             double measured_iter_time_s,
                             double adaptation_cost_s,
                             std::size_t active_count,
                             std::size_t spare_count);

  /// Back-fills how many planned moves actually landed.
  void trace_swaps_applied(std::size_t index, std::size_t applied);

  /// Appends a recovery-action record.
  void trace_recovery(const char* action, std::size_t processes);

 private:
  void on_boundary(std::function<void()> resume);
  void react_to_crash();
  double audited_pause(const char* kind);

  IterativeExecution* exec_ = nullptr;
  std::unique_ptr<Remediation> remediation_;
  fault::FaultInjector* faults_ = nullptr;
  std::shared_ptr<SpeedEstimator> estimator_;

  std::vector<std::shared_ptr<net::Flow>> transfers_;  // flow keep-alive
  std::size_t pending_ = 0;
  sim::SimTime pause_start_ = 0.0;
  sim::EventHandle watchdog_;
  bool recovering_ = false;

  bool trace_enabled_ = false;
};

}  // namespace simsweep::strategy
