#include "strategy/schedule.hpp"

#include <stdexcept>

#include "strategy/estimator.hpp"

namespace simsweep::strategy {

Allocation pick_allocation(const platform::Cluster& cluster,
                           std::size_t active_count, std::size_t spare_count,
                           InitialSchedule kind) {
  if (active_count == 0)
    throw std::invalid_argument("pick_allocation: no active processes");
  if (active_count + spare_count > cluster.size())
    throw std::invalid_argument(
        "pick_allocation: allocation exceeds platform size");
  std::vector<platform::HostId> ranked;
  switch (kind) {
    case InitialSchedule::kFastestEffective:
      ranked = cluster.by_effective_speed();
      break;
    case InitialSchedule::kFastestPeak:
      ranked = cluster.by_peak_speed();
      break;
    case InitialSchedule::kLoadBlind:
      ranked.resize(cluster.size());
      for (std::size_t i = 0; i < cluster.size(); ++i)
        ranked[i] = static_cast<platform::HostId>(i);
      break;
  }
  Allocation out;
  out.active.assign(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(active_count));
  out.spares.assign(
      ranked.begin() + static_cast<std::ptrdiff_t>(active_count),
      ranked.begin() + static_cast<std::ptrdiff_t>(active_count + spare_count));
  return out;
}

double estimate_speed(const platform::Host& host, sim::SimTime now,
                      double window_s) {
  if (window_s <= 0.0) return host.effective_speed();
  const sim::SimTime t0 = now > window_s ? now - window_s : 0.0;
  return host.peak_speed() * host.mean_availability(t0, now);
}

std::vector<swap::ActiveProcess> make_active_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement,
    const std::vector<double>& chunk_flops, sim::SimTime now,
    double window_s) {
  if (placement.size() != chunk_flops.size())
    throw std::invalid_argument("make_active_estimates: size mismatch");
  std::vector<swap::ActiveProcess> out;
  out.reserve(placement.size());
  for (std::size_t slot = 0; slot < placement.size(); ++slot) {
    out.push_back(swap::ActiveProcess{
        .slot = slot,
        .host = placement[slot],
        .est_speed = estimate_speed(cluster.host(placement[slot]), now, window_s),
        .chunk_flops = chunk_flops[slot],
    });
  }
  return out;
}

std::vector<swap::HostEstimate> make_spare_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& spares, sim::SimTime now,
    double window_s) {
  std::vector<swap::HostEstimate> out;
  out.reserve(spares.size());
  for (platform::HostId h : spares) {
    out.push_back(swap::HostEstimate{
        .host = h,
        .est_speed = estimate_speed(cluster.host(h), now, window_s),
    });
  }
  return out;
}

std::vector<swap::ActiveProcess> make_active_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement,
    const std::vector<double>& chunk_flops, sim::SimTime now,
    SpeedEstimator& estimator) {
  if (placement.size() != chunk_flops.size())
    throw std::invalid_argument("make_active_estimates: size mismatch");
  std::vector<swap::ActiveProcess> out;
  out.reserve(placement.size());
  for (std::size_t slot = 0; slot < placement.size(); ++slot) {
    out.push_back(swap::ActiveProcess{
        .slot = slot,
        .host = placement[slot],
        .est_speed = estimator.estimate(cluster.host(placement[slot]), now),
        .chunk_flops = chunk_flops[slot],
    });
  }
  return out;
}

std::vector<swap::HostEstimate> make_spare_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& spares, sim::SimTime now,
    SpeedEstimator& estimator) {
  std::vector<swap::HostEstimate> out;
  out.reserve(spares.size());
  for (platform::HostId h : spares) {
    out.push_back(swap::HostEstimate{
        .host = h,
        .est_speed = estimator.estimate(cluster.host(h), now),
    });
  }
  return out;
}

}  // namespace simsweep::strategy
