// Initial scheduling and performance estimation helpers (paper §6).
//
// "The initial schedule always uses the fastest performing processors at
// the time of application startup."  Allocation (the pool the application
// may ever touch) and the initial active set are both chosen by current
// effective speed.
#pragma once

#include <vector>

#include "platform/cluster.hpp"
#include "swap/planner.hpp"

namespace simsweep::strategy {

/// The processors granted to the application: `active` hosts compute,
/// `spares` idle (blocking on I/O; they consume nothing).
struct Allocation {
  std::vector<platform::HostId> active;
  std::vector<platform::HostId> spares;

  [[nodiscard]] std::size_t total() const noexcept {
    return active.size() + spares.size();
  }
};

/// How the pre-execution scheduler ranks hosts when choosing the
/// allocation.  The paper always uses kFastestEffective ("the fastest
/// performing processors at the time of application startup"); the other
/// kinds exist for the abl_initial_schedule experiment.
enum class InitialSchedule {
  kFastestEffective,  ///< rank by current effective speed (the paper)
  kFastestPeak,       ///< rank by peak speed, blind to current load
  kLoadBlind,         ///< take hosts in id order (speed- and load-blind)
};

/// Picks the `active + spare_count` best hosts under `kind`; the best
/// `active_count` of those become the active set.
[[nodiscard]] Allocation pick_allocation(
    const platform::Cluster& cluster, std::size_t active_count,
    std::size_t spare_count,
    InitialSchedule kind = InitialSchedule::kFastestEffective);

/// Predicted sustained speed of one process on `host`: instantaneous
/// effective speed when `window_s` == 0, otherwise peak speed times the
/// mean availability over the trailing window — the NWS-style predictor
/// the paper's runtime uses.
[[nodiscard]] double estimate_speed(const platform::Host& host,
                                    sim::SimTime now, double window_s);

/// Builds planner inputs for the current placement.
[[nodiscard]] std::vector<swap::ActiveProcess> make_active_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement,
    const std::vector<double>& chunk_flops, sim::SimTime now, double window_s);

/// Builds planner inputs for the spare pool.
[[nodiscard]] std::vector<swap::HostEstimate> make_spare_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& spares, sim::SimTime now,
    double window_s);

class SpeedEstimator;  // strategy/estimator.hpp

/// Estimator-driven variants (used when a strategy plugs in a forecaster).
[[nodiscard]] std::vector<swap::ActiveProcess> make_active_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement,
    const std::vector<double>& chunk_flops, sim::SimTime now,
    SpeedEstimator& estimator);

[[nodiscard]] std::vector<swap::HostEstimate> make_spare_estimates(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& spares, sim::SimTime now,
    SpeedEstimator& estimator);

}  // namespace simsweep::strategy
