#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "strategy/estimator.hpp"
#include "strategy/strategy.hpp"
#include "swap/planner.hpp"

namespace simsweep::strategy {

double estimate_comm_time(const app::AppSpec& spec,
                          const platform::LinkSpec& link) {
  if (spec.active_processes < 2 || spec.comm_bytes_per_process <= 0.0)
    return 0.0;
  const double total_bytes =
      spec.comm_bytes_per_process * static_cast<double>(spec.active_processes);
  return link.latency_s + total_bytes / link.bandwidth_Bps;
}

namespace {

/// Equal chunks in flops, one per slot.
std::vector<double> chunk_flops(const app::AppSpec& spec,
                                const app::WorkPartition& partition) {
  std::vector<double> out;
  out.reserve(partition.slots());
  for (std::size_t slot = 0; slot < partition.slots(); ++slot)
    out.push_back(spec.work_per_iteration_flops * partition.fraction(slot));
  return out;
}

/// Current effective speeds of the hosts in `placement`.
std::vector<double> effective_speeds(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement) {
  std::vector<double> out;
  out.reserve(placement.size());
  for (platform::HostId h : placement)
    out.push_back(cluster.host(h).effective_speed());
  return out;
}

// ------------------------------------------------------- fault primitives

/// True when any active process currently sits on a crashed host.
bool placement_hit_by_crash(IterativeExecution& exec) {
  for (platform::HostId h : exec.placement())
    if (exec.cluster().host(h).crashed()) return true;
  return false;
}

/// Aborts the in-flight iteration because of a crash; the abandoned partial
/// work is failure-induced lost time on top of the adaptation charge.
void abort_for_crash(IterativeExecution& exec) {
  exec.result().failures.time_lost_s += exec.abort_iteration();
}

/// The strategy gives up: no usable host remains to recover onto.  The
/// give-up instant is recorded as the makespan here because the experiment
/// loop only notices at its next chunk boundary, possibly hours later.
void mark_resource_exhausted(IterativeExecution& exec) {
  exec.result().resource_exhausted = true;
  exec.result().makespan_s = exec.simulator().now();
}

/// Runs one logical state transfer of `bytes` over the shared link, subject
/// to fault injection: an attempt may die partway (the partial payload still
/// occupied the link), failed attempts retry after capped exponential
/// backoff, and the move is abandoned once retries run out.  `done(true)`
/// fires when the full payload lands, `done(false)` on abandonment;
/// `on_attempt_failed` fires once per failed attempt (blacklist strikes).
/// Flow handles are parked in `keep` — the network only holds them weakly.
/// With a null injector this is exactly one clean start_transfer.
void start_faulty_transfer(IterativeExecution& exec,
                           fault::FaultInjector* faults,
                           std::vector<std::shared_ptr<net::Flow>>& keep,
                           double bytes, std::size_t attempt,
                           std::function<void()> on_attempt_failed,
                           std::function<void(bool)> done) {
  if (faults == nullptr || !faults->draw_transfer_failure()) {
    keep.push_back(exec.network().start_transfer(
        bytes, [done = std::move(done)] { done(true); }));
    return;
  }
  ++exec.result().failures.transfers_failed;
  const double partial = bytes * faults->draw_failure_fraction();
  const sim::SimTime begin = exec.simulator().now();
  keep.push_back(exec.network().start_transfer(
      partial, [&exec, faults, &keep, bytes, attempt, begin,
                on_attempt_failed = std::move(on_attempt_failed),
                done = std::move(done)] {
        auto& fs = exec.result().failures;
        fs.time_lost_s += exec.simulator().now() - begin;
        if (on_attempt_failed) on_attempt_failed();
        if (attempt >= faults->spec().max_transfer_retries) {
          ++fs.transfers_abandoned;
          done(false);
          return;
        }
        ++fs.transfers_retried;
        const double backoff = faults->retry_backoff(attempt);
        fs.time_lost_s += backoff;
        exec.simulator().after(
            backoff, [&exec, faults, &keep, bytes, attempt, on_attempt_failed,
                      done] {
              start_faulty_transfer(exec, faults, keep, bytes, attempt + 1,
                                    on_attempt_failed, done);
            });
      }));
}

}  // namespace

// -------------------------------------------------------------------- NONE

namespace {

struct NoneRuntimeState {
  bool recovering = false;
  sim::SimTime pause_start = 0.0;
};

/// NONE's failure semantics: the job is resubmitted from scratch — pay
/// startup again and recompute every iteration on the fastest hosts still
/// alive.  No spare pool exists, so too few online hosts is terminal.
void none_restart_from_scratch(IterativeExecution& exec,
                               std::shared_ptr<NoneRuntimeState> state) {
  state->recovering = true;
  state->pause_start = exec.simulator().now();
  exec.rollback_to_iteration(0);
  const std::size_t n = exec.spec().active_processes;
  exec.simulator().after(exec.cluster().startup_cost(n), [&exec, state, n] {
    std::vector<platform::HostId> fastest;
    for (platform::HostId h : exec.cluster().by_effective_speed())
      if (exec.cluster().host(h).online()) fastest.push_back(h);
    if (fastest.size() < n) {
      mark_resource_exhausted(exec);
      state->recovering = false;
      return;
    }
    fastest.resize(n);
    exec.set_placement(std::move(fastest));
    ++exec.result().failures.crash_recoveries;
    const double pause = exec.simulator().now() - state->pause_start;
    exec.result().adaptation_overhead_s += pause;
    exec.result().failures.time_lost_s += pause;
    state->recovering = false;
    exec.restart_iteration();
  });
}

void wire_none_fault_handling(IterativeExecution* exec,
                              fault::FaultInjector* injector) {
  if (injector == nullptr) return;
  auto state = std::make_shared<NoneRuntimeState>();
  // Fires from both triggers below; only acts while an iteration is in
  // flight — begin_iteration starts tasks before the observer runs, so a
  // crash in any other window is caught at the next iteration start.
  auto react = [state](IterativeExecution& e) {
    if (state->recovering || e.done() || e.result().resource_exhausted) return;
    if (!e.iteration_in_flight() || !placement_hit_by_crash(e)) return;
    abort_for_crash(e);
    none_restart_from_scratch(e, state);
  };
  injector->on_crash([exec, react](platform::HostId) { react(*exec); });
  exec->set_iteration_start_observer(react);
}

}  // namespace

std::unique_ptr<IterativeExecution> NoneStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes),
      IterativeExecution::BoundaryHook{});
  wire_none_fault_handling(exec.get(), ctx.faults);
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

// --------------------------------------------------------------------- DLB

namespace {

/// DLB's failure semantics: no spare pool and free redistribution — dead
/// slots are reassigned round-robin to the surviving allocated hosts
/// (online first, fastest first) and the work is repartitioned, at zero
/// cost like every DLB adaptation.  All hosts dead is terminal.
void dlb_recover(IterativeExecution& exec) {
  std::vector<std::size_t> dead;
  std::vector<platform::HostId> survivors;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot) {
    const platform::HostId h = exec.placement()[slot];
    if (exec.cluster().host(h).crashed()) {
      dead.push_back(slot);
    } else if (std::find(survivors.begin(), survivors.end(), h) ==
               survivors.end()) {
      survivors.push_back(h);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     const auto& ha = exec.cluster().host(a);
                     const auto& hb = exec.cluster().host(b);
                     if (ha.online() != hb.online()) return ha.online();
                     return ha.effective_speed() > hb.effective_speed();
                   });
  if (survivors.empty()) {
    mark_resource_exhausted(exec);
    return;
  }
  for (std::size_t i = 0; i < dead.size(); ++i)
    exec.move_process(dead[i], survivors[i % survivors.size()]);
  exec.result().failures.crash_recoveries += dead.size();
  exec.set_partition(app::WorkPartition::proportional(
      effective_speeds(exec.cluster(), exec.placement())));
  exec.restart_iteration();
}

void wire_dlb_fault_handling(IterativeExecution* exec,
                             fault::FaultInjector* injector) {
  if (injector == nullptr) return;
  auto react = [](IterativeExecution& e) {
    if (e.done() || e.result().resource_exhausted) return;
    if (!e.iteration_in_flight() || !placement_hit_by_crash(e)) return;
    abort_for_crash(e);
    dlb_recover(e);
  };
  injector->on_crash([exec, react](platform::HostId) { react(*exec); });
  exec->set_iteration_start_observer(react);
}

}  // namespace

std::unique_ptr<IterativeExecution> DlbStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  // Initial partition balances iteration times for the speeds observed at
  // startup; each boundary rebalances for current speeds, at zero cost.
  auto initial = app::WorkPartition::proportional(
      effective_speeds(ctx.cluster, alloc.active));
  auto hook = [](IterativeExecution& exec, std::function<void()> resume) {
    exec.set_partition(app::WorkPartition::proportional(
        effective_speeds(exec.cluster(), exec.placement())));
    ++exec.result().adaptations;
    resume();
  };
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      std::move(initial), hook);
  wire_dlb_fault_handling(exec.get(), ctx.faults);
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

// -------------------------------------------------------------------- SWAP

namespace {

struct SwapRuntimeState {
  swap::PolicyParams policy;
  std::shared_ptr<SpeedEstimator> estimator;
  std::vector<platform::HostId> spares;
  std::vector<std::shared_ptr<net::Flow>> transfers;
  std::size_t pending = 0;
  sim::SimTime pause_start = 0.0;
  // Eviction guard.
  bool guard_enabled = false;
  double stall_factor = 3.0;
  sim::EventHandle watchdog;
  // Fault handling.
  fault::FaultInjector* faults = nullptr;
  bool recovering = false;
  std::map<platform::HostId, std::size_t> strikes;  // failed transfers per dst
  std::set<platform::HostId> blacklist;
  std::function<void(IterativeExecution&)> after_recover;  // hybrid repartition
};

/// Moves `slot`'s process onto `to`, updating the spare pool.  A vacated
/// host returns to the pool unless it is dead or blacklisted.
void apply_move(IterativeExecution& exec, SwapRuntimeState& state,
                std::size_t slot, platform::HostId to) {
  const platform::HostId from = exec.placement()[slot];
  exec.move_process(slot, to);
  std::erase(state.spares, to);
  if (!exec.cluster().host(from).crashed() && !state.blacklist.contains(from))
    state.spares.push_back(from);
  ++exec.result().adaptations;
}

/// Books one failed transfer attempt against destination `to`; repeated
/// offenders are blacklisted out of the spare pool.
void note_strike(IterativeExecution& exec, SwapRuntimeState& state,
                 platform::HostId to) {
  if (state.faults == nullptr) return;
  if (++state.strikes[to] != state.faults->spec().blacklist_after) return;
  if (!state.blacklist.insert(to).second) return;
  std::erase(state.spares, to);
  ++exec.result().failures.hosts_blacklisted;
}

/// Online spares (blacklisted hosts were already removed), fastest first by
/// the strategy's estimator.
std::vector<platform::HostId> usable_spares(IterativeExecution& exec,
                                            const SwapRuntimeState& state) {
  std::vector<platform::HostId> out;
  for (platform::HostId h : state.spares)
    if (exec.cluster().host(h).online()) out.push_back(h);
  const sim::SimTime now = exec.simulator().now();
  std::stable_sort(out.begin(), out.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return state.estimator->estimate(exec.cluster().host(a),
                                                      now) >
                            state.estimator->estimate(exec.cluster().host(b),
                                                      now);
                   });
  return out;
}

/// Forced relocation of every slot stuck on an offline host; fires from the
/// stall watchdog.  The iteration is aborted (its partial work is lost),
/// the suspended processes' state is transferred off the reclaimed hosts,
/// and the iteration restarts on the new placement.
void handle_stall(IterativeExecution& exec,
                  const std::shared_ptr<SwapRuntimeState>& state) {
  if (!exec.iteration_in_flight() || exec.done() || state->recovering) return;

  std::vector<std::size_t> stuck;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot)
    if (!exec.cluster().host(exec.placement()[slot]).online())
      stuck.push_back(slot);

  const auto candidates = usable_spares(exec, *state);
  const sim::SimTime now = exec.simulator().now();

  if (stuck.empty() || candidates.empty()) {
    // Slow but not evicted, or nowhere to go: check again later.
    std::weak_ptr<SwapRuntimeState> weak = state;
    state->watchdog = exec.simulator().after(
        state->stall_factor * 60.0, [&exec, weak] {
          if (auto s = weak.lock()) handle_stall(exec, s);
        });
    return;
  }

  exec.abort_iteration();
  state->pause_start = now;
  const std::size_t moves = std::min(stuck.size(), candidates.size());
  state->pending = moves;
  state->transfers.clear();
  for (std::size_t i = 0; i < moves; ++i) {
    const std::size_t slot = stuck[i];
    const platform::HostId to = candidates[i];
    start_faulty_transfer(
        exec, state->faults, state->transfers,
        exec.spec().state_bytes_per_process, 0,
        [&exec, state, to] { note_strike(exec, *state, to); },
        [&exec, state, slot, to](bool ok) {
          if (ok) apply_move(exec, *state, slot, to);
          if (--state->pending == 0) {
            state->transfers.clear();
            exec.result().adaptation_overhead_s +=
                exec.simulator().now() - state->pause_start;
            exec.restart_iteration();  // re-arms the watchdog via observer
          }
        });
  }
}

void swap_recover_round(IterativeExecution& exec,
                        std::shared_ptr<SwapRuntimeState> state);

/// All crashed slots replaced: charge the recovery pause and resume.
void finish_swap_recovery(IterativeExecution& exec,
                          const std::shared_ptr<SwapRuntimeState>& state) {
  state->recovering = false;
  state->transfers.clear();
  const double pause = exec.simulator().now() - state->pause_start;
  exec.result().adaptation_overhead_s += pause;
  exec.result().failures.time_lost_s += pause;
  if (state->after_recover) state->after_recover(exec);
  exec.restart_iteration();
}

/// One round of crash recovery: every dead slot gets a replacement spun up
/// on an online spare, paying a full state transfer each (boundary state is
/// re-materialised from the surviving peers).  Rounds repeat until no dead
/// slot remains — transfers can fail or their targets can crash mid-round —
/// and recovery is all-or-nothing: fewer usable spares than dead slots is
/// terminal, since a partially-replaced application cannot make progress.
void swap_recover_round(IterativeExecution& exec,
                        std::shared_ptr<SwapRuntimeState> state) {
  std::vector<std::size_t> dead;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot)
    if (exec.cluster().host(exec.placement()[slot]).crashed())
      dead.push_back(slot);
  if (dead.empty()) {
    finish_swap_recovery(exec, state);
    return;
  }
  const auto candidates = usable_spares(exec, *state);
  if (candidates.size() < dead.size()) {
    mark_resource_exhausted(exec);
    state->recovering = false;
    state->transfers.clear();
    return;
  }
  state->pending = dead.size();
  state->transfers.clear();
  for (std::size_t i = 0; i < dead.size(); ++i) {
    const std::size_t slot = dead[i];
    const platform::HostId to = candidates[i];
    start_faulty_transfer(
        exec, state->faults, state->transfers,
        exec.spec().state_bytes_per_process, 0,
        [&exec, state, to] { note_strike(exec, *state, to); },
        [&exec, state, slot, to](bool ok) {
          if (ok) {
            apply_move(exec, *state, slot, to);
            ++exec.result().failures.crash_recoveries;
          }
          if (--state->pending == 0) swap_recover_round(exec, state);
        });
  }
}

void begin_swap_recovery(IterativeExecution& exec,
                         std::shared_ptr<SwapRuntimeState> state) {
  state->watchdog.cancel();
  state->recovering = true;
  state->pause_start = exec.simulator().now();
  swap_recover_round(exec, std::move(state));
}

/// Installs crash handling for SWAP-family strategies: both triggers (the
/// crash callback and the iteration-start observer) only act while an
/// iteration is in flight — begin_iteration starts tasks before the
/// observer runs, so a crash in any other window (startup, boundary pause,
/// recovery) is caught at the next iteration start.  `arm_watchdog` is the
/// eviction guard's observer, chained before the crash check.
void wire_swap_fault_handling(
    IterativeExecution* exec, std::shared_ptr<SwapRuntimeState> state,
    std::function<void(IterativeExecution&)> arm_watchdog) {
  fault::FaultInjector* injector = state->faults;
  if (injector == nullptr) {
    if (arm_watchdog)
      exec->set_iteration_start_observer(std::move(arm_watchdog));
    return;
  }
  auto react = [state](IterativeExecution& e) {
    if (state->recovering || e.done() || e.result().resource_exhausted) return;
    if (!e.iteration_in_flight() || !placement_hit_by_crash(e)) return;
    abort_for_crash(e);
    begin_swap_recovery(e, state);
  };
  injector->on_crash([exec, state, react](platform::HostId h) {
    std::erase(state->spares, h);  // a dead spare is no candidate
    react(*exec);
  });
  exec->set_iteration_start_observer(
      [react, arm = std::move(arm_watchdog)](IterativeExecution& e) {
        if (arm) arm(e);
        react(e);
      });
}

}  // namespace

std::unique_ptr<IterativeExecution> SwapStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<SwapRuntimeState>();
  state->policy = policy_;
  state->estimator = options_.estimator
                         ? options_.estimator->fresh()
                         : make_window_estimator(policy_.history_window_s);
  state->spares = alloc.spares;
  state->guard_enabled = options_.eviction_guard;
  state->stall_factor = options_.stall_factor;
  state->faults = ctx.faults;

  auto hook = [state](IterativeExecution& exec, std::function<void()> resume) {
    state->watchdog.cancel();  // boundary reached: the iteration completed
    const sim::SimTime now = exec.simulator().now();
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, *state->estimator);
    const auto spares = make_spare_estimates(exec.cluster(), state->spares, now,
                                             *state->estimator);
    const platform::LinkSpec& link = exec.cluster().link();
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      resume();
      return;
    }
    // Transfer every swapped process's state concurrently over the shared
    // link; the application stays paused (full barrier) until the last
    // transfer lands or is abandoned, then the surviving placement changes
    // take effect (an abandoned move leaves the evicted process in place).
    state->pause_start = now;
    state->pending = decisions.size();
    state->transfers.clear();
    for (const swap::SwapDecision& d : decisions) {
      start_faulty_transfer(
          exec, state->faults, state->transfers,
          exec.spec().state_bytes_per_process, 0,
          [&exec, state, to = d.to] { note_strike(exec, *state, to); },
          [state, d, &exec, resume](bool ok) {
            if (ok) apply_move(exec, *state, d.slot, d.to);
            if (--state->pending == 0) {
              state->transfers.clear();
              exec.result().adaptation_overhead_s +=
                  exec.simulator().now() - state->pause_start;
              resume();
            }
          });
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes), hook);

  std::function<void(IterativeExecution&)> arm_watchdog;
  if (options_.eviction_guard) {
    arm_watchdog = [state](IterativeExecution& e) {
      state->watchdog.cancel();
      // Expected duration: the last measured iteration, or a prediction
      // from current estimates for the very first one.
      double expected;
      if (e.result().iterations_completed > 0) {
        expected = e.last_iteration_time();
      } else {
        const auto active = make_active_estimates(
            e.cluster(), e.placement(),
            chunk_flops(e.spec(), e.partition()), e.simulator().now(),
            *state->estimator);
        expected = swap::predict_iteration_time(
            active, estimate_comm_time(e.spec(), e.cluster().link()));
      }
      if (!std::isfinite(expected) || expected <= 0.0) expected = 60.0;
      std::weak_ptr<SwapRuntimeState> weak = state;
      state->watchdog =
          e.simulator().after(state->stall_factor * expected, [&e, weak] {
            if (auto s = weak.lock()) handle_stall(e, s);
          });
    };
  }
  wire_swap_fault_handling(exec.get(), state, std::move(arm_watchdog));

  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

// ---------------------------------------------------------------- DLB+SWAP

std::unique_ptr<IterativeExecution> DlbSwapStrategy::launch(
    StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<SwapRuntimeState>();
  state->policy = policy_;
  state->estimator = make_window_estimator(policy_.history_window_s);
  state->spares = alloc.spares;
  state->faults = ctx.faults;

  // Re-partition for the estimated speeds of the (possibly just changed)
  // placement; counted as part of the same adaptation, at zero cost.
  auto repartition = [state](IterativeExecution& exec) {
    const sim::SimTime now = exec.simulator().now();
    std::vector<double> speeds;
    speeds.reserve(exec.placement().size());
    for (platform::HostId h : exec.placement())
      speeds.push_back(
          std::max(1.0, state->estimator->estimate(exec.cluster().host(h), now)));
    exec.set_partition(app::WorkPartition::proportional(speeds));
  };
  state->after_recover = repartition;

  auto hook = [state, repartition](IterativeExecution& exec,
                                   std::function<void()> resume) {
    const sim::SimTime now = exec.simulator().now();
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, *state->estimator);
    const auto spares = make_spare_estimates(exec.cluster(), state->spares, now,
                                             *state->estimator);
    const platform::LinkSpec& link = exec.cluster().link();
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      repartition(exec);
      resume();
      return;
    }
    state->pause_start = now;
    state->pending = decisions.size();
    state->transfers.clear();
    for (const swap::SwapDecision& d : decisions) {
      start_faulty_transfer(
          exec, state->faults, state->transfers,
          exec.spec().state_bytes_per_process, 0,
          [&exec, state, to = d.to] { note_strike(exec, *state, to); },
          [state, d, &exec, resume, repartition](bool ok) {
            if (ok) apply_move(exec, *state, d.slot, d.to);
            if (--state->pending == 0) {
              state->transfers.clear();
              exec.result().adaptation_overhead_s +=
                  exec.simulator().now() - state->pause_start;
              repartition(exec);
              resume();
            }
          });
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::proportional([&] {
        std::vector<double> speeds;
        for (platform::HostId h : alloc.active)
          speeds.push_back(ctx.cluster.host(h).effective_speed());
        return speeds;
      }()),
      hook);
  wire_swap_fault_handling(exec.get(), state, {});
  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

// ---------------------------------------------------------------------- CR

namespace {

struct CrRuntimeState {
  swap::PolicyParams policy;
  std::vector<platform::HostId> pool;  // every allocated host still alive
  std::vector<std::shared_ptr<net::Flow>> transfers;
  std::size_t pending = 0;
  sim::SimTime pause_start = 0.0;
  // Fault handling.
  fault::FaultInjector* faults = nullptr;
  bool has_ckpt = false;          // a checkpoint write has succeeded
  std::size_t last_ckpt_iter = 0;  // iterations covered by that checkpoint
  bool recovering = false;
};

/// N fastest pool hosts by windowed estimate, fastest first.
std::vector<platform::HostId> best_of_pool(const platform::Cluster& cluster,
                                           const std::vector<platform::HostId>& pool,
                                           std::size_t n, sim::SimTime now,
                                           double window_s) {
  std::vector<platform::HostId> sorted = pool;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return estimate_speed(cluster.host(a), now, window_s) >
                            estimate_speed(cluster.host(b), now, window_s);
                   });
  sorted.resize(n);
  return sorted;
}

/// Pool hosts currently usable for a restart (crashed ones were pruned on
/// the crash callback; reclaimed-offline ones are skipped too).
std::vector<platform::HostId> online_pool(IterativeExecution& exec,
                                          const CrRuntimeState& state) {
  std::vector<platform::HostId> out;
  for (platform::HostId h : state.pool)
    if (exec.cluster().host(h).online()) out.push_back(h);
  return out;
}

/// Tail of a crash restart: re-check the pool (more hosts may have died
/// during the startup pause), place on the best N survivors and resume.
void cr_finish_restart(IterativeExecution& exec,
                       const std::shared_ptr<CrRuntimeState>& state) {
  state->transfers.clear();
  const std::size_t n = exec.spec().active_processes;
  const auto usable = online_pool(exec, *state);
  if (usable.size() < n) {
    mark_resource_exhausted(exec);
    state->recovering = false;
    return;
  }
  exec.set_placement(best_of_pool(exec.cluster(), usable, n,
                                  exec.simulator().now(),
                                  state->policy.history_window_s));
  ++exec.result().adaptations;
  ++exec.result().failures.crash_recoveries;
  const double pause = exec.simulator().now() - state->pause_start;
  exec.result().adaptation_overhead_s += pause;
  exec.result().failures.time_lost_s += pause;
  state->recovering = false;
  exec.restart_iteration();
}

/// CR's failure semantics: roll back to the last *successful* checkpoint
/// (from scratch when none exists), pay the restart startup, re-read the
/// checkpoint from the reliable central store and resume on the best pool
/// hosts still alive.  Too few online pool hosts is terminal.
void cr_recover(IterativeExecution& exec,
                std::shared_ptr<CrRuntimeState> state) {
  state->recovering = true;
  state->pause_start = exec.simulator().now();
  exec.rollback_to_iteration(state->has_ckpt ? state->last_ckpt_iter : 0);
  const std::size_t n = exec.spec().active_processes;
  exec.simulator().after(exec.cluster().startup_cost(n), [&exec, state, n] {
    if (!state->has_ckpt) {
      cr_finish_restart(exec, state);
      return;
    }
    state->pending = n;
    state->transfers.clear();
    for (std::size_t i = 0; i < n; ++i)
      state->transfers.push_back(exec.network().start_transfer(
          exec.spec().state_bytes_per_process, [&exec, state] {
            if (--state->pending == 0) cr_finish_restart(exec, state);
          }));
  });
}

void wire_cr_fault_handling(IterativeExecution* exec,
                            std::shared_ptr<CrRuntimeState> state) {
  fault::FaultInjector* injector = state->faults;
  if (injector == nullptr) return;
  auto react = [state](IterativeExecution& e) {
    if (state->recovering || e.done() || e.result().resource_exhausted) return;
    if (!e.iteration_in_flight() || !placement_hit_by_crash(e)) return;
    abort_for_crash(e);
    cr_recover(e, state);
  };
  injector->on_crash([exec, state, react](platform::HostId h) {
    std::erase(state->pool, h);  // dead hosts leave the pool for good
    react(*exec);
  });
  exec->set_iteration_start_observer(react);
}

}  // namespace

std::unique_ptr<IterativeExecution> CrStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<CrRuntimeState>();
  state->policy = policy_;
  state->pool = alloc.active;
  state->pool.insert(state->pool.end(), alloc.spares.begin(),
                     alloc.spares.end());
  state->faults = ctx.faults;

  auto hook = [state](IterativeExecution& exec, std::function<void()> resume) {
    const sim::SimTime now = exec.simulator().now();
    const double window = state->policy.history_window_s;
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, window);
    std::vector<platform::HostId> idle;
    for (platform::HostId h : state->pool)
      if (std::find(exec.placement().begin(), exec.placement().end(), h) ==
          exec.placement().end())
        idle.push_back(h);
    const auto spares =
        make_spare_estimates(exec.cluster(), idle, now, window);
    const platform::LinkSpec& link = exec.cluster().link();
    const std::size_t n = exec.spec().active_processes;
    // CR's true cost: write N states, restart the application, read N
    // states.  Charge it in the payback computation.
    const double transfer_each =
        link.latency_s + exec.spec().state_bytes_per_process *
                             static_cast<double>(n) / link.bandwidth_Bps;
    const double cr_cost =
        2.0 * transfer_each + exec.cluster().startup_cost(n);
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
        .fixed_swap_time_s = cr_cost,
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      resume();
      return;
    }
    // Checkpoint: all processes write state to the central store.  The
    // write may fail (drawn once per checkpoint): the transfer time is
    // still spent, but the store keeps the previous successful checkpoint
    // and the planned restart is skipped.
    const bool write_fails =
        state->faults != nullptr && state->faults->draw_checkpoint_failure();
    const std::size_t ckpt_iter = exec.iteration();
    state->pause_start = now;
    state->pending = n;
    state->transfers.clear();
    auto after_write = [state, &exec, resume, n, write_fails, ckpt_iter] {
      if (write_fails) {
        ++exec.result().failures.checkpoint_failures;
        const double pause = exec.simulator().now() - state->pause_start;
        exec.result().adaptation_overhead_s += pause;
        exec.result().failures.time_lost_s += pause;
        resume();
        return;
      }
      state->has_ckpt = true;
      state->last_ckpt_iter = ckpt_iter;
      // Restart: pay startup, then every process reads the checkpoint on
      // the new placement.
      exec.simulator().after(
          exec.cluster().startup_cost(n), [state, &exec, resume, n] {
            exec.set_placement(best_of_pool(exec.cluster(), state->pool, n,
                                            exec.simulator().now(),
                                            state->policy.history_window_s));
            state->pending = n;
            state->transfers.clear();
            for (std::size_t i = 0; i < n; ++i) {
              state->transfers.push_back(exec.network().start_transfer(
                  exec.spec().state_bytes_per_process, [state, &exec, resume] {
                    if (--state->pending == 0) {
                      state->transfers.clear();
                      ++exec.result().adaptations;
                      exec.result().adaptation_overhead_s +=
                          exec.simulator().now() - state->pause_start;
                      resume();
                    }
                  }));
            }
          });
    };
    for (std::size_t i = 0; i < n; ++i) {
      state->transfers.push_back(exec.network().start_transfer(
          exec.spec().state_bytes_per_process, [state, after_write] {
            if (--state->pending == 0) {
              state->transfers.clear();
              after_write();
            }
          }));
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes), hook);
  wire_cr_fault_handling(exec.get(), state);
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

}  // namespace simsweep::strategy
