#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "strategy/estimator.hpp"
#include "strategy/strategy.hpp"
#include "swap/planner.hpp"

namespace simsweep::strategy {

double estimate_comm_time(const app::AppSpec& spec,
                          const platform::LinkSpec& link) {
  if (spec.active_processes < 2 || spec.comm_bytes_per_process <= 0.0)
    return 0.0;
  const double total_bytes =
      spec.comm_bytes_per_process * static_cast<double>(spec.active_processes);
  return link.latency_s + total_bytes / link.bandwidth_Bps;
}

namespace {

/// Equal chunks in flops, one per slot.
std::vector<double> chunk_flops(const app::AppSpec& spec,
                                const app::WorkPartition& partition) {
  std::vector<double> out;
  out.reserve(partition.slots());
  for (std::size_t slot = 0; slot < partition.slots(); ++slot)
    out.push_back(spec.work_per_iteration_flops * partition.fraction(slot));
  return out;
}

/// Current effective speeds of the hosts in `placement`.
std::vector<double> effective_speeds(
    const platform::Cluster& cluster,
    const std::vector<platform::HostId>& placement) {
  std::vector<double> out;
  out.reserve(placement.size());
  for (platform::HostId h : placement)
    out.push_back(cluster.host(h).effective_speed());
  return out;
}

}  // namespace

// -------------------------------------------------------------------- NONE

std::unique_ptr<IterativeExecution> NoneStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes),
      IterativeExecution::BoundaryHook{});
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

// --------------------------------------------------------------------- DLB

std::unique_ptr<IterativeExecution> DlbStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  // Initial partition balances iteration times for the speeds observed at
  // startup; each boundary rebalances for current speeds, at zero cost.
  auto initial = app::WorkPartition::proportional(
      effective_speeds(ctx.cluster, alloc.active));
  auto hook = [](IterativeExecution& exec, std::function<void()> resume) {
    exec.set_partition(app::WorkPartition::proportional(
        effective_speeds(exec.cluster(), exec.placement())));
    ++exec.result().adaptations;
    resume();
  };
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      std::move(initial), hook);
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

// -------------------------------------------------------------------- SWAP

namespace {

struct SwapRuntimeState {
  swap::PolicyParams policy;
  std::shared_ptr<SpeedEstimator> estimator;
  std::vector<platform::HostId> spares;
  std::vector<std::shared_ptr<net::Flow>> transfers;
  std::size_t pending = 0;
  sim::SimTime pause_start = 0.0;
  // Eviction guard.
  bool guard_enabled = false;
  double stall_factor = 3.0;
  sim::EventHandle watchdog;
};

/// Moves `slot`'s process onto `to`, updating the spare pool.
void apply_move(IterativeExecution& exec, SwapRuntimeState& state,
                std::size_t slot, platform::HostId to) {
  const platform::HostId from = exec.placement()[slot];
  exec.move_process(slot, to);
  std::erase(state.spares, to);
  state.spares.push_back(from);
  ++exec.result().adaptations;
}

/// Forced relocation of every slot stuck on an offline host; fires from the
/// stall watchdog.  The iteration is aborted (its partial work is lost),
/// the suspended processes' state is transferred off the reclaimed hosts,
/// and the iteration restarts on the new placement.
void handle_stall(IterativeExecution& exec,
                  const std::shared_ptr<SwapRuntimeState>& state) {
  if (!exec.iteration_in_flight() || exec.done()) return;

  std::vector<std::size_t> stuck;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot)
    if (!exec.cluster().host(exec.placement()[slot]).online())
      stuck.push_back(slot);

  // Online spares, fastest first.
  std::vector<platform::HostId> candidates;
  for (platform::HostId h : state->spares)
    if (exec.cluster().host(h).online()) candidates.push_back(h);
  const sim::SimTime now = exec.simulator().now();
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return state->estimator->estimate(exec.cluster().host(a),
                                                       now) >
                            state->estimator->estimate(exec.cluster().host(b),
                                                       now);
                   });

  if (stuck.empty() || candidates.empty()) {
    // Slow but not evicted, or nowhere to go: check again later.
    std::weak_ptr<SwapRuntimeState> weak = state;
    state->watchdog = exec.simulator().after(
        state->stall_factor * 60.0, [&exec, weak] {
          if (auto s = weak.lock()) handle_stall(exec, s);
        });
    return;
  }

  exec.abort_iteration();
  state->pause_start = now;
  const std::size_t moves = std::min(stuck.size(), candidates.size());
  state->pending = moves;
  state->transfers.clear();
  for (std::size_t i = 0; i < moves; ++i) {
    const std::size_t slot = stuck[i];
    const platform::HostId to = candidates[i];
    state->transfers.push_back(exec.network().start_transfer(
        exec.spec().state_bytes_per_process, [&exec, state, slot, to] {
          apply_move(exec, *state, slot, to);
          if (--state->pending == 0) {
            state->transfers.clear();
            exec.result().adaptation_overhead_s +=
                exec.simulator().now() - state->pause_start;
            exec.restart_iteration();  // re-arms the watchdog via observer
          }
        }));
  }
}

}  // namespace

std::unique_ptr<IterativeExecution> SwapStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<SwapRuntimeState>();
  state->policy = policy_;
  state->estimator = options_.estimator
                         ? options_.estimator->fresh()
                         : make_window_estimator(policy_.history_window_s);
  state->spares = alloc.spares;
  state->guard_enabled = options_.eviction_guard;
  state->stall_factor = options_.stall_factor;

  auto hook = [state](IterativeExecution& exec, std::function<void()> resume) {
    state->watchdog.cancel();  // boundary reached: the iteration completed
    const sim::SimTime now = exec.simulator().now();
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, *state->estimator);
    const auto spares = make_spare_estimates(exec.cluster(), state->spares, now,
                                             *state->estimator);
    const platform::LinkSpec& link = exec.cluster().link();
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      resume();
      return;
    }
    // Transfer every swapped process's state concurrently over the shared
    // link; the application stays paused (full barrier) until the last
    // transfer lands, then the placement changes take effect.
    state->pause_start = now;
    state->pending = decisions.size();
    state->transfers.clear();
    for (const swap::SwapDecision& d : decisions) {
      state->transfers.push_back(exec.network().start_transfer(
          exec.spec().state_bytes_per_process,
          [state, d, &exec, resume] {
            apply_move(exec, *state, d.slot, d.to);
            if (--state->pending == 0) {
              state->transfers.clear();
              exec.result().adaptation_overhead_s +=
                  exec.simulator().now() - state->pause_start;
              resume();
            }
          }));
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes), hook);

  if (options_.eviction_guard) {
    exec->set_iteration_start_observer([state](IterativeExecution& e) {
      state->watchdog.cancel();
      // Expected duration: the last measured iteration, or a prediction
      // from current estimates for the very first one.
      double expected;
      if (e.result().iterations_completed > 0) {
        expected = e.last_iteration_time();
      } else {
        const auto active = make_active_estimates(
            e.cluster(), e.placement(),
            chunk_flops(e.spec(), e.partition()), e.simulator().now(),
            *state->estimator);
        expected = swap::predict_iteration_time(
            active, estimate_comm_time(e.spec(), e.cluster().link()));
      }
      if (!std::isfinite(expected) || expected <= 0.0) expected = 60.0;
      std::weak_ptr<SwapRuntimeState> weak = state;
      state->watchdog =
          e.simulator().after(state->stall_factor * expected, [&e, weak] {
            if (auto s = weak.lock()) handle_stall(e, s);
          });
    });
  }

  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

// ---------------------------------------------------------------- DLB+SWAP

std::unique_ptr<IterativeExecution> DlbSwapStrategy::launch(
    StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<SwapRuntimeState>();
  state->policy = policy_;
  state->estimator = make_window_estimator(policy_.history_window_s);
  state->spares = alloc.spares;

  // Re-partition for the estimated speeds of the (possibly just changed)
  // placement; counted as part of the same adaptation, at zero cost.
  auto repartition = [state](IterativeExecution& exec) {
    const sim::SimTime now = exec.simulator().now();
    std::vector<double> speeds;
    speeds.reserve(exec.placement().size());
    for (platform::HostId h : exec.placement())
      speeds.push_back(
          std::max(1.0, state->estimator->estimate(exec.cluster().host(h), now)));
    exec.set_partition(app::WorkPartition::proportional(speeds));
  };

  auto hook = [state, repartition](IterativeExecution& exec,
                                   std::function<void()> resume) {
    const sim::SimTime now = exec.simulator().now();
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, *state->estimator);
    const auto spares = make_spare_estimates(exec.cluster(), state->spares, now,
                                             *state->estimator);
    const platform::LinkSpec& link = exec.cluster().link();
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      repartition(exec);
      resume();
      return;
    }
    state->pause_start = now;
    state->pending = decisions.size();
    state->transfers.clear();
    for (const swap::SwapDecision& d : decisions) {
      state->transfers.push_back(exec.network().start_transfer(
          exec.spec().state_bytes_per_process,
          [state, d, &exec, resume, repartition] {
            apply_move(exec, *state, d.slot, d.to);
            if (--state->pending == 0) {
              state->transfers.clear();
              exec.result().adaptation_overhead_s +=
                  exec.simulator().now() - state->pause_start;
              repartition(exec);
              resume();
            }
          }));
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::proportional([&] {
        std::vector<double> speeds;
        for (platform::HostId h : alloc.active)
          speeds.push_back(ctx.cluster.host(h).effective_speed());
        return speeds;
      }()),
      hook);
  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

// ---------------------------------------------------------------------- CR

namespace {

struct CrRuntimeState {
  swap::PolicyParams policy;
  std::vector<platform::HostId> pool;  // every allocated host
  std::vector<std::shared_ptr<net::Flow>> transfers;
  std::size_t pending = 0;
  sim::SimTime pause_start = 0.0;
};

/// N fastest pool hosts by windowed estimate, fastest first.
std::vector<platform::HostId> best_of_pool(const platform::Cluster& cluster,
                                           const std::vector<platform::HostId>& pool,
                                           std::size_t n, sim::SimTime now,
                                           double window_s) {
  std::vector<platform::HostId> sorted = pool;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return estimate_speed(cluster.host(a), now, window_s) >
                            estimate_speed(cluster.host(b), now, window_s);
                   });
  sorted.resize(n);
  return sorted;
}

}  // namespace

std::unique_ptr<IterativeExecution> CrStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto state = std::make_shared<CrRuntimeState>();
  state->policy = policy_;
  state->pool = alloc.active;
  state->pool.insert(state->pool.end(), alloc.spares.begin(),
                     alloc.spares.end());

  auto hook = [state](IterativeExecution& exec, std::function<void()> resume) {
    const sim::SimTime now = exec.simulator().now();
    const double window = state->policy.history_window_s;
    const auto active = make_active_estimates(
        exec.cluster(), exec.placement(),
        chunk_flops(exec.spec(), exec.partition()), now, window);
    std::vector<platform::HostId> idle;
    for (platform::HostId h : state->pool)
      if (std::find(exec.placement().begin(), exec.placement().end(), h) ==
          exec.placement().end())
        idle.push_back(h);
    const auto spares =
        make_spare_estimates(exec.cluster(), idle, now, window);
    const platform::LinkSpec& link = exec.cluster().link();
    const std::size_t n = exec.spec().active_processes;
    // CR's true cost: write N states, restart the application, read N
    // states.  Charge it in the payback computation.
    const double transfer_each =
        link.latency_s + exec.spec().state_bytes_per_process *
                             static_cast<double>(n) / link.bandwidth_Bps;
    const double cr_cost =
        2.0 * transfer_each + exec.cluster().startup_cost(n);
    const swap::PlanContext plan_ctx{
        .measured_iter_time_s = exec.last_iteration_time(),
        .state_bytes = exec.spec().state_bytes_per_process,
        .link_latency_s = link.latency_s,
        .link_bandwidth_Bps = link.bandwidth_Bps,
        .comm_time_s = estimate_comm_time(exec.spec(), link),
        .fixed_swap_time_s = cr_cost,
    };
    const auto decisions =
        swap::plan_swaps(state->policy, active, spares, plan_ctx);
    if (decisions.empty()) {
      resume();
      return;
    }
    // Checkpoint: all processes write state to the central store.
    state->pause_start = now;
    state->pending = n;
    state->transfers.clear();
    auto after_write = [state, &exec, resume, n] {
      // Restart: pay startup, then every process reads the checkpoint on
      // the new placement.
      exec.simulator().after(
          exec.cluster().startup_cost(n), [state, &exec, resume, n] {
            exec.set_placement(best_of_pool(exec.cluster(), state->pool, n,
                                            exec.simulator().now(),
                                            state->policy.history_window_s));
            state->pending = n;
            state->transfers.clear();
            for (std::size_t i = 0; i < n; ++i) {
              state->transfers.push_back(exec.network().start_transfer(
                  exec.spec().state_bytes_per_process, [state, &exec, resume] {
                    if (--state->pending == 0) {
                      state->transfers.clear();
                      ++exec.result().adaptations;
                      exec.result().adaptation_overhead_s +=
                          exec.simulator().now() - state->pause_start;
                      resume();
                    }
                  }));
            }
          });
    };
    for (std::size_t i = 0; i < n; ++i) {
      state->transfers.push_back(exec.network().start_transfer(
          exec.spec().state_bytes_per_process, [state, after_write] {
            if (--state->pending == 0) {
              state->transfers.clear();
              after_write();
            }
          }));
    }
  };

  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes), hook);
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

}  // namespace simsweep::strategy
