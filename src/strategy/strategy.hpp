// Execution strategies compared in the paper (§6/§7): do-nothing, process
// swapping, dynamic load balancing, and checkpoint/restart.
//
// Each strategy drives one application run on a shared platform.  Calling
// run() schedules everything on the simulator and returns a handle whose
// RunResult is complete once the simulation has drained (or hit a horizon).
#pragma once

#include <memory>
#include <string>

#include "app/app_spec.hpp"
#include "net/shared_link.hpp"
#include "platform/cluster.hpp"
#include "strategy/executor.hpp"
#include "strategy/run_result.hpp"
#include "strategy/schedule.hpp"
#include "swap/policy.hpp"

namespace simsweep::fault {
class FaultInjector;
}

namespace simsweep::strategy {

/// Everything a strategy needs to set up a run.
struct StrategyContext {
  sim::Simulator& simulator;
  platform::Cluster& cluster;
  net::SharedLinkNetwork& network;
  const app::AppSpec& spec;

  /// Spare processors to over-allocate (M); used by SWAP and CR.
  std::size_t spare_count = 0;

  /// Pre-execution scheduler ranking (the paper always uses
  /// kFastestEffective; the alternatives feed abl_initial_schedule).
  InitialSchedule initial_schedule = InitialSchedule::kFastestEffective;

  /// Armed fault injector, or null when fault injection is disabled.
  /// Strategies consult it for transfer/checkpoint failure draws and react
  /// to host crashes; with a null injector behaviour is bitwise identical
  /// to the fault-free code path.
  fault::FaultInjector* faults = nullptr;

  /// Record a DecisionRecord for every boundary planning round and
  /// recovery action into RunResult::decision_trace.  Tracing never touches
  /// the simulation itself, so results are identical either way.
  bool trace_decisions = false;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Schedules the run onto ctx.simulator.  The returned execution owns the
  /// run state; read result() after the simulator drains.
  [[nodiscard]] virtual std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) = 0;
};

/// (a) Do nothing: fixed placement and equal partition for the whole run.
class NoneStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "NONE"; }
  [[nodiscard]] std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) override;
};

/// (c) Dynamic load balancing: repartitions work every iteration so that
/// iteration times are balanced for the processors' current performance.
/// Redistribution itself is free (a lower bound, as in the paper).
class DlbStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "DLB"; }
  [[nodiscard]] std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) override;
};

class SpeedEstimator;  // strategy/estimator.hpp

/// Extensions beyond the paper's baseline SWAP strategy.
struct SwapOptions {
  /// Speed predictor; null selects the paper's windowed-mean semantics
  /// driven by the policy's history_window_s.
  std::shared_ptr<SpeedEstimator> estimator;

  /// React to owner reclamation: a watchdog aborts an iteration that has
  /// stalled on an offline host and force-swaps the affected processes onto
  /// online spares (the paper's proposed Condor-style combination, §2).
  bool eviction_guard = false;

  /// The watchdog fires when an iteration exceeds this multiple of the
  /// expected iteration time.
  double stall_factor = 3.0;
};

/// (b) Process swapping under a policy.
class SwapStrategy final : public Strategy {
 public:
  explicit SwapStrategy(swap::PolicyParams policy)
      : policy_(std::move(policy)) {}
  SwapStrategy(swap::PolicyParams policy, SwapOptions options)
      : policy_(std::move(policy)), options_(std::move(options)) {}
  [[nodiscard]] std::string name() const override {
    return "SWAP(" + policy_.name + ")";
  }
  [[nodiscard]] std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) override;

  [[nodiscard]] const swap::PolicyParams& policy() const noexcept {
    return policy_;
  }

 private:
  swap::PolicyParams policy_;
  SwapOptions options_;
};

/// Hybrid extension (paper §2: "a DLB implementation could further improve
/// performance through the use of an over-allocation mechanism similar to
/// the one used in our approach"): swap-to-spares first, then repartition
/// the work proportionally to the estimated speeds of the resulting
/// placement.  Repartitioning itself is free, like DlbStrategy.
class DlbSwapStrategy final : public Strategy {
 public:
  explicit DlbSwapStrategy(swap::PolicyParams policy)
      : policy_(std::move(policy)) {}
  [[nodiscard]] std::string name() const override {
    return "DLB+SWAP(" + policy_.name + ")";
  }
  [[nodiscard]] std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) override;

 private:
  swap::PolicyParams policy_;
};

/// (d) Checkpoint/restart: when moving to a better processor set passes the
/// same policy criteria as swapping, every process writes its state to a
/// central store, the application restarts (paying startup again) on the
/// best processors of the pool, and every process reads the checkpoint.
class CrStrategy final : public Strategy {
 public:
  explicit CrStrategy(swap::PolicyParams policy) : policy_(std::move(policy)) {}
  [[nodiscard]] std::string name() const override { return "CR"; }
  [[nodiscard]] std::unique_ptr<IterativeExecution> launch(
      StrategyContext& ctx) override;

 private:
  swap::PolicyParams policy_;
};

/// Communication-phase duration estimate used in planner predictions: all
/// active processes' messages share the link.
[[nodiscard]] double estimate_comm_time(const app::AppSpec& spec,
                                        const platform::LinkSpec& link);

}  // namespace simsweep::strategy
