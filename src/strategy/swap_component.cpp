#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "strategy/components.hpp"
#include "swap/payback.hpp"

namespace simsweep::strategy {

BoundaryPlan plan_boundary_swaps(TechniqueRuntime& rt,
                                 const swap::PolicyParams& policy,
                                 const std::vector<platform::HostId>& spare_hosts,
                                 std::optional<double> adaptation_cost_s) {
  IterativeExecution& exec = rt.exec();
  const sim::SimTime now = rt.now();
  const auto active = make_active_estimates(
      exec.cluster(), exec.placement(),
      chunk_flops(exec.spec(), exec.partition()), now, rt.estimator());
  const auto spares = make_spare_estimates(exec.cluster(), spare_hosts, now,
                                           rt.estimator());
  const platform::LinkSpec& link = exec.cluster().link();
  const swap::PlanContext plan_ctx{
      .measured_iter_time_s = exec.last_iteration_time(),
      .state_bytes = exec.spec().state_bytes_per_process,
      .link_latency_s = link.latency_s,
      .link_bandwidth_Bps = link.bandwidth_Bps,
      .comm_time_s = estimate_comm_time(exec.spec(), link),
      .adaptation_cost_s = adaptation_cost_s,
  };
  BoundaryPlan out;
  out.plan = swap::evaluate_swaps(policy, active, spares, plan_ctx);
  const double cost =
      adaptation_cost_s
          ? *adaptation_cost_s
          : swap::estimate_swap_time(plan_ctx.state_bytes, link.latency_s,
                                     link.bandwidth_Bps);
  out.trace_index = rt.trace_boundary(out.plan, plan_ctx.measured_iter_time_s,
                                      cost, active.size(), spares.size());
  return out;
}

/// Moves `slot`'s process onto `to`, updating the spare pool.  A vacated
/// host returns to the pool unless it is dead or blacklisted.
void SwapComponent::apply_move(TechniqueRuntime& rt, std::size_t slot,
                               platform::HostId to) {
  IterativeExecution& exec = rt.exec();
  const platform::HostId from = exec.placement()[slot];
  exec.move_process(slot, to);
  std::erase(spares_, to);
  if (!exec.cluster().host(from).crashed() && !blacklist_.contains(from))
    spares_.push_back(from);
  ++exec.result().adaptations;
}

/// Books one failed transfer attempt against destination `to`; repeated
/// offenders are blacklisted out of the spare pool.
void SwapComponent::note_strike(TechniqueRuntime& rt, platform::HostId to) {
  if (rt.faults() == nullptr) return;
  if (++strikes_[to] != rt.faults()->spec().blacklist_after) return;
  if (!blacklist_.insert(to).second) return;
  std::erase(spares_, to);
  ++rt.exec().result().failures.hosts_blacklisted;
  if (obs::MetricsRegistry* metrics = rt.exec().simulator().metrics())
    metrics->add("strategy.hosts_blacklisted");
  rt.trace_recovery("host_blacklisted", 1);
}

/// Online spares (blacklisted hosts were already removed), fastest first by
/// the runtime's estimator.
std::vector<platform::HostId> SwapComponent::usable_spares(
    TechniqueRuntime& rt) const {
  IterativeExecution& exec = rt.exec();
  std::vector<platform::HostId> out;
  for (platform::HostId h : spares_)
    if (exec.cluster().host(h).online()) out.push_back(h);
  const sim::SimTime now = rt.now();
  std::stable_sort(out.begin(), out.end(),
                   [&](platform::HostId a, platform::HostId b) {
                     return rt.estimator().estimate(exec.cluster().host(a),
                                                    now) >
                            rt.estimator().estimate(exec.cluster().host(b),
                                                    now);
                   });
  return out;
}

void SwapComponent::execute(TechniqueRuntime& rt,
                            const std::vector<swap::SwapDecision>& decisions,
                            std::size_t trace_index,
                            std::function<void()> finish) {
  rt.begin_adaptation_pause();
  std::vector<TechniqueRuntime::PlannedMove> moves;
  moves.reserve(decisions.size());
  for (const swap::SwapDecision& d : decisions)
    moves.push_back({d.slot, static_cast<platform::HostId>(d.to)});
  rt.transfer_moves(
      moves, [this, &rt](platform::HostId to) { note_strike(rt, to); },
      [this, &rt](std::size_t slot, platform::HostId to) {
        apply_move(rt, slot, to);
      },
      [&rt, trace_index, finish = std::move(finish)](std::size_t landed) {
        rt.charge_adaptation_pause();
        rt.trace_swaps_applied(trace_index, landed);
        finish();
      });
}

// ------------------------------------------------------------ crash recovery

void SwapComponent::recover(TechniqueRuntime& rt) {
  rt.begin_recovery();
  recovery_begin_recoveries_ = rt.exec().result().failures.crash_recoveries;
  recover_round(rt);
}

/// One round of crash recovery: every dead slot gets a replacement spun up
/// on an online spare, paying a full state transfer each (boundary state is
/// re-materialised from the surviving peers).  Rounds repeat until no dead
/// slot remains — transfers can fail or their targets can crash mid-round —
/// and recovery is all-or-nothing: fewer usable spares than dead slots is
/// terminal, since a partially-replaced application cannot make progress.
void SwapComponent::recover_round(TechniqueRuntime& rt) {
  IterativeExecution& exec = rt.exec();
  std::vector<std::size_t> dead;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot)
    if (exec.cluster().host(exec.placement()[slot]).crashed())
      dead.push_back(slot);
  if (dead.empty()) {
    finish_recovery(rt);
    return;
  }
  const auto candidates = usable_spares(rt);
  if (candidates.size() < dead.size()) {
    rt.mark_resource_exhausted();
    return;
  }
  std::vector<TechniqueRuntime::PlannedMove> moves;
  moves.reserve(dead.size());
  for (std::size_t i = 0; i < dead.size(); ++i)
    moves.push_back({dead[i], candidates[i]});
  rt.transfer_moves(
      moves, [this, &rt](platform::HostId to) { note_strike(rt, to); },
      [this, &rt](std::size_t slot, platform::HostId to) {
        apply_move(rt, slot, to);
        ++rt.exec().result().failures.crash_recoveries;
      },
      [this, &rt](std::size_t) { recover_round(rt); });
}

/// All crashed slots replaced: charge the recovery pause and resume.
void SwapComponent::finish_recovery(TechniqueRuntime& rt) {
  rt.charge_recovery_pause();
  rt.trace_recovery("replace_on_spares",
                    rt.exec().result().failures.crash_recoveries -
                        recovery_begin_recoveries_);
  if (post_recovery_) post_recovery_(rt);
  rt.exec().restart_iteration();
}

// ------------------------------------------------------------ eviction guard

/// Forced relocation of every slot stuck on an offline host; fires from the
/// stall watchdog.  The iteration is aborted (its partial work is lost),
/// the suspended processes' state is transferred off the reclaimed hosts,
/// and the iteration restarts on the new placement.
void SwapComponent::handle_stall(TechniqueRuntime& rt) {
  IterativeExecution& exec = rt.exec();
  if (!exec.iteration_in_flight() || exec.done() || rt.recovering()) return;

  std::vector<std::size_t> stuck;
  for (std::size_t slot = 0; slot < exec.placement().size(); ++slot)
    if (!exec.cluster().host(exec.placement()[slot]).online())
      stuck.push_back(slot);

  const auto candidates = usable_spares(rt);

  if (stuck.empty() || candidates.empty()) {
    // Slow but not evicted, or nowhere to go: check again later.
    std::weak_ptr<TechniqueRuntime> weak = rt.weak_from_this();
    rt.watchdog() =
        exec.simulator().after(stall_factor_ * 60.0, [this, weak] {
          if (auto s = weak.lock()) handle_stall(*s);
        });
    return;
  }

  exec.abort_iteration();
  rt.begin_adaptation_pause();
  const std::size_t count = std::min(stuck.size(), candidates.size());
  std::vector<TechniqueRuntime::PlannedMove> moves;
  moves.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    moves.push_back({stuck[i], candidates[i]});
  rt.transfer_moves(
      moves, [this, &rt](platform::HostId to) { note_strike(rt, to); },
      [this, &rt](std::size_t slot, platform::HostId to) {
        apply_move(rt, slot, to);
      },
      [&rt](std::size_t landed) {
        rt.charge_adaptation_pause();
        rt.trace_recovery("stall_force_swap", landed);
        rt.exec().restart_iteration();  // re-arms the watchdog via observer
      });
}

std::function<void(IterativeExecution&)> SwapComponent::guard_observer(
    TechniqueRuntime& rt) {
  std::weak_ptr<TechniqueRuntime> weak = rt.weak_from_this();
  return [this, weak](IterativeExecution& e) {
    auto locked = weak.lock();
    if (!locked) return;
    TechniqueRuntime& runtime = *locked;
    runtime.watchdog().cancel();
    // Expected duration: the last measured iteration, or a prediction
    // from current estimates for the very first one.
    double expected;
    if (e.result().iterations_completed > 0) {
      expected = e.last_iteration_time();
    } else {
      const auto active = make_active_estimates(
          e.cluster(), e.placement(), chunk_flops(e.spec(), e.partition()),
          e.simulator().now(), runtime.estimator());
      expected = swap::predict_iteration_time(
          active, estimate_comm_time(e.spec(), e.cluster().link()));
    }
    if (!std::isfinite(expected) || expected <= 0.0) expected = 60.0;
    runtime.watchdog() =
        e.simulator().after(stall_factor_ * expected, [this, weak] {
          if (auto s = weak.lock()) handle_stall(*s);
        });
  };
}

}  // namespace simsweep::strategy
