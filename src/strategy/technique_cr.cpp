// Technique (d), CR: when moving to a better processor set passes the same
// policy criteria as swapping (with checkpoint/restart's true cost in the
// payback computation), every process writes its state to a central store,
// the application restarts on the best processors of the pool, and every
// process reads the checkpoint.
#include <functional>
#include <memory>
#include <utility>

#include "strategy/components.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

namespace {

class CrRemediation final : public Remediation {
 public:
  CrRemediation(swap::PolicyParams policy,
                std::vector<platform::HostId> pool)
      : cr_(std::move(policy), std::move(pool)) {}

  void at_boundary(TechniqueRuntime& rt,
                   std::function<void()> resume) override {
    cr_.at_boundary(rt, std::move(resume));
  }

  void recover(TechniqueRuntime& rt) override { cr_.recover(rt); }

  void on_host_crashed(TechniqueRuntime& /*rt*/,
                       platform::HostId host) override {
    cr_.prune(host);
  }

 private:
  CrComponent cr_;
};

}  // namespace

std::unique_ptr<IterativeExecution> CrStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  std::vector<platform::HostId> pool = alloc.active;
  pool.insert(pool.end(), alloc.spares.begin(), alloc.spares.end());
  auto rt = std::make_shared<TechniqueRuntime>(
      ctx.faults, make_policy_estimator(policy_), ctx.trace_decisions);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes),
      TechniqueRuntime::boundary_hook(rt));
  rt->wire(*exec, std::make_unique<CrRemediation>(policy_, std::move(pool)));
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

}  // namespace simsweep::strategy
