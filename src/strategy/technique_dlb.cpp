// Technique (c), DLB: repartition work every iteration so that iteration
// times are balanced for the processors' current performance.
// Redistribution itself is free (a lower bound, as in the paper).
#include <functional>
#include <memory>
#include <utility>

#include "strategy/components.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

namespace {

class DlbRemediation final : public Remediation {
 public:
  void at_boundary(TechniqueRuntime& rt,
                   std::function<void()> resume) override {
    DlbComponent::repartition_effective(rt.exec());
    ++rt.exec().result().adaptations;
    resume();
  }

  void recover(TechniqueRuntime& rt) override { DlbComponent::recover(rt); }
};

}  // namespace

std::unique_ptr<IterativeExecution> DlbStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  // Initial partition balances iteration times for the speeds observed at
  // startup; each boundary rebalances for current speeds, at zero cost.
  auto initial = app::WorkPartition::proportional(
      effective_speeds(ctx.cluster, alloc.active));
  auto rt = std::make_shared<TechniqueRuntime>(ctx.faults, nullptr,
                                               ctx.trace_decisions);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      std::move(initial), TechniqueRuntime::boundary_hook(rt));
  rt->wire(*exec, std::make_unique<DlbRemediation>());
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

}  // namespace simsweep::strategy
