// Hybrid technique, DLB+SWAP (paper §2: "a DLB implementation could further
// improve performance through the use of an over-allocation mechanism
// similar to the one used in our approach"): SwapComponent plus
// DlbComponent — swap to spares first, then repartition the work
// proportionally to the estimated speeds of the resulting placement.
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "strategy/components.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

namespace {

class DlbSwapRemediation final : public Remediation {
 public:
  DlbSwapRemediation(swap::PolicyParams policy,
                     std::vector<platform::HostId> spares)
      : swap_(std::move(policy), std::move(spares)) {
    // Re-partition for the estimated speeds of the (possibly just changed)
    // placement; counted as part of the same adaptation, at zero cost.
    swap_.set_post_recovery(
        [](TechniqueRuntime& rt) { DlbComponent::repartition_estimated(rt); });
  }

  void at_boundary(TechniqueRuntime& rt,
                   std::function<void()> resume) override {
    const BoundaryPlan planned = swap_.plan(rt);
    if (planned.plan.decisions.empty()) {
      DlbComponent::repartition_estimated(rt);
      resume();
      return;
    }
    swap_.execute(rt, planned.plan.decisions, planned.trace_index,
                  [&rt, resume = std::move(resume)] {
                    DlbComponent::repartition_estimated(rt);
                    resume();
                  });
  }

  void recover(TechniqueRuntime& rt) override { swap_.recover(rt); }

  void on_host_crashed(TechniqueRuntime& /*rt*/,
                       platform::HostId host) override {
    swap_.prune_spare(host);
  }

 private:
  SwapComponent swap_;
};

}  // namespace

std::unique_ptr<IterativeExecution> DlbSwapStrategy::launch(
    StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto rt = std::make_shared<TechniqueRuntime>(
      ctx.faults, make_policy_estimator(policy_), ctx.trace_decisions);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::proportional(
          effective_speeds(ctx.cluster, alloc.active)),
      TechniqueRuntime::boundary_hook(rt));
  rt->wire(*exec,
           std::make_unique<DlbSwapRemediation>(policy_, alloc.spares));
  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

}  // namespace simsweep::strategy
