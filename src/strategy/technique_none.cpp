// Technique (a), NONE: fixed placement and equal partition for the whole
// run.  No boundary adaptation; a crash means the job is resubmitted from
// scratch.
#include <memory>
#include <utility>
#include <vector>

#include "strategy/runtime.hpp"
#include "strategy/schedule.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

namespace {

/// NONE's failure semantics: the job is resubmitted from scratch — pay
/// startup again and recompute every iteration on the fastest hosts still
/// alive.  No spare pool exists, so too few online hosts is terminal.
class NoneRemediation final : public Remediation {
 public:
  void recover(TechniqueRuntime& rt) override {
    rt.begin_recovery();
    IterativeExecution& exec = rt.exec();
    exec.rollback_to_iteration(0);
    const std::size_t n = exec.spec().active_processes;
    auto self = rt.shared_from_this();
    exec.simulator().after(exec.cluster().startup_cost(n), [self, n] {
      IterativeExecution& e = self->exec();
      std::vector<platform::HostId> fastest;
      for (platform::HostId h : e.cluster().by_effective_speed())
        if (e.cluster().host(h).online()) fastest.push_back(h);
      if (fastest.size() < n) {
        self->mark_resource_exhausted();
        return;
      }
      fastest.resize(n);
      e.set_placement(std::move(fastest));
      ++e.result().failures.crash_recoveries;
      self->charge_recovery_pause();
      self->trace_recovery("restart_from_scratch", n);
      e.restart_iteration();
    });
  }
};

}  // namespace

std::unique_ptr<IterativeExecution> NoneStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes, 0,
                                     ctx.initial_schedule);
  auto rt = std::make_shared<TechniqueRuntime>(ctx.faults, nullptr,
                                               ctx.trace_decisions);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes),
      TechniqueRuntime::boundary_hook(rt));
  rt->wire(*exec, std::make_unique<NoneRemediation>());
  exec->start(ctx.cluster.startup_cost(ctx.spec.active_processes));
  return exec;
}

}  // namespace simsweep::strategy
