// Technique (b), SWAP: process swapping onto over-allocated spares under a
// policy, with the optional eviction-guard watchdog.
#include <functional>
#include <memory>
#include <utility>

#include "strategy/components.hpp"
#include "strategy/strategy.hpp"

namespace simsweep::strategy {

namespace {

class SwapRemediation final : public Remediation {
 public:
  SwapRemediation(swap::PolicyParams policy,
                  std::vector<platform::HostId> spares,
                  const SwapOptions& options)
      : swap_(std::move(policy), std::move(spares), options.stall_factor),
        guard_enabled_(options.eviction_guard) {}

  void at_boundary(TechniqueRuntime& rt,
                   std::function<void()> resume) override {
    const BoundaryPlan planned = swap_.plan(rt);
    if (planned.plan.decisions.empty()) {
      resume();
      return;
    }
    swap_.execute(rt, planned.plan.decisions, planned.trace_index,
                  std::move(resume));
  }

  void recover(TechniqueRuntime& rt) override { swap_.recover(rt); }

  void on_host_crashed(TechniqueRuntime& /*rt*/,
                       platform::HostId host) override {
    swap_.prune_spare(host);
  }

  [[nodiscard]] std::function<void(IterativeExecution&)>
  iteration_start_observer(TechniqueRuntime& rt) override {
    if (!guard_enabled_) return {};
    return swap_.guard_observer(rt);
  }

 private:
  SwapComponent swap_;
  bool guard_enabled_ = false;
};

}  // namespace

std::unique_ptr<IterativeExecution> SwapStrategy::launch(StrategyContext& ctx) {
  Allocation alloc = pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                     ctx.spare_count, ctx.initial_schedule);
  auto rt = std::make_shared<TechniqueRuntime>(
      ctx.faults, make_policy_estimator(policy_, options_.estimator),
      ctx.trace_decisions);
  auto exec = std::make_unique<IterativeExecution>(
      ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
      app::WorkPartition::equal(ctx.spec.active_processes),
      TechniqueRuntime::boundary_hook(rt));
  rt->wire(*exec,
           std::make_unique<SwapRemediation>(policy_, alloc.spares, options_));
  exec->start(ctx.cluster.startup_cost(alloc.total()));
  return exec;
}

}  // namespace simsweep::strategy
