#include "swampi/checkpoint_ext.hpp"

#include <cstring>
#include <stdexcept>

namespace swampi::swapx {

void CheckpointStore::write(int slot, Snapshot snapshot) {
  const std::scoped_lock lock(mutex_);
  snapshots_[slot] = std::move(snapshot);
}

bool CheckpointStore::complete(int active_count) const {
  const std::scoped_lock lock(mutex_);
  if (active_count <= 0) return false;
  const auto first = snapshots_.find(0);
  if (first == snapshots_.end()) return false;
  for (int slot = 0; slot < active_count; ++slot) {
    const auto it = snapshots_.find(slot);
    if (it == snapshots_.end() ||
        it->second.iteration != first->second.iteration)
      return false;
  }
  return true;
}

std::uint64_t CheckpointStore::iteration(int active_count) const {
  if (!complete(active_count))
    throw std::logic_error("CheckpointStore: no complete checkpoint");
  const std::scoped_lock lock(mutex_);
  return snapshots_.at(0).iteration;
}

CheckpointStore::Snapshot CheckpointStore::read(int slot) const {
  const std::scoped_lock lock(mutex_);
  const auto it = snapshots_.find(slot);
  if (it == snapshots_.end())
    throw std::out_of_range("CheckpointStore: no snapshot for slot");
  return it->second;
}

std::size_t CheckpointStore::slots_stored() const {
  const std::scoped_lock lock(mutex_);
  return snapshots_.size();
}

void checkpoint(SwapContext& ctx, CheckpointStore& store,
                std::uint64_t iteration) {
  const Role role = ctx.role();
  if (role.active) {
    CheckpointStore::Snapshot snapshot;
    snapshot.iteration = iteration;
    snapshot.buffers.reserve(ctx.registrations().size());
    for (const SwapContext::Registration& reg : ctx.registrations()) {
      const auto* bytes = static_cast<const std::byte*>(reg.data);
      snapshot.buffers.emplace_back(bytes, bytes + reg.bytes);
    }
    store.write(role.slot, std::move(snapshot));
  }
  // Writers must land before any rank treats the checkpoint as complete.
  ctx.world().barrier();
}

std::uint64_t restore(SwapContext& ctx, CheckpointStore& store) {
  if (!store.complete(ctx.active_count()))
    throw std::logic_error("restore: checkpoint is incomplete");
  const Role role = ctx.role();
  if (role.active) {
    const CheckpointStore::Snapshot snapshot = store.read(role.slot);
    if (snapshot.buffers.size() != ctx.registrations().size())
      throw std::runtime_error("restore: registration count mismatch");
    for (std::size_t i = 0; i < snapshot.buffers.size(); ++i) {
      const SwapContext::Registration& reg = ctx.registrations()[i];
      if (snapshot.buffers[i].size() != reg.bytes)
        throw std::runtime_error("restore: registration size mismatch");
      std::memcpy(reg.data, snapshot.buffers[i].data(), reg.bytes);
    }
  }
  const std::uint64_t iteration = store.iteration(ctx.active_count());
  ctx.world().barrier();
  return iteration;
}

}  // namespace swampi::swapx
