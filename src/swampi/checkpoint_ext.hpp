// Application-level checkpointing for swampi iterative applications.
//
// The paper's CR competitor and its references ([2] Cactus Worm, [40] the
// GrADS metascheduler) rely on the same observation that makes swapping
// cheap: an iterative application's state is a known set of arrays at an
// iteration boundary.  This extension reuses the SwapContext state registry
// (the variables that would travel on a swap are exactly the ones worth
// checkpointing) and stores per-slot snapshots in a central CheckpointStore
// — the simulated "central location" of the paper's CR model, in memory
// here so tests and examples run hermetically.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "swampi/swap_ext.hpp"

namespace swampi::swapx {

/// Thread-safe snapshot store shared by all ranks of a runtime (the
/// "central location" checkpoints are written to).
class CheckpointStore {
 public:
  struct Snapshot {
    std::uint64_t iteration = 0;
    std::vector<std::vector<std::byte>> buffers;  // one per registration
  };

  /// Replaces slot's snapshot.
  void write(int slot, Snapshot snapshot);

  /// True when a snapshot exists for every slot in [0, active_count) with
  /// the same iteration stamp.
  [[nodiscard]] bool complete(int active_count) const;

  /// Iteration stamp of the newest complete checkpoint; throws when none.
  [[nodiscard]] std::uint64_t iteration(int active_count) const;

  /// Read access to one slot's snapshot; throws when absent.
  [[nodiscard]] Snapshot read(int slot) const;

  [[nodiscard]] std::size_t slots_stored() const;

 private:
  mutable std::mutex mutex_;
  std::map<int, Snapshot> snapshots_;
};

/// Collective over the SwapContext's world: every active rank copies its
/// registered state into the store, stamped with `iteration`.  All ranks
/// must call it (spares contribute nothing) at the same point, like
/// swap_point().
void checkpoint(SwapContext& ctx, CheckpointStore& store,
                std::uint64_t iteration);

/// Collective: every active rank overwrites its registered state from the
/// store.  Returns the checkpoint's iteration stamp (identical on all
/// ranks).  Precondition: store.complete(ctx.active_count()).
std::uint64_t restore(SwapContext& ctx, CheckpointStore& store);

}  // namespace swampi::swapx
