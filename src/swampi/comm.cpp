#include "swampi/comm.hpp"

#include <algorithm>
#include <map>

namespace swampi {

Status Request::wait() {
  if (done_) return status_;
  std::vector<std::byte> buf;
  status_ =
      recv_.comm->recv_bytes(buf, recv_.source, recv_.tag);
  if (status_.bytes != recv_.bytes)
    throw std::runtime_error("swampi::Request::wait: size mismatch");
  std::memcpy(recv_.buffer, buf.data(), status_.bytes);
  done_ = true;
  return status_;
}

bool Request::test() {
  if (done_) return true;
  if (recv_.comm->runtime()
          .mailbox(recv_.comm->world_rank(recv_.comm->rank()))
          .probe(recv_.comm->context_, recv_.source, recv_.tag)) {
    (void)wait();
    return true;
  }
  return false;
}

Comm::Comm(Runtime& runtime, ContextId context, std::vector<Rank> group,
           int my_index)
    : runtime_(runtime),
      context_(context),
      group_(std::move(group)),
      my_index_(my_index) {
  if (my_index_ < 0 || my_index_ >= static_cast<int>(group_.size()))
    throw std::invalid_argument("Comm: rank outside group");
}

void Comm::send_bytes(std::span<const std::byte> data, Rank dest, Tag tag) {
  if (tag < 0 || tag >= kReservedTagBase)
    throw std::invalid_argument("swampi::send: tag out of user range");
  runtime_.mailbox(world_rank(dest))
      .deliver(Envelope{.context = context_,
                        .source = my_index_,
                        .tag = tag,
                        .payload = {data.begin(), data.end()}});
}

Status Comm::recv_bytes(std::vector<std::byte>& out, Rank source, Tag tag) {
  Envelope e =
      runtime_.mailbox(world_rank(my_index_)).receive(context_, source, tag);
  out = std::move(e.payload);
  return Status{.source = e.source, .tag = e.tag, .bytes = out.size()};
}

void Comm::internal_send(const std::byte* data, std::size_t bytes, Rank dest,
                         Tag tag) {
  runtime_.mailbox(world_rank(dest))
      .deliver(Envelope{.context = internal_context(),
                        .source = my_index_,
                        .tag = tag,
                        .payload = {data, data + bytes}});
}

void Comm::internal_recv(std::byte* data, std::size_t bytes, Rank source,
                         Tag tag) {
  Envelope e = runtime_.mailbox(world_rank(my_index_))
                   .receive(internal_context(), source, tag);
  if (e.payload.size() != bytes)
    throw std::runtime_error("swampi::internal_recv: size mismatch");
  std::memcpy(data, e.payload.data(), bytes);
}

void Comm::barrier() {
  // Linear fan-in to rank 0, then fan-out.  Fine at in-process scales.
  const std::byte token{0};
  if (rank() == 0) {
    for (Rank r = 1; r < size(); ++r) {
      std::byte in;
      internal_recv(&in, 1, r, kTagBarrier);
    }
    for (Rank r = 1; r < size(); ++r) internal_send(&token, 1, r, kTagBarrier);
  } else {
    internal_send(&token, 1, 0, kTagBarrier);
    std::byte in;
    internal_recv(&in, 1, 0, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::byte* data, std::size_t bytes, Rank root) {
  if (rank() == root) {
    for (Rank r = 0; r < size(); ++r)
      if (r != root) internal_send(data, bytes, r, kTagBcast);
  } else {
    internal_recv(data, bytes, root, kTagBcast);
  }
}

namespace {
struct SplitRequest {
  int color;
  int key;
};
struct SplitReply {
  ContextId context;
  int new_rank;
  int group_size;
};
}  // namespace

Comm Comm::split(int color, int key) {
  if (color < 0) throw std::invalid_argument("swampi::split: negative color");
  const SplitRequest mine{color, key};
  if (rank() == 0) {
    std::vector<SplitRequest> requests(static_cast<std::size_t>(size()));
    requests[0] = mine;
    for (Rank r = 1; r < size(); ++r)
      requests[static_cast<std::size_t>(r)] =
          internal_recv_value<SplitRequest>(r, kTagSplit);

    // Group ranks by color; order within a group by (key, old rank).
    std::map<int, std::vector<Rank>> groups;
    for (Rank r = 0; r < size(); ++r)
      groups[requests[static_cast<std::size_t>(r)].color].push_back(r);
    std::map<Rank, SplitReply> replies;
    std::map<Rank, std::vector<Rank>> world_groups;
    for (auto& [c, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](Rank a, Rank b) {
        return requests[static_cast<std::size_t>(a)].key <
               requests[static_cast<std::size_t>(b)].key;
      });
      const ContextId ctx = runtime_.next_context();
      std::vector<Rank> world_members;
      world_members.reserve(members.size());
      for (Rank m : members) world_members.push_back(world_rank(m));
      for (std::size_t i = 0; i < members.size(); ++i) {
        replies[members[i]] = SplitReply{ctx, static_cast<int>(i),
                                         static_cast<int>(members.size())};
        world_groups[members[i]] = world_members;
      }
    }
    for (Rank r = 1; r < size(); ++r) {
      internal_send_value(replies[r], r, kTagSplit);
      const auto& wg = world_groups[r];
      internal_send(reinterpret_cast<const std::byte*>(wg.data()),
                    wg.size() * sizeof(Rank), r, kTagSplit);
    }
    const SplitReply& rep = replies[0];
    return Comm(runtime_, rep.context, world_groups[0], rep.new_rank);
  }

  internal_send_value(mine, 0, kTagSplit);
  const auto rep = internal_recv_value<SplitReply>(0, kTagSplit);
  std::vector<Rank> world_group(static_cast<std::size_t>(rep.group_size));
  internal_recv(reinterpret_cast<std::byte*>(world_group.data()),
                world_group.size() * sizeof(Rank), 0, kTagSplit);
  return Comm(runtime_, rep.context, std::move(world_group), rep.new_rank);
}

}  // namespace swampi
