// swampi communicator: point-to-point, collectives, split/dup.
//
// A Comm is a (context id, ordered group of world ranks) pair.  User
// traffic and library-internal traffic (collectives, split coordination,
// the swap protocol) travel on different context ids derived from the same
// communicator, so a wildcard user receive can never steal an internal
// message.
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "swampi/runtime.hpp"
#include "swampi/types.hpp"

namespace swampi {

/// Handle for a nonblocking operation.  Eager sends complete immediately;
/// a nonblocking receive performs its matching inside wait()/test().
class Request {
 public:
  Request() = default;

  /// Blocks until the operation completes; returns delivery metadata.
  Status wait();

  /// True when wait() would not block.
  [[nodiscard]] bool test();

 private:
  friend class Comm;
  struct RecvOp {
    class Comm* comm;
    std::byte* buffer;
    std::size_t bytes;
    Rank source;
    Tag tag;
  };
  bool is_recv_ = false;
  bool done_ = true;
  Status status_;
  RecvOp recv_{};
};

class Comm {
 public:
  /// World communicator for one rank thread (made by Runtime::run).
  Comm(Runtime& runtime, ContextId context, std::vector<Rank> group,
       int my_index);

  [[nodiscard]] int rank() const noexcept { return my_index_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(group_.size());
  }
  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }

  /// World rank behind a communicator rank.
  [[nodiscard]] Rank world_rank(Rank comm_rank) const {
    return group_.at(static_cast<std::size_t>(comm_rank));
  }

  // ---- point-to-point -----------------------------------------------------

  void send_bytes(std::span<const std::byte> data, Rank dest, Tag tag);
  Status recv_bytes(std::vector<std::byte>& out, Rank source, Tag tag);

  /// Typed blocking send/recv for trivially copyable element types.
  template <typename T>
  void send(const T* data, std::size_t count, Rank dest, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(std::span<const T>(data, count)), dest, tag);
  }

  template <typename T>
  Status recv(T* data, std::size_t count, Rank source, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf;
    Status st = recv_bytes(buf, source, tag);
    if (st.bytes != count * sizeof(T))
      throw std::runtime_error("swampi::recv: size mismatch");
    std::memcpy(data, buf.data(), st.bytes);
    return st;
  }

  /// Convenience single-value forms.
  template <typename T>
  void send_value(const T& value, Rank dest, Tag tag) {
    send(&value, 1, dest, tag);
  }
  template <typename T>
  [[nodiscard]] T recv_value(Rank source, Tag tag) {
    T out;
    recv(&out, 1, source, tag);
    return out;
  }

  /// Combined exchange, deadlock-free under swampi's eager sends: the send
  /// buffers at the destination before the receive blocks.
  template <typename T>
  Status sendrecv(const T* send_data, std::size_t send_count, Rank dest,
                  Tag send_tag, T* recv_data, std::size_t recv_count,
                  Rank source, Tag recv_tag) {
    send(send_data, send_count, dest, send_tag);
    return recv(recv_data, recv_count, source, recv_tag);
  }

  /// Non-blocking probe for a matching user message.
  [[nodiscard]] bool iprobe(Rank source, Tag tag) {
    return runtime_.mailbox(world_rank(my_index_))
        .probe(context_, source, tag);
  }

  /// Nonblocking operations.
  template <typename T>
  Request isend(const T* data, std::size_t count, Rank dest, Tag tag) {
    send(data, count, dest, tag);  // eager: completes on enqueue
    Request r;
    r.status_ = Status{.source = rank(), .tag = tag, .bytes = count * sizeof(T)};
    return r;
  }

  template <typename T>
  Request irecv(T* data, std::size_t count, Rank source, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Request r;
    r.is_recv_ = true;
    r.done_ = false;
    r.recv_ = Request::RecvOp{
        .comm = this,
        .buffer = reinterpret_cast<std::byte*>(data),
        .bytes = count * sizeof(T),
        .source = source,
        .tag = tag,
    };
    return r;
  }

  // ---- collectives --------------------------------------------------------

  void barrier();

  template <typename T>
  void bcast(T* data, std::size_t count, Rank root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(reinterpret_cast<std::byte*>(data), count * sizeof(T), root);
  }

  template <typename T>
  void reduce(const T* in, T* out, std::size_t count, Op op, Rank root) {
    static_assert(std::is_arithmetic_v<T>);
    if (rank() == root) {
      std::vector<T> result(in, in + count);
      std::vector<T> incoming(count);
      for (Rank r = 0; r < size(); ++r) {
        if (r == root) continue;
        internal_recv(reinterpret_cast<std::byte*>(incoming.data()),
                      count * sizeof(T), r, kTagReduce);
        for (std::size_t i = 0; i < count; ++i)
          result[i] = combine(result[i], incoming[i], op);
      }
      std::memcpy(out, result.data(), count * sizeof(T));
    } else {
      internal_send(reinterpret_cast<const std::byte*>(in), count * sizeof(T),
                    root, kTagReduce);
    }
  }

  template <typename T>
  void allreduce(const T* in, T* out, std::size_t count, Op op) {
    reduce(in, out, count, op, 0);
    bcast(out, count, 0);
  }

  template <typename T>
  [[nodiscard]] T allreduce_value(const T& value, Op op) {
    T out{};
    allreduce(&value, &out, 1, op);
    return out;
  }

  template <typename T>
  void gather(const T* in, std::size_t count, T* out, Rank root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank() == root) {
      for (Rank r = 0; r < size(); ++r) {
        std::byte* slot =
            reinterpret_cast<std::byte*>(out) + static_cast<std::size_t>(r) *
                                                    count * sizeof(T);
        if (r == root) {
          std::memcpy(slot, in, count * sizeof(T));
        } else {
          internal_recv(slot, count * sizeof(T), r, kTagGather);
        }
      }
    } else {
      internal_send(reinterpret_cast<const std::byte*>(in), count * sizeof(T),
                    root, kTagGather);
    }
  }

  template <typename T>
  void allgather(const T* in, std::size_t count, T* out) {
    gather(in, count, out, 0);
    bcast(out, count * static_cast<std::size_t>(size()), 0);
  }

  template <typename T>
  void scatter(const T* in, std::size_t count, T* out, Rank root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank() == root) {
      for (Rank r = 0; r < size(); ++r) {
        const std::byte* slot = reinterpret_cast<const std::byte*>(in) +
                                static_cast<std::size_t>(r) * count * sizeof(T);
        if (r == root) {
          std::memcpy(out, slot, count * sizeof(T));
        } else {
          internal_send(slot, count * sizeof(T), r, kTagScatter);
        }
      }
    } else {
      internal_recv(reinterpret_cast<std::byte*>(out), count * sizeof(T), root,
                    kTagScatter);
    }
  }

  // ---- communicator management --------------------------------------------

  /// Splits into disjoint communicators by color; ranks order by (key,
  /// old rank) within each color.  Colors must be non-negative.  Collective.
  [[nodiscard]] Comm split(int color, int key);

  /// Duplicate with a fresh context.  Collective.
  [[nodiscard]] Comm dup() { return split(0, rank()); }

  // ---- internal-context messaging (used by the swap extension) ------------

  void internal_send(const std::byte* data, std::size_t bytes, Rank dest,
                     Tag tag);
  void internal_recv(std::byte* data, std::size_t bytes, Rank source, Tag tag);

  template <typename T>
  void internal_send_value(const T& value, Rank dest, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    internal_send(reinterpret_cast<const std::byte*>(&value), sizeof(T), dest,
                  tag);
  }
  template <typename T>
  [[nodiscard]] T internal_recv_value(Rank source, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    internal_recv(reinterpret_cast<std::byte*>(&out), sizeof(T), source, tag);
    return out;
  }

 private:
  friend class Request;

  static constexpr Tag kTagBarrier = kReservedTagBase + 1;
  static constexpr Tag kTagBcast = kReservedTagBase + 2;
  static constexpr Tag kTagReduce = kReservedTagBase + 3;
  static constexpr Tag kTagGather = kReservedTagBase + 4;
  static constexpr Tag kTagScatter = kReservedTagBase + 5;
  static constexpr Tag kTagSplit = kReservedTagBase + 6;

  /// Internal traffic uses the high bit of the context id.
  [[nodiscard]] ContextId internal_context() const noexcept {
    return context_ | 0x8000'0000u;
  }

  void bcast_bytes(std::byte* data, std::size_t bytes, Rank root);

  template <typename T>
  static T combine(T a, T b, Op op) {
    switch (op) {
      case Op::kSum: return static_cast<T>(a + b);
      case Op::kProd: return static_cast<T>(a * b);
      case Op::kMin: return b < a ? b : a;
      case Op::kMax: return a < b ? b : a;
    }
    throw std::logic_error("swampi: unknown reduction op");
  }

  Runtime& runtime_;
  ContextId context_;
  std::vector<Rank> group_;  // comm rank -> world rank
  int my_index_;
};

}  // namespace swampi
