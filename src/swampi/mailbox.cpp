#include "swampi/mailbox.hpp"

#include <algorithm>

namespace swampi {

void Mailbox::deliver(Envelope message) {
  {
    const std::scoped_lock lock(mutex_);
    messages_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Envelope Mailbox::receive(ContextId context, Rank source, Tag tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    const auto it = std::find_if(
        messages_.begin(), messages_.end(), [&](const Envelope& e) {
          return matches(e, context, source, tag);
        });
    if (it != messages_.end()) {
      Envelope out = std::move(*it);
      messages_.erase(it);
      return out;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(ContextId context, Rank source, Tag tag) {
  const std::scoped_lock lock(mutex_);
  return std::any_of(messages_.begin(), messages_.end(),
                     [&](const Envelope& e) {
                       return matches(e, context, source, tag);
                     });
}

std::vector<Envelope> Mailbox::drain_context(ContextId context) {
  const std::scoped_lock lock(mutex_);
  std::vector<Envelope> out;
  for (auto it = messages_.begin(); it != messages_.end();) {
    if (it->context == context) {
      out.push_back(std::move(*it));
      it = messages_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

bool Mailbox::matches(const Envelope& e, ContextId context, Rank source,
                      Tag tag) const {
  return e.context == context &&
         (source == kAnySource || e.source == source) &&
         (tag == kAnyTag || e.tag == tag);
}

}  // namespace swampi
