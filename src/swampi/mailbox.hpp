// Per-rank message store.
//
// Senders enqueue copies of their payload (eager/buffered semantics: a
// blocking send completes as soon as the bytes are enqueued); receivers
// block until a message matching (context, source, tag) arrives.  Matching
// respects MPI's non-overtaking rule: among matching messages the earliest
// enqueued wins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "swampi/types.hpp"

namespace swampi {

/// Identifies the communicator a message travels on.
using ContextId = std::uint32_t;

struct Envelope {
  ContextId context = 0;
  Rank source = 0;  ///< sender's rank *within that communicator*
  Tag tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  /// Enqueues a message; wakes any waiting receiver.
  void deliver(Envelope message);

  /// Blocks until a message matching (context, source-or-any, tag-or-any)
  /// is available, removes and returns it.
  [[nodiscard]] Envelope receive(ContextId context, Rank source, Tag tag);

  /// Non-blocking probe: true when a matching message is queued.
  [[nodiscard]] bool probe(ContextId context, Rank source, Tag tag);

  /// Removes and returns every queued message on `context`, in arrival
  /// order.  Used by the swap extension's message forwarding.
  [[nodiscard]] std::vector<Envelope> drain_context(ContextId context);

 private:
  [[nodiscard]] bool matches(const Envelope& e, ContextId context, Rank source,
                             Tag tag) const;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> messages_;
};

}  // namespace swampi
