#include "swampi/runtime.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "swampi/comm.hpp"

namespace swampi {

Runtime::Runtime(int world_size) : world_size_(world_size) {
  if (world_size <= 0)
    throw std::invalid_argument("Runtime: world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<Rank> identity(static_cast<std::size_t>(world_size_));
  std::iota(identity.begin(), identity.end(), Rank{0});

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size_));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < world_size_; ++r) {
    threads.emplace_back([this, r, &identity, &rank_main, &first_error,
                          &error_mutex] {
      try {
        Comm world(*this, /*context=*/0, identity, r);
        rank_main(world);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace swampi
