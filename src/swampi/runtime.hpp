// swampi runtime: owns the rank threads and their mailboxes.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "swampi/mailbox.hpp"
#include "swampi/types.hpp"

namespace swampi {

class Comm;

class Runtime {
 public:
  explicit Runtime(int world_size);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  /// Runs `rank_main(world)` on `world_size` threads, one per rank, and
  /// joins them all.  Exceptions thrown by any rank are rethrown (first
  /// rank's exception wins) after every thread has been joined.
  void run(const std::function<void(Comm&)>& rank_main);

  /// Mailbox of a world rank (library internal).
  [[nodiscard]] Mailbox& mailbox(Rank world_rank) {
    return *mailboxes_.at(static_cast<std::size_t>(world_rank));
  }

  /// Allocates a fresh communicator context id (library internal).
  [[nodiscard]] ContextId next_context() noexcept { return next_context_++; }

 private:
  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<ContextId> next_context_{1};  // 0 = world
};

}  // namespace swampi
