#include "swampi/swap_ext.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "simcore/rng.hpp"

namespace swampi::swapx {

namespace {
constexpr Tag kTagSwapReport = kReservedTagBase + 32;
constexpr Tag kTagSwapPlan = kReservedTagBase + 33;
constexpr Tag kTagSwapState = kReservedTagBase + 34;
constexpr Tag kTagSwapForward = kReservedTagBase + 512;

/// Wire header for one forwarded envelope.
struct ForwardHeader {
  ContextId context;
  Rank source;
  Tag tag;
  std::uint64_t bytes;
};
}  // namespace

SwapContext::SwapContext(Comm& world, SwapConfig config)
    : world_(world), config_(std::move(config)), epoch_(std::chrono::steady_clock::now()) {
  if (config_.active_count <= 0 || config_.active_count > world_.size())
    throw std::invalid_argument(
        "SwapContext: active_count must be in [1, world size]");
  if (!config_.speed_probe)
    throw std::invalid_argument("SwapContext: speed_probe is required");
  if (!config_.clock) {
    config_.clock = [this] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch_)
          .count();
    };
  }
  rank_of_slot_.resize(static_cast<std::size_t>(config_.active_count));
  std::iota(rank_of_slot_.begin(), rank_of_slot_.end(), Rank{0});
  const bool active = world_.rank() < config_.active_count;
  role_ = Role{.active = active, .slot = active ? world_.rank() : -1};
  if (world_.rank() == 0) {
    history_.resize(static_cast<std::size_t>(world_.size()));
    for (policy::PerfHistory& h : history_) h.attach_auditor(config_.auditor);
  }
}

void SwapContext::register_state(void* data, std::size_t bytes) {
  if (data == nullptr && bytes > 0)
    throw std::invalid_argument("register_state: null data");
  registrations_.push_back(Registration{data, bytes});
}

std::size_t SwapContext::state_bytes() const noexcept {
  std::size_t total = 0;
  for (const Registration& r : registrations_) total += r.bytes;
  return total;
}

Role SwapContext::swap_point(double measured_iter_time_s) {
  const bool auditing =
      config_.auditor != nullptr && config_.auditor->enabled();
  const std::size_t entry_state_bytes = auditing ? state_bytes() : 0;
  const bool observing =
      config_.metrics != nullptr || config_.timeline != nullptr;
  const double obs_begin = observing ? config_.clock() : 0.0;
  // 1. Every rank reports its probe + iteration time to the manager.
  const Report mine{config_.speed_probe(), measured_iter_time_s};
  std::vector<Report> reports;
  if (world_.rank() == 0)
    reports.resize(static_cast<std::size_t>(world_.size()));
  world_.gather(&mine, 1, reports.data(), 0);

  // 2. The manager plans; everyone learns the decisions.
  std::vector<SwapEvent> events;
  if (world_.rank() == 0) events = manager_plan(reports);
  int count = static_cast<int>(events.size());
  world_.bcast(&count, 1, 0);
  events.resize(static_cast<std::size_t>(count));
  if (count > 0) world_.bcast(events.data(), events.size(), 0);

  // 3. Registered state moves from evicted ranks to activated spares —
  //    under fault injection an attempt may die and be resent, or the whole
  //    move abandoned — then everyone updates its role table for the swaps
  //    that survived.
  std::vector<SwapEvent> applied;
  if (count > 0) {
    if (config_.faults.enabled()) {
      applied = resolve_transfers(events);
    } else {
      transfer_state(events);
      applied = std::move(events);
    }
    if (!applied.empty()) {
      if (config_.forward_pending_messages) forward_messages(applied);
      apply_events(applied);
    }
  }
  last_events_ = std::move(applied);
  total_swaps_ += last_events_.size();
  if (auditing) audit_swap_point(entry_state_bytes);
  // Collective-level counters once per swap point (rank 0 speaks for the
  // collective); the span lands on every rank's own track.
  if (config_.metrics != nullptr && world_.rank() == 0) {
    config_.metrics->add("swampi.swap_points");
    config_.metrics->add("swampi.swaps_applied", last_events_.size());
    config_.metrics->add(
        "swampi.state_bytes_moved",
        static_cast<std::uint64_t>(state_bytes()) *
            static_cast<std::uint64_t>(last_events_.size()));
  }
  if (config_.timeline != nullptr) {
    simsweep::obs::TimelineTracer& timeline = *config_.timeline;
    timeline.span(
        timeline.track("rank " + std::to_string(world_.rank())), "swap_point",
        "swampi", obs_begin, config_.clock(),
        {{"planned", static_cast<double>(count)},
         {"applied", static_cast<double>(last_events_.size())},
         {"state_bytes", static_cast<double>(state_bytes())}});
  }
  return role_;
}

void SwapContext::audit_swap_point(std::size_t entry_state_bytes) const {
  simsweep::audit::InvariantAuditor& auditor = *config_.auditor;
  const double now = config_.clock();
  // The slot→rank table must stay an injection into the world: one rank
  // per slot, every rank valid.  A duplicate means two slots believe the
  // same process hosts them; an out-of-range rank means a plan escaped the
  // world.
  std::vector<Rank> sorted = rank_of_slot_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    auditor.report("swampi", "slot_table_is_permutation", now,
                   "two slots map to the same world rank");
  if (!sorted.empty() &&
      (sorted.front() < 0 || sorted.back() >= world_.size()))
    auditor.report("swampi", "slot_table_is_permutation", now,
                   "slot table references a rank outside [0, " +
                       std::to_string(world_.size()) + ")");
  // This rank's role must agree with the shared table.
  const auto it =
      std::find(rank_of_slot_.begin(), rank_of_slot_.end(), world_.rank());
  const bool hosted = it != rank_of_slot_.end();
  if (role_.active != hosted)
    auditor.report("swampi", "role_matches_slot_table", now,
                   "rank " + std::to_string(world_.rank()) +
                       (role_.active ? " claims active but hosts no slot"
                                     : " hosts a slot but claims spare"));
  else if (role_.active &&
           (role_.slot < 0 ||
            static_cast<std::size_t>(role_.slot) >= rank_of_slot_.size() ||
            rank_of_slot_[static_cast<std::size_t>(role_.slot)] !=
                world_.rank()))
    auditor.report("swampi", "role_matches_slot_table", now,
                   "rank " + std::to_string(world_.rank()) +
                       " claims slot " + std::to_string(role_.slot) +
                       " but the table disagrees");
  // Registered state is moved, never resized, by a swap.
  if (state_bytes() != entry_state_bytes)
    auditor.report("swampi", "state_bytes_conserved", now,
                   "registered state changed from " +
                       std::to_string(entry_state_bytes) + " to " +
                       std::to_string(state_bytes()) +
                       " bytes across a swap point");
}

std::vector<SwapEvent> SwapContext::manager_plan(
    const std::vector<Report>& reports) {
  const double now = config_.clock();
  for (std::size_t r = 0; r < reports.size(); ++r)
    history_[r].record(now, reports[r].speed);

  const double window = config_.policy.history_window_s;
  auto estimate = [&](Rank r) {
    return history_[static_cast<std::size_t>(r)].windowed_mean(
        now, window, reports[static_cast<std::size_t>(r)].speed);
  };

  // Active processes: equal chunks (the paper's fixed data distribution).
  std::vector<policy::ActiveProcess> active;
  double iter_time = 0.0;
  for (std::size_t slot = 0; slot < rank_of_slot_.size(); ++slot) {
    const Rank r = rank_of_slot_[slot];
    active.push_back(policy::ActiveProcess{
        .slot = slot,
        .host = static_cast<std::uint32_t>(r),
        .est_speed = estimate(r),
        .chunk_flops = 1.0,
    });
    iter_time =
        std::max(iter_time, reports[static_cast<std::size_t>(r)].iter_time);
  }

  std::vector<policy::HostEstimate> spares;
  for (Rank r = 0; r < world_.size(); ++r) {
    if (std::find(rank_of_slot_.begin(), rank_of_slot_.end(), r) !=
        rank_of_slot_.end())
      continue;
    spares.push_back(policy::HostEstimate{
        .host = static_cast<std::uint32_t>(r), .est_speed = estimate(r)});
  }

  const policy::PlanContext ctx{
      .measured_iter_time_s = iter_time,
      .state_bytes = static_cast<double>(state_bytes()),
      .link_latency_s = config_.link_latency_s,
      .link_bandwidth_Bps = config_.link_bandwidth_Bps,
      .comm_time_s = 0.0,
      .adaptation_cost_s = std::nullopt,
  };
  const auto decisions = policy::plan_swaps(config_.policy, active, spares, ctx);

  std::vector<SwapEvent> events;
  events.reserve(decisions.size());
  for (const policy::SwapDecision& d : decisions)
    events.push_back(SwapEvent{.slot = static_cast<int>(d.slot),
                               .from = static_cast<Rank>(d.from),
                               .to = static_cast<Rank>(d.to)});
  return events;
}

void SwapContext::transfer_state(const std::vector<SwapEvent>& events) {
  for (const SwapEvent& e : events) transfer_state_attempt(e, /*discard=*/false);
}

void SwapContext::transfer_state_attempt(const SwapEvent& e, bool discard) {
  if (world_.rank() == e.from) {
    Tag tag = kTagSwapState;
    for (const Registration& reg : registrations_)
      world_.internal_send(static_cast<const std::byte*>(reg.data), reg.bytes,
                           e.to, tag++);
  } else if (world_.rank() == e.to) {
    Tag tag = kTagSwapState;
    std::vector<std::byte> scratch;
    for (const Registration& reg : registrations_) {
      if (discard) {
        // The attempt is known to fail: the payload still crosses the wire
        // (and costs time), but must not touch the registered state.
        scratch.resize(reg.bytes);
        world_.internal_recv(scratch.data(), reg.bytes, e.from, tag++);
      } else {
        world_.internal_recv(static_cast<std::byte*>(reg.data), reg.bytes,
                             e.from, tag++);
      }
    }
  }
}

bool SwapContext::fault_draw() {
  // Counter-hash stream: rank-independent, communication-free agreement.
  const std::uint64_t z =
      simsweep::sim::derive_seed(config_.faults.seed, ++fault_counter_);
  return static_cast<double>(z >> 11) * 0x1.0p-53 <
         config_.faults.transfer_fail_prob;
}

std::vector<SwapEvent> SwapContext::resolve_transfers(
    const std::vector<SwapEvent>& events) {
  std::vector<SwapEvent> applied;
  applied.reserve(events.size());
  for (const SwapEvent& e : events) {
    std::size_t failures = 0;
    bool abandoned = false;
    while (fault_draw()) {
      ++transfer_failures_;
      ++failures;
      transfer_state_attempt(e, /*discard=*/true);
      if (failures > config_.faults.max_transfer_retries) {
        abandoned = true;
        break;
      }
      ++transfer_retries_;
    }
    if (abandoned) {
      ++transfers_abandoned_;
      continue;  // the evicted process stays active; no role change
    }
    transfer_state_attempt(e, /*discard=*/false);
    applied.push_back(e);
  }
  return applied;
}

void SwapContext::forward_messages(const std::vector<SwapEvent>& events) {
  // The evicted rank drains its pending user-context messages and ships
  // them, in arrival order, to the rank taking over the slot, which
  // re-delivers them to its own mailbox.
  for (const SwapEvent& e : events) {
    if (world_.rank() == e.from) {
      auto pending = world_.runtime()
                         .mailbox(world_.world_rank(world_.rank()))
                         .drain_context(/*user world context=*/0);
      const std::uint64_t count = pending.size();
      world_.internal_send(reinterpret_cast<const std::byte*>(&count),
                           sizeof(count), e.to, kTagSwapForward);
      for (const Envelope& env : pending) {
        const ForwardHeader header{env.context, env.source, env.tag,
                                   env.payload.size()};
        world_.internal_send(reinterpret_cast<const std::byte*>(&header),
                             sizeof(header), e.to, kTagSwapForward);
        world_.internal_send(env.payload.data(), env.payload.size(), e.to,
                             kTagSwapForward);
      }
    } else if (world_.rank() == e.to) {
      std::uint64_t count = 0;
      world_.internal_recv(reinterpret_cast<std::byte*>(&count), sizeof(count),
                           e.from, kTagSwapForward);
      for (std::uint64_t i = 0; i < count; ++i) {
        ForwardHeader header{};
        world_.internal_recv(reinterpret_cast<std::byte*>(&header),
                             sizeof(header), e.from, kTagSwapForward);
        Envelope env;
        env.context = header.context;
        env.source = header.source;
        env.tag = header.tag;
        env.payload.resize(header.bytes);
        world_.internal_recv(env.payload.data(), env.payload.size(), e.from,
                             kTagSwapForward);
        world_.runtime()
            .mailbox(world_.world_rank(world_.rank()))
            .deliver(std::move(env));
      }
    }
  }
}

void SwapContext::apply_events(const std::vector<SwapEvent>& events) {
  for (const SwapEvent& e : events) {
    rank_of_slot_.at(static_cast<std::size_t>(e.slot)) = e.to;
    if (world_.rank() == e.from) role_ = Role{.active = false, .slot = -1};
    if (world_.rank() == e.to) role_ = Role{.active = true, .slot = e.slot};
  }
}

}  // namespace swampi::swapx
