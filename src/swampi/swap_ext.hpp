// swampi swap extension — the paper's mechanism, as a library.
//
// An application over-allocates a world of N + M ranks; N "active" slots
// compute, M ranks idle as spares.  Each rank registers the variables that
// constitute its process state (the paper's swap_register()), and calls
// swap_point() once per iteration (the paper's MPI_Swap(), a full
// application barrier).  A manager — hosted on world rank 0, standing in
// for the paper's separate swap-manager process — collects per-rank
// performance measurements, runs the configured swapping policy, and
// orchestrates the registered-state transfers from evicted ranks to
// activated spares.  The call returns every rank's new role.
//
// Performance measurement is injected: `speed_probe` returns the rank's
// current sustained speed estimate (the real system used NWS-style host
// monitoring; examples and tests use a Throttle that emulates external CPU
// load deterministically).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "audit/auditor.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "swap/payback.hpp"
#include "swap/perf_history.hpp"
#include "swap/planner.hpp"
#include "swap/policy.hpp"
#include "swampi/comm.hpp"

namespace swampi::swapx {

namespace policy = simsweep::swap;

/// Transient state-transfer faults for swap_point (mirrors the simulator's
/// fault layer): each transfer attempt may die and be resent, up to
/// max_transfer_retries times; after that the move is abandoned and the
/// evicted process simply stays active.  Outcomes are drawn from a
/// counter-hash stream over `seed`, advanced identically on every rank, so
/// all ranks agree on every outcome without extra communication.
struct FaultProfile {
  /// Probability that one transfer attempt fails.
  double transfer_fail_prob = 0.0;

  /// Resends allowed after the first failed attempt.
  std::size_t max_transfer_retries = 3;

  /// Root of the outcome stream; must be identical on all ranks.
  std::uint64_t seed = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return transfer_fail_prob > 0.0;
  }
};

struct SwapConfig {
  /// N: slots that compute each iteration.  The remaining world ranks are
  /// spares.  Initially slot i runs on world rank i.
  int active_count = 1;

  policy::PolicyParams policy = policy::greedy_policy();

  /// Current sustained-speed estimate for *this rank* (flop/s or any
  /// consistent unit).  Called at every swap point on every rank.
  std::function<double()> speed_probe;

  /// Link parameters for the payback estimate (the state transfer itself
  /// happens over real in-process messaging; these only feed the policy's
  /// cost model).
  double link_latency_s = 1e-4;
  double link_bandwidth_Bps = 100.0e6;

  /// Clock used for history windows, in seconds.  Defaults to wall time
  /// since context creation; tests inject virtual clocks.
  std::function<double()> clock;

  /// Message forwarding — the "improved system" the paper describes as
  /// designed but not implemented: when a process is swapped, user messages
  /// still queued at the evicted rank follow the process to its new rank,
  /// lifting the no-outstanding-messages restriction for applications that
  /// address peers by slot.  Off by default (the paper's baseline demands a
  /// full barrier with no messages in flight).
  bool forward_pending_messages = false;

  /// Transfer-fault injection; disabled by default.
  FaultProfile faults;

  /// Optional invariant auditor (may be shared between ranks — reporting
  /// is mutex-protected).  When set, every swap_point checks that the
  /// slot→rank table stays a valid partial permutation, that roles agree
  /// with it, and that registered-state bytes are conserved across swaps;
  /// the manager's perf histories are audited too.  Null disables all
  /// checks.
  simsweep::audit::InvariantAuditor* auditor = nullptr;

  /// Optional metrics registry (may be shared between ranks — counter
  /// updates are thread-safe; gauges/histograms are single-writer and must
  /// not be recorded from rank threads).  Collective-level counters (swap
  /// points, swaps applied, state bytes moved) are recorded once per swap
  /// point by world rank 0 so they count events, not rank-calls.  Null
  /// disables all recording.
  simsweep::obs::MetricsRegistry* metrics = nullptr;

  /// Optional timeline tracer (shareable like the registry): every rank
  /// draws its swap_point collective as a span on its own "rank N" track,
  /// timestamped with `clock`.  Null disables all recording.
  simsweep::obs::TimelineTracer* timeline = nullptr;
};

struct Role {
  bool active = false;
  int slot = -1;
  friend bool operator==(const Role&, const Role&) = default;
};

/// One applied swap, as reported to every rank.
struct SwapEvent {
  int slot = 0;
  Rank from = 0;
  Rank to = 0;
};

class SwapContext {
 public:
  /// One registered span of process state.
  struct Registration {
    void* data;
    std::size_t bytes;
  };

  /// Collective: all world ranks construct with identical configuration.
  SwapContext(Comm& world, SwapConfig config);

  /// Registers `bytes` at `data` as process state to transfer on a swap.
  /// All ranks must register the same sequence of sizes (they run the same
  /// program), and `data` must remain valid at the same address for the
  /// lifetime of the context — re-seating a registered container (e.g.
  /// move-assigning a std::vector) silently detaches it from swapping.
  /// Not collective; call before the first swap_point.
  void register_state(void* data, std::size_t bytes);

  template <typename T>
  void register_value(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    register_state(&value, sizeof(T));
  }

  [[nodiscard]] Role role() const noexcept { return role_; }

  /// The paper's MPI_Swap(): a full application barrier at which the
  /// manager may reassign slots.  All world ranks must call it the same
  /// number of times.  Active ranks pass the duration of the iteration
  /// they just completed; spares pass anything (ignored).  Returns this
  /// rank's (possibly changed) role.
  Role swap_point(double measured_iter_time_s);

  /// Swaps applied so far across the whole run (identical on every rank
  /// after each swap_point).
  [[nodiscard]] std::size_t swaps_performed() const noexcept {
    return total_swaps_;
  }

  /// Events applied at the most recent swap_point.  Under fault injection
  /// this excludes planned swaps whose transfers were abandoned.
  [[nodiscard]] const std::vector<SwapEvent>& last_events() const noexcept {
    return last_events_;
  }

  // Transfer-fault statistics (identical on every rank; all zero when the
  // fault profile is disabled).
  [[nodiscard]] std::size_t transfer_failures() const noexcept {
    return transfer_failures_;
  }
  [[nodiscard]] std::size_t transfer_retries() const noexcept {
    return transfer_retries_;
  }
  [[nodiscard]] std::size_t transfers_abandoned() const noexcept {
    return transfers_abandoned_;
  }

  /// World rank currently hosting `slot` (identical on every rank between
  /// swap points).  Applications use this to address peer slots after swaps.
  [[nodiscard]] Rank rank_of_slot(int slot) const {
    return rank_of_slot_.at(static_cast<std::size_t>(slot));
  }

  /// Number of active slots (N).
  [[nodiscard]] int active_count() const noexcept {
    return config_.active_count;
  }

  /// The world communicator this context coordinates over.
  [[nodiscard]] Comm& world() noexcept { return world_; }

  /// Registered state size in bytes (sum of registrations).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// The registered state spans, in registration order.  Used by the
  /// checkpoint extension.
  [[nodiscard]] const std::vector<Registration>& registrations()
      const noexcept {
    return registrations_;
  }

 private:
  /// Measurement sent by every rank to the manager each swap point.
  struct Report {
    double speed;
    double iter_time;
  };

  [[nodiscard]] std::vector<SwapEvent> manager_plan(
      const std::vector<Report>& reports);
  void apply_events(const std::vector<SwapEvent>& events);
  void transfer_state(const std::vector<SwapEvent>& events);
  /// One send/recv pass for `event`'s registrations; a discarded attempt
  /// (failed transfer) receives into scratch storage instead of the
  /// registered state.
  void transfer_state_attempt(const SwapEvent& event, bool discard);
  /// Executes the transfers of `events` under the fault profile and
  /// returns the events whose transfers succeeded.
  [[nodiscard]] std::vector<SwapEvent> resolve_transfers(
      const std::vector<SwapEvent>& events);
  /// Next deterministic failure draw; advances the shared counter, so every
  /// rank must call it the same number of times in the same order.
  [[nodiscard]] bool fault_draw();
  void forward_messages(const std::vector<SwapEvent>& events);
  /// Post-swap_point invariants: slot table is a partial permutation of
  /// world ranks, this rank's role agrees with it, and the registered state
  /// footprint did not change while state moved between ranks.
  void audit_swap_point(std::size_t entry_state_bytes) const;

  Comm& world_;
  SwapConfig config_;
  std::vector<Registration> registrations_;
  std::vector<Rank> rank_of_slot_;  // slot -> world rank
  Role role_;
  std::size_t total_swaps_ = 0;
  std::vector<SwapEvent> last_events_;

  // Fault bookkeeping (advanced identically on every rank).
  std::uint64_t fault_counter_ = 0;
  std::size_t transfer_failures_ = 0;
  std::size_t transfer_retries_ = 0;
  std::size_t transfers_abandoned_ = 0;

  // Manager-side state (only used on world rank 0).
  std::vector<policy::PerfHistory> history_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace swampi::swapx
