// Deterministic external-load emulation for swampi ranks.
//
// The paper's testbed hosts slow down when other users' processes compete
// for the CPU.  A Throttle gives each rank a scripted availability profile
// (indexed by iteration/phase), standing in for that external load: the
// rank's sustained speed is base_speed * availability(phase), and the time
// an iteration's work "takes" follows.  Keeping the profile virtual — no
// wall-clock sleeping required — makes swampi tests and examples fast and
// reproducible; examples may still scale a real sleep from the same numbers
// for demonstration.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace swampi {

class Throttle {
 public:
  /// `availability_by_phase[i]` is the CPU fraction this rank gets during
  /// phase i (1.0 = unloaded, 0.5 = one competitor, ...).  Phases past the
  /// end of the profile repeat the last entry.
  Throttle(double base_speed, std::vector<double> availability_by_phase)
      : base_speed_(base_speed), profile_(std::move(availability_by_phase)) {
    if (base_speed <= 0.0)
      throw std::invalid_argument("Throttle: base speed must be positive");
    if (profile_.empty())
      throw std::invalid_argument("Throttle: empty availability profile");
    for (double a : profile_)
      if (a <= 0.0 || a > 1.0)
        throw std::invalid_argument("Throttle: availability must be in (0, 1]");
  }

  /// Unloaded speed (flop/s or any consistent unit).
  [[nodiscard]] double base_speed() const noexcept { return base_speed_; }

  /// Advances to phase `i` (typically the iteration number).
  void set_phase(std::size_t i) noexcept { phase_ = i; }
  [[nodiscard]] std::size_t phase() const noexcept { return phase_; }

  [[nodiscard]] double availability() const noexcept {
    const std::size_t i = phase_ < profile_.size() ? phase_ : profile_.size() - 1;
    return profile_[i];
  }

  /// Current sustained speed — suitable as a SwapConfig::speed_probe.
  [[nodiscard]] double speed() const noexcept {
    return base_speed_ * availability();
  }

  /// Time `work` units would take at the current speed.
  [[nodiscard]] double time_for(double work) const noexcept {
    return work / speed();
  }

 private:
  double base_speed_;
  std::vector<double> profile_;
  std::size_t phase_ = 0;
};

}  // namespace swampi
