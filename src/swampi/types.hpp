// swampi: a thread-per-rank, in-process MPI subset.
//
// swampi exists so the paper's *mechanism* — over-allocation, registered
// process state, swap coordination at a full application barrier — runs as
// real concurrent code rather than only inside the simulator.  Ranks are
// threads of one process; messages are byte buffers moved between per-rank
// mailboxes.  The subset covers what iterative data-parallel applications
// need: blocking and nonblocking point-to-point, the usual collectives,
// communicator split/dup, and the swap extension of the paper.
#pragma once

#include <cstddef>
#include <cstdint>

namespace swampi {

using Rank = int;
using Tag = int;

inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// Tags at or above this value are reserved for library internals
/// (collectives, communicator management, the swap protocol).
inline constexpr Tag kReservedTagBase = 1 << 28;

/// Delivered-message metadata, mirroring MPI_Status.
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Built-in reduction operators.
enum class Op : std::uint8_t { kSum, kMin, kMax, kProd };

}  // namespace swampi
