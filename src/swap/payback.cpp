#include "swap/payback.hpp"

#include <limits>
#include <stdexcept>

namespace simsweep::swap {

double payback_distance(double swap_time_s, double old_iter_time_s,
                        double old_perf, double new_perf) {
  if (swap_time_s < 0.0)
    throw std::invalid_argument("payback_distance: negative swap time");
  if (old_iter_time_s <= 0.0)
    throw std::invalid_argument("payback_distance: iteration time must be positive");
  if (old_perf <= 0.0 || new_perf <= 0.0)
    throw std::invalid_argument("payback_distance: performance must be positive");
  // No improvement (or an outright slowdown) never pays for the swap.  A
  // negative "payback" here would sail under any payback <= threshold test,
  // making the policy layer treat a slower host as an infinitely good deal.
  const double gain = 1.0 - old_perf / new_perf;
  if (gain <= 0.0) return std::numeric_limits<double>::infinity();
  return swap_time_s / (old_iter_time_s * gain);
}

double estimate_swap_time(double state_bytes, double latency_s,
                          double bandwidth_Bps) {
  if (state_bytes < 0.0)
    throw std::invalid_argument("estimate_swap_time: negative state size");
  if (latency_s < 0.0 || bandwidth_Bps <= 0.0)
    throw std::invalid_argument("estimate_swap_time: invalid link parameters");
  return latency_s + state_bytes / bandwidth_Bps;
}

}  // namespace simsweep::swap
