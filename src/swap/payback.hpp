// The paper's cost/benefit algebra (§5).
//
//   payback_distance = swap_time / (old_iter_time * (1 - old_perf/new_perf))
//
// the number of iterations, at the improved rate, needed for cumulative
// progress to catch up with the no-swap trajectory.  A candidate no faster
// than the incumbent never catches up, so its distance is +infinity; larger
// finite values mean slower amortization of the swap cost.
#pragma once

#include <limits>

namespace simsweep::swap {

/// Computes the payback distance in iterations.
///
/// `swap_time_s`     — time the application pauses for the state transfer.
/// `old_iter_time_s` — application iteration time before the swap.
/// `old_perf`        — performance of the process on its current host.
/// `new_perf`        — predicted performance on the candidate host.
/// Any positive, increasing performance measure works (the paper suggests
/// flop rate).  Returns +infinity whenever new_perf <= old_perf: the swap
/// cost is never recouped, so no finite threshold accepts it.
[[nodiscard]] double payback_distance(double swap_time_s,
                                      double old_iter_time_s, double old_perf,
                                      double new_perf);

/// Time to move `state_bytes` of process state across a link with latency
/// `latency_s` and (share of) bandwidth `bandwidth_Bps` (paper §5:
/// swap_time = alpha + size / beta).
[[nodiscard]] double estimate_swap_time(double state_bytes, double latency_s,
                                        double bandwidth_Bps);

}  // namespace simsweep::swap
