#include "swap/perf_history.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace simsweep::swap {

void PerfHistory::record(sim::SimTime t, double value) {
  if (!samples_.empty()) {
    const sim::SimTime tail = samples_.back().time;
    if (t < tail - sim::kTimeEpsilon)
      throw std::invalid_argument("PerfHistory: samples must be time-ordered");
    // In-epsilon stragglers (clock jitter between subsystems) are treated
    // as simultaneous with the tail, not stored behind it: an out-of-order
    // pair would make windowed_mean integrate a negative interval and let
    // prune_before drop the sample actually in effect.
    if (t < tail) t = tail;
  }
  if (auditor_ != nullptr && auditor_->enabled() && !samples_.empty() &&
      t < samples_.back().time)
    auditor_->report("swap", "history_time_ordered", t,
                     "sample at t=" + std::to_string(t) +
                         " stored behind tail t=" +
                         std::to_string(samples_.back().time));
  samples_.push_back(sim::Sample{t, value});
}

double PerfHistory::windowed_mean(sim::SimTime now, double window_s,
                                  double fallback) const {
  if (samples_.empty()) return fallback;
  if (window_s <= 0.0) return samples_.back().value;
  const sim::SimTime t0 = now - window_s;
  if (samples_.front().time >= now) return samples_.front().value;
  const bool auditing = auditor_ != nullptr && auditor_->enabled();
  // Step-series mean; before the first sample the series takes the first
  // sample's value (we have no older information).
  double area = 0.0;
  double mass = 0.0;  // audited: the intervals must tile exactly [t0, now]
  double value = samples_.front().value;
  sim::SimTime cursor = t0;
  for (const sim::Sample& s : samples_) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= now) break;
    const double interval = s.time - cursor;
    if (auditing) {
      if (interval < -sim::kTimeEpsilon)
        auditor_->report("swap", "window_intervals_non_negative", now,
                         "interval of " + std::to_string(interval) +
                             " s at sample t=" + std::to_string(s.time));
      mass += interval;
    }
    area += value * interval;
    cursor = s.time;
    value = s.value;
  }
  area += value * (now - cursor);
  if (auditing) {
    const double tail = now - cursor;
    if (tail < -sim::kTimeEpsilon)
      auditor_->report("swap", "window_intervals_non_negative", now,
                       "tail interval of " + std::to_string(tail) + " s");
    mass += tail;
    if (std::fabs(mass - window_s) > 1e-9 * std::fmax(1.0, window_s))
      auditor_->report("swap", "window_mass_equals_window", now,
                       "integrated " + std::to_string(mass) +
                           " s over a window of " + std::to_string(window_s) +
                           " s");
  }
  return area / window_s;
}

double PerfHistory::latest(double fallback) const {
  return samples_.empty() ? fallback : samples_.back().value;
}

void PerfHistory::prune_before(sim::SimTime horizon) {
  while (samples_.size() > 1 && samples_[1].time <= horizon)
    samples_.pop_front();
}

}  // namespace simsweep::swap
