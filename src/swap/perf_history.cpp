#include "swap/perf_history.hpp"

#include <stdexcept>

namespace simsweep::swap {

void PerfHistory::record(sim::SimTime t, double value) {
  if (!samples_.empty() && t < samples_.back().time - sim::kTimeEpsilon)
    throw std::invalid_argument("PerfHistory: samples must be time-ordered");
  samples_.push_back(sim::Sample{t, value});
}

double PerfHistory::windowed_mean(sim::SimTime now, double window_s,
                                  double fallback) const {
  if (samples_.empty()) return fallback;
  if (window_s <= 0.0) return samples_.back().value;
  const sim::SimTime t0 = now - window_s;
  if (samples_.front().time >= now) return samples_.front().value;
  // Step-series mean; before the first sample the series takes the first
  // sample's value (we have no older information).
  double area = 0.0;
  double value = samples_.front().value;
  sim::SimTime cursor = t0;
  for (const sim::Sample& s : samples_) {
    if (s.time <= t0) {
      value = s.value;
      continue;
    }
    if (s.time >= now) break;
    area += value * (s.time - cursor);
    cursor = s.time;
    value = s.value;
  }
  area += value * (now - cursor);
  return area / window_s;
}

double PerfHistory::latest(double fallback) const {
  return samples_.empty() ? fallback : samples_.back().value;
}

void PerfHistory::prune_before(sim::SimTime horizon) {
  while (samples_.size() > 1 && samples_[1].time <= horizon)
    samples_.pop_front();
}

}  // namespace simsweep::swap
