// Sliding-window performance history (paper §4.1, last bullet).
//
// A PerfHistory accumulates (time, value) performance samples for one
// subject (a host's availability, a process's flop rate, ...) and reports
// the time-weighted mean over the most recent `window` seconds.  A window
// of zero returns the latest sample — the "no history" setting of the
// greedy policy.  Samples older than the largest window ever queried are
// pruned to bound memory on long runs.
#pragma once

#include <deque>

#include "audit/auditor.hpp"
#include "simcore/trace_recorder.hpp"

namespace simsweep::swap {

class PerfHistory {
 public:
  /// Records that the measured performance became `value` at time `t`.
  /// Times must be non-decreasing; a timestamp within kTimeEpsilon *before*
  /// the tail (clock jitter between subsystems) is clamped to the tail time
  /// so the stored series is genuinely ordered — windowed_mean must never
  /// integrate a negative interval and prune_before must never strand the
  /// wrong sample.
  void record(sim::SimTime t, double value);

  /// Time-weighted mean over [now - window, now]; the latest sample when
  /// window == 0 or when no sample predates the window.  Returns
  /// `fallback` when nothing has been recorded yet.
  [[nodiscard]] double windowed_mean(sim::SimTime now, double window_s,
                                     double fallback = 0.0) const;

  /// Latest recorded value, or `fallback` when empty.
  [[nodiscard]] double latest(double fallback = 0.0) const;

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Drops samples that ended before `horizon` (keeps the one in effect at
  /// the horizon, since step semantics need the preceding value).
  void prune_before(sim::SimTime horizon);

  /// Attaches (or detaches, with nullptr) the invariant auditor: record()
  /// checks sample ordering and windowed_mean() checks that its interval
  /// walk is non-negative and covers exactly the queried window.
  void attach_auditor(audit::InvariantAuditor* auditor) noexcept {
    auditor_ = auditor;
  }

 private:
  std::deque<sim::Sample> samples_;
  audit::InvariantAuditor* auditor_ = nullptr;
};

}  // namespace simsweep::swap
