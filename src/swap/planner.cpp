#include "swap/planner.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "swap/payback.hpp"

namespace simsweep::swap {

namespace {
/// Speed floor applied inside evaluate_swaps so an offline host (estimate 0)
/// compares as "infinitely slow" without breaking the payback division.
constexpr double kSpeedFloor = 1e-6;
}  // namespace

/// Stand-in for an unbounded iteration time (offline bottleneck).
constexpr double kTimeInfinityIter = std::numeric_limits<double>::infinity();

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kAccepted:
      return "accepted";
    case RejectReason::kNoFasterSpare:
      return "no_faster_spare";
    case RejectReason::kProcessGain:
      return "min_process_improvement";
    case RejectReason::kPayback:
      return "payback_threshold";
    case RejectReason::kAppGain:
      return "min_app_improvement";
  }
  return "unknown";
}

double predict_iteration_time(const std::vector<ActiveProcess>& active,
                              double comm_time_s) {
  double bottleneck = 0.0;
  for (const ActiveProcess& p : active) {
    if (p.est_speed < 0.0)
      throw std::invalid_argument("predict_iteration_time: negative speed");
    // A zero estimate (offline/reclaimed host) stalls the iteration.
    bottleneck = std::max(bottleneck, p.est_speed == 0.0
                                          ? kTimeInfinityIter
                                          : p.chunk_flops / p.est_speed);
  }
  return bottleneck + comm_time_s;
}

SwapPlan evaluate_swaps(const PolicyParams& policy,
                        std::vector<ActiveProcess> active,
                        std::vector<HostEstimate> spares,
                        const PlanContext& ctx) {
  SwapPlan plan;
  if (active.empty() || spares.empty()) return plan;
  if (ctx.measured_iter_time_s <= 0.0) return plan;  // nothing measured yet

  for (ActiveProcess& p : active) p.est_speed = std::max(p.est_speed, kSpeedFloor);
  for (HostEstimate& h : spares) h.est_speed = std::max(h.est_speed, kSpeedFloor);

  const double swap_time =
      ctx.adaptation_cost_s
          ? *ctx.adaptation_cost_s
          : estimate_swap_time(ctx.state_bytes, ctx.link_latency_s,
                               ctx.link_bandwidth_Bps);

  // Fastest spares first; consumed from the front.
  std::stable_sort(spares.begin(), spares.end(),
                   [](const HostEstimate& a, const HostEstimate& b) {
                     return a.est_speed > b.est_speed;
                   });
  std::size_t next_spare = 0;

  double current_iter_time = predict_iteration_time(active, ctx.comm_time_s);
  plan.predicted_iter_time_s = current_iter_time;

  while (plan.decisions.size() < policy.max_swaps_per_decision &&
         next_spare < spares.size()) {
    // Slowest active process = the one predicted to take longest on its
    // chunk (with equal chunks this is simply the slowest host).
    auto slowest = std::max_element(
        active.begin(), active.end(),
        [](const ActiveProcess& a, const ActiveProcess& b) {
          return a.chunk_flops / a.est_speed < b.chunk_flops / b.est_speed;
        });
    const HostEstimate& candidate = spares[next_spare];

    // Evaluate every metric for the candidate, then apply the thresholds in
    // policy order: no-faster-spare, per-process improvement ("stiction"),
    // payback distance within the policy's risk budget, whole-application
    // improvement (predicted iteration rates before/after a tentative
    // application of the swap).
    CandidateEvaluation eval;
    eval.slot = slowest->slot;
    eval.from = slowest->host;
    eval.to = candidate.host;
    eval.from_est_speed = slowest->est_speed;
    eval.to_est_speed = candidate.est_speed;
    eval.process_gain = candidate.est_speed / slowest->est_speed - 1.0;
    eval.payback_iters =
        payback_distance(swap_time, ctx.measured_iter_time_s,
                         slowest->est_speed, candidate.est_speed);
    std::vector<ActiveProcess> after = active;
    const auto slowest_idx = static_cast<std::size_t>(slowest - active.begin());
    after[slowest_idx].est_speed = candidate.est_speed;
    after[slowest_idx].host = candidate.host;
    const double new_iter_time = predict_iteration_time(after, ctx.comm_time_s);
    eval.app_gain = current_iter_time / new_iter_time - 1.0;

    // A candidate no faster than the incumbent now carries an infinite
    // payback distance (payback_distance returns +inf for gain <= 0), but
    // the policy rejection it reports is "no faster spare" — the specific
    // no-improvement reason — not a payback-threshold artifact.
    if (candidate.est_speed <= slowest->est_speed)
      eval.rejection = RejectReason::kNoFasterSpare;
    else if (eval.process_gain < policy.min_process_improvement)
      eval.rejection = RejectReason::kProcessGain;
    else if (eval.payback_iters > policy.payback_threshold_iters)
      eval.rejection = RejectReason::kPayback;
    else if (eval.app_gain < policy.min_app_improvement)
      eval.rejection = RejectReason::kAppGain;

    plan.considered.push_back(eval);
    if (!eval.accepted()) break;  // greedy rounds stop at the first rejection

    plan.decisions.push_back(SwapDecision{
        .slot = eval.slot,
        .from = eval.from,
        .to = eval.to,
        .predicted_payback_iters = eval.payback_iters,
        .predicted_process_gain = eval.process_gain,
        .predicted_app_gain = eval.app_gain,
    });

    active = std::move(after);
    current_iter_time = new_iter_time;
    ++next_spare;
  }
  return plan;
}

std::vector<SwapDecision> plan_swaps(const PolicyParams& policy,
                                     std::vector<ActiveProcess> active,
                                     std::vector<HostEstimate> spares,
                                     const PlanContext& ctx) {
  return evaluate_swaps(policy, std::move(active), std::move(spares), ctx)
      .decisions;
}

}  // namespace simsweep::swap
