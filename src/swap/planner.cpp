#include "swap/planner.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "swap/payback.hpp"

namespace simsweep::swap {

namespace {
/// Speed floor applied inside plan_swaps so an offline host (estimate 0)
/// compares as "infinitely slow" without breaking the payback division.
constexpr double kSpeedFloor = 1e-6;
}  // namespace

/// Stand-in for an unbounded iteration time (offline bottleneck).
constexpr double kTimeInfinityIter = std::numeric_limits<double>::infinity();

double predict_iteration_time(const std::vector<ActiveProcess>& active,
                              double comm_time_s) {
  double bottleneck = 0.0;
  for (const ActiveProcess& p : active) {
    if (p.est_speed < 0.0)
      throw std::invalid_argument("predict_iteration_time: negative speed");
    // A zero estimate (offline/reclaimed host) stalls the iteration.
    bottleneck = std::max(bottleneck, p.est_speed == 0.0
                                          ? kTimeInfinityIter
                                          : p.chunk_flops / p.est_speed);
  }
  return bottleneck + comm_time_s;
}

std::vector<SwapDecision> plan_swaps(const PolicyParams& policy,
                                     std::vector<ActiveProcess> active,
                                     std::vector<HostEstimate> spares,
                                     const PlanContext& ctx) {
  std::vector<SwapDecision> decisions;
  if (active.empty() || spares.empty()) return decisions;
  if (ctx.measured_iter_time_s <= 0.0) return decisions;  // nothing measured yet

  for (ActiveProcess& p : active) p.est_speed = std::max(p.est_speed, kSpeedFloor);
  for (HostEstimate& h : spares) h.est_speed = std::max(h.est_speed, kSpeedFloor);

  const double swap_time =
      ctx.fixed_swap_time_s > 0.0
          ? ctx.fixed_swap_time_s
          : estimate_swap_time(ctx.state_bytes, ctx.link_latency_s,
                               ctx.link_bandwidth_Bps);

  // Fastest spares first; consumed from the front.
  std::stable_sort(spares.begin(), spares.end(),
                   [](const HostEstimate& a, const HostEstimate& b) {
                     return a.est_speed > b.est_speed;
                   });
  std::size_t next_spare = 0;

  double current_iter_time = predict_iteration_time(active, ctx.comm_time_s);

  while (decisions.size() < policy.max_swaps_per_decision &&
         next_spare < spares.size()) {
    // Slowest active process = the one predicted to take longest on its
    // chunk (with equal chunks this is simply the slowest host).
    auto slowest = std::max_element(
        active.begin(), active.end(),
        [](const ActiveProcess& a, const ActiveProcess& b) {
          return a.chunk_flops / a.est_speed < b.chunk_flops / b.est_speed;
        });
    const HostEstimate& candidate = spares[next_spare];

    if (candidate.est_speed <= slowest->est_speed) break;  // no faster spare

    // Threshold 1: per-process improvement ("stiction").
    const double process_gain =
        candidate.est_speed / slowest->est_speed - 1.0;
    if (process_gain < policy.min_process_improvement) break;

    // Threshold 2: payback distance within the policy's risk budget.
    const double payback =
        payback_distance(swap_time, ctx.measured_iter_time_s,
                         slowest->est_speed, candidate.est_speed);
    if (payback < 0.0 || payback > policy.payback_threshold_iters) break;

    // Threshold 3: whole-application improvement.  Compare predicted
    // iteration rates before/after tentatively applying the swap.
    std::vector<ActiveProcess> after = active;
    after[static_cast<std::size_t>(slowest - active.begin())].est_speed =
        candidate.est_speed;
    after[static_cast<std::size_t>(slowest - active.begin())].host =
        candidate.host;
    const double new_iter_time = predict_iteration_time(after, ctx.comm_time_s);
    const double app_gain = current_iter_time / new_iter_time - 1.0;
    if (app_gain < policy.min_app_improvement) break;

    decisions.push_back(SwapDecision{
        .slot = slowest->slot,
        .from = slowest->host,
        .to = candidate.host,
        .predicted_payback_iters = payback,
        .predicted_process_gain = process_gain,
        .predicted_app_gain = app_gain,
    });

    active = std::move(after);
    current_iter_time = new_iter_time;
    ++next_spare;
  }
  return decisions;
}

}  // namespace simsweep::swap
