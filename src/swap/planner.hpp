// Swap decision making, shared by the simulator strategies and the swampi
// runtime's swap manager.
//
// The planner works on value types: callers provide the estimated effective
// speed of every candidate host (from whatever predictor they have — the
// simulator uses availability history, the swampi runtime uses measured
// iteration rates), the measured application iteration time, and the state
// size.  All three of the paper's policies (and any other PolicyParams
// point) reduce to the same procedure: repeatedly propose swapping the
// slowest active process onto the fastest idle spare, and accept the
// proposal only when every threshold passes.
//
// evaluate_swaps() additionally reports every candidate it examined —
// including the one that stopped the round and which policy threshold
// rejected it — feeding the strategy layer's decision traces.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "swap/policy.hpp"

namespace simsweep::swap {

/// A candidate execution site, identified by the caller's host numbering.
struct HostEstimate {
  std::uint32_t host = 0;
  double est_speed = 0.0;  ///< predicted sustained flop/s for one process
};

/// One process currently executing: which slot of the work partition it
/// owns, where it runs and how fast that site is predicted to be.
struct ActiveProcess {
  std::size_t slot = 0;
  std::uint32_t host = 0;
  double est_speed = 0.0;
  double chunk_flops = 0.0;  ///< this slot's share of one iteration's work
};

/// A planned swap: move the process in `slot` from `from` to `to`.
struct SwapDecision {
  std::size_t slot = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double predicted_payback_iters = 0.0;
  double predicted_process_gain = 0.0;  ///< fractional speed gain
  double predicted_app_gain = 0.0;      ///< fractional iteration-rate gain
};

/// Why a proposed swap was not taken.  kAccepted marks taken proposals;
/// every other value names the first threshold the candidate failed, in
/// the order the planner applies them.
enum class RejectReason : std::uint8_t {
  kAccepted = 0,
  kNoFasterSpare,  ///< fastest remaining spare no faster than slowest active
  kProcessGain,    ///< below the policy's min_process_improvement
  kPayback,        ///< payback negative or beyond payback_threshold_iters
  kAppGain,        ///< below the policy's min_app_improvement
};

[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// Full evaluation of one proposed swap: the payback algebra's inputs and
/// outputs, plus the verdict.  Speeds are post-floor (offline hosts clamp
/// to a tiny positive value so the payback division stays defined).
struct CandidateEvaluation {
  std::size_t slot = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double from_est_speed = 0.0;
  double to_est_speed = 0.0;
  double payback_iters = 0.0;
  double process_gain = 0.0;
  double app_gain = 0.0;
  RejectReason rejection = RejectReason::kAccepted;

  [[nodiscard]] bool accepted() const noexcept {
    return rejection == RejectReason::kAccepted;
  }
};

/// Outcome of one planning round: the accepted decisions (in application
/// order) and every candidate examined, accepted or not.  A round stops at
/// the first rejection, so `considered` holds at most one rejected entry —
/// always the last.
struct SwapPlan {
  std::vector<SwapDecision> decisions;
  std::vector<CandidateEvaluation> considered;

  /// Predicted iteration time of the unmodified placement (0 when the
  /// planner exited before predicting: nothing measured yet, no spares).
  double predicted_iter_time_s = 0.0;
};

/// Inputs the planner needs beyond the candidate sets.
struct PlanContext {
  double measured_iter_time_s = 0.0;  ///< last observed iteration time
  double state_bytes = 0.0;           ///< per-process swap payload
  double link_latency_s = 0.0;
  double link_bandwidth_Bps = 1.0;
  /// Fixed per-iteration communication-phase estimate added to predicted
  /// iteration times (same before and after a swap, since the partition and
  /// message sizes do not change).
  double comm_time_s = 0.0;

  /// Explicit total adaptation pause charged in the payback computation
  /// instead of the per-process alpha + size/beta transfer estimate.
  /// Checkpoint/restart sets this to its full cost — write N states,
  /// restart the application, read N states — because its adaptation
  /// interrupts the whole application rather than moving one process.
  /// Unset selects the transfer estimate.
  std::optional<double> adaptation_cost_s;
};

/// Plans zero or more swaps under `policy` and reports every candidate
/// examined.  `active` and `spares` are the current placement and the idle
/// pool with their predicted speeds.  Spares freed by earlier decisions in
/// the same round are not re-used; evicted hosts do not rejoin the spare
/// pool within the round (the paper swaps "the slowest active processor(s)
/// for the fastest inactive processor(s)").
[[nodiscard]] SwapPlan evaluate_swaps(const PolicyParams& policy,
                                      std::vector<ActiveProcess> active,
                                      std::vector<HostEstimate> spares,
                                      const PlanContext& ctx);

/// evaluate_swaps without the candidate report: just the accepted swaps.
[[nodiscard]] std::vector<SwapDecision> plan_swaps(
    const PolicyParams& policy, std::vector<ActiveProcess> active,
    std::vector<HostEstimate> spares, const PlanContext& ctx);

/// Predicted iteration time for a placement: the bottleneck compute time
/// plus the communication estimate.
[[nodiscard]] double predict_iteration_time(
    const std::vector<ActiveProcess>& active, double comm_time_s);

}  // namespace simsweep::swap
