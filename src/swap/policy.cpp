#include "swap/policy.hpp"

namespace simsweep::swap {

PolicyParams greedy_policy() {
  PolicyParams p;
  p.name = "greedy";
  // All defaults: infinite payback threshold, zero improvement thresholds,
  // no history — swap on any indication of improvement.
  return p;
}

PolicyParams safe_policy() {
  PolicyParams p;
  p.name = "safe";
  p.payback_threshold_iters = 0.5;
  p.min_process_improvement = 0.20;
  p.history_window_s = 5.0 * 60.0;
  return p;
}

PolicyParams friendly_policy() {
  PolicyParams p;
  p.name = "friendly";
  p.min_app_improvement = 0.02;
  p.history_window_s = 60.0;
  return p;
}

}  // namespace simsweep::swap
