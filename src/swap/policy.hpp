// Swapping-policy parameterization (paper §4.1) and the three named
// policies of §4.2.
//
// A policy is a point in a four-dimensional parameter space:
//   * payback threshold   — a proposed swap must recoup its cost within this
//     many iterations (smaller = more risk-averse; infinity = any positive
//     payback is acceptable),
//   * minimum process improvement — predicted speed gain of the swapped
//     process must exceed this fraction ("swap stiction"),
//   * minimum application improvement — predicted whole-application speedup
//     must exceed this fraction (avoids hoarding fast processors),
//   * history window — how much performance history feeds the predictor
//     (damps reaction to transient load; 0 = instantaneous measurements).
#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace simsweep::swap {

struct PolicyParams {
  std::string name = "custom";

  /// Maximum acceptable payback distance, in iterations.
  double payback_threshold_iters = std::numeric_limits<double>::infinity();

  /// Minimum fractional speed gain for the swapped process (0.2 = 20 %).
  double min_process_improvement = 0.0;

  /// Minimum fractional predicted application speedup (0.02 = 2 %).
  double min_app_improvement = 0.0;

  /// Seconds of performance history used by the predictor; 0 means use the
  /// instantaneous measurement.
  double history_window_s = 0.0;

  /// Upper bound on processes swapped per decision point.
  std::size_t max_swaps_per_decision = std::numeric_limits<std::size_t>::max();
};

/// Greedy (§4.2): swap on any indication of improvement.  Infinite payback
/// threshold, no improvement thresholds, no history.
[[nodiscard]] PolicyParams greedy_policy();

/// Safe (§4.2): swap only when the benefit is significant and quickly
/// recovered.  Payback threshold 0.5 iterations, 20 % minimum process
/// improvement, 5 minutes of history.
[[nodiscard]] PolicyParams safe_policy();

/// Friendly (§4.2): do not hoard fast processors.  2 % minimum application
/// improvement, 1 minute of history, no per-process threshold.
[[nodiscard]] PolicyParams friendly_policy();

}  // namespace simsweep::swap
