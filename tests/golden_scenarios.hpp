// Fixed scenarios shared by the golden-identity test and the (offline)
// capture tool that produced its expected values.
//
// Each scenario runs all five techniques on fixed seeds; the recorded
// makespans, iteration/adaptation counts, overheads and FailureStats were
// captured from the pre-refactor strategy layer and must stay bitwise
// identical: refactors are pure restructurings and may not move a single
// simulated event.
//
// The configs, load models and technique lineup now come from the shipped
// scenarios/golden_*.json files — the same declarative specs `simsweep
// bench` runs — so the golden table also pins the scenario layer: a change
// to parsing or materialization that alters a config shows up here as a
// moved makespan.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "scenario/scenario.hpp"
#include "strategy/strategy.hpp"

namespace golden {

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace scn = simsweep::scenario;
namespace strat = simsweep::strategy;

/// One (scenario, technique, seed) cell of the golden table.
struct Row {
  const char* scenario;
  const char* technique;
  std::uint64_t seed;
  double makespan_s;
  std::size_t iterations;
  std::size_t adaptations;
  double adaptation_overhead_s;
  strat::FailureStats failures;
};

inline const std::vector<std::string>& scenarios() {
  static const std::vector<std::string> kScenarios{"calm", "faulty",
                                                   "hostile", "reclaim"};
  return kScenarios;
}

inline const std::vector<std::uint64_t>& seeds() {
  static const std::vector<std::uint64_t> kSeeds{1, 2, 3};
  return kSeeds;
}

/// The shipped golden_<scenario>.json spec, loaded once per scenario.
inline const scn::ScenarioSpec& spec_for(const std::string& scenario) {
  static std::map<std::string, scn::ScenarioSpec> cache;
  auto it = cache.find(scenario);
  if (it == cache.end())
    it = cache
             .emplace(scenario, scn::find_scenario("golden_" + scenario,
                                                   scn::default_scenario_dir()))
             .first;
  return it->second;
}

/// The technique lineup is the variant list (identical across the four
/// files; golden_calm is the canonical copy).
inline const std::vector<std::string>& techniques() {
  static const std::vector<std::string> kTechniques = [] {
    std::vector<std::string> names;
    for (const scn::VariantSpec& v : spec_for("calm").variants)
      names.push_back(v.name);
    return names;
  }();
  return kTechniques;
}

/// Paper-shaped platform: 32 hosts, 4 active, full over-allocation.
inline core::ExperimentConfig config_for(const std::string& scenario) {
  return scn::base_config(spec_for(scenario));
}

inline std::shared_ptr<const load::LoadModel> model_for(
    const std::string& scenario) {
  return scn::make_load_model(spec_for(scenario).load);
}

inline std::unique_ptr<strat::Strategy> make_technique(
    const std::string& technique) {
  for (const scn::VariantSpec& v : spec_for("calm").variants)
    if (v.name == technique) return scn::make_strategy(v.strategy);
  throw std::invalid_argument("golden: unknown technique " + technique);
}

inline strat::RunResult run_cell(
    const std::string& scenario, const std::string& technique,
    std::uint64_t seed,
    simsweep::audit::AuditMode audit = simsweep::audit::AuditMode::kOff,
    core::ObsConfig obs = {}) {
  auto cfg = config_for(scenario);
  cfg.seed = seed;
  cfg.audit = audit;
  cfg.obs = obs;
  const auto model = model_for(scenario);
  const auto strategy = make_technique(technique);
  return core::run_single(cfg, *model, *strategy);
}

}  // namespace golden
