// Fixed scenarios shared by the golden-identity test and the (offline)
// capture tool that produced its expected values.
//
// Each scenario runs all five techniques on fixed seeds; the recorded
// makespans, iteration/adaptation counts, overheads and FailureStats were
// captured from the pre-refactor strategy layer and must stay bitwise
// identical: the technique-runtime refactor is a pure restructuring and
// may not move a single simulated event.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "load/onoff.hpp"
#include "load/reclamation.hpp"
#include "strategy/strategy.hpp"
#include "swap/policy.hpp"

namespace golden {

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace swp = simsweep::swap;

/// One (scenario, technique, seed) cell of the golden table.
struct Row {
  const char* scenario;
  const char* technique;
  std::uint64_t seed;
  double makespan_s;
  std::size_t iterations;
  std::size_t adaptations;
  double adaptation_overhead_s;
  strat::FailureStats failures;
};

inline const std::vector<std::string>& scenarios() {
  static const std::vector<std::string> kScenarios{"calm", "faulty",
                                                   "hostile", "reclaim"};
  return kScenarios;
}

inline const std::vector<std::string>& techniques() {
  static const std::vector<std::string> kTechniques{
      "none", "swap_greedy", "swap_safe_guard", "dlb", "dlb_swap", "cr"};
  return kTechniques;
}

inline const std::vector<std::uint64_t>& seeds() {
  static const std::vector<std::uint64_t> kSeeds{1, 2, 3};
  return kSeeds;
}

/// Paper-shaped platform: 32 hosts, 4 active, full over-allocation.
inline core::ExperimentConfig config_for(const std::string& scenario) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 32;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 25, 2.0);
  cfg.app.state_bytes_per_process = 100.0 * app::kMiB;
  cfg.app.comm_bytes_per_process = 100.0 * app::kKiB;
  cfg.spare_count = 28;
  if (scenario == "faulty") {
    cfg.faults.host_mtbf_s = 8.0 * 3600.0;
    cfg.faults.swap_fail_prob = 0.2;
    cfg.faults.checkpoint_fail_prob = 0.2;
  }
  if (scenario == "hostile") {
    // Transfers fail so often that retries run out (abandoned moves) and
    // destinations pick up enough strikes to be blacklisted.
    cfg.faults.host_mtbf_s = 12.0 * 3600.0;
    cfg.faults.swap_fail_prob = 0.85;
    cfg.faults.checkpoint_fail_prob = 0.5;
    cfg.faults.blacklist_after = 3;
  }
  return cfg;
}

inline std::shared_ptr<const load::LoadModel> model_for(
    const std::string& scenario) {
  if (scenario == "calm")
    return std::make_shared<load::OnOffModel>(
        load::OnOffParams::dynamism(0.3));
  if (scenario == "faulty")
    return std::make_shared<load::OnOffModel>(
        load::OnOffParams::dynamism(0.5));
  if (scenario == "hostile")
    return std::make_shared<load::OnOffModel>(
        load::OnOffParams::dynamism(0.6));
  if (scenario == "reclaim") {
    load::ReclamationParams params;
    params.mean_available_s = 30.0 * 60.0;
    params.mean_reclaimed_s = 10.0 * 60.0;
    return std::make_shared<load::ReclamationModel>(
        std::make_shared<load::OnOffModel>(load::OnOffParams::dynamism(0.2)),
        params);
  }
  throw std::invalid_argument("golden: unknown scenario " + scenario);
}

inline std::unique_ptr<strat::Strategy> make_technique(
    const std::string& technique) {
  if (technique == "none") return std::make_unique<strat::NoneStrategy>();
  if (technique == "swap_greedy")
    return std::make_unique<strat::SwapStrategy>(swp::greedy_policy());
  if (technique == "swap_safe_guard") {
    strat::SwapOptions options;
    options.eviction_guard = true;
    return std::make_unique<strat::SwapStrategy>(swp::safe_policy(), options);
  }
  if (technique == "dlb") return std::make_unique<strat::DlbStrategy>();
  if (technique == "dlb_swap")
    return std::make_unique<strat::DlbSwapStrategy>(swp::greedy_policy());
  if (technique == "cr")
    return std::make_unique<strat::CrStrategy>(swp::greedy_policy());
  throw std::invalid_argument("golden: unknown technique " + technique);
}

inline strat::RunResult run_cell(
    const std::string& scenario, const std::string& technique,
    std::uint64_t seed,
    simsweep::audit::AuditMode audit = simsweep::audit::AuditMode::kOff,
    core::ObsConfig obs = {}) {
  auto cfg = config_for(scenario);
  cfg.seed = seed;
  cfg.audit = audit;
  cfg.obs = obs;
  const auto model = model_for(scenario);
  const auto strategy = make_technique(technique);
  return core::run_single(cfg, *model, *strategy);
}

}  // namespace golden
