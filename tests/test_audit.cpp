// Tests for the invariant auditor: the registry itself, the per-subsystem
// instrumentation, and the system-wide guarantee that auditing is read-only
// (bitwise-identical results with auditing on or off, zero violations on
// every golden scenario).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "golden_scenarios.hpp"
#include "load/onoff.hpp"
#include "net/shared_link.hpp"
#include "simcore/simulator.hpp"
#include "swampi/runtime.hpp"
#include "swampi/swap_ext.hpp"
#include "swap/perf_history.hpp"

namespace audit = simsweep::audit;
namespace sim = simsweep::sim;
namespace net = simsweep::net;
namespace pf = simsweep::platform;
namespace swp = simsweep::swap;

// ------------------------------------------------------------ the registry

TEST(Auditor, OffModeIsDisabledAndDropsReports) {
  audit::InvariantAuditor a(audit::AuditMode::kOff);
  EXPECT_FALSE(a.enabled());
  a.report("test", "anything", 1.0, "ignored");
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Auditor, WarnModeCollectsViolationsWithContext) {
  audit::InvariantAuditor a(audit::AuditMode::kWarn);
  EXPECT_TRUE(a.enabled());
  a.report("net", "byte_conservation", 2.5, "lost 3 bytes");
  a.report("simcore", "virtual_time_monotonic", 7.0, "t went backwards");
  EXPECT_EQ(a.violation_count(), 2u);
  const auto violations = a.take_violations();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].subsystem, "net");
  EXPECT_EQ(violations[0].invariant, "byte_conservation");
  EXPECT_DOUBLE_EQ(violations[0].time_s, 2.5);
  EXPECT_EQ(violations[0].detail, "lost 3 bytes");
  EXPECT_EQ(violations[1].subsystem, "simcore");
  // take_violations drains the report.
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_TRUE(a.take_violations().empty());
}

TEST(Auditor, FailModeThrowsOnFirstViolation) {
  audit::InvariantAuditor a(audit::AuditMode::kFail);
  EXPECT_TRUE(a.enabled());
  try {
    a.report("swap", "history_time_ordered", 3.0, "sample behind tail");
    FAIL() << "report() in fail mode must throw";
  } catch (const audit::AuditFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("swap"), std::string::npos);
    EXPECT_NE(what.find("history_time_ordered"), std::string::npos);
    EXPECT_NE(what.find("sample behind tail"), std::string::npos);
  }
}

TEST(Auditor, ParseModeCoversAllSpellings) {
  EXPECT_EQ(audit::parse_mode(""), audit::AuditMode::kFail);  // bare --audit
  EXPECT_EQ(audit::parse_mode("fail"), audit::AuditMode::kFail);
  EXPECT_EQ(audit::parse_mode("warn"), audit::AuditMode::kWarn);
  EXPECT_EQ(audit::parse_mode("off"), audit::AuditMode::kOff);
  EXPECT_THROW((void)audit::parse_mode("loud"), std::invalid_argument);
}

TEST(Auditor, ModeFromEnvironment) {
  const char* saved = std::getenv("SIMSWEEP_AUDIT");
  const std::string restore = saved != nullptr ? saved : "";
  ::setenv("SIMSWEEP_AUDIT", "warn", 1);
  EXPECT_EQ(audit::mode_from_env(), audit::AuditMode::kWarn);
  ::setenv("SIMSWEEP_AUDIT", "fail", 1);
  EXPECT_EQ(audit::mode_from_env(), audit::AuditMode::kFail);
  ::unsetenv("SIMSWEEP_AUDIT");
  EXPECT_EQ(audit::mode_from_env(), audit::AuditMode::kOff);
  if (saved != nullptr) ::setenv("SIMSWEEP_AUDIT", restore.c_str(), 1);
}

// ----------------------------------------------- instrumented subsystems

TEST(AuditedSubsystems, SimulatorAndNetworkRunClean) {
  // A contended link with joins, a cancel and staggered completions walks
  // every audited path in simcore and net; a healthy run must be silent.
  audit::InvariantAuditor auditor(audit::AuditMode::kWarn);
  sim::Simulator s;
  s.set_auditor(&auditor);
  net::SharedLinkNetwork n(
      s, pf::LinkSpec{.latency_s = 0.1, .bandwidth_Bps = 100.0});
  std::vector<std::shared_ptr<net::Flow>> flows;
  for (int i = 0; i < 8; ++i)
    flows.push_back(n.start_transfer(100.0 + 10.0 * i, [] {}));
  (void)s.after(1.0, [&] { flows[7]->cancel(); });
  (void)s.after(2.0, [&] { flows.push_back(n.start_transfer(50.0, [] {})); });
  s.run();
  EXPECT_EQ(auditor.violation_count(), 0u)
      << audit::to_string(auditor.take_violations().front());
}

TEST(AuditedSubsystems, PerfHistoryWindowWalkRunsClean) {
  audit::InvariantAuditor auditor(audit::AuditMode::kWarn);
  swp::PerfHistory h;
  h.attach_auditor(&auditor);
  for (int i = 0; i < 50; ++i)
    h.record(static_cast<double>(i), 1.0 + 0.1 * static_cast<double>(i % 7));
  (void)h.windowed_mean(49.5, 10.0);
  (void)h.windowed_mean(49.5, 200.0);  // window extends past the history
  (void)h.windowed_mean(10.0, 0.0);
  h.prune_before(30.0);
  (void)h.windowed_mean(49.5, 10.0);
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(AuditedSubsystems, SwampiSwapPointRunsClean) {
  // Three ranks sharing one auditor across rank threads: a real swap (slow
  // active rank, fast spare) must leave the slot table a permutation, the
  // roles consistent and the state bytes conserved.
  audit::InvariantAuditor auditor(audit::AuditMode::kWarn);
  swampi::Runtime rt(3);
  rt.run([&auditor](swampi::Comm& world) {
    swampi::swapx::SwapConfig cfg;
    cfg.active_count = 2;
    cfg.auditor = &auditor;
    cfg.speed_probe = [&world] {
      return world.rank() == 1 ? 1.0 : 100.0;  // rank 1 slow, rank 2 fast
    };
    cfg.clock = [] { return 0.0; };
    swampi::swapx::SwapContext ctx(world, cfg);
    double payload = 42.0 + world.rank();
    ctx.register_value(payload);
    for (int i = 0; i < 3; ++i) (void)ctx.swap_point(10.0);
    EXPECT_GE(ctx.swaps_performed(), 1u);
  });
  EXPECT_EQ(auditor.violation_count(), 0u)
      << audit::to_string(auditor.take_violations().front());
}

// ------------------------------------------- system-wide golden guarantees

namespace {

void expect_bitwise_equal(const simsweep::strategy::RunResult& plain,
                          const simsweep::strategy::RunResult& audited,
                          const std::string& label) {
  EXPECT_EQ(plain.makespan_s, audited.makespan_s) << label;
  EXPECT_EQ(plain.iterations_completed, audited.iterations_completed) << label;
  EXPECT_EQ(plain.adaptations, audited.adaptations) << label;
  EXPECT_EQ(plain.adaptation_overhead_s, audited.adaptation_overhead_s)
      << label;
  EXPECT_EQ(plain.startup_s, audited.startup_s) << label;
  EXPECT_TRUE(plain.failures == audited.failures) << label;
  EXPECT_EQ(plain.finished, audited.finished) << label;
  EXPECT_EQ(plain.stalled, audited.stalled) << label;
}

}  // namespace

// Every golden cell, audited in warn mode: zero violations, and the audited
// run's observables are bitwise identical to the unaudited run's — the
// auditor reads the simulation, it never steers it.
TEST(GoldenAudit, FullMatrixCleanAndBitwiseIdentical) {
  for (const auto& scenario : golden::scenarios()) {
    for (const auto& technique : golden::techniques()) {
      for (const auto seed : golden::seeds()) {
        const std::string label =
            scenario + "/" + technique + "/seed" + std::to_string(seed);
        const auto plain = golden::run_cell(scenario, technique, seed);
        const auto audited = golden::run_cell(scenario, technique, seed,
                                              audit::AuditMode::kWarn);
        expect_bitwise_equal(plain, audited, label);
        EXPECT_TRUE(audited.audit_report.empty())
            << label << ": "
            << (audited.audit_report.empty()
                    ? ""
                    : audit::to_string(audited.audit_report.front()));
      }
    }
  }
}

// Fig. 10-shaped fault scenarios under fail-fast auditing: a violation
// anywhere in the fault/recovery machinery would throw AuditFailure and
// fail the test.
TEST(GoldenAudit, FaultScenariosSurviveFailFast) {
  for (const double mtbf_hours : {48.0, 6.0}) {
    for (const char* technique : {"swap_greedy", "cr", "none"}) {
      auto cfg = golden::config_for("calm");
      cfg.app = simsweep::app::AppSpec::with_iteration_minutes(4, 10, 2.0);
      cfg.app.state_bytes_per_process = 1.0 * simsweep::app::kMiB;
      cfg.spare_count = 8;
      cfg.seed = 7;
      cfg.audit = audit::AuditMode::kFail;
      cfg.faults.host_mtbf_s = mtbf_hours * 3600.0;
      cfg.faults.swap_fail_prob = 0.05;
      cfg.faults.checkpoint_fail_prob = 0.05;
      const auto model = std::make_shared<simsweep::load::OnOffModel>(
          simsweep::load::OnOffParams::dynamism(0.2));
      const auto strategy = golden::make_technique(technique);
      const auto result = golden::core::run_single(cfg, *model, *strategy);
      EXPECT_TRUE(result.audit_report.empty());
      EXPECT_GT(result.makespan_s, 0.0);
    }
  }
}
