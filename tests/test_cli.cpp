// Tests for the CLI flag parser and config builders.
#include <gtest/gtest.h>

#include "cli/args.hpp"
#include "cli/config_build.hpp"
#include "load/hyperexp.hpp"
#include "load/onoff.hpp"
#include "load/reclamation.hpp"

namespace cli = simsweep::cli;

TEST(Args, ParsesEqualsAndSpaceSeparatedFlags) {
  cli::Args args({"--alpha=3.5", "--beta", "7", "--gamma"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.get_bool("gamma"));
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_TRUE(args.unused_flags().empty());
}

TEST(Args, PositionalArgumentsPreserveOrder) {
  cli::Args args({"one", "--flag=x", "two"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"one", "two"}));
}

TEST(Args, FallbacksWhenAbsent) {
  cli::Args args({});
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_int("n", -3), -3);
  EXPECT_EQ(args.get_double_list("xs", {1.0, 2.0}),
            (std::vector<double>{1.0, 2.0}));
}

TEST(Args, MalformedValuesThrow) {
  cli::Args a({"--x=abc"});
  EXPECT_THROW((void)a.get_double("x", 0.0), std::invalid_argument);
  cli::Args b({"--n=1.5x"});
  EXPECT_THROW((void)b.get_int("n", 0), std::invalid_argument);
  cli::Args c({"--b=maybe"});
  EXPECT_THROW((void)c.get_bool("b"), std::invalid_argument);
  cli::Args d({"--xs=1,,2"});
  EXPECT_THROW((void)d.get_double_list("xs", {}), std::invalid_argument);
}

TEST(Args, DoubleListParses) {
  cli::Args args({"--points=0,0.5,1"});
  EXPECT_EQ(args.get_double_list("points", {}),
            (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(Args, UnusedFlagsAreReported) {
  cli::Args args({"--used=1", "--typo=2"});
  (void)args.get_int("used", 0);
  EXPECT_EQ(args.unused_flags(), (std::vector<std::string>{"typo"}));
  EXPECT_THROW(cli::reject_unused(args), std::invalid_argument);
}

TEST(Args, EditDistanceMatchesKnownCases) {
  EXPECT_EQ(cli::edit_distance("", ""), 0u);
  EXPECT_EQ(cli::edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(cli::edit_distance("abc", ""), 3u);
  EXPECT_EQ(cli::edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(cli::edit_distance("trails", "trials"), 2u);  // transposition
  EXPECT_EQ(cli::edit_distance("jobs", "job"), 1u);
}

TEST(Args, SuggestFlagPicksNearestOrNothing) {
  const std::vector<std::string> vocab{"trials", "points", "jobs", "seed"};
  EXPECT_EQ(cli::suggest_flag("trails", vocab), "trials");
  EXPECT_EQ(cli::suggest_flag("point", vocab), "points");
  // Nothing plausibly close: stay silent rather than mislead.
  EXPECT_EQ(cli::suggest_flag("frobnicate", vocab), "");
  EXPECT_EQ(cli::suggest_flag("x", {}), "");
}

TEST(Args, UnknownFlagErrorCarriesSuggestion) {
  cli::Args args({"--trails=3", "--seed=1"});
  (void)args.get_int("trials", 8);  // the getter builds the vocabulary
  (void)args.get_int("seed", 1);
  try {
    cli::reject_unused(args);
    FAIL() << "reject_unused should have thrown";
  } catch (const cli::UnknownFlagError& e) {
    EXPECT_EQ(e.flags(), (std::vector<std::string>{"trails"}));
    const std::string what = e.what();
    EXPECT_NE(what.find("--trails"), std::string::npos);
    EXPECT_NE(what.find("did you mean '--trials'?"), std::string::npos);
  }
}

TEST(Args, UnknownFlagWithoutNearMatchHasNoSuggestion) {
  cli::Args args({"--frobnicate=3"});
  (void)args.get_int("trials", 8);
  try {
    cli::reject_unused(args);
    FAIL() << "reject_unused should have thrown";
  } catch (const cli::UnknownFlagError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--frobnicate"), std::string::npos);
    EXPECT_EQ(what.find("did you mean"), std::string::npos);
  }
}

TEST(Args, BooleanValueForms) {
  cli::Args args({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_TRUE(args.get_bool("c"));
  EXPECT_FALSE(args.get_bool("d"));
}

TEST(ConfigBuild, DefaultsMatchPaperPlatform) {
  cli::Args args({});
  const auto cfg = cli::build_config(args);
  EXPECT_EQ(cfg.cluster.host_count, 32u);
  EXPECT_EQ(cfg.app.active_processes, 4u);
  EXPECT_EQ(cfg.spare_count, 28u);  // everything not active is a spare
  EXPECT_EQ(cfg.app.iterations, 60u);
  EXPECT_DOUBLE_EQ(cfg.app.state_bytes_per_process, simsweep::app::kMiB);
}

TEST(ConfigBuild, FlagsOverrideAndValidate) {
  cli::Args args({"--hosts=16", "--active=8", "--spares=4", "--state-mb=100",
                  "--seed=99"});
  const auto cfg = cli::build_config(args);
  EXPECT_EQ(cfg.cluster.host_count, 16u);
  EXPECT_EQ(cfg.spare_count, 4u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.app.state_bytes_per_process,
                   100.0 * simsweep::app::kMiB);

  cli::Args bad({"--hosts=4", "--active=4", "--spares=1"});
  EXPECT_THROW((void)cli::build_config(bad), std::invalid_argument);
}

TEST(ConfigBuild, AuditFlagSelectsMode) {
  namespace audit = simsweep::audit;
  cli::Args off({});
  EXPECT_EQ(cli::build_config(off).audit, audit::AuditMode::kOff);
  cli::Args bare({"--audit"});  // bare flag means fail-fast
  EXPECT_EQ(cli::build_config(bare).audit, audit::AuditMode::kFail);
  cli::Args warn({"--audit=warn"});
  EXPECT_EQ(cli::build_config(warn).audit, audit::AuditMode::kWarn);
  cli::Args fail({"--audit=fail"});
  EXPECT_EQ(cli::build_config(fail).audit, audit::AuditMode::kFail);
  cli::Args bad({"--audit=loud"});
  EXPECT_THROW((void)cli::build_config(bad), std::invalid_argument);
}

TEST(ConfigBuild, LoadModels) {
  cli::Args onoff({"--model=onoff", "--dynamism=0.3"});
  const auto m1 = cli::build_load_model(onoff);
  const auto* onoff_model =
      dynamic_cast<const simsweep::load::OnOffModel*>(m1.get());
  ASSERT_NE(onoff_model, nullptr);
  EXPECT_DOUBLE_EQ(onoff_model->params().p, 0.3);

  cli::Args hyper({"--model=hyperexp", "--lifetime=150"});
  const auto m2 = cli::build_load_model(hyper);
  const auto* hyper_model =
      dynamic_cast<const simsweep::load::HyperExpModel*>(m2.get());
  ASSERT_NE(hyper_model, nullptr);
  EXPECT_DOUBLE_EQ(hyper_model->params().mean_lifetime_s, 150.0);

  cli::Args reclaim({"--model=reclaim", "--reclaim-min=5"});
  const auto m3 = cli::build_load_model(reclaim);
  const auto* reclaim_model =
      dynamic_cast<const simsweep::load::ReclamationModel*>(m3.get());
  ASSERT_NE(reclaim_model, nullptr);
  EXPECT_DOUBLE_EQ(reclaim_model->params().mean_reclaimed_s, 300.0);

  cli::Args bad({"--model=nope"});
  EXPECT_THROW((void)cli::build_load_model(bad), std::invalid_argument);
}

TEST(ConfigBuild, Strategies) {
  cli::Args none({"--strategy=none"});
  EXPECT_EQ(cli::build_strategy(none)->name(), "NONE");

  cli::Args swap({"--strategy=swap", "--policy=safe"});
  EXPECT_EQ(cli::build_strategy(swap)->name(), "SWAP(safe)");

  cli::Args dlb({"--strategy=dlb"});
  EXPECT_EQ(cli::build_strategy(dlb)->name(), "DLB");

  cli::Args cr({"--strategy=cr"});
  EXPECT_EQ(cli::build_strategy(cr)->name(), "CR");

  cli::Args dlbswap({"--strategy=dlbswap", "--policy=greedy"});
  EXPECT_EQ(cli::build_strategy(dlbswap)->name(), "DLB+SWAP(greedy)");

  cli::Args bad({"--strategy=warp"});
  EXPECT_THROW((void)cli::build_strategy(bad), std::invalid_argument);
  cli::Args badpol({"--strategy=swap", "--policy=reckless"});
  EXPECT_THROW((void)cli::build_strategy(badpol), std::invalid_argument);
}

TEST(ConfigBuild, PolicyOverridesApply) {
  cli::Args args({"--strategy=swap", "--policy=greedy", "--payback=1.5",
                  "--min-process=0.1", "--history=120"});
  auto s = cli::build_strategy(args);
  const auto* swap_s = dynamic_cast<simsweep::strategy::SwapStrategy*>(s.get());
  ASSERT_NE(swap_s, nullptr);
  EXPECT_DOUBLE_EQ(swap_s->policy().payback_threshold_iters, 1.5);
  EXPECT_DOUBLE_EQ(swap_s->policy().min_process_improvement, 0.1);
  EXPECT_DOUBLE_EQ(swap_s->policy().history_window_s, 120.0);
}

TEST(ConfigBuild, PredictorSelection) {
  for (const char* p : {"window", "nws", "ewma", "median"}) {
    cli::Args args({"--strategy=swap", std::string("--predictor=") + p});
    EXPECT_NO_THROW((void)cli::build_strategy(args)) << p;
  }
  cli::Args bad({"--strategy=swap", "--predictor=psychic"});
  EXPECT_THROW((void)cli::build_strategy(bad), std::invalid_argument);
}
