// Tests for the experiment runner: determinism, trial statistics, reports,
// and the parallel trial engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "core/trial_runner.hpp"
#include "load/misc_models.hpp"
#include "load/onoff.hpp"
#include "strategy/schedule.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace app = simsweep::app;

namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 8;
  cfg.app = app::AppSpec::with_iteration_minutes(/*active=*/2, /*iterations=*/5,
                                                 /*minutes=*/1.0);
  cfg.app.comm_bytes_per_process = 10.0 * app::kKiB;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 2;
  cfg.seed = 42;
  return cfg;
}

/// A strategy whose boundary hook never resumes: after the first iteration
/// the simulation goes idle with the application unfinished (a deadlock).
class StallingStrategy final : public strat::Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "STALL"; }
  [[nodiscard]] std::unique_ptr<strat::IterativeExecution> launch(
      strat::StrategyContext& ctx) override {
    auto alloc = strat::pick_allocation(ctx.cluster, ctx.spec.active_processes,
                                        0, ctx.initial_schedule);
    auto exec = std::make_unique<strat::IterativeExecution>(
        ctx.simulator, ctx.cluster, ctx.network, ctx.spec, alloc.active,
        app::WorkPartition::equal(ctx.spec.active_processes),
        [](strat::IterativeExecution&, std::function<void()>) {
          // Drop `resume`: the run can never continue.
        });
    exec->start(0.0);
    return exec;
  }
};

}  // namespace

TEST(RunSingle, DeterministicForSameSeed) {
  const auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  strat::NoneStrategy none;
  const auto a = core::run_single(cfg, model, none);
  const auto b = core::run_single(cfg, model, none);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.iteration_times_s, b.iteration_times_s);
}

TEST(RunSingle, DifferentSeedsDiffer) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  strat::NoneStrategy none;
  const auto a = core::run_single(cfg, model, none);
  cfg.seed = 43;
  const auto b = core::run_single(cfg, model, none);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(RunSingle, QuiescentMakespanIsAnalytic) {
  auto cfg = small_config();
  cfg.cluster.explicit_speeds.assign(8, 300.0e6);
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, quiet, none);
  EXPECT_TRUE(r.finished);
  // Startup 2 * 0.75 s + 5 iterations of (60 s compute + comm).
  const double comm = 2.0 * 10.0 * app::kKiB / 6.0e6 + 1e-4;
  EXPECT_NEAR(r.makespan_s, 1.5 + 5.0 * (60.0 + comm), 1e-6);
}

TEST(RunSingle, SwapNeverWorseThanNoneWhenQuiet) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  strat::SwapStrategy swap{simsweep::swap::greedy_policy()};
  const auto rn = core::run_single(cfg, quiet, none);
  const auto rs = core::run_single(cfg, quiet, swap);
  // Same compute; SWAP pays only the extra over-allocation startup.
  EXPECT_NEAR(rs.makespan_s - rn.makespan_s,
              0.75 * static_cast<double>(cfg.spare_count), 1e-9);
  EXPECT_EQ(rs.adaptations, 0u);
}

TEST(RunSingle, HorizonCapsRunaways) {
  auto cfg = small_config();
  cfg.horizon_s = 10.0;  // far less than one iteration
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, quiet, none);
  EXPECT_FALSE(r.finished);
  EXPECT_DOUBLE_EQ(r.makespan_s, 10.0);
}

TEST(RunTrials, StatisticsAreConsistent) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.4));
  strat::NoneStrategy none;
  const auto stats = core::run_trials(cfg, model, none, 5);
  EXPECT_EQ(stats.trials, 5u);
  EXPECT_LE(stats.min, stats.mean);
  EXPECT_LE(stats.mean, stats.max);
  EXPECT_GE(stats.stddev, 0.0);
  EXPECT_EQ(stats.unfinished, 0u);
}

TEST(RunTrials, MeanOfConstantRunsHasZeroStddev) {
  auto cfg = small_config();
  cfg.cluster.explicit_speeds.assign(8, 300.0e6);
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto stats = core::run_trials(cfg, quiet, none, 3);
  EXPECT_NEAR(stats.stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min, stats.max);
}

TEST(RunTrials, RejectsZeroTrials) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  EXPECT_THROW((void)core::run_trials(cfg, quiet, none, 0),
               std::invalid_argument);
}

TEST(RunSingle, StalledRunIsDistinguishedFromHorizonTimeout) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  StallingStrategy stall;
  const auto r = core::run_single(cfg, quiet, stall);
  EXPECT_FALSE(r.finished);
  EXPECT_TRUE(r.stalled);
  EXPECT_LT(r.makespan_s, cfg.horizon_s);

  // A genuine horizon timeout is NOT a stall.
  cfg.horizon_s = 10.0;
  strat::NoneStrategy none;
  const auto slow = core::run_single(cfg, quiet, none);
  EXPECT_FALSE(slow.finished);
  EXPECT_FALSE(slow.stalled);
}

TEST(RunTrials, CountsStalledRuns) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  StallingStrategy stall;
  const auto stats = core::run_trials(cfg, quiet, stall, 3);
  EXPECT_EQ(stats.stalled, 3u);
  EXPECT_EQ(stats.unfinished, 3u);
}

TEST(ReduceTrials, WelfordSurvivesHugeMakespans) {
  // Makespans near 1e9 with sub-second spread: the naive sum_sq/n - mean^2
  // form loses every digit of the variance to cancellation (1e18-magnitude
  // intermediates), reporting stddev 0 or garbage.  Welford keeps it exact.
  std::vector<strat::RunResult> results(3);
  results[0].makespan_s = 1.0e9;
  results[1].makespan_s = 1.0e9 + 0.25;
  results[2].makespan_s = 1.0e9 + 0.5;
  for (auto& r : results) r.finished = true;
  const auto stats = core::reduce_trials(results);
  EXPECT_DOUBLE_EQ(stats.mean, 1.0e9 + 0.25);
  // Population variance of {0, 0.25, 0.5} about 0.25 = 0.0416666..
  EXPECT_NEAR(stats.stddev, std::sqrt(0.125 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(stats.min, 1.0e9);
  EXPECT_DOUBLE_EQ(stats.max, 1.0e9 + 0.5);
}

TEST(ReduceTrials, RejectsEmptyInput) {
  EXPECT_THROW((void)core::reduce_trials({}), std::invalid_argument);
}

TEST(RunTrialsParallel, BitwiseIdenticalToSerial) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.4));
  strat::SwapStrategy swap{simsweep::swap::greedy_policy()};
  const auto serial = core::run_trials(cfg, model, swap, 6);
  const auto parallel = core::run_trials_parallel(cfg, model, swap, 6,
                                                  /*jobs=*/4);
  // EXPECT_EQ on doubles is exact comparison: bitwise-identical results.
  EXPECT_EQ(serial.mean, parallel.mean);
  EXPECT_EQ(serial.stddev, parallel.stddev);
  EXPECT_EQ(serial.min, parallel.min);
  EXPECT_EQ(serial.max, parallel.max);
  EXPECT_EQ(serial.trials, parallel.trials);
  EXPECT_EQ(serial.unfinished, parallel.unfinished);
  EXPECT_EQ(serial.stalled, parallel.stalled);
  EXPECT_EQ(serial.mean_adaptations, parallel.mean_adaptations);
}

TEST(RunTrialsParallel, SharedPoolPathMatchesSerial) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  strat::NoneStrategy none;
  const auto serial = core::run_trials(cfg, model, none, 4);
  const auto pooled = core::run_trials_parallel(cfg, model, none, 4);
  EXPECT_EQ(serial.mean, pooled.mean);
  EXPECT_EQ(serial.stddev, pooled.stddev);
}

TEST(RunTrialsParallel, RejectsZeroTrials) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  EXPECT_THROW((void)core::run_trials_parallel(cfg, quiet, none, 0, 2),
               std::invalid_argument);
}

TEST(TrialRunner, CoversEveryIndexExactlyOnce) {
  core::TrialRunner runner(4);
  EXPECT_EQ(runner.parallelism(), 4u);
  std::vector<std::atomic<int>> hits(257);
  runner.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TrialRunner, NestedParallelForDoesNotDeadlock) {
  core::TrialRunner runner(2);
  std::atomic<int> total{0};
  runner.parallel_for(4, [&](std::size_t) {
    runner.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TrialRunner, PropagatesFirstException) {
  core::TrialRunner runner(3);
  EXPECT_THROW(runner.parallel_for(16,
                                   [](std::size_t i) {
                                     if (i % 2 == 1)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
}

TEST(TrialRunner, FirstExceptionCancelsUnclaimedWork) {
  core::TrialRunner runner(4);
  // Every task throws immediately; once the first failure lands, all
  // still-unclaimed indices must be skipped, so with 4 threads racing over
  // 10'000 one-shot tasks only a small prefix can ever start.
  std::atomic<int> executed{0};
  EXPECT_THROW(runner.parallel_for(10'000,
                                   [&](std::size_t) {
                                     executed.fetch_add(1);
                                     throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  EXPECT_LT(executed.load(), 5'000);
}

TEST(TrialRunner, InlineRunnerCancelsAfterFirstThrow) {
  core::TrialRunner runner(1);
  // Single-threaded: deterministic — exactly one body runs, the rest are
  // cancelled before being claimed.
  int executed = 0;
  EXPECT_THROW(runner.parallel_for(100,
                                   [&](std::size_t) {
                                     ++executed;
                                     throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  EXPECT_EQ(executed, 1);
}

TEST(TrialRunner, ParallelismOneRunsInline) {
  core::TrialRunner runner(1);
  EXPECT_EQ(runner.parallelism(), 1u);
  int count = 0;  // no synchronization: everything runs on this thread
  runner.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(TrialStats, PrintsJson) {
  core::TrialStats stats;
  stats.mean = 123.5;
  stats.stddev = 4.25;
  stats.min = 100.0;
  stats.max = 150.0;
  stats.trials = 8;
  stats.unfinished = 1;
  stats.stalled = 1;
  stats.mean_adaptations = 2.5;
  stats.resource_exhausted = 1;
  stats.mean_crashes = 1.5;
  stats.mean_transfer_failures = 3;
  stats.mean_recoveries = 1.25;
  stats.mean_checkpoint_failures = 0.5;
  stats.mean_time_lost_s = 42;
  stats.audit_violations = 2;
  std::ostringstream os;
  stats.print_json(os);
  EXPECT_EQ(os.str(),
            "{\"mean\":123.5,\"stddev\":4.25,\"min\":100,\"max\":150,"
            "\"trials\":8,\"unfinished\":1,\"stalled\":1,"
            "\"resource_exhausted\":1,\"mean_adaptations\":2.5,"
            "\"mean_crashes\":1.5,\"mean_transfer_failures\":3,"
            "\"mean_recoveries\":1.25,\"mean_checkpoint_failures\":0.5,"
            "\"mean_time_lost_s\":42,\"audit_violations\":2}");
}

TEST(SeriesReport, PrintsJson) {
  core::SeriesReport rep;
  rep.title = "demo \"quoted\"";
  rep.x_label = "x";
  rep.x = {0.1, 0.2};
  rep.series.push_back({"NONE", {100.0, 200.0}, {0.0, 0.0}});
  std::ostringstream os;
  rep.print_json(os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"demo \\\"quoted\\\"\",\"x_label\":\"x\","
            "\"x\":[0.1,0.2],\"series\":[{\"name\":\"NONE\","
            "\"mean_makespan_s\":[100,200],\"mean_adaptations\":[0,0]}]}");
}

TEST(SeriesReport, PrintsTableAndCsv) {
  core::SeriesReport rep;
  rep.title = "demo";
  rep.x_label = "x";
  rep.x = {0.1, 0.2};
  rep.series.push_back({"NONE", {100.0, 200.0}, {0.0, 0.0}});
  rep.series.push_back({"SWAP", {90.0, 150.0}, {1.0, 2.0}});
  std::ostringstream table, csv;
  rep.print_table(table);
  rep.print_csv(csv);
  EXPECT_NE(table.str().find("NONE"), std::string::npos);
  EXPECT_NE(table.str().find("demo"), std::string::npos);
  EXPECT_EQ(csv.str().rfind("x,NONE,SWAP\n", 0), 0u);
  EXPECT_NE(csv.str().find("0.2,200,150"), std::string::npos);
}
