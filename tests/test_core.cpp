// Tests for the experiment runner: determinism, trial statistics, reports.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "load/misc_models.hpp"
#include "load/onoff.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace app = simsweep::app;

namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 8;
  cfg.app = app::AppSpec::with_iteration_minutes(/*active=*/2, /*iterations=*/5,
                                                 /*minutes=*/1.0);
  cfg.app.comm_bytes_per_process = 10.0 * app::kKiB;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 2;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

TEST(RunSingle, DeterministicForSameSeed) {
  const auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  strat::NoneStrategy none;
  const auto a = core::run_single(cfg, model, none);
  const auto b = core::run_single(cfg, model, none);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.iteration_times_s, b.iteration_times_s);
}

TEST(RunSingle, DifferentSeedsDiffer) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  strat::NoneStrategy none;
  const auto a = core::run_single(cfg, model, none);
  cfg.seed = 43;
  const auto b = core::run_single(cfg, model, none);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(RunSingle, QuiescentMakespanIsAnalytic) {
  auto cfg = small_config();
  cfg.cluster.explicit_speeds.assign(8, 300.0e6);
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, quiet, none);
  EXPECT_TRUE(r.finished);
  // Startup 2 * 0.75 s + 5 iterations of (60 s compute + comm).
  const double comm = 2.0 * 10.0 * app::kKiB / 6.0e6 + 1e-4;
  EXPECT_NEAR(r.makespan_s, 1.5 + 5.0 * (60.0 + comm), 1e-6);
}

TEST(RunSingle, SwapNeverWorseThanNoneWhenQuiet) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  strat::SwapStrategy swap{simsweep::swap::greedy_policy()};
  const auto rn = core::run_single(cfg, quiet, none);
  const auto rs = core::run_single(cfg, quiet, swap);
  // Same compute; SWAP pays only the extra over-allocation startup.
  EXPECT_NEAR(rs.makespan_s - rn.makespan_s,
              0.75 * static_cast<double>(cfg.spare_count), 1e-9);
  EXPECT_EQ(rs.adaptations, 0u);
}

TEST(RunSingle, HorizonCapsRunaways) {
  auto cfg = small_config();
  cfg.horizon_s = 10.0;  // far less than one iteration
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, quiet, none);
  EXPECT_FALSE(r.finished);
  EXPECT_DOUBLE_EQ(r.makespan_s, 10.0);
}

TEST(RunTrials, StatisticsAreConsistent) {
  auto cfg = small_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.4));
  strat::NoneStrategy none;
  const auto stats = core::run_trials(cfg, model, none, 5);
  EXPECT_EQ(stats.trials, 5u);
  EXPECT_LE(stats.min, stats.mean);
  EXPECT_LE(stats.mean, stats.max);
  EXPECT_GE(stats.stddev, 0.0);
  EXPECT_EQ(stats.unfinished, 0u);
}

TEST(RunTrials, MeanOfConstantRunsHasZeroStddev) {
  auto cfg = small_config();
  cfg.cluster.explicit_speeds.assign(8, 300.0e6);
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto stats = core::run_trials(cfg, quiet, none, 3);
  EXPECT_NEAR(stats.stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min, stats.max);
}

TEST(RunTrials, RejectsZeroTrials) {
  auto cfg = small_config();
  load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  EXPECT_THROW((void)core::run_trials(cfg, quiet, none, 0),
               std::invalid_argument);
}

TEST(SeriesReport, PrintsTableAndCsv) {
  core::SeriesReport rep;
  rep.title = "demo";
  rep.x_label = "x";
  rep.x = {0.1, 0.2};
  rep.series.push_back({"NONE", {100.0, 200.0}, {0.0, 0.0}});
  rep.series.push_back({"SWAP", {90.0, 150.0}, {1.0, 2.0}});
  std::ostringstream table, csv;
  rep.print_table(table);
  rep.print_csv(csv);
  EXPECT_NE(table.str().find("NONE"), std::string::npos);
  EXPECT_NE(table.str().find("demo"), std::string::npos);
  EXPECT_EQ(csv.str().rfind("x,NONE,SWAP\n", 0), 0u);
  EXPECT_NE(csv.str().find("0.2,200,150"), std::string::npos);
}
