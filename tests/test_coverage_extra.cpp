// Edge-coverage batch: swampi sendrecv/iprobe, host tracing, network
// cancellation during the latency phase, simulator drain semantics, cluster
// queries under churn.
#include <gtest/gtest.h>

#include "net/shared_link.hpp"
#include "platform/cluster.hpp"
#include "simcore/simulator.hpp"
#include "simcore/trace_recorder.hpp"
#include "swampi/comm.hpp"
#include "swampi/runtime.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace net = simsweep::net;
using swampi::Comm;
using swampi::Runtime;

TEST(SwampiSendrecv, RingShiftExchangesWithoutDeadlock) {
  const int n = 6;
  Runtime rt(n);
  rt.run([n](Comm& world) {
    const int right = (world.rank() + 1) % n;
    const int left = (world.rank() + n - 1) % n;
    const int mine = world.rank() * 11;
    int from_left = -1;
    const swampi::Status st = world.sendrecv(&mine, 1, right, /*send_tag=*/4,
                                             &from_left, 1, left,
                                             /*recv_tag=*/4);
    EXPECT_EQ(from_left, left * 11);
    EXPECT_EQ(st.source, left);
    EXPECT_EQ(st.bytes, sizeof(int));
  });
}

TEST(SwampiSendrecv, SelfExchangeWorks) {
  Runtime rt(1);
  rt.run([](Comm& world) {
    const double out = 2.5;
    double in = 0.0;
    world.sendrecv(&out, 1, 0, 1, &in, 1, 0, 1);
    EXPECT_DOUBLE_EQ(in, 2.5);
  });
}

TEST(SwampiIprobe, SeesOnlyMatchingMessages) {
  Runtime rt(2);
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      world.send_value(1, 1, /*tag=*/5);
      world.barrier();
    } else {
      world.barrier();  // ensures the message arrived
      EXPECT_TRUE(world.iprobe(0, 5));
      EXPECT_TRUE(world.iprobe(swampi::kAnySource, swampi::kAnyTag));
      EXPECT_FALSE(world.iprobe(0, 6));
      (void)world.recv_value<int>(0, 5);
      EXPECT_FALSE(world.iprobe(0, 5));
    }
  });
}

TEST(HostTrace, AttachedRecorderLogsAvailabilityChanges) {
  sim::Simulator s;
  pf::Host h(s, 0, 100.0, "traced");
  sim::TraceRecorder rec;
  h.attach_trace(&rec);
  (void)s.after(1.0, [&] { h.set_external_load(1); });
  (void)s.after(2.0, [&] { h.set_online(false); });
  (void)s.after(3.0, [&] { h.set_online(true); });
  s.run();
  const auto& series = rec.series("avail.traced");
  ASSERT_EQ(series.size(), 4u);  // attach + three changes
  EXPECT_DOUBLE_EQ(series[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series[1].value, 0.5);
  EXPECT_DOUBLE_EQ(series[2].value, 0.0);
  EXPECT_DOUBLE_EQ(series[3].value, 0.5);  // competitor persisted offline
}

TEST(SharedLinkEdge, CancelDuringLatencyPhaseIsClean) {
  sim::Simulator s;
  net::SharedLinkNetwork n(s, pf::LinkSpec{.latency_s = 1.0,
                                           .bandwidth_Bps = 100.0});
  bool fired = false;
  auto flow = n.start_transfer(100.0, [&] { fired = true; });
  (void)s.after(0.5, [&] { flow->cancel(); });  // still in latency
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(n.active_flows(), 0u);
  flow->cancel();  // idempotent
}

TEST(SharedLinkEdge, CompletionClearsActiveFlows) {
  sim::Simulator s;
  net::SharedLinkNetwork n(s, pf::LinkSpec{.latency_s = 0.0,
                                           .bandwidth_Bps = 100.0});
  auto flow = n.start_transfer(100.0, [] {});
  s.run();
  EXPECT_EQ(n.active_flows(), 0u);
  EXPECT_FALSE(flow->active());
  EXPECT_DOUBLE_EQ(flow->remaining_bytes(), 0.0);
}

TEST(SimulatorEdge, IdleReflectsPendingEvents) {
  sim::Simulator s;
  EXPECT_TRUE(s.idle());
  auto h = s.after(1.0, [] {});
  EXPECT_FALSE(s.idle());
  h.cancel();
  EXPECT_TRUE(s.idle());
}

TEST(SimulatorEdge, RunAfterStopResumes) {
  sim::Simulator s;
  int fired = 0;
  (void)s.after(1.0, [&] {
    ++fired;
    s.stop();
  });
  (void)s.after(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // clears the stop flag and drains the rest
  EXPECT_EQ(fired, 2);
}

TEST(ClusterEdge, EffectiveOrderingTracksOfflineHosts) {
  sim::Simulator s;
  sim::Rng rng(1);
  pf::ClusterSpec spec;
  spec.host_count = 3;
  spec.explicit_speeds = {300.0, 200.0, 100.0};
  pf::Cluster c(s, spec, rng);
  c.host(0).set_online(false);
  const auto order = c.by_effective_speed();
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order.back(), 0u);  // offline host sorts last
  // Peak ordering is unaffected.
  EXPECT_EQ(c.by_peak_speed().front(), 0u);
}

TEST(EventQueueEdge, PendingReflectsLifecycle) {
  sim::Simulator s;
  sim::EventHandle h = s.after(1.0, [] {});
  EXPECT_TRUE(h.pending());
  s.run();
  EXPECT_FALSE(h.pending());  // fired events are no longer pending
}
