// Decision-trace layer: typed rejection reasons out of the planner, the
// explicit adaptation-cost override, the policy-estimator factory, and the
// JSONL serialisation — plus the invariant that tracing never moves a
// simulated event.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "load/onoff.hpp"
#include "strategy/decision_trace.hpp"
#include "strategy/estimator.hpp"
#include "strategy/strategy.hpp"
#include "swap/planner.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace swp = simsweep::swap;

namespace {

swp::PlanContext make_ctx(double iter_time = 100.0, double state = 1.0e6,
                          double comm = 0.0) {
  return swp::PlanContext{
      .measured_iter_time_s = iter_time,
      .state_bytes = state,
      .link_latency_s = 1e-4,
      .link_bandwidth_Bps = 6.0e6,
      .comm_time_s = comm,
      .adaptation_cost_s = std::nullopt,
  };
}

std::vector<swp::ActiveProcess> two_active(double s0, double s1,
                                           double chunk = 100.0e6) {
  return {swp::ActiveProcess{0, 0, s0, chunk},
          swp::ActiveProcess{1, 1, s1, chunk}};
}

}  // namespace

// ------------------------------------------------ rejection reasons

TEST(Rejections, AcceptedCandidateCarriesMetrics) {
  const auto plan =
      swp::evaluate_swaps(swp::greedy_policy(), two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 20.0e6}}, make_ctx());
  ASSERT_EQ(plan.decisions.size(), 1u);
  ASSERT_FALSE(plan.considered.empty());
  const swp::CandidateEvaluation& c = plan.considered.front();
  EXPECT_TRUE(c.accepted());
  EXPECT_EQ(c.rejection, swp::RejectReason::kAccepted);
  EXPECT_EQ(c.slot, 1u);  // the slow process moves
  EXPECT_EQ(c.to, 7u);
  EXPECT_DOUBLE_EQ(c.from_est_speed, 5.0e6);
  EXPECT_DOUBLE_EQ(c.to_est_speed, 20.0e6);
  EXPECT_DOUBLE_EQ(c.process_gain, 3.0);  // (20 - 5) / 5
  EXPECT_GT(c.payback_iters, 0.0);
  EXPECT_GT(c.app_gain, 0.0);
  EXPECT_GT(plan.predicted_iter_time_s, 0.0);
}

TEST(Rejections, NoFasterSpare) {
  const auto plan =
      swp::evaluate_swaps(swp::greedy_policy(), two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 4.0e6}}, make_ctx());
  EXPECT_TRUE(plan.decisions.empty());
  ASSERT_EQ(plan.considered.size(), 1u);
  EXPECT_EQ(plan.considered[0].rejection, swp::RejectReason::kNoFasterSpare);
}

TEST(Rejections, ProcessGainThreshold) {
  swp::PolicyParams policy;  // infinite payback, no app threshold
  policy.min_process_improvement = 5.0;  // demand a 500 % speedup
  const auto plan =
      swp::evaluate_swaps(policy, two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 20.0e6}}, make_ctx());
  EXPECT_TRUE(plan.decisions.empty());
  ASSERT_EQ(plan.considered.size(), 1u);
  EXPECT_EQ(plan.considered[0].rejection, swp::RejectReason::kProcessGain);
  EXPECT_DOUBLE_EQ(plan.considered[0].process_gain, 3.0);
}

TEST(Rejections, PaybackThreshold) {
  swp::PolicyParams policy;
  policy.payback_threshold_iters = 1e-6;
  // A gigabyte of state over a 6 MB/s link: the swap costs minutes while an
  // iteration saves seconds, so payback is far beyond a 1e-6-iteration cap.
  const auto plan =
      swp::evaluate_swaps(policy, two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 20.0e6}},
                          make_ctx(100.0, /*state=*/1.0e9));
  EXPECT_TRUE(plan.decisions.empty());
  ASSERT_EQ(plan.considered.size(), 1u);
  EXPECT_EQ(plan.considered[0].rejection, swp::RejectReason::kPayback);
  EXPECT_GT(plan.considered[0].payback_iters, 1e-6);
}

TEST(Rejections, AppGainThreshold) {
  swp::PolicyParams policy;
  policy.min_app_improvement = 0.9;  // demand a 90 % whole-app speedup
  // Communication dominates the iteration, so even a faster host barely
  // moves the application rate.
  const auto plan = swp::evaluate_swaps(
      policy, two_active(10.0e6, 5.0e6), {{.host = 7, .est_speed = 20.0e6}},
      make_ctx(/*iter_time=*/1000.0, /*state=*/1.0e6, /*comm=*/980.0));
  EXPECT_TRUE(plan.decisions.empty());
  ASSERT_EQ(plan.considered.size(), 1u);
  EXPECT_EQ(plan.considered[0].rejection, swp::RejectReason::kAppGain);
  EXPECT_LT(plan.considered[0].app_gain, 0.9);
}

TEST(Rejections, RoundStopsAtFirstRejection) {
  // Two slow actives, two fast spares, but a policy that rejects everything:
  // the round must stop after the first rejected candidate.
  swp::PolicyParams policy;
  policy.min_process_improvement = 100.0;
  const auto plan = swp::evaluate_swaps(
      policy, two_active(5.0e6, 4.0e6),
      {{.host = 7, .est_speed = 20.0e6}, {.host = 8, .est_speed = 30.0e6}},
      make_ctx());
  EXPECT_TRUE(plan.decisions.empty());
  ASSERT_EQ(plan.considered.size(), 1u);
  EXPECT_FALSE(plan.considered.back().accepted());
}

TEST(Rejections, ReasonNamesAreDistinct) {
  const std::vector<swp::RejectReason> reasons{
      swp::RejectReason::kAccepted, swp::RejectReason::kNoFasterSpare,
      swp::RejectReason::kProcessGain, swp::RejectReason::kPayback,
      swp::RejectReason::kAppGain};
  for (std::size_t i = 0; i < reasons.size(); ++i)
    for (std::size_t j = i + 1; j < reasons.size(); ++j)
      EXPECT_STRNE(swp::to_string(reasons[i]), swp::to_string(reasons[j]));
}

// ------------------------------------------------ explicit adaptation cost

TEST(AdaptationCost, ExplicitCostReplacesTransferEstimate) {
  swp::PolicyParams policy;
  policy.payback_threshold_iters = 10.0;
  auto ctx = make_ctx();  // transfer estimate: ~0.17 s for 1 MB
  const auto cheap =
      swp::evaluate_swaps(policy, two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 20.0e6}}, ctx);
  ASSERT_EQ(cheap.decisions.size(), 1u);

  // Same placement, but the adaptation now interrupts the whole application
  // for 1000 s (checkpoint/restart's shape): payback = 1000 / (100 s * 0.75
  // rate gain) ≈ 13 iterations, past the threshold, and the identical
  // candidate is rejected.
  ctx.adaptation_cost_s = 1000.0;
  const auto dear =
      swp::evaluate_swaps(policy, two_active(10.0e6, 5.0e6),
                          {{.host = 7, .est_speed = 20.0e6}}, ctx);
  EXPECT_TRUE(dear.decisions.empty());
  ASSERT_EQ(dear.considered.size(), 1u);
  EXPECT_EQ(dear.considered[0].rejection, swp::RejectReason::kPayback);
  EXPECT_GT(dear.considered[0].payback_iters,
            cheap.considered[0].payback_iters);
}

// ------------------------------------------------ estimator factory

TEST(PolicyEstimator, DefaultsToPolicyWindow) {
  swp::PolicyParams policy;
  policy.history_window_s = 120.0;
  const auto est = strat::make_policy_estimator(policy);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->name(), "window_120s");
}

TEST(PolicyEstimator, PreferredEstimatorIsClonedFresh) {
  const auto preferred = strat::make_window_estimator(7.0);
  const auto est = strat::make_policy_estimator(swp::greedy_policy(),
                                                preferred);
  ASSERT_NE(est, nullptr);
  EXPECT_NE(est.get(), preferred.get());  // fresh(), not shared state
  EXPECT_EQ(est->name(), preferred->name());
}

// ------------------------------------------------ traced runs

namespace {

core::ExperimentConfig trace_config() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 16;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 12, 2.0);
  cfg.app.state_bytes_per_process = 10.0 * app::kMiB;
  cfg.spare_count = 12;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

TEST(TracedRuns, TracingNeverMovesAnEvent) {
  const load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  auto cfg = trace_config();
  strat::SwapStrategy plain_strategy(swp::greedy_policy());
  const auto plain = core::run_single(cfg, model, plain_strategy);
  cfg.trace_decisions = true;
  strat::SwapStrategy traced_strategy(swp::greedy_policy());
  const auto traced = core::run_single(cfg, model, traced_strategy);

  EXPECT_EQ(plain.makespan_s, traced.makespan_s);  // bitwise
  EXPECT_EQ(plain.adaptations, traced.adaptations);
  EXPECT_TRUE(plain.decision_trace.empty());
  EXPECT_FALSE(traced.decision_trace.empty());
}

TEST(TracedRuns, BoundaryRecordsAreConsistent) {
  const load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  auto cfg = trace_config();
  cfg.trace_decisions = true;
  strat::SwapStrategy strategy(swp::greedy_policy());
  const auto result = core::run_single(cfg, model, strategy);

  std::size_t applied_total = 0;
  for (const strat::DecisionRecord& rec : result.decision_trace) {
    ASSERT_EQ(rec.kind, strat::TraceKind::kBoundary);
    EXPECT_LE(rec.iteration, cfg.app.iterations);
    EXPECT_GE(rec.time_s, 0.0);
    EXPECT_EQ(rec.active_count, cfg.app.active_processes);
    std::size_t accepted = 0;
    for (const swp::CandidateEvaluation& c : rec.considered)
      if (c.accepted()) ++accepted;
    EXPECT_EQ(rec.swaps_planned, accepted);
    EXPECT_LE(rec.swaps_applied, rec.swaps_planned);
    applied_total += rec.swaps_applied;
  }
  // Fault-free SWAP: every applied move is one adaptation.
  EXPECT_EQ(applied_total, result.adaptations);
}

TEST(TracedRuns, CrashRecoveryLeavesRecoveryRecords) {
  const load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  auto cfg = trace_config();
  cfg.trace_decisions = true;
  cfg.faults.host_mtbf_s = 0.5 * 3600.0;  // crashes are near-certain
  strat::NoneStrategy strategy;
  bool found_recovery = false;
  for (std::uint64_t seed = 1; seed <= 5 && !found_recovery; ++seed) {
    cfg.seed = seed;
    const auto result = core::run_single(cfg, model, strategy);
    if (result.failures.crash_recoveries == 0) continue;
    for (const strat::DecisionRecord& rec : result.decision_trace) {
      // A run that later burns through every host also records a final
      // "resource_exhausted" action; only the successful restarts are
      // checked here.
      if (rec.kind != strat::TraceKind::kRecovery ||
          rec.action != "restart_from_scratch")
        continue;
      found_recovery = true;
      EXPECT_EQ(rec.processes, cfg.app.active_processes);
    }
  }
  EXPECT_TRUE(found_recovery)
      << "no seed in 1..5 produced a crash recovery; retune the scenario";
}

// ------------------------------------------------ JSONL serialisation

TEST(TraceJsonl, RecoveryRecordSerialisesExactly) {
  strat::DecisionRecord rec;
  rec.kind = strat::TraceKind::kRecovery;
  rec.iteration = 4;
  rec.time_s = 1.5;
  rec.action = "replace_on_spares";
  rec.processes = 2;
  std::ostringstream os;
  strat::write_trace_jsonl(os, "SWAP(greedy)", /*seed=*/42, /*trial=*/3, {rec});
  EXPECT_EQ(os.str(),
            "{\"strategy\":\"SWAP(greedy)\",\"trial\":3,\"seed\":42,"
            "\"kind\":\"recovery\",\"iteration\":4,\"time_s\":1.5,"
            "\"action\":\"replace_on_spares\",\"processes\":2}\n");
}

TEST(TraceJsonl, BoundaryRecordCarriesCandidates) {
  strat::DecisionRecord rec;
  rec.kind = strat::TraceKind::kBoundary;
  rec.iteration = 7;
  rec.time_s = 120.0;
  rec.measured_iter_time_s = 60.0;
  rec.predicted_iter_time_s = 55.0;
  rec.adaptation_cost_s = 0.25;
  rec.active_count = 4;
  rec.spare_count = 12;
  rec.swaps_planned = 1;
  rec.swaps_applied = 1;
  swp::CandidateEvaluation cand;
  cand.slot = 2;
  cand.from = 1;
  cand.to = 9;
  cand.payback_iters = 0.5;
  cand.rejection = swp::RejectReason::kAccepted;
  rec.considered.push_back(cand);
  cand.rejection = swp::RejectReason::kPayback;
  rec.considered.push_back(cand);

  std::ostringstream os;
  strat::write_trace_jsonl(os, "CR", 1, 0, {rec});
  const std::string line = os.str();
  EXPECT_NE(line.find("\"kind\":\"boundary\""), std::string::npos);
  EXPECT_NE(line.find("\"adaptation_cost_s\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"payback_iters\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"rejection\":\"accepted\""), std::string::npos);
  EXPECT_NE(line.find("\"rejection\":\"payback_threshold\""),
            std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // one record, one line
}

TEST(TraceJsonl, NonFiniteNumbersBecomeNull) {
  strat::DecisionRecord rec;
  rec.kind = strat::TraceKind::kBoundary;
  swp::CandidateEvaluation cand;
  cand.payback_iters = std::numeric_limits<double>::infinity();
  rec.considered.push_back(cand);
  std::ostringstream os;
  strat::write_trace_jsonl(os, "SWAP", 1, 0, {rec});
  EXPECT_NE(os.str().find("\"payback_iters\":null"), std::string::npos);
}
