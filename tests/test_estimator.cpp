// Tests for the pluggable speed estimators.
#include <gtest/gtest.h>

#include "forecast/forecaster.hpp"
#include "platform/host.hpp"
#include "simcore/simulator.hpp"
#include "strategy/estimator.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace strat = simsweep::strategy;
namespace fc = simsweep::forecast;

TEST(WindowEstimator, MatchesPaperSemantics) {
  sim::Simulator s;
  pf::Host h(s, 0, 100.0, "h");
  (void)s.after(10.0, [&] { h.set_external_load(1); });
  (void)s.after(20.0, [] {});
  s.run();
  strat::WindowEstimator instantaneous(0.0);
  strat::WindowEstimator windowed(20.0);
  EXPECT_DOUBLE_EQ(instantaneous.estimate(h, 20.0), 50.0);
  EXPECT_DOUBLE_EQ(windowed.estimate(h, 20.0), 75.0);
  EXPECT_EQ(instantaneous.name(), "window_0s");
}

TEST(ForecastEstimator, LastValueTracksCurrentAvailability) {
  sim::Simulator s;
  pf::Host h(s, 0, 200.0, "h");
  auto est = strat::make_forecast_estimator(
      [] { return fc::make_last_value(); }, "lv");
  EXPECT_DOUBLE_EQ(est->estimate(h, 0.0), 200.0);
  h.set_external_load(3);
  EXPECT_DOUBLE_EQ(est->estimate(h, 1.0), 50.0);
  EXPECT_EQ(est->name(), "lv");
}

TEST(ForecastEstimator, EwmaLagsLoadChanges) {
  sim::Simulator s;
  pf::Host h(s, 0, 100.0, "h");
  auto est = strat::make_forecast_estimator(
      [] { return fc::make_ewma(100.0); }, "ewma");
  // Feed history: unloaded for 100 s.
  (void)s.after(100.0, [] {});
  s.run();
  EXPECT_NEAR(est->estimate(h, 100.0), 100.0, 1e-9);
  h.set_external_load(9);  // availability drops to 0.1
  // Immediately after the drop the EWMA barely moved.
  const double just_after = est->estimate(h, 101.0);
  EXPECT_GT(just_after, 50.0);
  // Much later it converges to the new level.
  const double later = est->estimate(h, 1000.0);
  EXPECT_LT(later, 15.0);
}

TEST(ForecastEstimator, TracksHostsIndependently) {
  sim::Simulator s;
  pf::Host a(s, 0, 100.0, "a");
  pf::Host b(s, 1, 100.0, "b");
  auto est = strat::make_forecast_estimator(
      [] { return fc::make_last_value(); }, "lv");
  a.set_external_load(1);
  EXPECT_DOUBLE_EQ(est->estimate(a, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(est->estimate(b, 1.0), 100.0);
}

TEST(ForecastEstimator, OfflineHostEstimatesNearZero) {
  sim::Simulator s;
  pf::Host h(s, 0, 100.0, "h");
  auto est = strat::make_forecast_estimator(
      [] { return fc::make_last_value(); }, "lv");
  h.set_online(false);
  EXPECT_DOUBLE_EQ(est->estimate(h, 1.0), 0.0);
}

TEST(ForecastEstimator, RejectsNullFactory) {
  EXPECT_THROW(strat::ForecastEstimator(nullptr, "x"), std::invalid_argument);
}
