// Executor edge cases: interruption, validation, hooks, partitions.
#include <gtest/gtest.h>

#include "app/app_spec.hpp"
#include "net/shared_link.hpp"
#include "platform/cluster.hpp"
#include "strategy/executor.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace net = simsweep::net;
namespace app = simsweep::app;
namespace strat = simsweep::strategy;

namespace {

struct Rig {
  sim::Simulator simulator;
  sim::Rng rng{1};
  std::unique_ptr<pf::Cluster> cluster;
  std::unique_ptr<net::SharedLinkNetwork> network;

  explicit Rig(std::vector<double> speeds) {
    pf::ClusterSpec spec;
    spec.host_count = speeds.size();
    spec.explicit_speeds = std::move(speeds);
    spec.startup_per_process_s = 0.0;
    cluster = std::make_unique<pf::Cluster>(simulator, spec, rng);
    network = std::make_unique<net::SharedLinkNetwork>(simulator, spec.link);
  }

  std::unique_ptr<strat::IterativeExecution> exec(
      const app::AppSpec& spec, std::vector<pf::HostId> placement,
      strat::IterativeExecution::BoundaryHook hook = {}) {
    return std::make_unique<strat::IterativeExecution>(
        simulator, *cluster, *network, spec, std::move(placement),
        app::WorkPartition::equal(spec.active_processes), std::move(hook));
  }
};

app::AppSpec spec_of(std::size_t active, std::size_t iters, double flops) {
  app::AppSpec s;
  s.active_processes = active;
  s.iterations = iters;
  s.work_per_iteration_flops = flops;
  s.comm_bytes_per_process = 0.0;
  return s;
}

}  // namespace

TEST(ExecutorEdge, ConstructorValidatesEverything) {
  Rig rig({100.0, 100.0});
  const auto good = spec_of(2, 1, 100.0);
  // Placement size mismatch.
  EXPECT_THROW(strat::IterativeExecution(rig.simulator, *rig.cluster,
                                         *rig.network, good, {0},
                                         app::WorkPartition::equal(2), {}),
               std::invalid_argument);
  // Host out of range.
  EXPECT_THROW(strat::IterativeExecution(rig.simulator, *rig.cluster,
                                         *rig.network, good, {0, 9},
                                         app::WorkPartition::equal(2), {}),
               std::invalid_argument);
  // Partition slot mismatch.
  EXPECT_THROW(strat::IterativeExecution(rig.simulator, *rig.cluster,
                                         *rig.network, good, {0, 1},
                                         app::WorkPartition::equal(3), {}),
               std::invalid_argument);
  // Invalid app spec.
  auto bad = good;
  bad.work_per_iteration_flops = 0.0;
  EXPECT_THROW(strat::IterativeExecution(rig.simulator, *rig.cluster,
                                         *rig.network, bad, {0, 1},
                                         app::WorkPartition::equal(2), {}),
               std::invalid_argument);
}

TEST(ExecutorEdge, NegativeStartupRejected) {
  Rig rig({100.0});
  auto e = rig.exec(spec_of(1, 1, 100.0), {0});
  EXPECT_THROW(e->start(-1.0), std::invalid_argument);
}

TEST(ExecutorEdge, MutatorValidation) {
  Rig rig({100.0, 100.0});
  auto e = rig.exec(spec_of(2, 1, 100.0), {0, 1});
  EXPECT_THROW(e->move_process(5, 0), std::invalid_argument);
  EXPECT_THROW(e->move_process(0, 7), std::invalid_argument);
  EXPECT_THROW(e->set_placement({0}), std::invalid_argument);
  EXPECT_THROW(e->set_placement({0, 9}), std::invalid_argument);
  EXPECT_THROW(e->set_partition(app::WorkPartition::equal(3)),
               std::invalid_argument);
  EXPECT_THROW((void)e->last_iteration_time(), std::logic_error);
}

TEST(ExecutorEdge, AbortOutsideIterationThrows) {
  Rig rig({100.0});
  auto e = rig.exec(spec_of(1, 1, 100.0), {0});
  EXPECT_THROW(e->abort_iteration(), std::logic_error);  // never started
}

TEST(ExecutorEdge, AbortAndRestartReRunsIteration) {
  Rig rig({100.0});
  auto e = rig.exec(spec_of(1, 2, 100.0), {0});
  e->start(0.0);
  // Abort the first iteration halfway, restart immediately: the iteration
  // re-runs from scratch, so total time = 0.5 (lost) + 1 + 1.
  (void)rig.simulator.after(0.5, [&] {
    ASSERT_TRUE(e->iteration_in_flight());
    e->abort_iteration();
    EXPECT_FALSE(e->iteration_in_flight());
    EXPECT_THROW(e->abort_iteration(), std::logic_error);  // already aborted
    e->restart_iteration();
    EXPECT_THROW(e->restart_iteration(), std::logic_error);  // running again
  });
  rig.simulator.run();
  EXPECT_TRUE(e->done());
  EXPECT_DOUBLE_EQ(e->result().makespan_s, 2.5);
  EXPECT_DOUBLE_EQ(e->result().adaptation_overhead_s, 0.5);  // aborted span
  ASSERT_EQ(e->result().iteration_times_s.size(), 2u);
  EXPECT_DOUBLE_EQ(e->result().iteration_times_s[0], 1.0);
}

TEST(ExecutorEdge, IterationStartObserverFiresEveryStartAndRestart) {
  Rig rig({100.0});
  auto e = rig.exec(spec_of(1, 3, 100.0), {0});
  int starts = 0;
  e->set_iteration_start_observer([&](strat::IterativeExecution&) { ++starts; });
  bool aborted = false;
  (void)rig.simulator.after(0.25, [&] {
    e->abort_iteration();
    aborted = true;
    e->restart_iteration();
  });
  e->start(0.0);
  rig.simulator.run();
  EXPECT_TRUE(aborted);
  EXPECT_EQ(starts, 4);  // 3 iterations + 1 restart
}

TEST(ExecutorEdge, BoundaryHookRunsBetweenIterationsNotAfterLast) {
  Rig rig({100.0});
  int boundaries = 0;
  auto hook = [&](strat::IterativeExecution&, std::function<void()> resume) {
    ++boundaries;
    resume();
  };
  auto e = rig.exec(spec_of(1, 4, 100.0), {0}, hook);
  e->start(0.0);
  rig.simulator.run();
  EXPECT_EQ(boundaries, 3);  // n-1 boundaries for n iterations
}

TEST(ExecutorEdge, HookMayDelayResumptionWithSimulatedWork) {
  Rig rig({100.0});
  auto hook = [&](strat::IterativeExecution& exec,
                  std::function<void()> resume) {
    exec.result().adaptation_overhead_s += 2.0;
    (void)rig.simulator.after(2.0, resume);
  };
  auto e = rig.exec(spec_of(1, 2, 100.0), {0}, hook);
  e->start(0.0);
  rig.simulator.run();
  EXPECT_DOUBLE_EQ(e->result().makespan_s, 4.0);  // 1 + 2 pause + 1
}

TEST(ExecutorEdge, PlacementChangeAtBoundaryTakesEffect) {
  Rig rig({100.0, 400.0});
  auto hook = [&](strat::IterativeExecution& exec,
                  std::function<void()> resume) {
    exec.move_process(0, 1);  // jump to the 4x host
    resume();
  };
  auto e = rig.exec(spec_of(1, 2, 400.0), {0}, hook);
  e->start(0.0);
  rig.simulator.run();
  ASSERT_EQ(e->result().iteration_times_s.size(), 2u);
  EXPECT_DOUBLE_EQ(e->result().iteration_times_s[0], 4.0);
  EXPECT_DOUBLE_EQ(e->result().iteration_times_s[1], 1.0);
}

TEST(ExecutorEdge, PartitionChangeAtBoundaryTakesEffect) {
  Rig rig({100.0, 100.0});
  auto hook = [&](strat::IterativeExecution& exec,
                  std::function<void()> resume) {
    exec.set_partition(app::WorkPartition::proportional({3.0, 1.0}));
    resume();
  };
  auto e = rig.exec(spec_of(2, 2, 200.0), {0, 1}, hook);
  e->start(0.0);
  rig.simulator.run();
  // Iter 1 equal: 1 s.  Iter 2: slot 0 has 150 flops at 100 f/s = 1.5 s.
  EXPECT_DOUBLE_EQ(e->result().iteration_times_s[1], 1.5);
}

TEST(WorkPartition, Validation) {
  EXPECT_THROW((void)app::WorkPartition::equal(0), std::invalid_argument);
  EXPECT_THROW((void)app::WorkPartition::proportional({}),
               std::invalid_argument);
  EXPECT_THROW((void)app::WorkPartition::proportional({1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)app::WorkPartition::proportional({0.0, 0.0}),
               std::invalid_argument);
  const auto p = app::WorkPartition::proportional({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p.fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(p.fraction(1), 0.75);
  double total = 0.0;
  for (double f : p.fractions()) total += f;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(AppSpec, ValidationAndHelpers) {
  app::AppSpec s;
  EXPECT_THROW(s.validate(), std::invalid_argument);  // zero work
  s = app::AppSpec::with_iteration_minutes(4, 10, 2.0, 300.0e6);
  EXPECT_NO_THROW(s.validate());
  EXPECT_DOUBLE_EQ(s.work_per_iteration_flops, 2.0 * 60.0 * 300.0e6 * 4.0);
  EXPECT_DOUBLE_EQ(s.equal_chunk(), 2.0 * 60.0 * 300.0e6);
  s.active_processes = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = app::AppSpec::with_iteration_minutes(1, 1, 1.0);
  s.comm_bytes_per_process = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}
