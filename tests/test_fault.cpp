// Fault-injection subsystem tests: deterministic schedules, crash
// semantics, failure accounting, per-technique termination under faults,
// and serial/parallel identity of failure histories.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/app_spec.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "load/onoff.hpp"
#include "net/shared_link.hpp"
#include "platform/cluster.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "strategy/executor.hpp"
#include "strategy/strategy.hpp"
#include "swap/policy.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace net = simsweep::net;
namespace app = simsweep::app;
namespace core = simsweep::core;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace fault = simsweep::fault;
namespace swp = simsweep::swap;

namespace {

fault::FaultSpec crashy_spec(double mtbf_s) {
  fault::FaultSpec spec;
  spec.host_mtbf_s = mtbf_s;
  return spec;
}

core::ExperimentConfig faulty_config() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 8;
  cfg.app = app::AppSpec::with_iteration_minutes(/*active=*/2,
                                                 /*iterations=*/8,
                                                 /*minutes=*/1.0);
  cfg.app.comm_bytes_per_process = 10.0 * app::kKiB;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 4;
  cfg.seed = 7;
  // Hosts die every few simulated hours; a short horizon keeps the worst
  // case (everything dead, techniques that keep recomputing) fast.
  cfg.faults.host_mtbf_s = 4.0 * 3600.0;
  cfg.faults.swap_fail_prob = 0.2;
  cfg.faults.checkpoint_fail_prob = 0.2;
  cfg.horizon_s = 48.0 * 3600.0;
  return cfg;
}

std::vector<std::unique_ptr<strat::Strategy>> all_techniques() {
  std::vector<std::unique_ptr<strat::Strategy>> out;
  out.push_back(std::make_unique<strat::NoneStrategy>());
  out.push_back(std::make_unique<strat::SwapStrategy>(swp::greedy_policy()));
  out.push_back(std::make_unique<strat::DlbStrategy>());
  out.push_back(std::make_unique<strat::CrStrategy>(swp::greedy_policy()));
  return out;
}

}  // namespace

TEST(FaultSpec, ValidateRejectsBadValues) {
  fault::FaultSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.host_mtbf_s = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.swap_fail_prob = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.checkpoint_fail_prob = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.retry_backoff_s = -2.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.blacklist_after = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FaultSpec, EnabledFlags) {
  fault::FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(spec.crashes_enabled());
  spec.host_mtbf_s = 100.0;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.crashes_enabled());
  spec = {};
  spec.swap_fail_prob = 0.5;
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(spec.crashes_enabled());
  spec = {};
  spec.checkpoint_fail_prob = 0.5;
  EXPECT_TRUE(spec.enabled());
}

TEST(FaultPlan, DeterministicForSameSeed) {
  const auto spec = crashy_spec(3600.0);
  const auto a = fault::FaultPlan::generate(spec, 16, 99, 24 * 3600.0);
  const auto b = fault::FaultPlan::generate(spec, 16, 99, 24 * 3600.0);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  EXPECT_FALSE(a.crashes().empty());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].host, b.crashes()[i].host);
    EXPECT_DOUBLE_EQ(a.crashes()[i].time_s, b.crashes()[i].time_s);
  }
}

TEST(FaultPlan, SortedAndWithinHorizon) {
  const auto plan =
      fault::FaultPlan::generate(crashy_spec(1800.0), 32, 5, 12 * 3600.0);
  double last = 0.0;
  for (const auto& crash : plan.crashes()) {
    EXPECT_GE(crash.time_s, last);
    EXPECT_LT(crash.time_s, 12 * 3600.0);
    EXPECT_LT(crash.host, 32u);
    last = crash.time_s;
  }
}

TEST(FaultPlan, PerHostStreamsIndependentOfClusterSize) {
  // Host h's crash time derives from (seed, h) alone, so growing the
  // cluster must not perturb the schedules of existing hosts.
  const auto spec = crashy_spec(3600.0);
  const auto small = fault::FaultPlan::generate(spec, 8, 21, 48 * 3600.0);
  const auto big = fault::FaultPlan::generate(spec, 16, 21, 48 * 3600.0);
  for (const auto& crash : small.crashes()) {
    bool found = false;
    for (const auto& other : big.crashes())
      if (other.host == crash.host && other.time_s == crash.time_s)
        found = true;
    EXPECT_TRUE(found) << "host " << crash.host << " schedule changed";
  }
}

TEST(FaultPlan, DisabledSpecIsEmpty) {
  const auto plan =
      fault::FaultPlan::generate(fault::FaultSpec{}, 32, 1, 1e9);
  EXPECT_TRUE(plan.crashes().empty());
}

TEST(FaultInjector, RetryBackoffDoublesAndCaps) {
  sim::Simulator simulator;
  sim::Rng rng(1);
  pf::ClusterSpec cspec;
  cspec.host_count = 2;
  pf::Cluster cluster(simulator, cspec, rng);
  fault::FaultSpec spec;
  spec.swap_fail_prob = 0.5;
  spec.retry_backoff_s = 2.0;
  spec.retry_backoff_cap_s = 10.0;
  fault::FaultInjector injector(simulator, cluster, spec, 3, 1e6);
  EXPECT_DOUBLE_EQ(injector.retry_backoff(0), 2.0);
  EXPECT_DOUBLE_EQ(injector.retry_backoff(1), 4.0);
  EXPECT_DOUBLE_EQ(injector.retry_backoff(2), 8.0);
  EXPECT_DOUBLE_EQ(injector.retry_backoff(3), 10.0);
  EXPECT_DOUBLE_EQ(injector.retry_backoff(20), 10.0);
}

TEST(FaultInjector, ArmCrashesHostsAndFiresListeners) {
  sim::Simulator simulator;
  sim::Rng rng(1);
  pf::ClusterSpec cspec;
  cspec.host_count = 4;
  pf::Cluster cluster(simulator, cspec, rng);
  fault::FaultInjector injector(simulator, cluster, crashy_spec(3600.0), 11,
                                /*horizon_s=*/48 * 3600.0);
  ASSERT_FALSE(injector.plan().crashes().empty());
  std::vector<pf::HostId> seen;
  injector.on_crash([&](pf::HostId h) { seen.push_back(h); });
  injector.arm();
  simulator.run_until(48 * 3600.0);
  EXPECT_EQ(injector.crashes_injected(), injector.plan().crashes().size());
  ASSERT_EQ(seen.size(), injector.plan().crashes().size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], injector.plan().crashes()[i].host);
    EXPECT_TRUE(cluster.host(seen[i]).crashed());
    EXPECT_FALSE(cluster.host(seen[i]).online());
  }
}

TEST(HostCrash, CrashedHostNeverComesBack) {
  sim::Simulator simulator;
  pf::Host host(simulator, 0, 100.0e6, "h");
  EXPECT_TRUE(host.online());
  host.set_crashed();
  EXPECT_TRUE(host.crashed());
  EXPECT_FALSE(host.online());
  host.set_online(true);  // load models keep toggling; must be a no-op
  EXPECT_FALSE(host.online());
}

TEST(Simulator, EventBudgetThrows) {
  sim::Simulator simulator;
  simulator.set_event_budget(10);
  std::function<void()> tick = [&] { simulator.after(1.0, tick); };
  simulator.after(1.0, tick);
  EXPECT_THROW(simulator.run_until(1e9), sim::EventBudgetExceeded);
}

TEST(Executor, RollbackToIterationRestoresAccounting) {
  sim::Simulator simulator;
  sim::Rng rng(1);
  pf::ClusterSpec cspec;
  cspec.host_count = 2;
  cspec.explicit_speeds = {100.0, 100.0};
  cspec.startup_per_process_s = 0.0;
  pf::Cluster cluster(simulator, cspec, rng);
  net::SharedLinkNetwork network(simulator, cspec.link);
  app::AppSpec aspec;
  aspec.active_processes = 2;
  aspec.iterations = 6;
  aspec.work_per_iteration_flops = 100.0;
  aspec.comm_bytes_per_process = 0.0;
  bool rolled_back = false;
  strat::IterativeExecution exec(
      simulator, cluster, network, aspec, {0, 1},
      app::WorkPartition::equal(2),
      [&](strat::IterativeExecution& e, std::function<void()> resume) {
        if (e.iteration() == 3 && !rolled_back) {
          rolled_back = true;
          const auto before = e.result().iteration_times_s;
          e.rollback_to_iteration(1);
          EXPECT_EQ(e.result().iterations_completed, 1u);
          EXPECT_EQ(e.result().iteration_times_s.size(), 1u);
          EXPECT_EQ(e.result().failures.iterations_recomputed, 2u);
          EXPECT_DOUBLE_EQ(e.result().failures.time_lost_s,
                           before[1] + before[2]);
          EXPECT_THROW(e.rollback_to_iteration(5), std::invalid_argument);
        }
        resume();
      });
  exec.start(0.0);
  simulator.run_until(1e9);
  EXPECT_TRUE(rolled_back);
  EXPECT_TRUE(exec.done());
  // The two rolled-back iterations were recomputed.
  EXPECT_EQ(exec.result().iterations_completed, 6u);
  EXPECT_EQ(exec.result().iteration_times_s.size(), 6u);
}

TEST(FaultRuns, DisabledSpecLeavesRunsUntouched) {
  core::ExperimentConfig cfg = faulty_config();
  cfg.faults = {};  // no faults at all
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, model, none);
  EXPECT_TRUE(r.finished);
  EXPECT_FALSE(r.resource_exhausted);
  EXPECT_EQ(r.failures, strat::FailureStats{});
}

TEST(FaultRuns, HugeMtbfMatchesNoFaultRun) {
  // MTBF -> infinity: the injector exists but never fires and never
  // perturbs any other random stream, so the run is bitwise identical to
  // the fault-free path.
  core::ExperimentConfig cfg = faulty_config();
  cfg.faults = {};
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  auto techniques = all_techniques();
  for (auto& technique : techniques) {
    auto base_cfg = cfg;
    const auto base = core::run_single(base_cfg, model, *technique);
    auto huge = cfg;
    huge.faults.host_mtbf_s = 1e18;  // first crash far beyond any horizon
    const auto faulty = core::run_single(huge, model, *technique);
    EXPECT_DOUBLE_EQ(base.makespan_s, faulty.makespan_s)
        << technique->name();
    EXPECT_EQ(base.iteration_times_s, faulty.iteration_times_s)
        << technique->name();
    EXPECT_EQ(faulty.failures, strat::FailureStats{}) << technique->name();
  }
}

TEST(FaultRuns, IdenticalSeedIdenticalFailureHistory) {
  const auto cfg = faulty_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  auto a_techniques = all_techniques();
  auto b_techniques = all_techniques();
  for (std::size_t i = 0; i < a_techniques.size(); ++i) {
    const auto a = core::run_single(cfg, model, *a_techniques[i]);
    const auto b = core::run_single(cfg, model, *b_techniques[i]);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s) << a_techniques[i]->name();
    EXPECT_EQ(a.iteration_times_s, b.iteration_times_s)
        << a_techniques[i]->name();
    EXPECT_EQ(a.failures, b.failures) << a_techniques[i]->name();
    EXPECT_EQ(a.resource_exhausted, b.resource_exhausted)
        << a_techniques[i]->name();
  }
}

TEST(FaultRuns, EveryTechniqueTerminatesUnderHeavyFaults) {
  // Hosts die fast enough that most runs see several crashes.  Every
  // technique must terminate: complete, give up diagnosably on spare
  // exhaustion, or run out the (short) horizon — never deadlock the
  // simulated application silently and never spin the simulator.
  auto cfg = faulty_config();
  cfg.faults.host_mtbf_s = 2.0 * 3600.0;
  load::OnOffModel model(load::OnOffParams::dynamism(0.2));
  auto techniques = all_techniques();
  for (auto& technique : techniques) {
    const auto r = core::run_single(cfg, model, *technique);
    EXPECT_TRUE(r.finished || r.stalled || r.makespan_s >= cfg.horizon_s)
        << technique->name() << " neither finished nor diagnosed";
    if (r.stalled && !r.finished) {
      // The only sanctioned stall is diagnosed resource exhaustion.
      EXPECT_TRUE(r.resource_exhausted) << technique->name();
    }
  }
}

TEST(FaultRuns, SpareExhaustionIsDiagnosedNotDeadlocked) {
  // 2 hosts, 2 active, no spares: the first crash is unrecoverable for
  // every technique.  The run must stop with resource_exhausted.
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 2;
  cfg.app = app::AppSpec::with_iteration_minutes(2, 50, 5.0);
  cfg.app.comm_bytes_per_process = 10.0 * app::kKiB;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 0;
  cfg.seed = 3;
  cfg.faults.host_mtbf_s = 1800.0;  // ~first crash well before 250 min
  cfg.horizon_s = 48.0 * 3600.0;
  load::OnOffModel model(load::OnOffParams::dynamism(0.1));
  auto techniques = all_techniques();
  for (auto& technique : techniques) {
    const auto r = core::run_single(cfg, model, *technique);
    ASSERT_GT(r.failures.host_crashes, 0u) << technique->name();
    EXPECT_FALSE(r.finished) << technique->name();
    EXPECT_TRUE(r.resource_exhausted) << technique->name();
    EXPECT_TRUE(r.stalled) << technique->name();
  }
}

TEST(FaultRuns, CertainTransferFailureStillTerminates) {
  // Every transfer attempt fails: swaps are abandoned after the retry
  // budget and repeat offenders are blacklisted, but the application
  // itself (which needs no transfers) still completes.
  auto cfg = faulty_config();
  cfg.faults.host_mtbf_s = 0.0;
  cfg.faults.swap_fail_prob = 1.0;
  cfg.faults.max_transfer_retries = 1;
  cfg.faults.blacklist_after = 2;
  load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  strat::SwapStrategy swap(swp::greedy_policy());
  const auto r = core::run_single(cfg, model, swap);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.adaptations, 0u);  // no swap ever completed
  if (r.failures.transfers_failed > 0) {
    EXPECT_GT(r.failures.transfers_abandoned, 0u);
    EXPECT_GT(r.failures.time_lost_s, 0.0);
  }
}

TEST(FaultRuns, SerialAndParallelTrialsIdentical) {
  const auto cfg = faulty_config();
  load::OnOffModel model(load::OnOffParams::dynamism(0.3));
  auto techniques = all_techniques();
  for (auto& technique : techniques) {
    const auto serial = core::run_trials(cfg, model, *technique, 6);
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
      const auto parallel =
          core::run_trials_parallel(cfg, model, *technique, 6, jobs);
      EXPECT_DOUBLE_EQ(serial.mean, parallel.mean)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.stddev, parallel.stddev)
          << technique->name() << " jobs=" << jobs;
      EXPECT_EQ(serial.unfinished, parallel.unfinished)
          << technique->name() << " jobs=" << jobs;
      EXPECT_EQ(serial.resource_exhausted, parallel.resource_exhausted)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.mean_crashes, parallel.mean_crashes)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.mean_transfer_failures,
                       parallel.mean_transfer_failures)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.mean_recoveries, parallel.mean_recoveries)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.mean_checkpoint_failures,
                       parallel.mean_checkpoint_failures)
          << technique->name() << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(serial.mean_time_lost_s, parallel.mean_time_lost_s)
          << technique->name() << " jobs=" << jobs;
    }
  }
}

TEST(FaultRuns, CrRecoversThroughCheckpoints) {
  // CR with crashes and flaky checkpoint writes: the run should either
  // finish (recovering through its checkpoints) or diagnose exhaustion;
  // when crashes hit mid-run, recoveries and recomputed iterations show up
  // in the accounting.
  auto cfg = faulty_config();
  cfg.faults.host_mtbf_s = 3.0 * 3600.0;
  load::OnOffModel model(load::OnOffParams::dynamism(0.2));
  strat::CrStrategy cr(swp::greedy_policy());
  const auto r = core::run_single(cfg, model, cr);
  EXPECT_TRUE(r.finished || r.resource_exhausted ||
              r.makespan_s >= cfg.horizon_s);
  if (r.failures.crash_recoveries > 0) {
    EXPECT_GT(r.failures.time_lost_s, 0.0);
  }
}
