// Tests for the NWS-style forecaster family.
#include <gtest/gtest.h>

#include <cmath>

#include "forecast/forecaster.hpp"
#include "simcore/rng.hpp"

namespace fc = simsweep::forecast;

TEST(LastValue, TracksLatestObservation) {
  auto f = fc::make_last_value();
  EXPECT_DOUBLE_EQ(f->predict(7.0), 7.0);  // fallback before data
  f->observe(0.0, 1.0);
  f->observe(5.0, 3.0);
  EXPECT_DOUBLE_EQ(f->predict(), 3.0);
  EXPECT_EQ(f->name(), "last_value");
}

TEST(LastValue, RejectsTimeTravel) {
  auto f = fc::make_last_value();
  f->observe(5.0, 1.0);
  EXPECT_THROW(f->observe(4.0, 2.0), std::invalid_argument);
}

TEST(WindowedMean, TimeWeightedOverWindow) {
  auto f = fc::make_windowed_mean(10.0);
  f->observe(0.0, 1.0);
  f->observe(10.0, 3.0);
  f->observe(15.0, 3.0);
  // Window [5, 15]: 5 s of 1.0 + 5 s of 3.0.
  EXPECT_DOUBLE_EQ(f->predict(), 2.0);
}

TEST(WindowedMean, SingleSampleIsItsOwnMean) {
  auto f = fc::make_windowed_mean(60.0);
  f->observe(100.0, 0.5);
  EXPECT_DOUBLE_EQ(f->predict(), 0.5);
}

TEST(WindowedMean, PrunesOldSamplesButKeepsEdgeValue) {
  auto f = fc::make_windowed_mean(10.0);
  for (int i = 0; i < 100; ++i)
    f->observe(static_cast<double>(i), i % 2 == 0 ? 0.0 : 1.0);
  // Mean of an alternating 0/1 step series over any 10 s window is 0.5
  // (5 whole one-second segments of each value).
  EXPECT_NEAR(f->predict(), 0.5, 0.11);
  EXPECT_THROW(fc::make_windowed_mean(0.0), std::invalid_argument);
}

TEST(Ewma, ConvergesToConstantSignal) {
  auto f = fc::make_ewma(10.0);
  f->observe(0.0, 0.0);
  for (int i = 1; i <= 100; ++i) f->observe(static_cast<double>(i), 4.0);
  EXPECT_NEAR(f->predict(), 4.0, 1e-3);
}

TEST(Ewma, DecayDependsOnElapsedTime) {
  auto fast = fc::make_ewma(1.0);
  auto slow = fc::make_ewma(100.0);
  for (auto* f : {fast.get(), slow.get()}) {
    f->observe(0.0, 0.0);
    f->observe(10.0, 1.0);
  }
  // tau=1: 10 s gap fully adopts the new value; tau=100 barely moves.
  EXPECT_GT(fast->predict(), 0.99);
  EXPECT_LT(slow->predict(), 0.15);
  EXPECT_THROW(fc::make_ewma(-2.0), std::invalid_argument);
}

TEST(SlidingMedian, IgnoresSingleSpike) {
  auto f = fc::make_sliding_median(5);
  for (int i = 0; i < 4; ++i) f->observe(static_cast<double>(i), 1.0);
  f->observe(4.0, 100.0);  // spike
  EXPECT_DOUBLE_EQ(f->predict(), 1.0);
  EXPECT_THROW(fc::make_sliding_median(0), std::invalid_argument);
}

TEST(SlidingMedian, WindowSlides) {
  auto f = fc::make_sliding_median(3);
  f->observe(0.0, 1.0);
  f->observe(1.0, 2.0);
  f->observe(2.0, 9.0);
  f->observe(3.0, 9.0);  // window now {2, 9, 9}
  EXPECT_DOUBLE_EQ(f->predict(), 9.0);
}

TEST(Adaptive, PicksTheBetterCandidateOnStableSeries) {
  // Constant series: last-value is exact; a long mean initialized through a
  // transient keeps residual error, so adaptive should follow last-value.
  std::vector<std::unique_ptr<fc::Forecaster>> candidates;
  candidates.push_back(fc::make_last_value());
  candidates.push_back(fc::make_windowed_mean(1000.0));
  auto f = fc::make_adaptive(std::move(candidates));
  f->observe(0.0, 10.0);
  for (int i = 1; i <= 50; ++i) f->observe(static_cast<double>(i), 2.0);
  EXPECT_DOUBLE_EQ(f->predict(), 2.0);
  EXPECT_EQ(f->name(), "adaptive[last_value]");
}

TEST(Adaptive, PrefersMedianUnderSpikyNoise) {
  // Signal is 1.0 with a spike to 50 every 5th sample: last-value is badly
  // wrong after each spike; the median never is.
  std::vector<std::unique_ptr<fc::Forecaster>> candidates;
  candidates.push_back(fc::make_last_value());
  candidates.push_back(fc::make_sliding_median(5));
  auto f = fc::make_adaptive(std::move(candidates));
  for (int i = 0; i < 60; ++i)
    f->observe(static_cast<double>(i), i % 5 == 4 ? 50.0 : 1.0);
  EXPECT_EQ(f->name(), "adaptive[median_5]");
  EXPECT_THROW(fc::make_adaptive({}), std::invalid_argument);
}

TEST(Adaptive, CloneCopiesLearnedState) {
  auto f = fc::make_default_ensemble();
  for (int i = 0; i < 20; ++i) f->observe(static_cast<double>(i), 0.25);
  auto copy = f->clone();
  EXPECT_DOUBLE_EQ(copy->predict(), f->predict());
  // Diverge after cloning.
  copy->observe(21.0, 1.0);
  EXPECT_NE(copy->predict(), f->predict());
}

TEST(DefaultEnsemble, PredictsWithinObservedRange) {
  simsweep::sim::Rng rng(3);
  auto f = fc::make_default_ensemble();
  for (int i = 0; i < 200; ++i)
    f->observe(static_cast<double>(i), rng.uniform(0.25, 0.75));
  const double p = f->predict();
  EXPECT_GE(p, 0.25);
  EXPECT_LE(p, 0.75);
}

// Property: every forecaster in the family predicts within the convex hull
// of its observations (all are averaging/selection schemes).
class ForecastHullProperty : public ::testing::TestWithParam<int> {};

TEST_P(ForecastHullProperty, PredictionsStayInHull) {
  simsweep::sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::unique_ptr<fc::Forecaster>> family;
  family.push_back(fc::make_last_value());
  family.push_back(fc::make_windowed_mean(30.0));
  family.push_back(fc::make_ewma(20.0));
  family.push_back(fc::make_sliding_median(7));
  family.push_back(fc::make_default_ensemble());
  double lo = 1e300, hi = -1e300, t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += rng.uniform(0.1, 10.0);
    const double v = rng.uniform(-5.0, 5.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    for (auto& f : family) {
      f->observe(t, v);
      const double p = f->predict();
      EXPECT_GE(p, lo - 1e-9) << f->name();
      EXPECT_LE(p, hi + 1e-9) << f->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForecastHullProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
