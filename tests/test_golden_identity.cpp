// Golden identity: the technique-runtime refactor is a pure restructuring
// of the strategy layer and may not move a single simulated event.  Every
// (scenario, technique, seed) cell below was captured from the pre-refactor
// monolith (strategies.cpp); makespans, counters and FailureStats must stay
// bitwise identical.  Doubles are spelled as hexfloats so the expected
// values round-trip exactly.
//
// A second test proves run_trials_results is jobs-invariant: fanning the
// same trials over a 4-worker pool returns bitwise-identical results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "golden_scenarios.hpp"

namespace {

using golden::Row;

const std::vector<Row>& golden_rows() {
  static const std::vector<Row> kRows{
    {"calm", "none", 1, 0x1.d82b570d3791bp+11, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "none", 2, 0x1.b1c5149d357cfp+11, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "none", 3, 0x1.d0bce51ec8036p+11, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_greedy", 1, 0x1.e7cf8a5b9ff67p+11, 25, 43, 0x1.77bd9d6c455ccp+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_greedy", 2, 0x1.c29804399613bp+11, 25, 42, 0x1.6f00b0f27bb31p+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_greedy", 3, 0x1.de999e4919e59p+11, 25, 41, 0x1.6643baa41cf1ep+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_safe_guard", 1, 0x1.0424018a427fp+12, 25, 20, 0x1.5d86e51a59d6cp+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_safe_guard", 2, 0x1.ef838567ac557p+11, 25, 19, 0x1.4c0cf87d9c548p+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "swap_safe_guard", 3, 0x1.eed6a7d48775fp+11, 25, 17, 0x1.2919050d3e65p+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb", 1, 0x1.98d4a948fa09ap+11, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb", 2, 0x1.74bc1576b2436p+11, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb", 3, 0x1.947a5976e59eap+11, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb_swap", 1, 0x1.a5b3ab8deb53fp+11, 25, 34, 0x1.2918f16414354p+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb_swap", 2, 0x1.a280fc7a6757ap+11, 25, 29, 0x1.fad03d2abc242p+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "dlb_swap", 3, 0x1.ae633ae9556e3p+11, 25, 34, 0x1.2918f1641435p+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "cr", 1, 0x1.ad9e92a817085p+12, 25, 23, 0x1.9a9467c3ece28p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "cr", 2, 0x1.9cef027789051p+12, 25, 23, 0x1.9a9467c3ece2ap+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"calm", "cr", 3, 0x1.838eb92d5f986p+12, 25, 20, 0x1.65069d0369d04p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"faulty", "none", 1, 0x1.442276969dbd2p+12, 25, 0, 0x1.4abd17e5ca77ap+10,
     {31, 0, 0, 0, 0, 1, 0, 10, 0x1.4abd17e5ca77ap+10}},
    {"faulty", "none", 2, 0x1.b72bb357bd347p+11, 25, 0, 0x0p+0,
     {30, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"faulty", "none", 3, 0x1.8d17575f8c7e3p+12, 25, 0, 0x1.4e26e41cbfc4p+11,
     {31, 0, 0, 0, 0, 1, 0, 19, 0x1.4e26e41cbfc4p+11}},
    {"faulty", "swap_greedy", 1, 0x1.11d69e91eadb4p+12, 25, 48, 0x1.cd0e36866a308p+9,
     {31, 8, 8, 0, 0, 0, 0, 0, 0x1.3dbbfd317e116p+7}},
    {"faulty", "swap_greedy", 2, 0x1.11b3f3402e3fcp+12, 25, 47, 0x1.db196e6012136p+9,
     {30, 12, 12, 0, 0, 0, 0, 0, 0x1.158e2cb9d40acp+8}},
    {"faulty", "swap_greedy", 3, 0x1.2c0b3b5ff6ba6p+12, 25, 60, 0x1.42bfe0e7b8e1bp+10,
     {31, 15, 15, 0, 0, 1, 0, 0, 0x1.1d6f5567b2922p+9}},
    {"faulty", "swap_safe_guard", 1, 0x1.fece0c41d990ep+11, 25, 14, 0x1.a9674c7b3614bp+8,
     {31, 4, 4, 0, 0, 1, 0, 0, 0x1.8c6be6a669f9ep+7}},
    {"faulty", "swap_safe_guard", 2, 0x1.0cc2b34c9ae66p+12, 25, 19, 0x1.55b646eb78d95p+9,
     {30, 5, 5, 0, 0, 2, 0, 0, 0x1.9e53932132bb8p+8}},
    {"faulty", "swap_safe_guard", 3, 0x1.ff79ecd4291a2p+11, 25, 17, 0x1.377fe435d9be6p+8,
     {31, 1, 1, 0, 0, 0, 0, 0, 0x1.ecdaaa80c82p+4}},
    {"faulty", "dlb", 1, 0x1.0a0cc144f0f0fp+12, 25, 24, 0x1.34bb4ba06c4ap+5,
     {31, 0, 0, 0, 0, 1, 0, 0, 0x1.34bb4ba06c4ap+5}},
    {"faulty", "dlb", 2, 0x1.a7e8b6f4a1d21p+11, 25, 24, 0x0p+0,
     {30, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"faulty", "dlb", 3, 0x1.e57b58636a03bp+11, 25, 24, 0x1.ac21d6649cap+4,
     {31, 0, 0, 0, 0, 1, 0, 0, 0x1.ac21d6649cap+4}},
    {"faulty", "dlb_swap", 1, 0x1.fdcbddaf27a34p+11, 25, 43, 0x1.a15d6a456cc93p+9,
     {31, 8, 8, 0, 0, 1, 0, 0, 0x1.8b6a1fbcc59eap+7}},
    {"faulty", "dlb_swap", 2, 0x1.f1144dae5b0a4p+11, 25, 41, 0x1.92239bf1b2c92p+9,
     {30, 8, 8, 0, 0, 0, 0, 0, 0x1.f783f4fdde6d8p+7}},
    {"faulty", "dlb_swap", 3, 0x1.15692ea6e6b16p+12, 25, 55, 0x1.0ce187d2a70d2p+10,
     {31, 12, 12, 0, 0, 0, 0, 0, 0x1.50e0558fe3f8p+8}},
    {"faulty", "cr", 1, 0x1.a0636dd6bd31fp+12, 25, 18, 0x1.6d0394237fa8ap+11,
     {31, 0, 0, 0, 5, 0, 0, 0, 0x1.5d869d0369cf8p+8}},
    {"faulty", "cr", 2, 0x1.9abc19342eb6cp+12, 25, 18, 0x1.6d0394237fa8ap+11,
     {30, 0, 0, 0, 5, 0, 0, 0, 0x1.5d869d0369cf8p+8}},
    {"faulty", "cr", 3, 0x1.b64c3952de6c8p+12, 25, 21, 0x1.8b0a08da96a68p+11,
     {31, 0, 0, 0, 3, 1, 0, 0, 0x1.301b5eb966b34p+8}},
    {"hostile", "none", 1, 0x1.ac7786ba6452ep+12, 25, 0, 0x1.94e424b037d4cp+11,
     {27, 0, 0, 0, 0, 2, 0, 22, 0x1.94e424b037d4cp+11}},
    {"hostile", "none", 2, 0x1.b64475cf84871p+11, 25, 0, 0x0p+0,
     {28, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"hostile", "none", 3, 0x1.ac6ec7ba01a1dp+11, 25, 0, 0x0p+0,
     {30, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"hostile", "swap_greedy", 1, 0x1.8c7f3717bf7eep+12, 25, 21, 0x1.46dbd353d3ba2p+10,
     {27, 99, 81, 18, 0, 0, 25, 0, 0x1.c6f521447746cp+10}},
    {"hostile", "swap_greedy", 2, 0x1.c42627fab6709p+12, 25, 17, 0x1.7797a7ab0a762p+10,
     {28, 123, 100, 23, 0, 0, 27, 0, 0x1.24a58fe689695p+11}},
    {"hostile", "swap_greedy", 3, 0x1.8ccd685fb93dbp+12, 25, 22, 0x1.62074249d6a66p+10,
     {30, 101, 80, 21, 0, 0, 24, 0, 0x1.f76de7739cb4p+10}},
    {"hostile", "swap_safe_guard", 1, 0x1.fc874a5ba05dcp+11, 25, 4, 0x1.72a6c883671fap+8,
     {27, 25, 19, 6, 0, 0, 6, 0, 0x1.2cbefbd98e2c2p+8}},
    {"hostile", "swap_safe_guard", 2, 0x1.d0c1a4503d9f2p+11, 25, 5, 0x1.6353d9229587bp+8,
     {28, 24, 19, 5, 0, 0, 5, 0, 0x1.0bf2194e4656fp+8}},
    {"hostile", "swap_safe_guard", 3, 0x1.e69a8e44ee852p+11, 25, 7, 0x1.2a32ef3fd8f42p+8,
     {30, 14, 12, 2, 0, 0, 3, 0, 0x1.5fba922d3a93cp+7}},
    {"hostile", "dlb", 1, 0x1.ef1c47fae24aep+11, 25, 24, 0x1.942e557acafp+4,
     {27, 0, 0, 0, 0, 1, 0, 0, 0x1.942e557acafp+4}},
    {"hostile", "dlb", 2, 0x1.87fe92936bd0ep+11, 25, 24, 0x0p+0,
     {28, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"hostile", "dlb", 3, 0x1.c436a0b6ecee5p+11, 25, 24, 0x0p+0,
     {30, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"hostile", "dlb_swap", 1, 0x1.69f32c37158d1p+12, 25, 19, 0x1.219be441d14bp+10,
     {27, 87, 68, 19, 0, 0, 20, 0, 0x1.b35a359c677b6p+10}},
    {"hostile", "dlb_swap", 2, 0x1.23f65f5751f92p+12, 25, 12, 0x1.dce204ae14106p+9,
     {28, 73, 59, 14, 0, 0, 18, 0, 0x1.43b8014b0a6d3p+10}},
    {"hostile", "dlb_swap", 3, 0x1.490dfff974c1fp+12, 25, 19, 0x1.3f9dfa3493f45p+10,
     {30, 83, 69, 14, 0, 1, 20, 0, 0x1.a5bf6b275ac89p+10}},
    {"hostile", "cr", 1, 0x1.7e0d65594d24p+12, 25, 9, 0x1.1afee402bb0d2p+11,
     {27, 0, 0, 0, 14, 0, 0, 0, 0x1.e9560f04c756ap+9}},
    {"hostile", "cr", 2, 0x1.84b2eea3d5d0dp+12, 25, 10, 0x1.241bdb22d0e57p+11,
     {28, 0, 0, 0, 13, 0, 0, 0, 0x1.c66232846ff4cp+9}},
    {"hostile", "cr", 3, 0x1.7ad0b3beb71f5p+12, 25, 11, 0x1.247bdb22d0e58p+11,
     {30, 0, 0, 0, 11, 0, 0, 0, 0x1.807a7983c132p+9}},
    {"reclaim", "none", 1, 0x1.1119daeb5f43p+13, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "none", 2, 0x1.2e7a98b999fd7p+13, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "none", 3, 0x1.e124f80015c07p+12, 25, 0, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_greedy", 1, 0x1.81b597a785349p+12, 25, 43, 0x1.77bdadce932f4p+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_greedy", 2, 0x1.e5024e05b957ap+13, 25, 42, 0x1.6f00a71de694cp+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_greedy", 3, 0x1.d3bf490ace8a2p+12, 25, 29, 0x1.fad050d3e6561p+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_safe_guard", 1, 0x1.b3db4ce25859dp+12, 25, 27, 0x1.7353c022d8f75p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_safe_guard", 2, 0x1.9a7e3379df351p+12, 25, 21, 0x1.63280018b7b7p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "swap_safe_guard", 3, 0x1.4f9b4f1bdfb62p+12, 25, 23, 0x1.9b456d15a86bbp+10,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb", 1, 0x1.88bf765b65162p+12, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb", 2, 0x1.173c778bf1429p+13, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb", 3, 0x1.87af0ad47149bp+12, 25, 24, 0x0p+0,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb_swap", 1, 0x1.2805b6404701fp+13, 25, 37, 0x1.434fde23c58dfp+9,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb_swap", 2, 0x1.8365da909aad5p+13, 25, 28, 0x1.e956508dfe9f8p+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "dlb_swap", 3, 0x1.31c552869a69p+12, 25, 17, 0x1.2918fe7f85abcp+8,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "cr", 1, 0x1.9e0f330fe28bfp+13, 25, 23, 0x1.9a9467c3ece07p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "cr", 2, 0x1.b76f482921201p+13, 25, 23, 0x1.9a9467c3ecdfdp+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
    {"reclaim", "cr", 3, 0x1.400f2ca2983a5p+13, 25, 19, 0x1.532caec33e1e1p+11,
     {0, 0, 0, 0, 0, 0, 0, 0, 0x0p+0}},
  };
  return kRows;
}

}  // namespace

TEST(GoldenIdentity, EveryCellBitwiseIdentical) {
  ASSERT_EQ(golden_rows().size(), golden::scenarios().size() *
                                      golden::techniques().size() *
                                      golden::seeds().size());
  for (const Row& row : golden_rows()) {
    SCOPED_TRACE(std::string(row.scenario) + "/" + row.technique + "/seed=" +
                 std::to_string(row.seed));
    const simsweep::strategy::RunResult result =
        golden::run_cell(row.scenario, row.technique, row.seed);
    // Exact == on purpose: "close enough" would hide a reordered event.
    EXPECT_EQ(result.makespan_s, row.makespan_s);
    EXPECT_EQ(result.iterations_completed, row.iterations);
    EXPECT_EQ(result.adaptations, row.adaptations);
    EXPECT_EQ(result.adaptation_overhead_s, row.adaptation_overhead_s);
    EXPECT_TRUE(result.failures == row.failures)
        << "FailureStats diverged (crashes " << result.failures.host_crashes
        << " vs " << row.failures.host_crashes << ", transfers_failed "
        << result.failures.transfers_failed << " vs "
        << row.failures.transfers_failed << ", abandoned "
        << result.failures.transfers_abandoned << " vs "
        << row.failures.transfers_abandoned << ", blacklisted "
        << result.failures.hosts_blacklisted << " vs "
        << row.failures.hosts_blacklisted << ")";
  }
}

TEST(GoldenIdentity, ParallelTrialsMatchSerial) {
  // The faulty scenario exercises the full recovery ladder; four trials over
  // a 4-worker pool must reproduce the serial results bit for bit.
  for (const std::string& technique : golden::techniques()) {
    SCOPED_TRACE(technique);
    auto cfg = golden::config_for("faulty");
    cfg.seed = 1;
    const auto model = golden::model_for("faulty");
    const auto serial_strategy = golden::make_technique(technique);
    const auto serial = golden::core::run_trials_results(
        cfg, *model, *serial_strategy, /*trials=*/4, /*jobs=*/1);
    const auto pooled_strategy = golden::make_technique(technique);
    const auto pooled = golden::core::run_trials_results(
        cfg, *model, *pooled_strategy, /*trials=*/4, /*jobs=*/4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
      SCOPED_TRACE("trial " + std::to_string(t));
      EXPECT_EQ(serial[t].makespan_s, pooled[t].makespan_s);
      EXPECT_EQ(serial[t].iterations_completed,
                pooled[t].iterations_completed);
      EXPECT_EQ(serial[t].adaptations, pooled[t].adaptations);
      EXPECT_EQ(serial[t].adaptation_overhead_s,
                pooled[t].adaptation_overhead_s);
      EXPECT_TRUE(serial[t].failures == pooled[t].failures);
    }
  }
}
