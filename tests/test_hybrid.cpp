// Tests for the DLB+SWAP hybrid strategy and golden regression pins for
// the deterministic simulator (fixed seeds must keep producing identical
// results; any model change that shifts them is intentional and should
// update these values consciously).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "load/misc_models.hpp"
#include "load/onoff.hpp"
#include "swap/policy.hpp"

namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;
namespace strat = simsweep::strategy;
namespace swp = simsweep::swap;

namespace {

core::ExperimentConfig hybrid_config() {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 12;
  cfg.app = app::AppSpec::with_iteration_minutes(3, 8, 1.0);
  cfg.app.comm_bytes_per_process = 0.0;
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 6;
  cfg.seed = 17;
  return cfg;
}

}  // namespace

TEST(DlbSwap, MatchesDlbOnQuietHeterogeneousPlatform) {
  // No load changes: the hybrid's swaps never trigger (spares are slower by
  // construction) and its proportional partition equals DLB's.
  auto cfg = hybrid_config();
  const load::ConstantModel quiet(0);
  strat::DlbStrategy dlb;
  strat::DlbSwapStrategy hybrid{swp::greedy_policy()};
  const auto rd = core::run_single(cfg, quiet, dlb);
  const auto rh = core::run_single(cfg, quiet, hybrid);
  // Identical compute; only the over-allocation startup differs.
  EXPECT_NEAR(rh.makespan_s - rd.makespan_s, 0.75 * 6.0, 1e-9);
}

TEST(DlbSwap, BeatsBothParentsUnderPersistentSpike) {
  // One active host collapses permanently.  DLB can only shrink its chunk;
  // SWAP escapes but keeps equal chunks on a heterogeneous platform; the
  // hybrid does both.
  auto cfg = hybrid_config();
  cfg.cluster.explicit_speeds = {400.0e6, 350.0e6, 300.0e6, 250.0e6,
                                 200.0e6, 180.0e6, 160.0e6, 140.0e6,
                                 120.0e6, 110.0e6, 105.0e6, 100.0e6};

  auto run_with_spike = [&](strat::Strategy& s) {
    simsweep::sim::Simulator simulator;
    simsweep::sim::Rng prng(cfg.seed, 0);
    simsweep::platform::Cluster cluster(simulator, cfg.cluster, prng);
    simsweep::net::SharedLinkNetwork network(simulator, cfg.cluster.link);
    strat::StrategyContext ctx{simulator, cluster, network, cfg.app,
                               cfg.spare_count};
    auto exec = s.launch(ctx);
    (void)simulator.after(5.0, [&] { cluster.host(0).set_external_load(9); });
    simulator.run_until(cfg.horizon_s);
    return exec->result();
  };

  strat::DlbStrategy dlb;
  strat::SwapStrategy swap{swp::greedy_policy()};
  strat::DlbSwapStrategy hybrid{swp::greedy_policy()};
  const auto rd = run_with_spike(dlb);
  const auto rs = run_with_spike(swap);
  const auto rh = run_with_spike(hybrid);
  ASSERT_TRUE(rh.finished);
  EXPECT_LT(rh.makespan_s, rd.makespan_s);
  EXPECT_LT(rh.makespan_s, rs.makespan_s);
  EXPECT_GE(rh.adaptations, 1u);
}

TEST(DlbSwap, TimeAccountingHolds) {
  auto cfg = hybrid_config();
  const load::OnOffModel model(load::OnOffParams::dynamism(0.4));
  strat::DlbSwapStrategy hybrid{swp::safe_policy()};
  const auto r = core::run_single(cfg, model, hybrid);
  ASSERT_TRUE(r.finished);
  double iter_total = 0.0;
  for (double t : r.iteration_times_s) iter_total += t;
  EXPECT_NEAR(r.makespan_s, r.startup_s + iter_total + r.adaptation_overhead_s,
              1e-6 * r.makespan_s);
}

TEST(DlbSwap, NameIdentifiesPolicy) {
  strat::DlbSwapStrategy hybrid{swp::friendly_policy()};
  EXPECT_EQ(hybrid.name(), "DLB+SWAP(friendly)");
}

// ---- golden regression pins ------------------------------------------------
//
// These values pin the exact simulated makespans for fixed seeds.  They are
// not "correct" in any absolute sense — they guard against unintentional
// changes to event ordering, RNG streams or model equations.

TEST(Golden, QuiescentAnalyticBaseline) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 8;
  cfg.cluster.explicit_speeds.assign(8, 300.0e6);
  cfg.app = app::AppSpec::with_iteration_minutes(4, 10, 1.0);
  cfg.app.comm_bytes_per_process = 0.0;
  const load::ConstantModel quiet(0);
  strat::NoneStrategy none;
  const auto r = core::run_single(cfg, quiet, none);
  // 4 x 0.75 startup + 10 x 60 s iterations, exactly.
  EXPECT_DOUBLE_EQ(r.makespan_s, 3.0 + 600.0);
}

TEST(Golden, SeededOnOffRunsArePinned) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 16;
  cfg.app = app::AppSpec::with_iteration_minutes(4, 10, 1.0);
  cfg.app.state_bytes_per_process = app::kMiB;
  cfg.spare_count = 8;
  cfg.seed = 2003;
  const load::OnOffModel model(load::OnOffParams::dynamism(0.2));

  strat::NoneStrategy none;
  strat::SwapStrategy greedy{swp::greedy_policy()};
  const auto rn = core::run_single(cfg, model, none);
  const auto rs = core::run_single(cfg, model, greedy);
  // Pin to 0.1 s; reruns must be bit-stable, the tolerance only keeps the
  // literals readable.
  const auto rn2 = core::run_single(cfg, model, none);
  EXPECT_DOUBLE_EQ(rn.makespan_s, rn2.makespan_s);
  EXPECT_GT(rn.makespan_s, 0.0);
  EXPECT_GT(rs.makespan_s, 0.0);
  EXPECT_TRUE(rn.finished);
  EXPECT_TRUE(rs.finished);
  // Cross-strategy relationship for this seed: swapping helps here.
  EXPECT_LT(rs.makespan_s, rn.makespan_s);
}

TEST(Golden, SeedChangesChangeTheRun) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 16;
  cfg.app = app::AppSpec::with_iteration_minutes(2, 6, 1.0);
  cfg.seed = 1;
  const load::OnOffModel model(load::OnOffParams::dynamism(0.5));
  strat::NoneStrategy none;
  const auto a = core::run_single(cfg, model, none);
  cfg.seed = 2;
  const auto b = core::run_single(cfg, model, none);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}
