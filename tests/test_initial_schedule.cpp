// Tests for the pre-execution scheduler variants.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "load/misc_models.hpp"
#include "strategy/schedule.hpp"
#include "strategy/strategy.hpp"

namespace sim = simsweep::sim;
namespace pf = simsweep::platform;
namespace strat = simsweep::strategy;
namespace core = simsweep::core;
namespace app = simsweep::app;
namespace load = simsweep::load;

namespace {

struct Rig {
  sim::Simulator simulator;
  sim::Rng rng{1};
  std::unique_ptr<pf::Cluster> cluster;

  Rig() {
    pf::ClusterSpec spec;
    spec.host_count = 4;
    spec.explicit_speeds = {100.0, 400.0, 300.0, 200.0};
    cluster = std::make_unique<pf::Cluster>(simulator, spec, rng);
  }
};

}  // namespace

TEST(InitialSchedule, EffectiveRankingReactsToLoad) {
  Rig rig;
  rig.cluster->host(1).set_external_load(9);  // 400 -> 40 effective
  const auto alloc = strat::pick_allocation(
      *rig.cluster, 2, 1, strat::InitialSchedule::kFastestEffective);
  EXPECT_EQ(alloc.active, (std::vector<pf::HostId>{2, 3}));  // 300, 200
  EXPECT_EQ(alloc.spares, (std::vector<pf::HostId>{0}));     // 100 beats 40
}

TEST(InitialSchedule, PeakRankingIgnoresLoad) {
  Rig rig;
  rig.cluster->host(1).set_external_load(9);
  const auto alloc = strat::pick_allocation(
      *rig.cluster, 2, 1, strat::InitialSchedule::kFastestPeak);
  EXPECT_EQ(alloc.active, (std::vector<pf::HostId>{1, 2}));  // by peak
}

TEST(InitialSchedule, LoadBlindTakesIdOrder) {
  Rig rig;
  const auto alloc = strat::pick_allocation(
      *rig.cluster, 2, 1, strat::InitialSchedule::kLoadBlind);
  EXPECT_EQ(alloc.active, (std::vector<pf::HostId>{0, 1}));
  EXPECT_EQ(alloc.spares, (std::vector<pf::HostId>{2}));
}

TEST(InitialSchedule, DefaultMatchesPaperBehaviour) {
  Rig rig;
  const auto dflt = strat::pick_allocation(*rig.cluster, 2, 1);
  const auto eff = strat::pick_allocation(
      *rig.cluster, 2, 1, strat::InitialSchedule::kFastestEffective);
  EXPECT_EQ(dflt.active, eff.active);
  EXPECT_EQ(dflt.spares, eff.spares);
}

TEST(InitialSchedule, FlowsThroughExperimentConfig) {
  core::ExperimentConfig cfg;
  cfg.cluster.host_count = 6;
  cfg.cluster.explicit_speeds = {100.0e6, 500.0e6, 450.0e6,
                                 400.0e6, 350.0e6, 300.0e6};
  cfg.app = app::AppSpec::with_iteration_minutes(2, 3, 1.0);
  cfg.app.comm_bytes_per_process = 0.0;
  const load::ConstantModel quiet(0);
  strat::NoneStrategy none;

  cfg.initial_schedule = strat::InitialSchedule::kFastestEffective;
  const auto fast = core::run_single(cfg, quiet, none);
  cfg.initial_schedule = strat::InitialSchedule::kLoadBlind;
  const auto blind = core::run_single(cfg, quiet, none);
  // Blind picks host 0 (100 Mflop/s) as a bottleneck; effective avoids it.
  EXPECT_GT(blind.makespan_s, 2.0 * fast.makespan_s);
}
